"""Approximate query processing over a collection of synopses.

The paper's motivation is AQP: answer aggregate queries from compact
synopses instead of the base data.  :class:`SynopsisStore` is the thin
serving layer a downstream user actually deploys — it manages one synopsis
per named series, answers point/sum/average queries in ``O(log N)``, keeps
each series' error guarantee next to its synopsis, and round-trips to JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np
from numpy.typing import ArrayLike

from repro.core.thresholding import build_synopsis
from repro.exceptions import InvalidInputError, ReproError
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.synopsis2d import WaveletSynopsis2D

__all__ = ["SynopsisStore"]

#: Either synopsis dimensionality the store can hold.
AnySynopsis = WaveletSynopsis | WaveletSynopsis2D


class SynopsisStore:
    """A named collection of wavelet synopses with query helpers.

    Holds 1-D and 2-D synopses; the 1-D query helpers reject 2-D series
    (use :meth:`get` and the synopsis' own ``cell_query`` /
    ``rectangle_sum`` for those), while registration, reporting, and
    persistence cover both.
    """

    def __init__(self) -> None:
        self._synopses: dict[str, AnySynopsis] = {}
        self._lengths: dict[str, int] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._synopses

    def __len__(self) -> int:
        return len(self._synopses)

    def names(self) -> list[str]:
        """Registered series names, sorted."""
        return sorted(self._synopses)

    def add(
        self,
        name: str,
        data: ArrayLike,
        budget: int,
        algorithm: str = "dgreedy-abs",
        **build_kwargs: Any,
    ) -> WaveletSynopsis:
        """Summarize ``data`` and register it under ``name``.

        The synopsis records the achieved max-abs guarantee against the
        (padded) data in its metadata; re-adding a name replaces it.
        """
        values = np.asarray(data, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise InvalidInputError("series must be a non-empty 1-D array")
        synopsis = build_synopsis(values, budget, algorithm=algorithm, **build_kwargs)
        padded = np.zeros(synopsis.n)
        padded[: values.size] = values
        synopsis.meta["series"] = name
        synopsis.meta["original_length"] = int(values.size)
        synopsis.meta["max_abs_guarantee"] = synopsis.max_abs_error(padded)
        self._synopses[name] = synopsis
        self._lengths[name] = int(values.size)
        return synopsis

    def register(
        self, name: str, synopsis: AnySynopsis, original_length: int | None = None
    ) -> None:
        """Register a prebuilt synopsis (1-D or 2-D, e.g. loaded from elsewhere)."""
        if isinstance(synopsis, WaveletSynopsis2D):
            fallback = synopsis.shape[0] * synopsis.shape[1]
        else:
            fallback = synopsis.n
        self._synopses[name] = synopsis
        self._lengths[name] = int(
            original_length
            or synopsis.meta.get("original_length")
            or fallback
        )

    def get(self, name: str) -> AnySynopsis:
        """The registered synopsis itself (1-D or 2-D)."""
        try:
            return self._synopses[name]
        except KeyError:
            raise ReproError(
                f"unknown series {name!r}; available: {self.names()}"
            ) from None

    def _get(self, name: str) -> WaveletSynopsis:
        synopsis = self.get(name)
        if isinstance(synopsis, WaveletSynopsis2D):
            raise InvalidInputError(
                f"series {name!r} is 2-D; 1-D query helpers do not apply"
            )
        return synopsis

    def _clip(self, name: str, lo: int, hi: int) -> tuple[int, int]:
        length = self._lengths[name]
        if lo > hi:
            raise InvalidInputError(f"empty range [{lo}, {hi}]")
        if lo < 0 or hi >= length:
            raise InvalidInputError(
                f"range [{lo}, {hi}] out of bounds for series of length {length}"
            )
        return lo, hi

    def point(self, name: str, index: int) -> float:
        """Approximate value of one element."""
        synopsis = self._get(name)
        self._clip(name, index, index)
        return synopsis.point_query(index)

    def range_sum(self, name: str, lo: int, hi: int) -> float:
        """Approximate sum over the inclusive range ``[lo, hi]``."""
        synopsis = self._get(name)
        lo, hi = self._clip(name, lo, hi)
        return synopsis.range_sum(lo, hi)

    def range_avg(self, name: str, lo: int, hi: int) -> float:
        """Approximate average over the inclusive range ``[lo, hi]``."""
        synopsis = self._get(name)
        lo, hi = self._clip(name, lo, hi)
        return synopsis.range_avg(lo, hi)

    def guarantee(self, name: str) -> float:
        """The series' recorded max-abs guarantee (inf when unknown)."""
        return float(self.get(name).meta.get("max_abs_guarantee", float("inf")))

    def range_sum_bounds(self, name: str, lo: int, hi: int) -> tuple[float, float]:
        """Deterministic bounds on the exact range sum.

        Each value is within the max-abs guarantee, so the exact sum lies
        within ``width * guarantee`` of the approximate one.
        """
        approx = self.range_sum(name, lo, hi)
        slack = (hi - lo + 1) * self.guarantee(name)
        return approx - slack, approx + slack

    def report(self, name: str | None = None) -> list[dict[str, Any]]:
        """Per-series summary: size, compression ratio, guarantee.

        With ``name``, a single-row report for that series; unknown
        names fail with the available-series listing (routed through
        :meth:`get`), never a raw ``KeyError``.
        """
        rows: list[dict[str, Any]] = []
        for series_name in [name] if name is not None else self.names():
            synopsis = self.get(series_name)
            rows.append(
                {
                    "series": series_name,
                    "length": self._lengths[series_name],
                    "coefficients": synopsis.size,
                    "ratio": self._lengths[series_name] / max(synopsis.size, 1),
                    "max_abs_guarantee": self.guarantee(series_name),
                    "algorithm": synopsis.meta.get("algorithm"),
                }
            )
        return rows

    def save(self, path: str | Path) -> None:
        """Serialize the whole store to a JSON file.

        Entries are tagged ``kind: "1d" | "2d"`` so a load can pick the
        right synopsis class.
        """
        payload = {
            name: {
                "kind": "2d" if isinstance(synopsis, WaveletSynopsis2D) else "1d",
                "synopsis": synopsis.to_dict(),
                "original_length": self._lengths[name],
            }
            for name, synopsis in self._synopses.items()
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "SynopsisStore":
        """Inverse of :meth:`save` (pre-tag payloads load as 1-D)."""
        store = cls()
        payload = json.loads(Path(path).read_text())
        for name, entry in payload.items():
            synopsis: AnySynopsis
            if entry.get("kind", "1d") == "2d":
                synopsis = WaveletSynopsis2D.from_dict(entry["synopsis"])
            else:
                synopsis = WaveletSynopsis.from_dict(entry["synopsis"])
            store.register(
                name, synopsis, original_length=entry["original_length"]
            )
        return store
