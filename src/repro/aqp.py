"""Approximate query processing over a collection of synopses.

The paper's motivation is AQP: answer aggregate queries from compact
synopses instead of the base data.  :class:`SynopsisStore` is the thin
serving layer a downstream user actually deploys — it manages one synopsis
per named series, answers point/sum/average queries in ``O(log N)``, keeps
each series' error guarantee next to its synopsis, and round-trips to JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np
from numpy.typing import ArrayLike

from repro.core.thresholding import build_synopsis
from repro.exceptions import InvalidInputError, ReproError
from repro.wavelet.synopsis import WaveletSynopsis

__all__ = ["SynopsisStore"]


class SynopsisStore:
    """A named collection of wavelet synopses with query helpers."""

    def __init__(self) -> None:
        self._synopses: dict[str, WaveletSynopsis] = {}
        self._lengths: dict[str, int] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._synopses

    def __len__(self) -> int:
        return len(self._synopses)

    def names(self) -> list[str]:
        """Registered series names, sorted."""
        return sorted(self._synopses)

    def add(
        self,
        name: str,
        data: ArrayLike,
        budget: int,
        algorithm: str = "dgreedy-abs",
        **build_kwargs: Any,
    ) -> WaveletSynopsis:
        """Summarize ``data`` and register it under ``name``.

        The synopsis records the achieved max-abs guarantee against the
        (padded) data in its metadata; re-adding a name replaces it.
        """
        values = np.asarray(data, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise InvalidInputError("series must be a non-empty 1-D array")
        synopsis = build_synopsis(values, budget, algorithm=algorithm, **build_kwargs)
        padded = np.zeros(synopsis.n)
        padded[: values.size] = values
        synopsis.meta["series"] = name
        synopsis.meta["original_length"] = int(values.size)
        synopsis.meta["max_abs_guarantee"] = synopsis.max_abs_error(padded)
        self._synopses[name] = synopsis
        self._lengths[name] = int(values.size)
        return synopsis

    def register(self, name: str, synopsis: WaveletSynopsis, original_length: int | None = None) -> None:
        """Register a prebuilt synopsis (e.g. loaded from elsewhere)."""
        self._synopses[name] = synopsis
        self._lengths[name] = int(
            original_length
            or synopsis.meta.get("original_length")
            or synopsis.n
        )

    def _get(self, name: str) -> WaveletSynopsis:
        try:
            return self._synopses[name]
        except KeyError:
            raise ReproError(f"unknown series {name!r}") from None

    def _clip(self, name: str, lo: int, hi: int) -> tuple[int, int]:
        length = self._lengths[name]
        if lo > hi:
            raise InvalidInputError(f"empty range [{lo}, {hi}]")
        if lo < 0 or hi >= length:
            raise InvalidInputError(
                f"range [{lo}, {hi}] out of bounds for series of length {length}"
            )
        return lo, hi

    def point(self, name: str, index: int) -> float:
        """Approximate value of one element."""
        synopsis = self._get(name)
        self._clip(name, index, index)
        return synopsis.point_query(index)

    def range_sum(self, name: str, lo: int, hi: int) -> float:
        """Approximate sum over the inclusive range ``[lo, hi]``."""
        synopsis = self._get(name)
        lo, hi = self._clip(name, lo, hi)
        return synopsis.range_sum(lo, hi)

    def range_avg(self, name: str, lo: int, hi: int) -> float:
        """Approximate average over the inclusive range ``[lo, hi]``."""
        synopsis = self._get(name)
        lo, hi = self._clip(name, lo, hi)
        return synopsis.range_avg(lo, hi)

    def guarantee(self, name: str) -> float:
        """The series' recorded max-abs guarantee (inf when unknown)."""
        return float(self._get(name).meta.get("max_abs_guarantee", float("inf")))

    def range_sum_bounds(self, name: str, lo: int, hi: int) -> tuple[float, float]:
        """Deterministic bounds on the exact range sum.

        Each value is within the max-abs guarantee, so the exact sum lies
        within ``width * guarantee`` of the approximate one.
        """
        approx = self.range_sum(name, lo, hi)
        slack = (hi - lo + 1) * self.guarantee(name)
        return approx - slack, approx + slack

    def report(self) -> list[dict[str, Any]]:
        """Per-series summary: size, compression ratio, guarantee."""
        rows = []
        for name in self.names():
            synopsis = self._synopses[name]
            rows.append(
                {
                    "series": name,
                    "length": self._lengths[name],
                    "coefficients": synopsis.size,
                    "ratio": self._lengths[name] / max(synopsis.size, 1),
                    "max_abs_guarantee": self.guarantee(name),
                    "algorithm": synopsis.meta.get("algorithm"),
                }
            )
        return rows

    def save(self, path: str | Path) -> None:
        """Serialize the whole store to a JSON file."""
        payload = {
            name: {
                "synopsis": synopsis.to_dict(),
                "original_length": self._lengths[name],
            }
            for name, synopsis in self._synopses.items()
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "SynopsisStore":
        """Inverse of :meth:`save`."""
        store = cls()
        payload = json.loads(Path(path).read_text())
        for name, entry in payload.items():
            store.register(
                name,
                WaveletSynopsis.from_dict(entry["synopsis"]),
                original_length=entry["original_length"],
            )
        return store
