"""DP combine-kernel micro-benchmark: windowed kernel vs scalar reference.

Times :func:`repro.algos.minhaarspace.combine_rows` (the production
dispatcher, which routes real rows to the windowed batch kernel) against
:func:`repro.algos.minhaarspace.combine_rows_scalar` (the retained
per-``v`` reference) across row widths, plus the batched
:func:`repro.algos.minhaarspace.leaf_rows` against a per-leaf loop.
Results land in ``BENCH_dp_kernel.json`` at the repo root (written by
``benchmarks/bench_dp_kernel.py``) — the perf-regression baseline future
PRs diff against.

Row width here is ``|domain|`` of each child row, i.e. ``~2·epsilon/delta``
entries; ``effective_delta`` keeps production widths within this grid
(finer quantizations are clamped).  The two kernels are interleaved
within each repetition and the minimum over repetitions is kept, the
same noise discipline as :mod:`repro.bench.kernel`.
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence

import numpy as np

from repro.algos.minhaarspace import (
    MRow,
    combine_rows,
    combine_rows_scalar,
    leaf_row,
    leaf_rows,
)

__all__ = ["DP_KERNEL_WIDTHS", "bench_combine_widths", "bench_leaf_batch", "combine_inputs"]

#: Default row-width grid.  16 sits in the scalar-fallback region (the
#: dispatcher must not lose there); 64+ is the windowed kernel's domain.
DP_KERNEL_WIDTHS = [16, 32, 64, 128, 256, 512, 1024]


def combine_inputs(width: int, seed: int = 7) -> tuple[MRow, MRow, float]:
    """Reproducible (left, right, epsilon) child rows of ``~width`` entries."""
    rng = np.random.default_rng(seed + width)
    epsilon = width / 2.0

    def child_row() -> MRow:
        center = float(rng.uniform(-3.0, 3.0))
        start = math.ceil(center - epsilon)
        stop = math.floor(center + epsilon)
        size = stop - start + 1
        return MRow(
            start=start,
            counts=rng.integers(0, 8, size).astype(np.int32),
            errors=rng.uniform(0.0, epsilon, size),
            choices=np.zeros(size, dtype=np.int64),
        )

    return child_row(), child_row(), epsilon


def bench_combine_widths(
    widths: Sequence[int] | None = None, reps: int = 3, seed: int = 7, delta: float = 1.0
) -> list[dict]:
    """Benchmark the combine kernels; returns one row dict per width."""
    if widths is None:
        widths = DP_KERNEL_WIDTHS
    rows = []
    for width in widths:
        left, right, epsilon = combine_inputs(width, seed)
        # Enough calls that per-call timer noise averages out on small rows.
        calls = max(3, 4096 // width)
        windowed_seconds = scalar_seconds = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            for _ in range(calls):
                combine_rows(left, right, epsilon, delta)
            windowed_seconds = min(windowed_seconds, (time.perf_counter() - start) / calls)
            start = time.perf_counter()
            for _ in range(calls):
                combine_rows_scalar(left, right, epsilon, delta)
            scalar_seconds = min(scalar_seconds, (time.perf_counter() - start) / calls)
        rows.append(
            {
                "width": width,
                "calls": calls,
                "vectorized_seconds": windowed_seconds,
                "reference_seconds": scalar_seconds,
                "speedup": scalar_seconds / windowed_seconds,
            }
        )
    return rows


def bench_leaf_batch(
    leaves: int = 4096, reps: int = 3, seed: int = 7, delta: float = 1.0
) -> dict:
    """Benchmark batched :func:`leaf_rows` against the per-leaf loop."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(-100.0, 100.0, leaves)
    epsilon = 25.0
    batched_seconds = loop_seconds = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        leaf_rows(values, epsilon, delta)
        batched_seconds = min(batched_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        [leaf_row(float(value), epsilon, delta) for value in values]
        loop_seconds = min(loop_seconds, time.perf_counter() - start)
    return {
        "leaves": leaves,
        "vectorized_seconds": batched_seconds,
        "reference_seconds": loop_seconds,
        "speedup": loop_seconds / batched_seconds,
    }
