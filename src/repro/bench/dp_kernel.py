"""DP combine-kernel micro-benchmark: windowed kernel vs scalar reference.

Times :func:`repro.algos.minhaarspace.combine_rows` (the production
dispatcher, which routes real rows to the windowed batch kernel) against
:func:`repro.algos.minhaarspace.combine_rows_scalar` (the retained
per-``v`` reference) across row widths, plus the batched
:func:`repro.algos.minhaarspace.leaf_rows` against a per-leaf loop, plus
two end-to-end approximate-tier sweeps (:func:`bench_rho_build` /
:func:`bench_rho_distributed`) that measure whole-build speedups per
coarsening knob ``rho`` *and* check the tier's proven guarantees on the
way.  Results land in ``BENCH_dp_kernel.json`` at the repo root (written
by ``benchmarks/bench_dp_kernel.py``) — the perf-regression baseline
future PRs diff against.

Row width here is ``|domain|`` of each child row, i.e. ``~2·epsilon/delta``
entries; ``effective_delta`` keeps production widths within this grid
(finer quantizations are clamped).  The two kernels are interleaved
within each repetition and the minimum over repetitions is kept, the
same noise discipline as :mod:`repro.bench.kernel`.
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence

import numpy as np

from repro.algos.minhaarspace import (
    MRow,
    combine_rows,
    combine_rows_scalar,
    leaf_row,
    leaf_rows,
    min_haar_space,
)

__all__ = [
    "DP_KERNEL_WIDTHS",
    "DP_RHO_GRID",
    "bench_combine_widths",
    "bench_leaf_batch",
    "bench_rho_build",
    "bench_rho_distributed",
    "combine_inputs",
    "rho_build_inputs",
]

#: Default row-width grid.  16 sits in the scalar-fallback region (the
#: dispatcher must not lose there); 64+ is the windowed kernel's domain,
#: and 2048/4096 track the large-width cliff the blocked forward walk
#: flattens (the sag past width 128 that motivated the approximate tier).
DP_KERNEL_WIDTHS = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096]

#: Coarsening knobs of the end-to-end approximate-tier sweeps.
DP_RHO_GRID = [0.05, 0.1, 0.25]


def combine_inputs(width: int, seed: int = 7) -> tuple[MRow, MRow, float]:
    """Reproducible (left, right, epsilon) child rows of ``~width`` entries."""
    rng = np.random.default_rng(seed + width)
    epsilon = width / 2.0

    def child_row() -> MRow:
        center = float(rng.uniform(-3.0, 3.0))
        start = math.ceil(center - epsilon)
        stop = math.floor(center + epsilon)
        size = stop - start + 1
        return MRow(
            start=start,
            counts=rng.integers(0, 8, size).astype(np.int32),
            errors=rng.uniform(0.0, epsilon, size),
            choices=np.zeros(size, dtype=np.int64),
        )

    return child_row(), child_row(), epsilon


def bench_combine_widths(
    widths: Sequence[int] | None = None, reps: int = 3, seed: int = 7, delta: float = 1.0
) -> list[dict]:
    """Benchmark the combine kernels; returns one row dict per width."""
    if widths is None:
        widths = DP_KERNEL_WIDTHS
    rows = []
    for width in widths:
        left, right, epsilon = combine_inputs(width, seed)
        # Enough calls that per-call timer noise averages out on small rows.
        calls = max(3, 4096 // width)
        windowed_seconds = scalar_seconds = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            for _ in range(calls):
                combine_rows(left, right, epsilon, delta)
            windowed_seconds = min(windowed_seconds, (time.perf_counter() - start) / calls)
            start = time.perf_counter()
            for _ in range(calls):
                combine_rows_scalar(left, right, epsilon, delta)
            scalar_seconds = min(scalar_seconds, (time.perf_counter() - start) / calls)
        rows.append(
            {
                "width": width,
                "calls": calls,
                "vectorized_seconds": windowed_seconds,
                "reference_seconds": scalar_seconds,
                "speedup": scalar_seconds / windowed_seconds,
            }
        )
    return rows


def bench_leaf_batch(
    leaves: int = 4096, reps: int = 3, seed: int = 7, delta: float = 1.0
) -> dict:
    """Benchmark batched :func:`leaf_rows` against the per-leaf loop."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(-100.0, 100.0, leaves)
    epsilon = 25.0
    batched_seconds = loop_seconds = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        leaf_rows(values, epsilon, delta)
        batched_seconds = min(batched_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        [leaf_row(float(value), epsilon, delta) for value in values]
        loop_seconds = min(loop_seconds, time.perf_counter() - start)
    return {
        "leaves": leaves,
        "vectorized_seconds": batched_seconds,
        "reference_seconds": loop_seconds,
        "speedup": loop_seconds / batched_seconds,
    }


def rho_build_inputs(n: int, seed: int = 7) -> tuple[np.ndarray, float, float]:
    """Reproducible end-to-end build input: a random walk plus the
    ``(epsilon, delta)`` regime where quantization dominates DP cost
    (fine grid relative to the error band, so exact M-rows are wide)."""
    rng = np.random.default_rng(seed)
    data = np.cumsum(rng.normal(0.0, 1.0, n))
    return data, 3.0, 0.01


def bench_rho_build(
    n: int = 2048,
    rhos: Sequence[float] | None = None,
    reps: int = 2,
    seed: int = 7,
) -> dict:
    """End-to-end MinHaarSpace build: exact DP vs the approximate tier.

    One row per ``rho``, each carrying the measured speedup over the
    exact build *and* the guarantee checks of
    :func:`repro.algos.minhaarspace.approx_params` — ``max_error <=
    (1 + rho) * epsilon`` and ``size <=`` the exact solver's size — so a
    baseline refresh that violated the proof would fail before it ever
    landed.
    """
    if rhos is None:
        rhos = DP_RHO_GRID
    data, epsilon, delta = rho_build_inputs(n, seed)
    exact = min_haar_space(data, epsilon, delta)
    exact_seconds = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        min_haar_space(data, epsilon, delta)
        exact_seconds = min(exact_seconds, time.perf_counter() - start)
    rows = []
    for rho in rhos:
        approx = min_haar_space(data, epsilon, delta, rho=rho)
        seconds = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            min_haar_space(data, epsilon, delta, rho=rho)
            seconds = min(seconds, time.perf_counter() - start)
        error_bound = (1.0 + rho) * epsilon
        rows.append(
            {
                "rho": rho,
                "seconds": seconds,
                "speedup": exact_seconds / seconds,
                "size": approx.size,
                "max_error": approx.max_error,
                "error_bound": error_bound,
                "within_bound": bool(approx.max_error <= error_bound + 1e-9),
                "size_ok": bool(approx.size <= exact.size),
            }
        )
    return {
        "n": n,
        "epsilon": epsilon,
        "delta": delta,
        "exact_seconds": exact_seconds,
        "exact_size": exact.size,
        "exact_error": exact.max_error,
        "rows": rows,
    }


def bench_rho_distributed(
    n: int = 1024,
    budget: int | None = None,
    subtree_leaves: int = 256,
    rhos: Sequence[float] | None = None,
    reps: int = 1,
    seed: int = 7,
) -> dict:
    """End-to-end DIndirectHaar build: exact probes vs coarsened probes.

    The primal guarantee checked per ``rho`` row is ``max_error <=
    (1 + rho) * (E_exact + resolution)`` with the same
    :func:`repro.algos.indirect_haar.search_resolution` the driver uses,
    plus ``size <= budget`` — i.e. coarsening may never buy speed by
    overspending the budget.
    """
    from repro.algos.conventional import conventional_synopsis
    from repro.algos.indirect_haar import search_resolution
    from repro.core.dindirect import d_indirect_haar

    if rhos is None:
        rhos = DP_RHO_GRID
    data, _, delta = rho_build_inputs(n, seed)
    if budget is None:
        budget = max(n // 16, 1)
    error_high = conventional_synopsis(data, budget).max_abs_error(data)

    exact = d_indirect_haar(data, budget, delta, subtree_leaves=subtree_leaves)
    exact_seconds = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        d_indirect_haar(data, budget, delta, subtree_leaves=subtree_leaves)
        exact_seconds = min(exact_seconds, time.perf_counter() - start)
    exact_error = float(exact.meta["max_abs_error"])
    rows = []
    for rho in rhos:
        approx = d_indirect_haar(
            data, budget, delta, subtree_leaves=subtree_leaves, rho=rho
        )
        seconds = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            d_indirect_haar(data, budget, delta, subtree_leaves=subtree_leaves, rho=rho)
            seconds = min(seconds, time.perf_counter() - start)
        resolution = search_resolution(error_high, delta, n, rho)
        error_bound = (1.0 + rho) * (exact_error + resolution)
        max_error = float(approx.meta["max_abs_error"])
        rows.append(
            {
                "rho": rho,
                "seconds": seconds,
                "speedup": exact_seconds / seconds,
                "size": approx.size,
                "dp_runs": approx.meta["dp_runs"],
                "max_error": max_error,
                "error_bound": error_bound,
                "within_bound": bool(max_error <= error_bound + 1e-9),
                "budget_ok": bool(approx.size <= budget),
            }
        )
    return {
        "n": n,
        "budget": budget,
        "delta": delta,
        "subtree_leaves": subtree_leaves,
        "exact_seconds": exact_seconds,
        "exact_size": exact.size,
        "exact_error": exact_error,
        "exact_dp_runs": exact.meta["dp_runs"],
        "rows": rows,
    }
