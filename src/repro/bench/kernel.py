"""Greedy-kernel micro-benchmark: vectorized engines vs scalar reference.

Measures full runs to exhaustion (``m`` removals on ``m`` coefficients)
of the vectorized :class:`~repro.algos.greedy_abs.GreedyAbsTree` /
:class:`~repro.algos.greedy_rel.GreedyRelTree` against the scalar
oracles in :mod:`repro.algos.reference`, reporting removals/sec and the
speedup per size.  This is the repo's perf-regression baseline: the
results land in ``BENCH_greedy_kernel.json`` at the repo root (written
by ``benchmarks/bench_greedy_kernel.py``) so future PRs can diff.

Timing discipline: the two engines are *interleaved* within each
repetition and the minimum over repetitions is kept, which suppresses
the machine-level noise that plagues back-to-back wall-clock runs.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Callable

import numpy as np

from repro.algos.greedy_abs import GreedyAbsTree
from repro.algos.greedy_rel import GreedyRelTree
from repro.algos.reference import ScalarGreedyAbsTree, ScalarGreedyRelTree

__all__ = ["KERNEL_METRICS", "bench_kernel_metric", "kernel_inputs"]

#: Benchmarked metrics and their default size grids (log2 of the leaf
#: count).  The scalar reference is only run up to ``ref_max_log`` —
#: beyond that a single repetition takes minutes and the column is
#: reported as null rather than extrapolated.
KERNEL_METRICS = {
    "greedy_abs": {"log_sizes": range(10, 19), "ref_max_log": 16},
    "greedy_rel": {"log_sizes": range(10, 17), "ref_max_log": 14},
}


def kernel_inputs(log_leaves: int, seed: int = 7) -> tuple[np.ndarray, np.ndarray]:
    """Reproducible (coefficients, leaf_values) for a 2**log_leaves tree."""
    rng = np.random.default_rng(seed + log_leaves)
    m = 1 << log_leaves
    coefficients = rng.normal(0.0, 10.0, m)
    leaf_values = rng.normal(0.0, 50.0, m)
    return coefficients, leaf_values


def _time_run(make_tree: Callable[[], object]) -> float:
    tree = make_tree()  # construction excluded: the removals are the kernel
    start = time.perf_counter()
    tree.run_to_exhaustion()
    return time.perf_counter() - start


def bench_kernel_metric(
    metric: str,
    log_sizes: Sequence[int] | None = None,
    reps: int = 3,
    ref_max_log: int | None = None,
    seed: int = 7,
) -> list[dict]:
    """Benchmark one metric; returns one row dict per size.

    Rows contain ``leaves``, ``removals_per_sec`` for both engines, and
    ``speedup`` (null where the reference was not run).
    """
    spec = KERNEL_METRICS[metric]
    if log_sizes is None:
        log_sizes = spec["log_sizes"]
    if ref_max_log is None:
        ref_max_log = spec["ref_max_log"]
    rows = []
    for log_leaves in log_sizes:
        m = 1 << log_leaves
        coefficients, leaf_values = kernel_inputs(log_leaves, seed)
        if metric == "greedy_abs":
            make_vec = lambda: GreedyAbsTree(coefficients)  # noqa: E731
            make_ref = lambda: ScalarGreedyAbsTree(coefficients)  # noqa: E731
        else:
            make_vec = lambda: GreedyRelTree(coefficients, leaf_values)  # noqa: E731
            make_ref = lambda: ScalarGreedyRelTree(coefficients, leaf_values)  # noqa: E731
        run_ref = log_leaves <= ref_max_log
        vec_time = ref_time = float("inf")
        for _ in range(reps):
            vec_time = min(vec_time, _time_run(make_vec))
            if run_ref:
                ref_time = min(ref_time, _time_run(make_ref))
        row = {
            "metric": metric,
            "log2_leaves": log_leaves,
            "leaves": m,
            "vectorized_seconds": vec_time,
            "vectorized_removals_per_sec": m / vec_time,
            "reference_seconds": ref_time if run_ref else None,
            "reference_removals_per_sec": m / ref_time if run_ref else None,
            "speedup": ref_time / vec_time if run_ref else None,
        }
        rows.append(row)
    return rows
