"""Paper-style table/series rendering for the benchmark harness."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

__all__ = ["format_table", "print_table", "format_value"]


def format_value(value: Any) -> str:
    """Render one cell: compact floats, pass-through strings."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    if value is None:
        return "-"
    return str(value)


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Align a list of row dicts into a monospace table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[format_value(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max(len(cells[i]) for cells in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cells[i].ljust(widths[i]) for i in range(len(columns)))
        for cells in rendered
    ]
    return "\n".join([header, separator, *body])


def print_table(title: str, rows: Sequence[dict], columns: Sequence[str] | None = None) -> None:
    """Print a titled table (the harness's standard output format)."""
    print(f"\n== {title} ==")
    print(format_table(rows, columns))
