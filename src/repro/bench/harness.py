"""Experiment harness shared by every benchmark.

Time semantics (DESIGN.md §3): distributed algorithms report the
*simulated* wall-clock of their jobs — real measured task CPU times placed
onto the configured slot pool plus Hadoop-like overheads — while
centralized algorithms report plain measured wall-clock on "one machine".
Both are in seconds of the same scale, so the figures' comparisons are
meaningful.

Scale mapping: the harness's ``unit`` (default 2^13 points) plays the role
of the paper's 2M-record partition, so a sweep over ``unit * 2^k``
reproduces the 2M..537M x-axes at laptop size.  Centralized algorithms are
additionally subject to a :class:`repro.mapreduce.MemoryModel` sized so
they "cannot run" past the paper's 17M-equivalent — reproducing the
missing points of Figures 5c/5d/8/9.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import MemoryBudgetExceeded
from repro.mapreduce.cluster import ClusterConfig, MemoryModel, SimulatedCluster

__all__ = ["BenchSettings", "Measurement", "measure_distributed", "measure_centralized"]

#: Bytes-per-point working-set estimates for the centralized algorithms
#: (coefficients + bookkeeping structures, from the implementations).
GREEDY_BYTES_PER_POINT = 80
DP_BYTES_PER_ROW_ENTRY = 16


@dataclass
class BenchSettings:
    """Shared knobs for one benchmark run."""

    #: Points standing in for the paper's 2M-record partition.
    unit: int = 1 << 13
    #: Centralized algorithms OOM above this many points ("17M" ≈ 8 units).
    centralized_memory_points: int = 1 << 16
    cluster_config: ClusterConfig = field(default_factory=ClusterConfig)
    subtree_leaves: int = 1 << 10
    seed: int = 7
    #: DGreedy error-bucket width (e_b); benches use 1e-4 of the value range.
    bucket_width: float = 0.1

    def memory_model(self) -> MemoryModel:
        return MemoryModel(self.centralized_memory_points * GREEDY_BYTES_PER_POINT)

    def cluster(self, **overrides: Any) -> SimulatedCluster:
        config = self.cluster_config.scaled(**overrides) if overrides else self.cluster_config
        return SimulatedCluster(config)

    def label(self, n: int) -> str:
        """Paper-scale label for ``n`` points (unit == "2M")."""
        millions = 2 * n // self.unit
        return f"{millions}M"


@dataclass
class Measurement:
    """One (algorithm, workload) cell of a figure."""

    algorithm: str
    n: int
    seconds: float | None
    error: float | None = None
    shuffle_bytes: int = 0
    jobs: int = 0
    oom: bool = False
    #: Per-stage-label communication roll-up of the run's trace (see
    #: :func:`repro.observe.report.trace_summary`); empty for centralized
    #: algorithms, which run no jobs.  Small enough to live inside
    #: ``BENCH_*.json``.
    trace: dict[str, Any] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)

    def row(self, settings: BenchSettings | None = None) -> dict:
        size = settings.label(self.n) if settings else self.n
        return {
            "size": size,
            "algorithm": self.algorithm,
            "seconds": None if self.oom else self.seconds,
            "error": self.error,
            "note": "OOM" if self.oom else "",
        }


def measure_distributed(
    name: str,
    n: int,
    build: Callable[[SimulatedCluster], Any],
    cluster: SimulatedCluster,
    error_of: Callable[[Any], float] | None = None,
) -> Measurement:
    """Run a distributed algorithm and read its simulated cost."""
    # Imported here: repro.observe renders tables via repro.bench.reporting,
    # so a module-level import would close an import cycle through
    # repro.bench.__init__.
    from repro.observe.report import trace_summary

    cluster.reset()
    result = build(cluster)
    return Measurement(
        algorithm=name,
        n=n,
        seconds=cluster.simulated_seconds,
        error=error_of(result) if error_of else None,
        shuffle_bytes=cluster.log.shuffle_bytes,
        jobs=cluster.log.job_count,
        trace=trace_summary(cluster.log.trace()),
        extra={"result": result},
    )


def measure_centralized(
    name: str,
    n: int,
    build: Callable[[], Any],
    memory: MemoryModel,
    required_bytes: int,
    error_of: Callable[[Any], float] | None = None,
) -> Measurement:
    """Run a centralized algorithm under the single-machine memory model."""
    try:
        memory.charge(required_bytes, name)
    except MemoryBudgetExceeded:
        return Measurement(algorithm=name, n=n, seconds=None, oom=True)
    start = time.perf_counter()
    result = build()
    seconds = time.perf_counter() - start
    return Measurement(
        algorithm=name,
        n=n,
        seconds=seconds,
        error=error_of(result) if error_of else None,
        extra={"result": result},
    )
