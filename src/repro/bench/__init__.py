"""Benchmark harness: experiment settings, measurements, and reporting."""

from repro.bench.harness import (
    DP_BYTES_PER_ROW_ENTRY,
    GREEDY_BYTES_PER_POINT,
    BenchSettings,
    Measurement,
    measure_centralized,
    measure_distributed,
)
from repro.bench.reporting import format_table, format_value, print_table

__all__ = [
    "BenchSettings",
    "DP_BYTES_PER_ROW_ENTRY",
    "GREEDY_BYTES_PER_POINT",
    "Measurement",
    "format_table",
    "format_value",
    "measure_centralized",
    "measure_distributed",
    "print_table",
]
