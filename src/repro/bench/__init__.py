"""Benchmark harness: experiment settings, measurements, and reporting."""

from repro.bench.harness import (
    DP_BYTES_PER_ROW_ENTRY,
    GREEDY_BYTES_PER_POINT,
    BenchSettings,
    Measurement,
    measure_centralized,
    measure_distributed,
)
from repro.bench.dp_kernel import (
    DP_KERNEL_WIDTHS,
    bench_combine_widths,
    bench_leaf_batch,
    combine_inputs,
)
from repro.bench.kernel import KERNEL_METRICS, bench_kernel_metric, kernel_inputs
from repro.bench.reporting import format_table, format_value, print_table

__all__ = [
    "BenchSettings",
    "DP_BYTES_PER_ROW_ENTRY",
    "DP_KERNEL_WIDTHS",
    "GREEDY_BYTES_PER_POINT",
    "KERNEL_METRICS",
    "bench_combine_widths",
    "bench_leaf_batch",
    "combine_inputs",
    "Measurement",
    "bench_kernel_metric",
    "format_table",
    "format_value",
    "kernel_inputs",
    "measure_centralized",
    "measure_distributed",
    "print_table",
]
