"""External-shuffle benchmark: columnar codec throughput + spill overhead.

Two measurements back the out-of-core path's perf story:

* **Codec throughput** — :func:`repro.mapreduce.serde.encode_batch` /
  :func:`decode_batch` against the per-record pickle framing a naive
  spill format would use, over two batch shapes that bracket real
  shuffle traffic: ``numeric`` (homogeneous ``(int, float)`` records,
  the shape CON/SendCoef and the DP jobs shuffle — the codec's best
  case) and ``mixed`` (DGreedyAbs's interleaved ``hist``/``final``
  tuple records — its worst case, where per-record python overhead
  can't be fully columnarized; the codec trades a modest CPU cost for
  a substantially smaller spill file, which is what matters once runs
  hit disk).  The speedup ratio, not absolute seconds, is what the
  regression guard pins — ratios on the same machine transfer across
  hosts.
* **End-to-end spill overhead** — a DGreedyAbs build under the external
  shuffle with a buffer small enough to force multi-run merges, divided
  by the same build on the in-memory shuffle.  This is the price of
  bounding driver memory; the guard keeps it from silently exploding.

Results land in ``BENCH_shuffle.json`` at the repo root (written by
``benchmarks/bench_shuffle.py``) — the baseline future PRs diff against.
Timing discipline matches :mod:`repro.bench.dp_kernel`: contenders are
interleaved within each repetition and the minimum over repetitions kept.
"""

from __future__ import annotations

import pickle
import time
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.core.dgreedy import d_greedy_abs
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.runtime import LocalRuntime
from repro.mapreduce.serde import decode_batch, encode_batch
from repro.mapreduce.shuffle import ShuffleConfig

__all__ = [
    "SHUFFLE_BATCH_SIZES",
    "bench_codec_batches",
    "bench_external_overhead",
    "numeric_shaped_records",
    "shuffle_shaped_records",
]

#: Default batch-size grid, in records.  The small end is a single spill
#: of one partition buffer; the large end is a full run file at scale.
SHUFFLE_BATCH_SIZES = [1 << 10, 1 << 13, 1 << 16]


def shuffle_shaped_records(count: int, seed: int = 7) -> list[tuple[Any, Any]]:
    """A reproducible batch shaped like DGreedyAbs's job-1 shuffle traffic.

    Interleaves 4-tuple ``hist`` keys (with ``(count, cut_error)``
    values) and 3-tuple ``final`` keys (float values) in a ~15:1 ratio,
    matching one histogram record per removal plus one final record per
    (candidate, sub-tree).
    """
    rng = np.random.default_rng(seed)
    records: list[tuple[Any, Any]] = []
    for index in range(count):
        candidate = int(rng.integers(0, 16))
        subtree = int(rng.integers(0, 64))
        if index % 16 == 15:
            records.append((("final", candidate, subtree), float(rng.uniform(0, 500))))
        else:
            records.append(
                (
                    ("hist", candidate, subtree, float(rng.uniform(0, 500))),
                    (int(rng.integers(1, 30)), float(rng.uniform(0, 500))),
                )
            )
    return records


def numeric_shaped_records(count: int, seed: int = 7) -> list[tuple[Any, Any]]:
    """A homogeneous ``(int key, float value)`` batch.

    The shape CON/SendCoef and the DP jobs shuffle (coefficient index to
    value); both columns encode as single typed arrays, so this is the
    codec's best case.
    """
    rng = np.random.default_rng(seed)
    values = rng.uniform(0, 500, size=count)
    return [(int(index), float(value)) for index, value in enumerate(values)]


def _pickle_per_record(records: list[tuple[Any, Any]]) -> list[bytes]:
    return [pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL) for record in records]


def _unpickle_per_record(blobs: list[bytes]) -> list[tuple[Any, Any]]:
    return [pickle.loads(blob) for blob in blobs]


_SHAPES = {
    "numeric": numeric_shaped_records,
    "mixed": shuffle_shaped_records,
}


def bench_codec_batches(
    sizes: Sequence[int] | None = None, reps: int = 3, seed: int = 7
) -> list[dict[str, Any]]:
    """Benchmark the columnar codec vs per-record pickle.

    Returns one dict per ``(shape, size)`` pair, covering the codec's
    best case (``numeric``) and worst case (``mixed``).
    """
    if sizes is None:
        sizes = SHUFFLE_BATCH_SIZES
    rows = []
    for shape, make_records in _SHAPES.items():
        for size in sizes:
            records = make_records(size, seed)
            columnar_seconds = pickle_seconds = float("inf")
            for _ in range(reps):
                start = time.perf_counter()
                decoded = decode_batch(encode_batch(records))
                columnar_seconds = min(columnar_seconds, time.perf_counter() - start)
                start = time.perf_counter()
                reference = _unpickle_per_record(_pickle_per_record(records))
                pickle_seconds = min(pickle_seconds, time.perf_counter() - start)
            assert decoded == records and reference == records  # keep both honest
            encoded_bytes = len(encode_batch(records))
            pickled_bytes = sum(len(blob) for blob in _pickle_per_record(records))
            rows.append(
                {
                    "shape": shape,
                    "records": size,
                    "columnar_seconds": columnar_seconds,
                    "pickle_seconds": pickle_seconds,
                    "speedup": pickle_seconds / columnar_seconds,
                    "columnar_bytes": encoded_bytes,
                    "pickle_bytes": pickled_bytes,
                    "bytes_ratio": pickled_bytes / encoded_bytes,
                }
            )
    return rows


def bench_external_overhead(
    n: int = 1 << 15, reps: int = 3, seed: int = 7
) -> dict[str, Any]:
    """End-to-end DGreedyAbs wall-clock: external (forced spills) vs memory.

    The buffer is 1/16 of the input's on-disk size, the acceptance
    configuration's cap, so every reducer merges multiple runs.
    """
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 500, size=n).astype(np.float64)
    budget = max(16, n // 256)
    base_leaves = max(64, n // 64)
    external = ShuffleConfig(mode="external", buffer_bytes=(n * 8) // 16)

    def build(shuffle: ShuffleConfig | None) -> tuple[float, SimulatedCluster]:
        cluster = SimulatedCluster(runtime=LocalRuntime(shuffle=shuffle))
        start = time.perf_counter()
        d_greedy_abs(data, budget, cluster, base_leaves=base_leaves)
        return time.perf_counter() - start, cluster

    memory_seconds = external_seconds = float("inf")
    spills = 0
    for _ in range(reps):
        seconds, _ = build(None)
        memory_seconds = min(memory_seconds, seconds)
        seconds, cluster = build(external)
        external_seconds = min(external_seconds, seconds)
        spills = sum(job.shuffle_stats.get("spills", 0) for job in cluster.log.jobs)
    return {
        "n": n,
        "budget": budget,
        "base_leaves": base_leaves,
        "buffer_bytes": (n * 8) // 16,
        "spills": spills,
        "memory_seconds": memory_seconds,
        "external_seconds": external_seconds,
        "overhead": external_seconds / memory_seconds,
    }
