"""Analytical communication bounds, checked against measured traces.

The paper's scalability argument is analytical: each stage of the layered
DP ships ``O(N * max|M[j]| / 2^h)`` bytes (Eq. 6), and DGreedyAbs's
error-bucketed histograms bound what a base sub-tree may emit.  This
module turns both arguments into *checkable predictions*: from the run
parameters alone (no execution) it computes a per-stage byte budget under
the serde model, and :func:`check_dmhaarspace_trace` /
:func:`check_dgreedy_trace` assert a measured trace
(:meth:`repro.mapreduce.cluster.RunLog.trace`) stays within it.

Eq. 6 derivation, concretized to our serde model
------------------------------------------------

A layer of height ``h`` over an ``N``-point tree has ``N / 2^h``
sub-trees at the bottom (fewer above — Eq. 4), and each bottom-up layer
job emits exactly **one record per sub-tree**: ``(parent, (root, M-row,
mean))``, i.e. a fixed per-record overhead plus one serialized
:class:`~repro.algos.minhaarspace.MRow`.  A row over incoming values
``v`` with ``|v - data| <= epsilon`` on a ``delta`` grid spans at most
``floor(2*epsilon/delta) + 2`` grid points, and
:func:`~repro.algos.minhaarspace.combine_rows` only ever *halves and
intersects* domains, so no row in the tree is ever wider than that leaf
worst case.  Hence per layer::

    bytes(layer) <= |subtrees(layer)| * (OVERHEAD + MRow(W_max) bytes)
    W_max = floor(2*epsilon/delta') + 2,  delta' = effective_delta(...)

which is exactly Eq. 6's ``O(N * max|M[j]| / 2^h)`` with the constants
filled in.  The checker recomputes ``delta'`` the same way
:func:`~repro.core.dp_framework.dm_haar_space` does, so the prediction
uses the grid the run actually used.

DGreedyAbs histogram bound
--------------------------

Job 1 emits, per (candidate, base sub-tree), at most one bucket record
per greedy removal plus one final-error record.  A base sub-tree of
``s`` leaves has at most ``s - 1`` removable detail coefficients (the
average slot belongs to the root sub-tree), and there are at most
``min(R, B) + 1`` candidates over ``R = N / s`` sub-trees, so::

    bytes(job 1) <= (min(R, B) + 1) * R * ((s - 1) * hist_rec + final_rec)

Record sizes are taken from :func:`repro.mapreduce.serde.record_size` on
template records, so the bound tracks the serde model by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.algos.minhaarspace import MRow, approx_params
from repro.core.partitioning import LayerPlan, parse_layer_plan, root_base_partition
from repro.exceptions import InvalidInputError
from repro.mapreduce.serde import record_size
from repro.mapreduce.tracing import job_emitted_bytes

__all__ = [
    "BoundCheck",
    "LayerBound",
    "check_dgreedy_trace",
    "check_dmhaarspace_trace",
    "dgreedy_histogram_bound",
    "dmhaarspace_layer_bounds",
    "max_row_entries",
]

#: Serde bytes of one bottom-up layer record beyond its M-row payload:
#: key (parent int) + value-tuple framing + sub-tree root int + mean float.
_LAYER_RECORD_OVERHEAD = record_size(0, (0, 0.0))


def max_row_entries(epsilon: float, delta: float, n: int, rho: float = 0.0) -> int:
    """Worst-case entry count of any M-row in an ``(epsilon, delta)`` run.

    A leaf row spans the grid points within ``epsilon`` of its value —
    at most ``floor(2*epsilon/delta') + 2`` of them (both endpoints can
    land on the grid) — and combining only shrinks relative width, so
    this caps every row of the tree.  The parameters are resolved through
    :func:`~repro.algos.minhaarspace.approx_params` exactly as the DP
    resolves them: at ``rho = 0`` that is the ``effective_delta`` clamp,
    and in the approximate regime (``rho > 0``) the bound uses the
    inflated ``epsilon_dp`` over the *coarsened* ``delta'`` — Eq. 6 with
    no slack factor, which is what makes the regime's communication
    savings a checkable prediction rather than a hope.
    """
    epsilon_dp, clamped = approx_params(epsilon, delta, n, rho)
    return int(math.floor(2.0 * epsilon_dp / clamped)) + 2


@dataclass(frozen=True)
class LayerBound:
    """The Eq. 6 prediction for one bottom-up layer job."""

    index: int
    job_name: str
    subtrees: int
    #: Smallest possible emission: one record per sub-tree, 1-entry rows.
    bytes_floor: int
    #: Eq. 6 budget: one record per sub-tree, worst-case-width rows.
    bytes_bound: int


def dmhaarspace_layer_bounds(
    n: int,
    subtree_leaves: int,
    epsilon: float,
    delta: float,
    rho: float = 0.0,
    plan: LayerPlan | None = None,
) -> list[LayerBound]:
    """Eq. 6 per-layer byte budgets for a :func:`dm_haar_space` run.

    Mirrors :class:`~repro.core.dp_framework.LayeredDPDriver`: the same
    layer decomposition and the same effective (or, at ``rho > 0``,
    coarsened) ``delta``, so bound ``i`` lines up with the traced job
    ``dp-layer-i``.  ``plan`` budgets a variable-height
    :class:`~repro.core.partitioning.LayerPlan` (Eq. 6 generalizes
    band-by-band: a band whose roots sit at level ``u`` ships ``2^u``
    records); without one, the classic ``subtree_leaves`` decomposition
    is assumed.  A driver-resident top band launches no job and ships
    nothing, so it produces no bound row.
    """
    if n < 2:
        raise InvalidInputError("Eq. 6 bounds need at least a 2-point tree")
    if plan is None:
        height = min(subtree_leaves.bit_length() - 1, n.bit_length() - 1)
        plan = LayerPlan.uniform(n, height)
    elif plan.n != n:
        raise InvalidInputError(f"layer plan is for N={plan.n}, not N={n}")
    entries = max_row_entries(epsilon, delta, n, rho)
    per_record_bound = _LAYER_RECORD_OVERHEAD + MRow.sized(entries)
    per_record_floor = _LAYER_RECORD_OVERHEAD + MRow.sized(1)
    bounds = []
    for layer in plan.layers():
        if not plan.is_distributed(layer.index):
            continue
        count = len(layer.subtrees)
        bounds.append(
            LayerBound(
                index=layer.index,
                job_name=f"dp-layer-{layer.index}",
                subtrees=count,
                bytes_floor=count * per_record_floor,
                bytes_bound=count * per_record_bound,
            )
        )
    return bounds


def dgreedy_histogram_bound(n: int, base_leaves: int, budget: int) -> int:
    """Histogram-compression byte budget for DGreedyAbs's job 1.

    See the module docstring for the derivation; record sizes come from
    the serde model applied to template records, so the bound and the
    measurement can never drift apart silently.
    """
    r, _ = root_base_partition(n, base_leaves)
    candidates = min(r, budget) + 1
    removals_per_subtree = base_leaves - 1
    hist_record = record_size(("hist", 0, 0, 0.0), (0, 0.0))
    final_record = record_size(("final", 0, 0), 0.0)
    return candidates * r * (removals_per_subtree * hist_record + final_record)


@dataclass(frozen=True)
class BoundCheck:
    """One stage's measured bytes against its analytical budget."""

    job_name: str
    stage_label: str
    measured_bytes: int
    bound_bytes: int

    @property
    def ok(self) -> bool:
        return self.measured_bytes <= self.bound_bytes

    @property
    def utilization(self) -> float:
        """Measured bytes as a fraction of the budget (diagnostic)."""
        if self.bound_bytes == 0:
            return math.inf if self.measured_bytes else 0.0
        return self.measured_bytes / self.bound_bytes


def _jobs_by_label(trace: dict[str, Any], stage_label: str) -> list[dict[str, Any]]:
    return [
        job for job in trace.get("jobs", []) if job.get("stage_label") == stage_label
    ]


def check_dmhaarspace_trace(
    trace: dict[str, Any],
    n: int,
    subtree_leaves: int,
    epsilon: float,
    delta: float,
    rho: float = 0.0,
    plan: LayerPlan | None = None,
) -> list[BoundCheck]:
    """Check every traced bottom-up DP layer against its Eq. 6 budget.

    Returns one :class:`BoundCheck` per ``dp.bottom_up`` job in the
    trace.  A binary-search driver runs several bottom-up passes per
    invocation; each pass's layer jobs are checked against the bound for
    their layer index (matched by job name).  Raises when the trace has
    no bottom-up jobs — a silent pass on an empty selection would make
    the assertion meaningless.  Pass the ``rho`` the run was built with:
    coarsened runs are budgeted with the coarsened Eq. 6 parameters, no
    slack.

    The layer decomposition is resolved in precedence order: an explicit
    ``plan`` argument, then the ``layer_plan`` the traced run recorded in
    its ``meta`` document (every DP run records its resolved plan, so
    traces are self-describing), then the classic ``subtree_leaves``
    decomposition.
    """
    if plan is None:
        recorded = trace.get("meta", {}).get("layer_plan")
        if recorded is not None:
            plan = parse_layer_plan(str(recorded), n)
    by_name = {
        bound.job_name: bound
        for bound in dmhaarspace_layer_bounds(
            n, subtree_leaves, epsilon, delta, rho, plan=plan
        )
    }
    jobs = _jobs_by_label(trace, "dp.bottom_up")
    if not jobs:
        raise InvalidInputError("trace contains no dp.bottom_up jobs to check")
    checks = []
    for job in jobs:
        name = str(job.get("name", ""))
        if name not in by_name:
            raise InvalidInputError(
                f"traced job {name!r} matches no layer of an N={n} decomposition"
            )
        checks.append(
            BoundCheck(
                job_name=name,
                stage_label="dp.bottom_up",
                measured_bytes=job_emitted_bytes(job),
                bound_bytes=by_name[name].bytes_bound,
            )
        )
    return checks


def check_dgreedy_trace(
    trace: dict[str, Any], n: int, base_leaves: int, budget: int
) -> list[BoundCheck]:
    """Check DGreedyAbs's histogram job(s) against the emission budget."""
    jobs = _jobs_by_label(trace, "dgreedy.histograms")
    if not jobs:
        raise InvalidInputError("trace contains no dgreedy.histograms jobs to check")
    bound = dgreedy_histogram_bound(n, base_leaves, budget)
    return [
        BoundCheck(
            job_name=str(job.get("name", "")),
            stage_label="dgreedy.histograms",
            measured_bytes=job_emitted_bytes(job),
            bound_bytes=bound,
        )
        for job in jobs
    ]
