"""Human-readable summaries of trace documents.

Turns the JSON trace (:meth:`repro.mapreduce.cluster.RunLog.trace` or a
:class:`~repro.mapreduce.tracing.Tracer` dump) into per-job / per-stage
tables in the same monospace style the bench harness prints, plus a
compact roll-up dict for embedding into ``BENCH_*.json`` measurements.
"""

from __future__ import annotations

from typing import Any

from repro.bench.reporting import format_table

__all__ = ["stage_rows", "trace_summary", "render_trace"]


def stage_rows(trace: dict[str, Any]) -> list[dict[str, Any]]:
    """Flatten a trace into one row per (job, stage) for tabulation."""
    rows: list[dict[str, Any]] = []
    for job in trace.get("jobs", []):
        for stage in job.get("stages", []):
            rows.append(
                {
                    "job": job.get("name"),
                    "label": job.get("stage_label"),
                    "stage": stage.get("name"),
                    "tasks": len(stage.get("tasks", [])),
                    "records_in": stage.get("records_in"),
                    "records_out": stage.get("records_out"),
                    "bytes_out": stage.get("bytes_out"),
                    "wall_s": stage.get("wall_seconds"),
                    "sim_s": stage.get("simulated_seconds"),
                }
            )
    return rows


def trace_summary(trace: dict[str, Any]) -> dict[str, Any]:
    """Compact roll-up of a trace: totals per stage label.

    This is the piece the bench harness attaches to each measurement —
    small enough to live inside ``BENCH_*.json`` while still splitting
    communication volume by algorithm stage.
    """
    by_label: dict[str, dict[str, Any]] = {}
    for job in trace.get("jobs", []):
        label = str(job.get("stage_label", ""))
        entry = by_label.setdefault(
            label, {"jobs": 0, "shuffle_bytes": 0, "simulated_seconds": 0.0}
        )
        entry["jobs"] += 1
        entry["simulated_seconds"] += float(job.get("simulated_seconds", 0.0))
        for stage in job.get("stages", []):
            if stage.get("name") == "shuffle":
                entry["shuffle_bytes"] += int(stage.get("bytes_out", 0))
    return {
        "schema": trace.get("schema"),
        "jobs": len(trace.get("jobs", [])),
        "driver_seconds": trace.get("driver_seconds"),
        "stage_labels": by_label,
    }


def render_trace(trace: dict[str, Any]) -> str:
    """Render the per-stage table (what ``python -m repro.observe`` prints)."""
    rows = stage_rows(trace)
    header = (
        f"trace schema {trace.get('schema')}: {len(trace.get('jobs', []))} jobs, "
        f"driver {float(trace.get('driver_seconds', 0.0)):.4f}s"
    )
    return header + "\n" + format_table(rows)
