"""CLI: summarize a trace JSON written by ``repro ... --trace out.json``.

Usage::

    python -m repro.observe trace.json [more.json ...]

Prints the per-stage table for each trace document.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.observe.report import render_trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe",
        description="Summarize trace JSON documents written by the CLI's --trace flag.",
    )
    parser.add_argument("traces", nargs="+", type=Path, help="trace JSON file(s)")
    args = parser.parse_args(argv)
    for path in args.traces:
        trace = json.loads(path.read_text())
        print(f"== {path} ==")
        print(render_trace(trace))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
