"""CLI: summarize and bound-check trace JSON from ``repro ... --trace``.

Usage::

    python -m repro.observe trace.json [more.json ...]
    python -m repro.observe trace.json --check-dgreedy N BASE_LEAVES BUDGET
    python -m repro.observe trace.json --check-dp N SUBTREE_LEAVES EPS DELTA

Prints the per-stage table for each trace document.  The ``--check-*``
flags additionally verify the measured shuffle bytes against the
analytical budgets of :mod:`repro.observe.bounds` (Eq. 6 for the DP
layers, the histogram emission bound for DGreedyAbs) and exit non-zero
on any violation — the same predicted-vs-measured gate CI runs on
end-to-end builds, regardless of runtime or shuffle mode.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any

from repro.core.partitioning import parse_layer_plan
from repro.exceptions import ReproError
from repro.observe.bounds import BoundCheck, check_dgreedy_trace, check_dmhaarspace_trace
from repro.observe.report import render_trace


def _render_checks(checks: list[BoundCheck]) -> tuple[str, bool]:
    lines = []
    all_ok = True
    for check in checks:
        status = "OK" if check.ok else "VIOLATED"
        all_ok = all_ok and check.ok
        lines.append(
            f"  [{status}] {check.job_name}: measured {check.measured_bytes} B "
            f"<= bound {check.bound_bytes} B "
            f"(utilization {check.utilization:.3f})"
        )
    return "\n".join(lines), all_ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe",
        description="Summarize trace JSON documents written by the CLI's --trace flag.",
    )
    parser.add_argument("traces", nargs="+", type=Path, help="trace JSON file(s)")
    parser.add_argument(
        "--check-dgreedy",
        nargs=3,
        type=int,
        metavar=("N", "BASE_LEAVES", "BUDGET"),
        help="check dgreedy.histograms jobs against the histogram emission "
        "bound; exit non-zero on violation",
    )
    parser.add_argument(
        "--check-dp",
        nargs=4,
        type=float,
        metavar=("N", "SUBTREE_LEAVES", "EPSILON", "DELTA"),
        help="check dp.bottom_up jobs against their Eq. 6 layer budgets; "
        "exit non-zero on violation",
    )
    parser.add_argument(
        "--rho",
        type=float,
        default=0.0,
        help="coarsening knob the checked run was built with (--dp-rho); "
        "the Eq. 6 budgets then use the coarsened approximate-tier grid",
    )
    parser.add_argument(
        "--plan",
        help="explicit layer plan for --check-dp ('h=K' or 'H1,H2,...' with "
        "optional '@driver'); omitted = the plan the trace recorded in "
        "its meta document, falling back to uniform SUBTREE_LEAVES bands",
    )
    args = parser.parse_args(argv)
    failed = False
    for path in args.traces:
        trace: dict[str, Any] = json.loads(path.read_text())
        print(f"== {path} ==")
        print(render_trace(trace))
        try:
            if args.check_dgreedy is not None:
                n, base_leaves, budget = args.check_dgreedy
                checks = check_dgreedy_trace(trace, n, base_leaves, budget)
                rendered, ok = _render_checks(checks)
                print("dgreedy histogram bound:")
                print(rendered)
                failed = failed or not ok
            if args.check_dp is not None:
                n_f, subtree_leaves_f, epsilon, delta = args.check_dp
                plan = (
                    parse_layer_plan(args.plan, int(n_f))
                    if args.plan is not None
                    else None
                )
                checks = check_dmhaarspace_trace(
                    trace,
                    int(n_f),
                    int(subtree_leaves_f),
                    epsilon,
                    delta,
                    args.rho,
                    plan=plan,
                )
                rendered, ok = _render_checks(checks)
                print("Eq. 6 layer bounds:")
                print(rendered)
                failed = failed or not ok
        except ReproError as error:
            print(f"error: {error}")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
