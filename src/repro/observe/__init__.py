"""Observability: trace reports and analytical communication bounds.

Sits on top of the tracing subsystem
(:mod:`repro.mapreduce.tracing`): :mod:`repro.observe.bounds` turns the
paper's analytical communication arguments (Eq. 6 for the layered DP,
histogram compression for DGreedyAbs) into checkable per-stage byte
budgets, and :mod:`repro.observe.report` renders trace documents as
tables.  ``python -m repro.observe trace.json`` summarizes a trace
written by the CLI's ``--trace`` flag.
"""

from repro.observe.bounds import (
    BoundCheck,
    LayerBound,
    check_dgreedy_trace,
    check_dmhaarspace_trace,
    dgreedy_histogram_bound,
    dmhaarspace_layer_bounds,
    max_row_entries,
)
from repro.observe.report import render_trace, stage_rows, trace_summary

__all__ = [
    "BoundCheck",
    "LayerBound",
    "check_dgreedy_trace",
    "check_dmhaarspace_trace",
    "dgreedy_histogram_bound",
    "dmhaarspace_layer_bounds",
    "max_row_entries",
    "render_trace",
    "stage_rows",
    "trace_summary",
]
