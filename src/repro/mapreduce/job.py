"""Job abstractions for the MapReduce runtime.

A :class:`MapReduceJob` mirrors the Hadoop programming model the paper's
algorithms were written against:

* one **map task** per input split (the paper's mappers process whole
  sub-trees, so task-level granularity is the natural unit here);
* a **shuffle** that partitions map output by key, then sorts each
  reducer's partition by ``sort_key``;
* one **reduce task** per partition, seeing keys in sorted order.

Jobs that need Hadoop's "whole sorted partition" pattern (the paper's
``combineResults`` walks all key-values of its partition in error order)
override :meth:`MapReduceJob.reduce_partition` instead of
:meth:`MapReduceJob.reduce`.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable, Iterator
from typing import Any, ClassVar

from repro.mapreduce.hdfs import InputSplit

__all__ = ["MapReduceJob", "is_process_safe", "stable_partition"]


def stable_partition(key: Any, num_reducers: int) -> int:
    """Deterministic default partitioner (CRC32 of the key's repr).

    Python's built-in ``hash`` is randomized for strings across processes;
    a CRC of the canonical repr keeps job placement reproducible.
    """
    return zlib.crc32(repr(key).encode("utf-8")) % num_reducers


class MapReduceJob:
    """Base class for jobs; subclasses override ``map`` and ``reduce``."""

    #: Human-readable job name (shows up in job logs and reports).
    name: str = "job"

    #: Number of reduce tasks. ``0`` means a map-only job.
    num_reducers: int = 1

    #: Sort the keys of each reduce partition in descending order when True.
    sort_descending: bool = False

    #: Whether the job may be shipped to a worker process: picklable at
    #: module level, with no driver-side shared state read or written by
    #: its task methods.  Jobs that do share driver state (the layered DP
    #: jobs) declare ``process_safe = False`` and run in-process.  The
    #: process runtime and the PS001/PS002 lint rules read the same flag.
    process_safe: ClassVar[bool] = True

    #: Algorithm-stage label for traces, e.g. ``"dgreedy.histograms"`` —
    #: the stable identity of the *role* a job plays in its algorithm,
    #: where :attr:`name` may carry per-instance detail (layer index,
    #: round number).  Every concrete job must declare one (meta-tested);
    #: the bound checkers in :mod:`repro.observe.bounds` select stages by
    #: this label.
    stage_label: ClassVar[str] = ""

    def map(self, split: InputSplit) -> Iterable[tuple[Any, Any]]:
        """Process one input split; yield ``(key, value)`` pairs."""
        raise NotImplementedError

    def combine(self, key: Any, values: list[Any]) -> Iterable[tuple[Any, Any]]:
        """Optional map-side combiner; default is the identity."""
        for value in values:
            yield key, value

    #: Set True when :meth:`combine` is overridden, to enable the map-side pass.
    use_combiner: bool = False

    def partition(self, key: Any, num_reducers: int) -> int:
        """Route ``key`` to a reducer; default is a stable hash."""
        return stable_partition(key, num_reducers)

    def sort_key(self, key: Any) -> Any:
        """Key used for the shuffle sort; default sorts on the key itself."""
        return key

    def reduce(self, key: Any, values: list[Any]) -> Iterable[tuple[Any, Any]]:
        """Process one key group; yield output ``(key, value)`` pairs."""
        raise NotImplementedError

    def reduce_partition(self, records: list[tuple[Any, Any]]) -> Iterator[tuple[Any, Any]]:
        """Process a whole sorted reduce partition.

        ``records`` is the list of ``(key, value)`` pairs of this partition
        sorted by ``sort_key``.  The default groups consecutive equal keys
        and delegates to :meth:`reduce`.
        """
        index = 0
        total = len(records)
        while index < total:
            key = records[index][0]
            values: list[Any] = []
            while index < total and records[index][0] == key:
                values.append(records[index][1])
                index += 1
            yield from self.reduce(key, values)


def is_process_safe(job: MapReduceJob) -> bool:
    """Whether ``job`` may execute on a worker process.

    The single source of truth shared by the process runtime's dispatch
    and the meta-tests: reads :attr:`MapReduceJob.process_safe`, which
    every job inherits as ``True`` and driver-state-sharing jobs override.
    """
    return bool(job.process_safe)
