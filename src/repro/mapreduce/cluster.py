"""The simulated Hadoop cluster: slots, startup overheads, and bandwidth.

The paper's platform is a 9-machine Hadoop 2.6 cluster: 8 slaves with 5 map
slots and 2 reduce slots each (40 map / 16 reduce slots total).  We keep the
*placement semantics* of that platform and replace its hardware with a cost
model:

* every task occupies one slot for its **measured** runtime plus a fixed
  task startup overhead (Hadoop container launch);
* each job pays a fixed job startup overhead (job submission, scheduling);
* the shuffle transfers its accounted bytes at a fixed bandwidth.

The simulated wall-clock of a job is then::

    job_startup + makespan(map tasks, map_slots)
                + shuffle_bytes / bandwidth
                + makespan(reduce tasks, reduce_slots)

``makespan`` places tasks one by one on the earliest-available slot (FIFO,
exactly Hadoop's default behaviour for a single job).  This reproduces the
paper's structural results: flat runtimes while the cluster has spare slots,
linear growth once tasks serialize (Fig. 5c/5d), overhead-dominated small
partitions (Fig. 5a), and halved capacity ⇒ doubled runtime.
"""

from __future__ import annotations

import heapq
import time
from contextlib import contextmanager
from collections.abc import Iterator
from dataclasses import dataclass, field, replace
from typing import Any

from repro.exceptions import MemoryBudgetExceeded
from repro.mapreduce.hdfs import InputSplit
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.parallel import ThreadPoolRuntime
from repro.mapreduce.process import ProcessPoolRuntime
from repro.mapreduce.runtime import JobResult, LocalRuntime
from repro.mapreduce.shuffle import ShuffleConfig
from repro.mapreduce.tracing import TRACE_SCHEMA_VERSION

__all__ = [
    "ClusterConfig",
    "RUNTIMES",
    "SimulatedCluster",
    "MemoryModel",
    "make_runtime",
    "makespan",
    "price_log",
]

#: Named runtimes selectable from the CLI / experiment configs.  See
#: docs/ALGORITHMS.md ("Choosing a runtime") for when each wins.
RUNTIMES: dict[str, type[LocalRuntime]] = {
    "local": LocalRuntime,
    "threads": ThreadPoolRuntime,
    "process": ProcessPoolRuntime,
}


def make_runtime(
    name: str, shuffle: ShuffleConfig | str | None = None
) -> LocalRuntime:
    """Instantiate a runtime by registry name (default configuration).

    ``shuffle`` selects the shuffle discipline (a mode name or a full
    :class:`~repro.mapreduce.shuffle.ShuffleConfig`); None keeps the
    in-memory default.
    """
    try:
        runtime_cls = RUNTIMES[name]
    except KeyError:
        options = ", ".join(sorted(RUNTIMES))
        raise ValueError(f"unknown runtime {name!r} (choose from: {options})") from None
    return runtime_cls(shuffle=shuffle)


def makespan(task_seconds: list[float], slots: int) -> float:
    """FIFO makespan of ``task_seconds`` on ``slots`` identical slots."""
    if not task_seconds:
        return 0.0
    if slots <= 0:
        raise ValueError("slot count must be positive")
    finish_times = [0.0] * min(slots, len(task_seconds))
    heapq.heapify(finish_times)
    for seconds in task_seconds:
        earliest = heapq.heappop(finish_times)
        heapq.heappush(finish_times, earliest + seconds)
    return max(finish_times)


@dataclass
class ClusterConfig:
    """Knobs of the simulated platform (defaults mirror the paper's cluster).

    Startup overheads are expressed in the same unit as measured task times.
    Our scaled-down tasks run for milliseconds where Hadoop's ran for tens
    of seconds, so the defaults keep Hadoop's *ratio* of startup overhead to
    typical task time rather than its absolute seconds.
    """

    map_slots: int = 40
    reduce_slots: int = 16
    task_startup_seconds: float = 0.004
    job_startup_seconds: float = 0.02
    shuffle_bytes_per_second: float = 64e6

    def scaled(self, **overrides: Any) -> "ClusterConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **overrides)


@dataclass
class RunLog:
    """Accumulated history of one algorithm invocation on the cluster."""

    jobs: list[JobResult] = field(default_factory=list)
    driver_seconds: float = 0.0

    @property
    def simulated_seconds(self) -> float:
        return self.driver_seconds + sum(job.simulated_seconds for job in self.jobs)

    @property
    def shuffle_bytes(self) -> int:
        return sum(job.shuffle_bytes for job in self.jobs)

    @property
    def job_count(self) -> int:
        return len(self.jobs)

    def as_dict(self) -> dict[str, Any]:
        return {
            "simulated_seconds": self.simulated_seconds,
            "driver_seconds": self.driver_seconds,
            "shuffle_bytes": self.shuffle_bytes,
            "jobs": self.job_count,
        }

    def trace(self) -> dict[str, Any]:
        """The run's trace document (``schema`` versioned, JSON-ready).

        Assembled from the ``JobResult.trace`` spans the runtime attached
        to every executed job — the same document a
        :class:`~repro.mapreduce.tracing.Tracer` wired into the runtime
        would produce, with the cluster's priced simulated times included.
        Jobs without a span (hand-constructed results) are skipped.
        """
        spans = (job.trace for job in self.jobs)
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "driver_seconds": self.driver_seconds,
            "jobs": [span.to_dict() for span in spans if span is not None],
        }


class SimulatedCluster:
    """Runs jobs through :class:`LocalRuntime` and prices their placement."""

    def __init__(
        self,
        config: ClusterConfig | None = None,
        runtime: LocalRuntime | str | None = None,
    ) -> None:
        self.config = config or ClusterConfig()
        if isinstance(runtime, str):
            runtime = make_runtime(runtime)
        self.runtime = runtime or LocalRuntime()
        self.log = RunLog()

    def reset(self) -> None:
        """Start a fresh run log (call between algorithm invocations)."""
        self.log = RunLog()

    def job_simulated_seconds(self, result: JobResult) -> float:
        """Price one executed job under the cluster's cost model."""
        cfg = self.config
        map_times = [t + cfg.task_startup_seconds for t in result.map_task_seconds]
        reduce_times = [t + cfg.task_startup_seconds for t in result.reduce_task_seconds]
        shuffle_seconds = result.shuffle_bytes / cfg.shuffle_bytes_per_second
        return (
            cfg.job_startup_seconds
            + makespan(map_times, cfg.map_slots)
            + shuffle_seconds
            + makespan(reduce_times, cfg.reduce_slots)
        )

    def run_job(self, job: MapReduceJob, splits: list[InputSplit]) -> JobResult:
        """Execute ``job`` and append it (with simulated time) to the log."""
        result = self.runtime.run(job, splits)
        result.simulated_seconds = self.job_simulated_seconds(result)
        self._price_trace(result)
        self.log.jobs.append(result)
        return result

    def _price_trace(self, result: JobResult) -> None:
        """Write the cost model's per-stage prices into the job's span.

        The span's measured fields (wall seconds, bytes) come from the
        runtime; the *simulated* seconds are a property of this cluster's
        configuration, so they are filled in at pricing time.  The combine
        stage is free — combining runs inside the map tasks, whose time it
        is already part of.
        """
        span = result.trace
        if span is None:
            return
        cfg = self.config
        span.simulated_seconds = result.simulated_seconds
        prices = {
            "map": makespan(
                [t + cfg.task_startup_seconds for t in result.map_task_seconds],
                cfg.map_slots,
            ),
            "shuffle": result.shuffle_bytes / cfg.shuffle_bytes_per_second,
            "reduce": makespan(
                [t + cfg.task_startup_seconds for t in result.reduce_task_seconds],
                cfg.reduce_slots,
            ),
        }
        for stage in span.stages:
            stage.simulated_seconds = prices.get(stage.name, 0.0)

    @contextmanager
    def driver(self) -> Iterator[None]:
        """Time a block of centralized driver-side work.

        Driver work runs on the master node and is charged at face value
        (no slot contention).  The paper's DGreedyAbs runs GreedyAbs on the
        root sub-tree this way.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.log.driver_seconds += time.perf_counter() - start

    @property
    def simulated_seconds(self) -> float:
        """Simulated wall-clock of everything logged since the last reset."""
        return self.log.simulated_seconds


def price_log(log: RunLog, config: ClusterConfig) -> float:
    """Re-price a recorded run under a different cluster configuration.

    The cost model is a pure function of the measured task times and the
    configuration, so the *same* workload can be placed on clusters of
    different capacities without re-executing — the noise-free way to
    produce "vs number of parallel tasks" sweeps (Figures 5c/5d).
    """
    pricer = SimulatedCluster(config)
    return log.driver_seconds + sum(
        pricer.job_simulated_seconds(job) for job in log.jobs
    )


class MemoryModel:
    """Per-machine memory constraint for *centralized* algorithms.

    The paper reports that GreedyAbs and IndirectHaar could not run past
    17M points within 8 GB.  Benchmarks use this model to reproduce those
    "did not run" cells: an algorithm declares its estimated working set
    and the model raises :class:`MemoryBudgetExceeded` when it doesn't fit.
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes <= 0:
            raise ValueError("memory budget must be positive")
        self.budget_bytes = int(budget_bytes)

    def charge(self, required_bytes: int, algorithm: str = "") -> None:
        """Raise :class:`MemoryBudgetExceeded` if the request does not fit."""
        if required_bytes > self.budget_bytes:
            raise MemoryBudgetExceeded(required_bytes, self.budget_bytes, algorithm)

    def fits(self, required_bytes: int) -> bool:
        """Return True when ``required_bytes`` fits in the budget."""
        return required_bytes <= self.budget_bytes
