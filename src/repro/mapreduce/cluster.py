"""The simulated Hadoop cluster: slots, startup overheads, and bandwidth.

The paper's platform is a 9-machine Hadoop 2.6 cluster: 8 slaves with 5 map
slots and 2 reduce slots each (40 map / 16 reduce slots total).  We keep the
*placement semantics* of that platform and replace its hardware with a cost
model:

* every task occupies one slot for its **measured** runtime plus a fixed
  task startup overhead (Hadoop container launch);
* each job pays a fixed job startup overhead (job submission, scheduling);
* the shuffle transfers its accounted bytes at a fixed bandwidth.

The simulated wall-clock of a job is then::

    job_startup + makespan(map tasks, map_slots)
                + shuffle_bytes / bandwidth
                + makespan(reduce tasks, reduce_slots)

``makespan`` places tasks one by one on the earliest-available slot (FIFO,
exactly Hadoop's default behaviour for a single job).  This reproduces the
paper's structural results: flat runtimes while the cluster has spare slots,
linear growth once tasks serialize (Fig. 5c/5d), overhead-dominated small
partitions (Fig. 5a), and halved capacity ⇒ doubled runtime.

``ClusterConfig(speculation=True)`` swaps in :func:`speculative_makespan`:
Hadoop's straggler policy, where a task running well past the completed
quantile gets a backup attempt on an otherwise-idle slot and the first
finisher wins.  Backups exist only in this pricing layer — results are
bit-identical — and surface in the trace as ``speculative`` attempt
spans plus ``speculation.*`` job counters.
"""

from __future__ import annotations

import heapq
import time
from contextlib import contextmanager
from collections.abc import Iterator
from dataclasses import dataclass, field, replace
from typing import Any

from repro.exceptions import MemoryBudgetExceeded
from repro.mapreduce.hdfs import InputSplit
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.parallel import ThreadPoolRuntime
from repro.mapreduce.process import ProcessPoolRuntime
from repro.mapreduce.runtime import JobResult, LocalRuntime
from repro.mapreduce.shuffle import ShuffleConfig
from repro.mapreduce.tracing import TRACE_SCHEMA_VERSION, AttemptSpan, StageSpan

__all__ = [
    "ClusterConfig",
    "RUNTIMES",
    "SimulatedCluster",
    "MemoryModel",
    "BackupAttempt",
    "SpeculativeSchedule",
    "make_runtime",
    "makespan",
    "speculative_makespan",
    "price_log",
]

#: Named runtimes selectable from the CLI / experiment configs.  See
#: docs/ALGORITHMS.md ("Choosing a runtime") for when each wins.
RUNTIMES: dict[str, type[LocalRuntime]] = {
    "local": LocalRuntime,
    "threads": ThreadPoolRuntime,
    "process": ProcessPoolRuntime,
}


def make_runtime(
    name: str, shuffle: ShuffleConfig | str | None = None
) -> LocalRuntime:
    """Instantiate a runtime by registry name (default configuration).

    ``shuffle`` selects the shuffle discipline (a mode name or a full
    :class:`~repro.mapreduce.shuffle.ShuffleConfig`); None keeps the
    in-memory default.
    """
    try:
        runtime_cls = RUNTIMES[name]
    except KeyError:
        options = ", ".join(sorted(RUNTIMES))
        raise ValueError(f"unknown runtime {name!r} (choose from: {options})") from None
    return runtime_cls(shuffle=shuffle)


def makespan(task_seconds: list[float], slots: int) -> float:
    """FIFO makespan of ``task_seconds`` on ``slots`` identical slots."""
    if not task_seconds:
        return 0.0
    if slots <= 0:
        raise ValueError("slot count must be positive")
    finish_times = [0.0] * min(slots, len(task_seconds))
    heapq.heapify(finish_times)
    for seconds in task_seconds:
        earliest = heapq.heappop(finish_times)
        heapq.heappush(finish_times, earliest + seconds)
    return max(finish_times)


@dataclass
class BackupAttempt:
    """One speculative backup launched by :func:`speculative_makespan`.

    ``occupied_seconds`` is how long the backup held its slot: its full
    duration when it won, or the time until its primary finished (the
    cancel point) when it lost.  ``primary_occupied_seconds`` mirrors the
    primary's slot occupancy up to *its* cancel point when the backup won.
    """

    task_index: int
    start_seconds: float
    occupied_seconds: float = 0.0
    won: bool = False
    primary_occupied_seconds: float = 0.0


@dataclass
class SpeculativeSchedule:
    """Result of one speculative stage placement."""

    seconds: float
    backups: list[BackupAttempt] = field(default_factory=list)


def speculative_makespan(
    tasks: list[tuple[float, float]],
    slots: int,
    quantile: float = 0.75,
    slowdown: float = 1.5,
    min_completed: int = 3,
) -> SpeculativeSchedule:
    """Event-driven FIFO placement with Hadoop-style straggler backups.

    ``tasks`` holds ``(total_seconds, backup_seconds)`` per task:
    ``total_seconds`` is the primary attempt chain's slot occupancy
    (failed attempts included) and ``backup_seconds`` what a fresh
    re-execution costs (the last clean attempt).  A backup launches only
    when the pending queue is empty and a slot is idle — speculation
    never delays primary work, exactly Hadoop's policy — and only for a
    task that has run longer than ``slowdown`` times the ``quantile`` of
    completed-attempt durations, with at least ``min_completed`` tasks
    finished.  First finisher wins; the loser is canceled at that moment
    and charged for the slot it held.  Without eligible stragglers the
    schedule is identical to :func:`makespan` over the totals.
    """
    if not tasks:
        return SpeculativeSchedule(0.0)
    if slots <= 0:
        raise ValueError("slot count must be positive")
    count = len(tasks)
    free = slots
    next_pending = 0
    # attempt id -> [task_index, is_backup, start, alive]
    attempts: list[list[Any]] = []
    events: list[tuple[float, int, int]] = []
    primary_of: list[int | None] = [None] * count
    backup_of: list[int | None] = [None] * count
    running: list[bool] = [False] * count
    completed: list[float] = []
    records: dict[int, BackupAttempt] = {}
    seq = 0

    def launch(task_index: int, is_backup: bool, now: float) -> None:
        nonlocal free, seq
        duration = tasks[task_index][1] if is_backup else tasks[task_index][0]
        attempt_id = len(attempts)
        attempts.append([task_index, is_backup, now, True])
        heapq.heappush(events, (now + duration, seq, attempt_id))
        seq += 1
        free -= 1
        if is_backup:
            backup_of[task_index] = attempt_id
            records[task_index] = BackupAttempt(task_index, now)
        else:
            primary_of[task_index] = attempt_id
            running[task_index] = True

    timer_pending = False

    def threshold() -> float | None:
        if len(completed) < max(1, min_completed):
            return None
        ordered = sorted(completed)
        rank = min(len(ordered) - 1, int(quantile * len(ordered)))
        return slowdown * ordered[rank]

    def candidates(cut: float) -> list[tuple[float, int]]:
        """Running primaries without a backup: ``(eligible_at, task)``."""
        out: list[tuple[float, int]] = []
        for task_index in range(count):
            if not running[task_index] or backup_of[task_index] is not None:
                continue
            primary_id = primary_of[task_index]
            if primary_id is None:
                continue
            out.append((attempts[primary_id][2] + cut, task_index))
        return out

    def speculate(now: float) -> None:
        if next_pending < count:
            return
        cut = threshold()
        if cut is None:
            return
        while free > 0:
            eligible = [
                (at, task_index)
                for at, task_index in candidates(cut)
                if now >= at
            ]
            if not eligible:
                return
            # Most-overdue first (earliest eligibility time == longest
            # running); ties break on the lower task index.
            eligible.sort()
            launch(eligible[0][1], True, now)

    def schedule_timer(now: float) -> None:
        # Re-examine stragglers when the first candidate crosses the
        # eligibility cut — completions alone would miss a straggler that
        # outlives every other task in its stage.
        nonlocal timer_pending, seq
        if timer_pending or free <= 0 or next_pending < count:
            return
        cut = threshold()
        if cut is None:
            return
        future = [at for at, _ in candidates(cut) if at > now]
        if future:
            heapq.heappush(events, (min(future), seq, -1))
            seq += 1
            timer_pending = True

    while free > 0 and next_pending < count:
        launch(next_pending, False, 0.0)
        next_pending += 1

    finish = 0.0
    while events:
        now, _, attempt_id = heapq.heappop(events)
        if attempt_id < 0:
            timer_pending = False
            speculate(now)
            schedule_timer(now)
            continue
        task_index, is_backup, start, alive = attempts[attempt_id]
        if not alive:
            continue
        attempts[attempt_id][3] = False
        free += 1
        finish = max(finish, now)
        running[task_index] = False
        completed.append(now - start)
        sibling_id = primary_of[task_index] if is_backup else backup_of[task_index]
        if sibling_id is not None and attempts[sibling_id][3]:
            attempts[sibling_id][3] = False
            free += 1
            record = records[task_index]
            if is_backup:
                record.won = True
                record.occupied_seconds = now - start
                record.primary_occupied_seconds = now - attempts[sibling_id][2]
            else:
                record.occupied_seconds = now - attempts[sibling_id][2]
        while free > 0 and next_pending < count:
            launch(next_pending, False, now)
            next_pending += 1
        speculate(now)
        schedule_timer(now)
    backups = [records[task_index] for task_index in sorted(records)]
    return SpeculativeSchedule(finish, backups)


@dataclass
class ClusterConfig:
    """Knobs of the simulated platform (defaults mirror the paper's cluster).

    Startup overheads are expressed in the same unit as measured task times.
    Our scaled-down tasks run for milliseconds where Hadoop's ran for tens
    of seconds, so the defaults keep Hadoop's *ratio* of startup overhead to
    typical task time rather than its absolute seconds.
    """

    map_slots: int = 40
    reduce_slots: int = 16
    task_startup_seconds: float = 0.004
    job_startup_seconds: float = 0.02
    shuffle_bytes_per_second: float = 64e6
    #: Hadoop-style speculative execution: when a stage has no pending
    #: tasks left and idle slots, launch backup attempts against tasks
    #: running longer than ``speculation_slowdown`` times the
    #: ``speculation_quantile`` of completed-attempt durations (once
    #: ``speculation_min_completed`` have finished).  Backups consume a
    #: slot for as long as they run and appear as speculative attempt
    #: spans in the trace; the first finisher wins.
    speculation: bool = False
    speculation_quantile: float = 0.75
    speculation_slowdown: float = 1.5
    speculation_min_completed: int = 3

    def scaled(self, **overrides: Any) -> "ClusterConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **overrides)


@dataclass
class RunLog:
    """Accumulated history of one algorithm invocation on the cluster."""

    jobs: list[JobResult] = field(default_factory=list)
    driver_seconds: float = 0.0
    #: Run-level annotations (e.g. the DP's resolved ``layer_plan``) —
    #: carried into the trace document so checkers are self-describing.
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def simulated_seconds(self) -> float:
        return self.driver_seconds + sum(job.simulated_seconds for job in self.jobs)

    @property
    def shuffle_bytes(self) -> int:
        return sum(job.shuffle_bytes for job in self.jobs)

    @property
    def job_count(self) -> int:
        return len(self.jobs)

    def as_dict(self) -> dict[str, Any]:
        return {
            "simulated_seconds": self.simulated_seconds,
            "driver_seconds": self.driver_seconds,
            "shuffle_bytes": self.shuffle_bytes,
            "jobs": self.job_count,
        }

    def trace(self) -> dict[str, Any]:
        """The run's trace document (``schema`` versioned, JSON-ready).

        Assembled from the ``JobResult.trace`` spans the runtime attached
        to every executed job — the same document a
        :class:`~repro.mapreduce.tracing.Tracer` wired into the runtime
        would produce, with the cluster's priced simulated times included.
        Jobs without a span (hand-constructed results) are skipped.
        """
        spans = (job.trace for job in self.jobs)
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "driver_seconds": self.driver_seconds,
            "meta": dict(self.meta),
            "jobs": [span.to_dict() for span in spans if span is not None],
        }


class SimulatedCluster:
    """Runs jobs through :class:`LocalRuntime` and prices their placement."""

    def __init__(
        self,
        config: ClusterConfig | None = None,
        runtime: LocalRuntime | str | None = None,
    ) -> None:
        self.config = config or ClusterConfig()
        if isinstance(runtime, str):
            runtime = make_runtime(runtime)
        self.runtime = runtime or LocalRuntime()
        self.log = RunLog()

    def reset(self) -> None:
        """Start a fresh run log (call between algorithm invocations)."""
        self.log = RunLog()

    def _stage_task_times(self, stage: StageSpan) -> list[tuple[float, float]]:
        """Per-task ``(total, backup)`` durations for speculative placement.

        ``total`` is the primary attempt chain's slot occupancy (failed
        attempts included) and ``backup`` what a fresh re-execution costs
        — the last clean attempt's measured time.  Speculative attempt
        spans written by an earlier pricing are excluded, so re-pricing a
        logged run (:func:`price_log`) never double-counts backups.
        """
        startup = self.config.task_startup_seconds
        times: list[tuple[float, float]] = []
        for task in stage.tasks:
            real = [a for a in task.attempts if not a.speculative]
            total = sum(a.wall_seconds for a in real)
            clean = next(
                (a.wall_seconds for a in reversed(real) if not a.failed), total
            )
            times.append((total + startup, clean + startup))
        return times

    def _stage_schedule(
        self, result: JobResult, stage_name: str
    ) -> SpeculativeSchedule | None:
        """Speculative placement of one stage, or None when not applicable."""
        cfg = self.config
        if not cfg.speculation or result.trace is None:
            return None
        stage = result.trace.stage(stage_name)
        if stage is None or not stage.tasks:
            return None
        slots = cfg.map_slots if stage_name == "map" else cfg.reduce_slots
        return speculative_makespan(
            self._stage_task_times(stage),
            slots,
            quantile=cfg.speculation_quantile,
            slowdown=cfg.speculation_slowdown,
            min_completed=cfg.speculation_min_completed,
        )

    def _stage_prices(self, result: JobResult) -> dict[str, float]:
        """Per-stage simulated seconds of one executed job."""
        cfg = self.config
        prices = {
            "map": makespan(
                [t + cfg.task_startup_seconds for t in result.map_task_seconds],
                cfg.map_slots,
            ),
            "shuffle": result.shuffle_bytes / cfg.shuffle_bytes_per_second,
            "reduce": makespan(
                [t + cfg.task_startup_seconds for t in result.reduce_task_seconds],
                cfg.reduce_slots,
            ),
        }
        if cfg.speculation:
            for stage_name in ("map", "reduce"):
                schedule = self._stage_schedule(result, stage_name)
                if schedule is not None:
                    prices[stage_name] = schedule.seconds
        return prices

    def job_simulated_seconds(self, result: JobResult) -> float:
        """Price one executed job under the cluster's cost model.

        With ``speculation`` enabled (and a trace present), the map and
        reduce stages are placed by :func:`speculative_makespan` instead
        of plain :func:`makespan` — backup attempts occupy slots and the
        first finisher wins, so the result is never above the
        non-speculative placement.
        """
        prices = self._stage_prices(result)
        return (
            self.config.job_startup_seconds
            + prices["map"]
            + prices["shuffle"]
            + prices["reduce"]
        )

    def run_job(self, job: MapReduceJob, splits: list[InputSplit]) -> JobResult:
        """Execute ``job`` and append it (with simulated time) to the log."""
        result = self.runtime.run(job, splits)
        result.simulated_seconds = self.job_simulated_seconds(result)
        self._price_trace(result)
        self.log.jobs.append(result)
        return result

    def _price_trace(self, result: JobResult) -> None:
        """Write the cost model's per-stage prices into the job's span.

        The span's measured fields (wall seconds, bytes) come from the
        runtime; the *simulated* seconds are a property of this cluster's
        configuration, so they are filled in at pricing time.  The combine
        stage is free — combining runs inside the map tasks, whose time it
        is already part of.

        With speculation enabled, every backup the scheduler launched is
        appended to its task as a *speculative* attempt span (losers
        flagged ``canceled``, and the primary attempt flagged when the
        backup won), and the job's counters record
        ``speculation.backups_launched`` / ``speculation.backups_won``.
        """
        span = result.trace
        if span is None:
            return
        span.simulated_seconds = result.simulated_seconds
        prices = self._stage_prices(result)
        for stage in span.stages:
            stage.simulated_seconds = prices.get(stage.name, 0.0)
        if not self.config.speculation:
            return
        for stage_name in ("map", "reduce"):
            schedule = self._stage_schedule(result, stage_name)
            if schedule is None:
                continue
            stage = span.stage(stage_name)
            assert stage is not None
            for backup in schedule.backups:
                task = stage.tasks[backup.task_index]
                if backup.won:
                    for attempt in reversed(task.attempts):
                        if not attempt.speculative and not attempt.failed:
                            attempt.canceled = True
                            break
                task.attempts.append(
                    AttemptSpan(
                        index=len(task.attempts) + 1,
                        wall_seconds=backup.occupied_seconds,
                        failed=False,
                        speculative=True,
                        canceled=not backup.won,
                    )
                )
                result.counters.increment("speculation.backups_launched")
                if backup.won:
                    result.counters.increment("speculation.backups_won")

    @contextmanager
    def driver(self) -> Iterator[None]:
        """Time a block of centralized driver-side work.

        Driver work runs on the master node and is charged at face value
        (no slot contention).  The paper's DGreedyAbs runs GreedyAbs on the
        root sub-tree this way.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.log.driver_seconds += time.perf_counter() - start

    @property
    def simulated_seconds(self) -> float:
        """Simulated wall-clock of everything logged since the last reset."""
        return self.log.simulated_seconds


def price_log(log: RunLog, config: ClusterConfig) -> float:
    """Re-price a recorded run under a different cluster configuration.

    The cost model is a pure function of the measured task times and the
    configuration, so the *same* workload can be placed on clusters of
    different capacities without re-executing — the noise-free way to
    produce "vs number of parallel tasks" sweeps (Figures 5c/5d).
    """
    pricer = SimulatedCluster(config)
    return log.driver_seconds + sum(
        pricer.job_simulated_seconds(job) for job in log.jobs
    )


class MemoryModel:
    """Per-machine memory constraint for *centralized* algorithms.

    The paper reports that GreedyAbs and IndirectHaar could not run past
    17M points within 8 GB.  Benchmarks use this model to reproduce those
    "did not run" cells: an algorithm declares its estimated working set
    and the model raises :class:`MemoryBudgetExceeded` when it doesn't fit.
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes <= 0:
            raise ValueError("memory budget must be positive")
        self.budget_bytes = int(budget_bytes)

    def charge(self, required_bytes: int, algorithm: str = "") -> None:
        """Raise :class:`MemoryBudgetExceeded` if the request does not fit."""
        if required_bytes > self.budget_bytes:
            raise MemoryBudgetExceeded(required_bytes, self.budget_bytes, algorithm)

    def fits(self, required_bytes: int) -> bool:
        """Return True when ``required_bytes`` fits in the budget."""
        return required_bytes <= self.budget_bytes
