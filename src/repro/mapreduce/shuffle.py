"""The shuffle layer: in-memory partitioning or spill-to-disk external sort.

The runtime registry gained interchangeable *execution* engines in PR 3;
this module does the same for the *shuffle*.  Two disciplines, selected
by :class:`ShuffleConfig` (CLI ``--shuffle {memory,external}``):

* :class:`MemoryShuffle` — today's behaviour: every partition is a
  resident python list, appended in map-output order.  Zero overhead,
  memory proportional to the whole shuffle volume.
* :class:`ExternalShuffle` — Hadoop's external sort: map output is
  buffered per partition up to ``buffer_bytes`` (charged under the serde
  *model*, so the knob means the same thing the Eq. 6 budgets do), then
  each partition's buffer is stable-sorted by the job's sort key and
  spilled as one columnar record batch (:func:`repro.mapreduce.serde.
  encode_batch`) — a *run file*.  Reduce input is the k-way merge of a
  partition's run files plus its unspilled tail, produced in final
  sorted order.  Driver memory is bounded by ``buffer_bytes`` plus one
  reduce partition (the reducer-memory side of Afrati et al.'s
  replication-rate vs reducer-memory trade-off; the replication-rate
  side is unchanged — the external path moves exactly the same records).

Bit-identity with the in-memory path is a theorem, not an aspiration:

* runs are filled in global emission order and spilled chronologically,
  so every record of run ``r`` precedes every record of run ``r+1`` in
  emission order;
* each run is *stable*-sorted by ``job.sort_key`` (reversed when the job
  sorts descending), so ties within a run stay in emission order;
* :func:`heapq.merge` is stable across its inputs (ties resolve to the
  earliest iterable), so merging runs chronologically yields exactly
  ``sorted(partition, key=sort_key, reverse=...)`` of the in-memory
  partition — and re-sorting an already-sorted list with the same stable
  sort (which :func:`~repro.mapreduce.runtime.run_reduce_task` does) is
  the identity.

Run files live in a private per-job directory created inside
``spill_dir`` (or a system temp directory) on first spill and removed by
:meth:`ShuffleBase.close` — which the runtime calls in a ``finally``, so
failed task attempts, exhausted retries, and job aborts never leave
orphaned spill files behind (tested in ``test_job_process_safety.py``).
"""

from __future__ import annotations

import heapq
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.exceptions import InvalidInputError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.serde import decode_batch, encode_batch

__all__ = [
    "DEFAULT_BUFFER_BYTES",
    "SHUFFLE_MODES",
    "ExternalShuffle",
    "MemoryShuffle",
    "ShuffleBase",
    "ShuffleConfig",
    "make_shuffle",
]

#: Default in-memory buffer of the external shuffle, in serde-model bytes.
DEFAULT_BUFFER_BYTES = 64 << 20

#: Shuffle disciplines selectable from the CLI / experiment configs.
SHUFFLE_MODES = ("memory", "external")


@dataclass(frozen=True)
class ShuffleConfig:
    """Knobs of the shuffle layer.

    ``buffer_bytes`` bounds the *modeled* size of buffered map output
    before a spill; ``spill_dir`` hosts the per-job run directories (a
    system temp directory when None).  Both are ignored in memory mode.
    """

    mode: str = "memory"
    spill_dir: str | None = None
    buffer_bytes: int = DEFAULT_BUFFER_BYTES

    def __post_init__(self) -> None:
        if self.mode not in SHUFFLE_MODES:
            options = ", ".join(SHUFFLE_MODES)
            raise InvalidInputError(
                f"unknown shuffle mode {self.mode!r} (choose from: {options})"
            )
        if self.buffer_bytes <= 0:
            raise InvalidInputError("shuffle buffer_bytes must be positive")


class ShuffleBase:
    """One job run's shuffle: fed task by task, drained partition by partition."""

    def __init__(self, job: MapReduceJob) -> None:
        self.job = job
        self.num_reducers = job.num_reducers
        #: Spill accounting (external mode only; empty for memory mode so
        #: in-memory and external runs keep bit-identical counters/traces).
        self.stats: dict[str, int] = {}

    def add_records(
        self, records: list[tuple[Any, Any]], modeled_sizes: list[int]
    ) -> None:
        """Accept one map task's (post-combine) output, in emission order."""
        raise NotImplementedError

    def partitions(self) -> list[list[tuple[Any, Any]]]:
        """Materialize every reduce partition, in partition order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release buffers and delete any spill files/directories."""


class MemoryShuffle(ShuffleBase):
    """Resident-list partitioning — byte-for-byte the historical behaviour."""

    def __init__(self, job: MapReduceJob) -> None:
        super().__init__(job)
        self._partitions: list[list[tuple[Any, Any]]] = [
            [] for _ in range(self.num_reducers)
        ]

    def add_records(
        self, records: list[tuple[Any, Any]], modeled_sizes: list[int]
    ) -> None:
        partition = self.job.partition
        for key, value in records:
            self._partitions[partition(key, self.num_reducers)].append((key, value))

    def partitions(self) -> list[list[tuple[Any, Any]]]:
        return self._partitions

    def close(self) -> None:
        self._partitions = []


class ExternalShuffle(ShuffleBase):
    """Bounded-buffer external sort: sorted runs on disk, k-way merge back."""

    def __init__(self, job: MapReduceJob, config: ShuffleConfig) -> None:
        super().__init__(job)
        self.config = config
        self._buffers: list[list[tuple[Any, Any]]] = [
            [] for _ in range(self.num_reducers)
        ]
        self._buffered_bytes = 0
        #: Chronological run files per partition.
        self._runs: list[list[Path]] = [[] for _ in range(self.num_reducers)]
        self._run_dir: Path | None = None
        self.stats = {
            "spills": 0,
            "spilled_records": 0,
            "spilled_bytes_modeled": 0,
            "spilled_bytes_encoded": 0,
            "run_files": 0,
            "merged_runs_max": 0,
        }

    def _ensure_run_dir(self) -> Path:
        if self._run_dir is None:
            parent = self.config.spill_dir
            if parent is not None:
                Path(parent).mkdir(parents=True, exist_ok=True)
            self._run_dir = Path(
                tempfile.mkdtemp(prefix=f"shuffle-{self.job.name}-", dir=parent)
            )
        return self._run_dir

    def _sorted(self, records: list[tuple[Any, Any]]) -> list[tuple[Any, Any]]:
        """Stable-sort one buffer/run exactly as ``run_reduce_task`` would."""
        sort_key = self.job.sort_key
        return sorted(
            records,
            key=lambda record: sort_key(record[0]),
            reverse=self.job.sort_descending,
        )

    def add_records(
        self, records: list[tuple[Any, Any]], modeled_sizes: list[int]
    ) -> None:
        partition = self.job.partition
        for record, size in zip(records, modeled_sizes):
            self._buffers[partition(record[0], self.num_reducers)].append(record)
            self._buffered_bytes += size
        if self._buffered_bytes >= self.config.buffer_bytes:
            self._spill()

    def _spill(self) -> None:
        """Flush every non-empty partition buffer as one sorted run file."""
        run_dir = self._ensure_run_dir()
        spilled = False
        for partition_id, buffer in enumerate(self._buffers):
            if not buffer:
                continue
            spilled = True
            run_index = len(self._runs[partition_id])
            path = run_dir / f"p{partition_id:05d}-run{run_index:05d}.rprb"
            encoded = encode_batch(self._sorted(buffer))
            path.write_bytes(encoded)
            self._runs[partition_id].append(path)
            self.stats["spilled_records"] += len(buffer)
            self.stats["spilled_bytes_encoded"] += len(encoded)
            self.stats["run_files"] += 1
            self._buffers[partition_id] = []
        if spilled:
            self.stats["spills"] += 1
            self.stats["spilled_bytes_modeled"] += self._buffered_bytes
        self._buffered_bytes = 0

    def partitions(self) -> list[list[tuple[Any, Any]]]:
        sort_key = self.job.sort_key
        merged: list[list[tuple[Any, Any]]] = []
        for partition_id in range(self.num_reducers):
            runs: list[list[tuple[Any, Any]]] = [
                decode_batch(path.read_bytes())
                for path in self._runs[partition_id]
            ]
            tail = self._sorted(self._buffers[partition_id])
            if tail:
                runs.append(tail)
            self.stats["merged_runs_max"] = max(
                self.stats["merged_runs_max"], len(runs)
            )
            merged.append(
                list(
                    heapq.merge(
                        *runs,
                        key=lambda record: sort_key(record[0]),
                        reverse=self.job.sort_descending,
                    )
                )
            )
            self._buffers[partition_id] = []
        return merged

    def close(self) -> None:
        self._buffers = []
        self._runs = []
        if self._run_dir is not None:
            shutil.rmtree(self._run_dir, ignore_errors=True)
            self._run_dir = None


def make_shuffle(config: ShuffleConfig | None, job: MapReduceJob) -> ShuffleBase:
    """Instantiate the configured shuffle for one job run."""
    if config is None or config.mode == "memory":
        return MemoryShuffle(job)
    return ExternalShuffle(job, config)
