"""A small MapReduce engine: the Hadoop substrate of the reproduction.

Real computation, simulated placement: jobs execute in-process with
per-task timing; :class:`SimulatedCluster` then schedules the measured
task times onto a configurable slot pool with Hadoop-like startup and
shuffle costs.  See DESIGN.md §3 for why this substitution preserves the
paper's experimental shapes.
"""

from repro.mapreduce.cluster import (
    RUNTIMES,
    BackupAttempt,
    ClusterConfig,
    MemoryModel,
    SimulatedCluster,
    SpeculativeSchedule,
    make_runtime,
    makespan,
    price_log,
    speculative_makespan,
)
from repro.mapreduce.counters import Counters
from repro.mapreduce.hdfs import (
    FileDataset,
    FileSplit,
    InputSplit,
    aligned_splits,
    block_splits,
)
from repro.mapreduce.job import MapReduceJob, is_process_safe, stable_partition
from repro.mapreduce.parallel import ThreadPoolRuntime, ThreadSafeFailureInjector
from repro.mapreduce.process import ProcessPoolRuntime, ProcessSafeFailureInjector
from repro.mapreduce.runtime import FailureInjector, JobResult, LocalRuntime
from repro.mapreduce.serde import (
    decode_batch,
    encode_batch,
    estimate_size,
    record_size,
)
from repro.mapreduce.shuffle import (
    DEFAULT_BUFFER_BYTES,
    SHUFFLE_MODES,
    ExternalShuffle,
    MemoryShuffle,
    ShuffleConfig,
    make_shuffle,
)
from repro.mapreduce.tracing import (
    TRACE_SCHEMA_VERSION,
    JobSpan,
    StageSpan,
    TaskSpan,
    Tracer,
    canonical_trace,
    job_emitted_bytes,
)

__all__ = [
    "BackupAttempt",
    "ClusterConfig",
    "Counters",
    "DEFAULT_BUFFER_BYTES",
    "ExternalShuffle",
    "FailureInjector",
    "FileDataset",
    "FileSplit",
    "InputSplit",
    "JobResult",
    "JobSpan",
    "LocalRuntime",
    "MapReduceJob",
    "MemoryModel",
    "MemoryShuffle",
    "ProcessPoolRuntime",
    "ProcessSafeFailureInjector",
    "RUNTIMES",
    "SHUFFLE_MODES",
    "ShuffleConfig",
    "SimulatedCluster",
    "SpeculativeSchedule",
    "StageSpan",
    "TaskSpan",
    "TRACE_SCHEMA_VERSION",
    "ThreadPoolRuntime",
    "ThreadSafeFailureInjector",
    "Tracer",
    "aligned_splits",
    "block_splits",
    "canonical_trace",
    "decode_batch",
    "encode_batch",
    "estimate_size",
    "is_process_safe",
    "job_emitted_bytes",
    "make_runtime",
    "make_shuffle",
    "makespan",
    "price_log",
    "speculative_makespan",
    "record_size",
    "stable_partition",
]
