"""Hadoop-style job counters.

Counters aggregate integer statistics across tasks: records in/out, shuffle
bytes, spilled records, and any algorithm-specific counts the jobs choose
to emit (e.g. number of speculative GreedyAbs runs).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator, Mapping

__all__ = ["Counters"]


class Counters(Mapping[str, int]):
    """A mergeable bag of named integer counters."""

    def __init__(self, initial: Mapping[str, int] | None = None) -> None:
        self._values: dict[str, int] = defaultdict(int)
        if initial:
            for name, value in initial.items():
                self._values[name] = int(value)

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self._values[name] += int(amount)

    def merge(self, other: "Counters") -> None:
        """Fold another counter bag into this one."""
        for name, value in other.items():
            self._values[name] += value

    def as_dict(self) -> dict[str, int]:
        """Return a plain dict snapshot."""
        return dict(self._values)

    def __getitem__(self, name: str) -> int:
        return self._values[name]

    def get(self, name: str, default: int = 0) -> int:  # type: ignore[override]
        return self._values.get(name, default)

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Counters({inner})"
