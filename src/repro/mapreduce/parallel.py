"""A thread-pool runtime: real intra-job parallelism.

:class:`ThreadPoolRuntime` executes a job's map (and reduce) tasks on a
thread pool instead of sequentially.  Results are byte-identical to
:class:`~repro.mapreduce.runtime.LocalRuntime` — task outputs are
collected in split order regardless of completion order — so the two
runtimes are interchangeable wherever determinism matters (tested).

When to use which:

* ``LocalRuntime`` (default) for *cost-model* experiments: tasks are
  measured without interference, so the simulated cluster's placement is
  clean.
* ``ThreadPoolRuntime`` for *wall-clock* speed on numpy-heavy jobs (the
  DP's row combines release the GIL inside numpy); pure-Python tasks (the
  greedy engines) gain little under the GIL.
"""

from __future__ import annotations

import os
import threading
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor

from repro.mapreduce.hdfs import InputSplit
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import FailureInjector, JobResult, LocalRuntime

__all__ = ["ThreadPoolRuntime", "ThreadSafeFailureInjector", "default_worker_count"]


def default_worker_count() -> int:
    """Worker count for :class:`ThreadPoolRuntime` when none is given.

    One thread per available core, clamped to [2, 32]: the floor keeps
    actual concurrency on single-core CI boxes, the cap bounds memory
    and shuffle-lock contention on large hosts (map tasks are
    numpy-heavy, so threads beyond the core count only add overhead).
    """
    return max(2, min(32, os.cpu_count() or 2))


class ThreadSafeFailureInjector(FailureInjector):
    """A :class:`FailureInjector` whose RNG draws are serialized."""

    def __init__(self, probability: float, seed: int = 0, max_attempts: int = 4):
        super().__init__(probability, seed, max_attempts)
        self._lock = threading.Lock()

    def attempt_fails(self) -> bool:
        with self._lock:
            return super().attempt_fails()


class ThreadPoolRuntime(LocalRuntime):
    """Runs map/reduce tasks concurrently on a thread pool."""

    def __init__(
        self,
        max_workers: int | None = None,
        failure_injector: FailureInjector | None = None,
    ):
        if max_workers is None:
            max_workers = default_worker_count()
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        super().__init__(failure_injector)
        self.max_workers = max_workers

    def run(self, job: MapReduceJob, splits: list[InputSplit]) -> JobResult:
        from repro.mapreduce.counters import Counters
        from repro.mapreduce.serde import record_size

        counters = Counters()

        def map_task(split: InputSplit):
            def attempt():
                output = list(job.map(split))
                if job.use_combiner:
                    grouped: dict = defaultdict(list)
                    for key, value in output:
                        grouped[_hashable(key)].append((key, value))
                    combined = []
                    for pairs in grouped.values():
                        key = pairs[0][0]
                        combined.extend(job.combine(key, [v for _, v in pairs]))
                    output = combined
                return output

            return self._run_attempts(attempt, f"{job.name}/map-{split.split_id}")

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            map_results = list(pool.map(map_task, splits))

        map_task_seconds = [seconds for _, seconds in map_results]
        all_map_output: list[tuple] = []
        shuffle_bytes = 0
        for split, (output, _) in zip(splits, map_results):
            counters.increment("map.input_records", len(split))
            counters.increment("map.output_records", len(output))
            for key, value in output:
                shuffle_bytes += record_size(key, value)
            all_map_output.extend(output)
        counters.increment("shuffle.bytes", shuffle_bytes)

        if job.num_reducers == 0:
            return JobResult(
                job_name=job.name,
                output=all_map_output,
                counters=counters,
                map_task_seconds=map_task_seconds,
                reduce_task_seconds=[],
                shuffle_bytes=shuffle_bytes,
                map_output_records=len(all_map_output),
            )

        partitions: list[list[tuple]] = [[] for _ in range(job.num_reducers)]
        for key, value in all_map_output:
            partitions[job.partition(key, job.num_reducers)].append((key, value))

        def reduce_task(indexed_partition):
            reducer_id, partition = indexed_partition

            def attempt():
                ordered = sorted(
                    partition,
                    key=lambda record: job.sort_key(record[0]),
                    reverse=job.sort_descending,
                )
                return list(job.reduce_partition(ordered))

            return self._run_attempts(attempt, f"{job.name}/reduce-{reducer_id}")

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            reduce_results = list(pool.map(reduce_task, enumerate(partitions)))

        reduce_task_seconds = [seconds for _, seconds in reduce_results]
        reducer_outputs = [output for output, _ in reduce_results]
        final_output: list[tuple] = []
        for partition, output in zip(partitions, reducer_outputs):
            counters.increment("reduce.input_records", len(partition))
            counters.increment("reduce.output_records", len(output))
            final_output.extend(output)

        return JobResult(
            job_name=job.name,
            output=final_output,
            counters=counters,
            map_task_seconds=map_task_seconds,
            reduce_task_seconds=reduce_task_seconds,
            shuffle_bytes=shuffle_bytes,
            map_output_records=len(all_map_output),
            reducer_outputs=reducer_outputs,
        )


def _hashable(key):
    try:
        hash(key)
        return key
    except TypeError:
        return repr(key)
