"""A thread-pool runtime: real intra-job parallelism.

:class:`ThreadPoolRuntime` executes a job's map (and reduce) tasks on a
thread pool instead of sequentially.  Results are byte-identical to
:class:`~repro.mapreduce.runtime.LocalRuntime` — task outputs are
collected in split order regardless of completion order — so the two
runtimes are interchangeable wherever determinism matters (tested).

When to use which:

* ``LocalRuntime`` (default) for *cost-model* experiments: tasks are
  measured without interference, so the simulated cluster's placement is
  clean.
* ``ThreadPoolRuntime`` for *wall-clock* speed on numpy-heavy jobs (the
  DP's row combines release the GIL inside numpy); pure-Python tasks (the
  greedy engines) gain little under the GIL.
* ``ProcessPoolRuntime`` (:mod:`repro.mapreduce.process`) for wall-clock
  speed on those pure-Python, GIL-bound tasks.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Iterator
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.mapreduce.hdfs import InputSplit
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import (
    FailureInjector,
    LocalRuntime,
    MapTaskResult,
    run_map_task,
    run_reduce_task,
)
from repro.mapreduce.shuffle import ShuffleConfig
from repro.mapreduce.tracing import TaskSpan, Tracer

__all__ = ["ThreadPoolRuntime", "ThreadSafeFailureInjector", "default_worker_count"]


def default_worker_count() -> int:
    """Worker count for :class:`ThreadPoolRuntime` when none is given.

    One thread per available core, clamped to [2, 32]: the floor keeps
    actual concurrency on single-core CI boxes, the cap bounds memory
    and shuffle-lock contention on large hosts (map tasks are
    numpy-heavy, so threads beyond the core count only add overhead).
    """
    return max(2, min(32, os.cpu_count() or 2))


class ThreadSafeFailureInjector(FailureInjector):
    """A :class:`FailureInjector` whose RNG draws are serialized."""

    def __init__(self, probability: float, seed: int = 0, max_attempts: int = 4) -> None:
        super().__init__(probability, seed, max_attempts)
        self._lock = threading.Lock()

    def attempt_fails(self) -> bool:
        with self._lock:
            return super().attempt_fails()


class ThreadPoolRuntime(LocalRuntime):
    """Runs map/reduce tasks concurrently on a thread pool.

    Only the two execution hooks differ from :class:`LocalRuntime`; all
    the order-sensitive bookkeeping is inherited, so outputs stay
    byte-identical.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        failure_injector: FailureInjector | None = None,
        tracer: Tracer | None = None,
        shuffle: ShuffleConfig | str | None = None,
    ) -> None:
        if max_workers is None:
            max_workers = default_worker_count()
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if type(failure_injector) is FailureInjector:
            # The base injector shares one unlocked RNG across attempts —
            # fine sequentially, racy from pool threads.  Rebuild it as the
            # lock-guarded variant (same seed, so same draw sequence).
            failure_injector = ThreadSafeFailureInjector(
                failure_injector.probability,
                failure_injector.seed,
                failure_injector.max_attempts,
            )
        super().__init__(failure_injector, tracer, shuffle)
        self.max_workers = max_workers

    def _execute_map_tasks(
        self, job: MapReduceJob, splits: list[InputSplit]
    ) -> Iterator[tuple[MapTaskResult, TaskSpan]]:
        def map_task(split: InputSplit) -> tuple[MapTaskResult, TaskSpan]:
            return self._run_attempts(
                lambda: run_map_task(job, split), f"{job.name}/map-{split.split_id}"
            )

        # Yield (in split order) while the pool context stays open, so the
        # driver can stream each task's output into the shuffle as soon as
        # it completes rather than materializing the whole result list.
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            yield from pool.map(map_task, splits)

    def _execute_reduce_tasks(
        self, job: MapReduceJob, partitions: list[list[tuple[Any, Any]]]
    ) -> list[tuple[list[tuple[Any, Any]], TaskSpan]]:
        def reduce_task(
            indexed_partition: tuple[int, list[tuple[Any, Any]]],
        ) -> tuple[list[tuple[Any, Any]], TaskSpan]:
            reducer_id, partition = indexed_partition
            return self._run_attempts(
                lambda: run_reduce_task(job, partition),
                f"{job.name}/reduce-{reducer_id}",
            )

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(reduce_task, enumerate(partitions)))
