"""Serialization cost model for shuffle-byte accounting.

The paper's algorithms are compared partly on *communication volume* (e.g.
the histogram optimization of ErrHistGreedyAbs exists purely to shrink the
bytes shuffled between level-1 and level-2 workers).  We therefore charge
every emitted key-value pair with a deterministic, platform-independent byte
cost instead of pickling: 4 bytes per int (the paper's ``sizeOf(int)``),
8 per float, UTF-8 length per string, ``nbytes`` for numpy arrays, and a
small framing overhead per container.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["estimate_size", "record_size"]

#: Framing overhead charged per container (tuple/list/dict/set), mirroring
#: Hadoop's per-record serialization framing.
CONTAINER_OVERHEAD = 4

_INT_SIZE = 4
_FLOAT_SIZE = 8
_BOOL_SIZE = 1


def estimate_size(obj: Any) -> int:
    """Return the modeled serialized size of ``obj`` in bytes."""
    if obj is None:
        return 1
    if isinstance(obj, bool) or isinstance(obj, np.bool_):
        return _BOOL_SIZE
    if isinstance(obj, (int, np.integer)):
        return _INT_SIZE
    if isinstance(obj, (float, np.floating)):
        return _FLOAT_SIZE
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + CONTAINER_OVERHEAD
    if isinstance(obj, dict):
        return CONTAINER_OVERHEAD + sum(
            estimate_size(k) + estimate_size(v) for k, v in obj.items()
        )
    if isinstance(obj, (tuple, list, set, frozenset)):
        return CONTAINER_OVERHEAD + sum(estimate_size(item) for item in obj)
    if hasattr(obj, "serialized_size"):
        return int(obj.serialized_size())
    if hasattr(obj, "__dict__"):
        return CONTAINER_OVERHEAD + estimate_size(vars(obj))
    return _FLOAT_SIZE  # conservative default for unknown scalars


def record_size(key: Any, value: Any) -> int:
    """Modeled size of one shuffled ``(key, value)`` record."""
    return estimate_size(key) + estimate_size(value)
