"""Serialization for shuffle traffic: a cost model and a columnar codec.

Two related concerns live here:

* **Byte accounting** (:func:`estimate_size` / :func:`record_size`): the
  paper's algorithms are compared partly on *communication volume* (e.g.
  the histogram optimization of ErrHistGreedyAbs exists purely to shrink
  the bytes shuffled between level-1 and level-2 workers).  We therefore
  charge every emitted key-value pair with a deterministic,
  platform-independent byte cost instead of pickling: 4 bytes per int
  (the paper's ``sizeOf(int)``), 8 per float, UTF-8 length per string,
  ``nbytes`` for numpy arrays, and a small framing overhead per
  container.  The analytical bounds in :mod:`repro.observe.bounds` are
  derived against this model, so it must never drift silently.

* **The columnar record-batch codec** (:func:`encode_batch` /
  :func:`decode_batch`): the external shuffle
  (:mod:`repro.mapreduce.shuffle`) spills sorted runs of records to disk
  and merges them back.  Moving those runs as per-record pickled python
  tuples would dominate the runtime at out-of-core scales, so a run is
  encoded as one *record batch*: keys and values become typed columns
  (narrowest-width int / float64 / bool / utf-8 string arrays,
  recursively per tuple position), with a signature-partitioned layout
  for heterogeneous streams (a one-byte-per-record selector restores
  the interleaving) and a batch-level pickle fallback for anything
  non-columnar.
  Decoding restores built-in python scalars bit-exactly (int64-range
  ints, float64 floats, bools, strings, and tuples thereof round-trip
  through raw array buffers; everything else round-trips through the
  pickle fallback), which is what keeps external-shuffle runs
  bit-identical to in-memory runs.
"""

from __future__ import annotations

import operator
import pickle
import struct
from typing import Any

import numpy as np

__all__ = [
    "BATCH_MAGIC",
    "decode_batch",
    "encode_batch",
    "estimate_size",
    "record_size",
]

#: Framing overhead charged per container (tuple/list/dict/set), mirroring
#: Hadoop's per-record serialization framing.
CONTAINER_OVERHEAD = 4

_INT_SIZE = 4
_FLOAT_SIZE = 8
_BOOL_SIZE = 1


def estimate_size(obj: Any) -> int:
    """Return the modeled serialized size of ``obj`` in bytes."""
    if obj is None:
        return 1
    if isinstance(obj, bool) or isinstance(obj, np.bool_):
        return _BOOL_SIZE
    if isinstance(obj, (int, np.integer)):
        return _INT_SIZE
    if isinstance(obj, (float, np.floating)):
        return _FLOAT_SIZE
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, np.ndarray):
        if obj.dtype == np.object_:
            # An object array stores *pointers*; ``nbytes`` would charge 8
            # bytes per element no matter what the elements are.  Recurse
            # so shuffle volume counts the elements' real modeled size.
            return CONTAINER_OVERHEAD + sum(
                estimate_size(item) for item in obj.ravel()
            )
        return int(obj.nbytes) + CONTAINER_OVERHEAD
    if isinstance(obj, dict):
        return CONTAINER_OVERHEAD + sum(
            estimate_size(k) + estimate_size(v) for k, v in obj.items()
        )
    if isinstance(obj, (tuple, list, set, frozenset)):
        return CONTAINER_OVERHEAD + sum(estimate_size(item) for item in obj)
    if hasattr(obj, "serialized_size"):
        return int(obj.serialized_size())
    if hasattr(obj, "__dict__"):
        return CONTAINER_OVERHEAD + estimate_size(vars(obj))
    return _FLOAT_SIZE  # conservative default for unknown scalars


def record_size(key: Any, value: Any) -> int:
    """Modeled size of one shuffled ``(key, value)`` record."""
    return estimate_size(key) + estimate_size(value)


# ---------------------------------------------------------------------------
# Columnar record-batch codec (the external shuffle's on-disk run format).
# ---------------------------------------------------------------------------

#: File magic of one encoded record batch; the trailing byte is the version.
BATCH_MAGIC = b"RPRB\x02"

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

# Column tags.  Scalar columns are raw little-endian array buffers; 'T'
# fans out per tuple position; 'M' partitions a heterogeneous stream into
# homogeneous sub-columns; 'O' is the batch-level pickle fallback.
_TAG_INT = b"I"
_TAG_FLOAT = b"F"
_TAG_BOOL = b"B"
_TAG_STR = b"S"
_TAG_TUPLE = b"T"
_TAG_MIXED = b"M"
_TAG_OBJECT = b"O"

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")
_U8 = struct.Struct("<B")


#: Width codes for narrowed int columns: code byte -> dtype.
_INT_DTYPES = ("<i1", "<i2", "<i4", "<i8")


def _partition(
    items: list[Any], kinds: set[type]
) -> tuple[dict[str, Any], dict[str, list[Any]]]:
    """Split a mixed stream into ``signature -> positions`` (int64 arrays).

    Runs at C speed: ``map(id, map(type, ...))`` labels every item with
    its type in one pass, and per-signature positions fall out of
    ``np.nonzero`` — no per-item python loop.  Only exact built-in python
    types get columnar signatures; numpy scalars (and anything else)
    land in the pickle (``"o"``) group so their concrete type survives
    the round trip bit-exactly.

    Also returns a cache of already-gathered sublists for signatures
    whose items were materialized along the way, so the caller doesn't
    gather the same positions twice.
    """
    type_ids = np.fromiter(
        map(id, map(type, items)), dtype=np.int64, count=len(items)
    )
    groups: dict[str, Any] = {}
    cache: dict[str, list[Any]] = {}
    other: list[Any] = []
    for kind in kinds:
        positions = np.nonzero(type_ids == id(kind))[0]
        if kind is tuple:
            sub = [items[p] for p in positions.tolist()]
            arities = np.fromiter(map(len, sub), dtype=np.int64, count=len(sub))
            distinct = np.nonzero(np.bincount(arities))[0].tolist()
            if len(distinct) == 1:
                groups[f"t{distinct[0]}"] = positions
                cache[f"t{distinct[0]}"] = sub
            else:
                for arity in distinct:
                    groups[f"t{arity}"] = positions[arities == arity]
        elif kind is int:
            sub = [items[p] for p in positions.tolist()]
            try:
                np.asarray(sub, dtype="<i8")
                groups["i"] = positions
                cache["i"] = sub
            except OverflowError:
                in_range = np.fromiter(
                    (_I64_MIN <= v <= _I64_MAX for v in sub),
                    dtype=np.bool_,
                    count=len(sub),
                )
                if in_range.any():
                    groups["i"] = positions[in_range]
                other.append(positions[~in_range])
        elif kind is float:
            groups["f"] = positions
        elif kind is str:
            groups["s"] = positions
        elif kind is bool:
            groups["b"] = positions
        else:
            other.append(positions)
    if other:
        groups["o"] = np.sort(np.concatenate(other)) if len(other) > 1 else other[0]
    # Deterministic column order regardless of set/id iteration order.
    return dict(sorted(groups.items())), cache


def _encode_column(signature: str, items: list[Any]) -> bytes:
    """Encode a signature-homogeneous column."""
    tag = signature[0]
    if tag == "i":
        array = np.asarray(items, dtype="<i8")
        low = int(array.min()) if len(array) else 0
        high = int(array.max()) if len(array) else 0
        code = next(
            c
            for c, bits in enumerate((8, 16, 32, 64))
            if -(1 << (bits - 1)) <= low and high < 1 << (bits - 1)
        )
        data = array.astype(_INT_DTYPES[code]).tobytes()
        return _TAG_INT + _U8.pack(code) + _U64.pack(len(data)) + data
    if tag == "f":
        data = np.asarray(items, dtype="<f8").tobytes()
        return _TAG_FLOAT + _U64.pack(len(data)) + data
    if tag == "b":
        data = np.asarray(items, dtype=np.bool_).tobytes()
        return _TAG_BOOL + _U64.pack(len(data)) + data
    if tag == "s":
        joined = "".join(items)
        blob = joined.encode("utf-8")
        offsets = np.zeros(len(items) + 1, dtype="<u4")
        if len(blob) == len(joined):  # pure ASCII: byte length == char length
            np.cumsum(
                np.fromiter(map(len, items), dtype="<u4", count=len(items)),
                out=offsets[1:],
            )
        else:
            np.cumsum(
                [len(text.encode("utf-8")) for text in items], out=offsets[1:]
            )
        payload = offsets.tobytes() + blob
        return _TAG_STR + _U32.pack(len(items)) + _U64.pack(len(payload)) + payload
    if tag == "t":
        arity = int(signature[1:])
        parts = [_encode_group([item[i] for item in items]) for i in range(arity)]
        return _TAG_TUPLE + _U8.pack(arity) + b"".join(parts)
    data = pickle.dumps(items, protocol=pickle.HIGHEST_PROTOCOL)
    return _TAG_OBJECT + _U64.pack(len(data)) + data


def _encode_group(items: list[Any]) -> bytes:
    """Encode one stream of keys (or values, or tuple positions).

    A homogeneous stream becomes a single typed column; a heterogeneous
    one (e.g. DGreedyAbs's interleaved 4-tuple ``hist`` and 3-tuple
    ``final`` keys) is partitioned by signature into sub-columns plus a
    one-byte-per-record selector array that restores the interleaving.

    Homogeneity is detected with ``set(map(type, ...))`` — one C-level
    pass — and mixed streams are partitioned by numpy type-id labeling
    (:func:`_partition`), so encode cost scales with the number of
    *signatures*, not with batch size.
    """
    kinds = set(map(type, items))
    groups: dict[str, Any] | None = None
    if kinds == {int}:
        try:
            return _encode_column("i", items)
        except OverflowError:
            pass  # some item is beyond int64: partition below
    elif kinds == {float}:
        return _encode_column("f", items)
    elif kinds == {str}:
        return _encode_column("s", items)
    elif kinds == {bool}:
        return _encode_column("b", items)
    elif kinds == {tuple}:
        arities = np.fromiter(map(len, items), dtype=np.int64, count=len(items))
        distinct = np.nonzero(np.bincount(arities))[0].tolist()
        if len(distinct) == 1:
            return _encode_column(f"t{distinct[0]}", items)
        # All tuples, mixed arity (the shuffle's hist/final interleaving):
        # partition by length directly, skipping the type-id pass.
        groups = {f"t{arity}": np.nonzero(arities == arity)[0] for arity in distinct}
    elif not kinds:
        return _encode_column("o", items)
    cache: dict[str, list[Any]] = {}
    if groups is None:
        groups, cache = _partition(items, kinds)
    if len(groups) == 1:
        return _encode_column(next(iter(groups)), items)
    if len(groups) > 255:  # selector bytes can't address it: whole-stream pickle
        return _encode_column("o", items)
    selector = np.zeros(len(items), dtype=np.uint8)
    for group_index, positions in enumerate(groups.values()):
        selector[positions] = group_index
    parts = [_TAG_MIXED, _U32.pack(len(groups)), selector.tobytes()]
    for signature, positions in groups.items():
        column_items = (
            cache[signature]
            if signature in cache
            else [items[p] for p in positions.tolist()]
        )
        parts.append(_encode_column(signature, column_items))
    return b"".join(parts)


def _decode_group(buf: bytes, offset: int, count: int) -> tuple[list[Any], int]:
    """Decode one group; returns ``(items, next offset)``."""
    tag = buf[offset : offset + 1]
    offset += 1
    if tag == _TAG_INT:
        (code,) = _U8.unpack_from(buf, offset)
        offset += _U8.size
        (nbytes,) = _U64.unpack_from(buf, offset)
        offset += _U64.size
        array = np.frombuffer(buf, dtype=_INT_DTYPES[code], count=count, offset=offset)
        offset += nbytes
        return array.tolist(), offset
    if tag in (_TAG_BOOL, _TAG_FLOAT):
        (nbytes,) = _U64.unpack_from(buf, offset)
        offset += _U64.size
        dtype = {_TAG_BOOL: np.bool_, _TAG_FLOAT: "<f8"}[tag]
        array = np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
        offset += nbytes
        return array.tolist(), offset
    if tag == _TAG_STR:
        (n,) = _U32.unpack_from(buf, offset)
        offset += _U32.size
        (nbytes,) = _U64.unpack_from(buf, offset)
        offset += _U64.size
        offsets = np.frombuffer(buf, dtype="<u4", count=n + 1, offset=offset)
        blob_start = offset + offsets.nbytes
        blob = buf[blob_start : offset + nbytes]
        offset += nbytes
        widths = np.diff(offsets)
        if (
            n
            and widths[0]
            and bool((widths == widths[0]).all())
            and blob.isascii()
            and b"\x00" not in blob
        ):
            # Uniform-width ASCII column (e.g. 60k copies of a stage
            # label): one vectorized S->U cast instead of n slice+decode
            # calls.  NUL-free is required because fixed-width numpy
            # bytes treat trailing NULs as padding.
            array = np.frombuffer(blob, dtype=f"|S{int(widths[0])}")
            return array.astype(np.str_).tolist(), offset
        items = [
            blob[offsets[i] : offsets[i + 1]].decode("utf-8") for i in range(n)
        ]
        return items, offset
    if tag == _TAG_TUPLE:
        (arity,) = _U8.unpack_from(buf, offset)
        offset += _U8.size
        columns = []
        for _ in range(arity):
            column, offset = _decode_group(buf, offset, count)
            columns.append(column)
        return list(zip(*columns)) if count else [], offset
    if tag == _TAG_MIXED:
        (ngroups,) = _U32.unpack_from(buf, offset)
        offset += _U32.size
        selector = np.frombuffer(buf, dtype=np.uint8, count=count, offset=offset)
        offset += count
        counts = np.bincount(selector, minlength=ngroups)
        scattered = np.empty(count, dtype=object)
        for group_index in range(ngroups):
            column, offset = _decode_group(buf, offset, int(counts[group_index]))
            # Route through a 1-D object array so tuples stay scalars
            # under the mask assignment (a bare list of equal-length
            # tuples would be read as 2-D).
            rhs = np.empty(len(column), dtype=object)
            rhs[:] = column
            scattered[selector == group_index] = rhs
        items: list[Any] = scattered.tolist()
        return items, offset
    if tag == _TAG_OBJECT:
        (nbytes,) = _U64.unpack_from(buf, offset)
        offset += _U64.size
        payload: list[Any] = pickle.loads(buf[offset : offset + nbytes])
        return payload, offset + nbytes
    raise ValueError(f"corrupt record batch: unknown column tag {tag!r}")


def encode_batch(records: list[tuple[Any, Any]]) -> bytes:
    """Encode ``records`` as one columnar record batch."""
    keys = _encode_group(list(map(operator.itemgetter(0), records)))
    values = _encode_group(list(map(operator.itemgetter(1), records)))
    return BATCH_MAGIC + _U64.pack(len(records)) + keys + values


def decode_batch(buf: bytes) -> list[tuple[Any, Any]]:
    """Decode one record batch back into ``(key, value)`` records."""
    if buf[: len(BATCH_MAGIC)] != BATCH_MAGIC:
        raise ValueError("corrupt record batch: bad magic")
    offset = len(BATCH_MAGIC)
    (count,) = _U64.unpack_from(buf, offset)
    offset += _U64.size
    keys, offset = _decode_group(buf, offset, count)
    values, offset = _decode_group(buf, offset, count)
    return list(zip(keys, values))
