"""Execution engine for MapReduce jobs.

The runtime executes a job in-process, task by task, and *measures* each
task's CPU time.  It does not try to be a real cluster: parallelism is
reintroduced afterwards by :mod:`repro.mapreduce.cluster`, which schedules
the measured task times onto a configurable number of slots.  This split —
real computation, simulated placement — is what lets a laptop reproduce the
scaling *shapes* of a 9-node Hadoop deployment (see DESIGN.md §3).

:class:`LocalRuntime` is also the template the concurrent runtimes extend:
:meth:`LocalRuntime.run` owns everything order-sensitive (counters, shuffle
accounting, partitioning, split-order collection) and delegates only the
*execution* of the task batch to :meth:`LocalRuntime._execute_map_tasks` /
:meth:`LocalRuntime._execute_reduce_tasks`.  ``ThreadPoolRuntime`` and
``ProcessPoolRuntime`` override just those two hooks, which is how all
three runtimes stay byte-identical on deterministic jobs (tested).

The per-task work itself lives in module-level functions
(:func:`run_map_task`, :func:`run_reduce_task`, :func:`run_task_attempts`)
so a process-pool worker can import and run them — bound methods of a
runtime holding live state would not pickle.

Failure injection (`FailureInjector`) emulates task attempts: a failed
attempt is retried up to ``max_attempts`` times, as Hadoop's ApplicationMaster
would, and the wasted attempt time is charged to the task.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.exceptions import JobFailedError
from repro.mapreduce.counters import Counters
from repro.mapreduce.hdfs import InputSplit
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.serde import record_size

__all__ = [
    "FailureInjector",
    "JobResult",
    "LocalRuntime",
    "run_map_task",
    "run_reduce_task",
    "run_task_attempts",
]


class FailureInjector:
    """Randomly fails task attempts to exercise the retry machinery."""

    def __init__(self, probability: float, seed: int = 0, max_attempts: int = 4) -> None:
        if not 0.0 <= probability < 1.0:
            raise ValueError("failure probability must be in [0, 1)")
        self.probability = probability
        self.seed = seed
        self.max_attempts = max_attempts
        self._rng = np.random.default_rng(seed)

    def attempt_fails(self) -> bool:
        """Decide whether the next task attempt fails."""
        return bool(self._rng.random() < self.probability)


@dataclass
class JobResult:
    """Everything a job run produced, plus per-task measurements."""

    job_name: str
    output: list[tuple[Any, Any]]
    counters: Counters
    map_task_seconds: list[float]
    reduce_task_seconds: list[float]
    shuffle_bytes: int
    map_output_records: int
    #: Filled in by the cluster model: simulated wall-clock of this job.
    simulated_seconds: float = 0.0
    #: Per-reducer outputs, in partition order (useful for debugging).
    reducer_outputs: list[list[tuple[Any, Any]]] = field(default_factory=list)


def _hashable(key: Any) -> Any:
    """Map a key to something usable as a dict key for combining."""
    try:
        hash(key)
        return key
    except TypeError:
        return repr(key)


def apply_combiner(
    job: MapReduceJob, output: list[tuple[Any, Any]]
) -> list[tuple[Any, Any]]:
    """Group one map task's output by key and run the job's combiner."""
    grouped: dict[Any, list[tuple[Any, Any]]] = defaultdict(list)
    for key, value in output:
        grouped[_hashable(key)].append((key, value))
    combined: list[tuple[Any, Any]] = []
    for pairs in grouped.values():
        key = pairs[0][0]
        combined.extend(job.combine(key, [value for _, value in pairs]))
    return combined


def run_map_task(job: MapReduceJob, split: InputSplit) -> list[tuple[Any, Any]]:
    """One map task: map a split, then combine locally if configured."""
    output = list(job.map(split))
    if job.use_combiner:
        output = apply_combiner(job, output)
    return output


def run_reduce_task(
    job: MapReduceJob, partition: list[tuple[Any, Any]]
) -> list[tuple[Any, Any]]:
    """One reduce task: sort the partition, then reduce it whole."""
    ordered = sorted(
        partition,
        key=lambda record: job.sort_key(record[0]),
        reverse=job.sort_descending,
    )
    return list(job.reduce_partition(ordered))


def run_task_attempts(
    task_callable: Callable[[], Any],
    task_label: str,
    injector: FailureInjector | None = None,
) -> tuple[Any, float]:
    """Run one task with retries; return (result, total attempt seconds)."""
    attempts = 0
    total_seconds = 0.0
    max_attempts = injector.max_attempts if injector else 1
    while True:
        attempts += 1
        start = time.perf_counter()
        failed = injector is not None and injector.attempt_fails()
        if not failed:
            result = task_callable()
            total_seconds += time.perf_counter() - start
            return result, total_seconds
        # A failed attempt still burns (a fraction of) its runtime.
        total_seconds += time.perf_counter() - start
        if attempts >= max_attempts:
            raise JobFailedError(f"task {task_label} failed after {attempts} attempts")


class LocalRuntime:
    """Runs jobs in-process with per-task timing and attempt retries."""

    def __init__(self, failure_injector: FailureInjector | None = None) -> None:
        self.failure_injector = failure_injector

    def _run_attempts(
        self, task_callable: Callable[[], Any], task_label: str
    ) -> tuple[Any, float]:
        return run_task_attempts(task_callable, task_label, self.failure_injector)

    def _execute_map_tasks(
        self, job: MapReduceJob, splits: list[InputSplit]
    ) -> list[tuple[list[tuple[Any, Any]], float]]:
        """Run every map task; return ``(output, seconds)`` in split order."""
        return [
            self._run_attempts(
                lambda split=split: run_map_task(job, split),
                f"{job.name}/map-{split.split_id}",
            )
            for split in splits
        ]

    def _execute_reduce_tasks(
        self, job: MapReduceJob, partitions: list[list[tuple[Any, Any]]]
    ) -> list[tuple[list[tuple[Any, Any]], float]]:
        """Run every reduce task; return ``(output, seconds)`` in partition order."""
        return [
            self._run_attempts(
                lambda partition=partition: run_reduce_task(job, partition),
                f"{job.name}/reduce-{reducer_id}",
            )
            for reducer_id, partition in enumerate(partitions)
        ]

    def run(self, job: MapReduceJob, splits: list[InputSplit]) -> JobResult:
        """Execute ``job`` over ``splits`` and return its :class:`JobResult`."""
        counters = Counters()
        map_results = self._execute_map_tasks(job, splits)

        map_task_seconds = [seconds for _, seconds in map_results]
        all_map_output: list[tuple[Any, Any]] = []
        shuffle_bytes = 0
        for split, (output, _) in zip(splits, map_results):
            counters.increment("map.input_records", len(split))
            counters.increment("map.output_records", len(output))
            for key, value in output:
                shuffle_bytes += record_size(key, value)
            all_map_output.extend(output)
        counters.increment("shuffle.bytes", shuffle_bytes)

        if job.num_reducers == 0:
            # Map-only jobs still pay to write their output (HDFS), so the
            # emitted bytes count as communication volume.
            return JobResult(
                job_name=job.name,
                output=all_map_output,
                counters=counters,
                map_task_seconds=map_task_seconds,
                reduce_task_seconds=[],
                shuffle_bytes=shuffle_bytes,
                map_output_records=len(all_map_output),
            )

        partitions: list[list[tuple[Any, Any]]] = [[] for _ in range(job.num_reducers)]
        for key, value in all_map_output:
            partitions[job.partition(key, job.num_reducers)].append((key, value))

        reduce_results = self._execute_reduce_tasks(job, partitions)
        reduce_task_seconds = [seconds for _, seconds in reduce_results]
        reducer_outputs = [output for output, _ in reduce_results]
        final_output: list[tuple[Any, Any]] = []
        for partition, output in zip(partitions, reducer_outputs):
            counters.increment("reduce.input_records", len(partition))
            counters.increment("reduce.output_records", len(output))
            final_output.extend(output)

        return JobResult(
            job_name=job.name,
            output=final_output,
            counters=counters,
            map_task_seconds=map_task_seconds,
            reduce_task_seconds=reduce_task_seconds,
            shuffle_bytes=shuffle_bytes,
            map_output_records=len(all_map_output),
            reducer_outputs=reducer_outputs,
        )
