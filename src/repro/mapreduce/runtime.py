"""Execution engine for MapReduce jobs.

The runtime executes a job in-process, task by task, and *measures* each
task's CPU time.  It does not try to be a real cluster: parallelism is
reintroduced afterwards by :mod:`repro.mapreduce.cluster`, which schedules
the measured task times onto a configurable number of slots.  This split —
real computation, simulated placement — is what lets a laptop reproduce the
scaling *shapes* of a 9-node Hadoop deployment (see DESIGN.md §3).

:class:`LocalRuntime` is also the template the concurrent runtimes extend:
:meth:`LocalRuntime.run` owns everything order-sensitive (counters, shuffle
accounting, partitioning, split-order collection, span stitching) and
delegates only the *execution* of the task batch to
:meth:`LocalRuntime._execute_map_tasks` /
:meth:`LocalRuntime._execute_reduce_tasks`.  ``ThreadPoolRuntime`` and
``ProcessPoolRuntime`` override just those two hooks, which is how all
three runtimes stay byte-identical on deterministic jobs — and emit
schema-identical traces (:mod:`repro.mapreduce.tracing`): every task
attempt is timed inside :func:`run_task_attempts`, which returns a
picklable :class:`~repro.mapreduce.tracing.TaskSpan` fragment the driver
assembles into the job's span tree.

The per-task work itself lives in module-level functions
(:func:`run_map_task`, :func:`run_reduce_task`, :func:`run_task_attempts`)
so a process-pool worker can import and run them — bound methods of a
runtime holding live state would not pickle.

Failure injection (`FailureInjector`) emulates task attempts: a failed
attempt is retried up to ``max_attempts`` times, as Hadoop's ApplicationMaster
would, and the wasted attempt time is charged to the task.  Retried
attempts appear as child :class:`~repro.mapreduce.tracing.AttemptSpan`
records of their task span, never as duplicate tasks.
"""

from __future__ import annotations

import time
from collections import defaultdict
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.analysis.sanitizer import current as sanitizer_current
from repro.exceptions import JobFailedError
from repro.mapreduce.counters import Counters
from repro.mapreduce.hdfs import InputSplit
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.serde import record_size
from repro.mapreduce.shuffle import ShuffleBase, ShuffleConfig, make_shuffle
from repro.mapreduce.tracing import (
    AttemptSpan,
    JobSpan,
    StageSpan,
    TaskSpan,
    Tracer,
)

__all__ = [
    "FailureInjector",
    "JobResult",
    "LocalRuntime",
    "MapTaskResult",
    "run_map_task",
    "run_reduce_task",
    "run_task_attempts",
]


class FailureInjector:
    """Randomly fails task attempts to exercise the retry machinery."""

    def __init__(self, probability: float, seed: int = 0, max_attempts: int = 4) -> None:
        if not 0.0 <= probability < 1.0:
            raise ValueError("failure probability must be in [0, 1)")
        self.probability = probability
        self.seed = seed
        self.max_attempts = max_attempts
        self._rng = np.random.default_rng(seed)

    def attempt_fails(self) -> bool:
        """Decide whether the next task attempt fails."""
        # Unlocked draw is safe on the sequential runtimes only; the
        # concurrent runtimes substitute a serialized or per-label injector
        # (ThreadPoolRuntime auto-wraps, ProcessSafeFailureInjector derives).
        return bool(self._rng.random() < self.probability)  # lint: ignore[RC003] -- concurrent runtimes never draw from this shared RNG: ThreadPoolRuntime auto-wraps in ThreadSafeFailureInjector and process runs derive per-label injectors via resolve()

    def resolve(self, task_label: str) -> "FailureInjector":
        """The injector to use for one task.

        The base class shares one RNG across tasks (draws in execution
        order — fine for sequential runtimes).  Scheduling-independent
        subclasses (:class:`~repro.mapreduce.process.ProcessSafeFailureInjector`)
        override this to derive a per-label injector instead, making the
        failure pattern identical on every runtime.
        """
        return self


@dataclass
class JobResult:
    """Everything a job run produced, plus per-task measurements."""

    job_name: str
    output: list[tuple[Any, Any]]
    counters: Counters
    map_task_seconds: list[float]
    reduce_task_seconds: list[float]
    shuffle_bytes: int
    map_output_records: int
    #: Filled in by the cluster model: simulated wall-clock of this job.
    simulated_seconds: float = 0.0
    #: Per-reducer outputs, in partition order (useful for debugging).
    reducer_outputs: list[list[tuple[Any, Any]]] = field(default_factory=list)
    #: The job's span tree (always built by the runtime; None only on
    #: hand-constructed results, e.g. in cost-model unit tests).
    trace: JobSpan | None = None
    #: Spill accounting from the external shuffle (empty on the in-memory
    #: path).  Deliberately *not* folded into ``counters`` or the trace:
    #: external and in-memory runs of the same job must stay bit-identical
    #: on both (the runtime-equivalence differential tests pin this).
    shuffle_stats: dict[str, int] = field(default_factory=dict)


def _hashable(key: Any) -> Any:
    """Map a key to something usable as a dict key for combining."""
    try:
        hash(key)
        return key
    except TypeError:
        return repr(key)


def apply_combiner(
    job: MapReduceJob, output: list[tuple[Any, Any]]
) -> list[tuple[Any, Any]]:
    """Group one map task's output by key and run the job's combiner."""
    grouped: dict[Any, list[tuple[Any, Any]]] = defaultdict(list)
    for key, value in output:
        grouped[_hashable(key)].append((key, value))
    combined: list[tuple[Any, Any]] = []
    for pairs in grouped.values():
        key = pairs[0][0]
        combined.extend(job.combine(key, [value for _, value in pairs]))
    return combined


@dataclass
class MapTaskResult:
    """One map task's output plus its pre-combine emission accounting.

    ``map_records``/``map_bytes`` describe what the *map function* emitted
    before the combiner ran — the combine stage's input.  When no combiner
    runs, ``map_bytes`` is None and the driver reuses the shuffle-byte
    walk it performs anyway (identical by definition), keeping the
    no-combiner hot path free of a second serialization pass.
    """

    output: list[tuple[Any, Any]]
    map_records: int
    map_bytes: int | None


def run_map_task(job: MapReduceJob, split: InputSplit) -> MapTaskResult:
    """One map task: map a split, then combine locally if configured."""
    output = list(job.map(split))
    if not job.use_combiner:
        return MapTaskResult(output=output, map_records=len(output), map_bytes=None)
    # Serializing the pre-combine emission is part of the task's real
    # work on Hadoop (map output is materialized before the combiner),
    # so measuring it inside the timed region is faithful.
    map_bytes = sum(record_size(key, value) for key, value in output)
    combined = apply_combiner(job, output)
    return MapTaskResult(output=combined, map_records=len(output), map_bytes=map_bytes)


def run_reduce_task(
    job: MapReduceJob, partition: list[tuple[Any, Any]]
) -> list[tuple[Any, Any]]:
    """One reduce task: sort the partition, then reduce it whole."""
    ordered = sorted(
        partition,
        key=lambda record: job.sort_key(record[0]),
        reverse=job.sort_descending,
    )
    return list(job.reduce_partition(ordered))


def run_task_attempts(
    task_callable: Callable[[], Any],
    task_label: str,
    injector: FailureInjector | None = None,
) -> tuple[Any, TaskSpan]:
    """Run one task with retries; return ``(result, task span)``.

    The span records every attempt (failed ones included) so traces show
    retries as child spans.  Its ``wall_seconds`` — the sum over attempts
    — is the task time the cluster model prices, exactly as before.
    """
    resolved = injector.resolve(task_label) if injector is not None else None
    span = TaskSpan(name=task_label)
    attempts = 0
    max_attempts = resolved.max_attempts if resolved else 1
    while True:
        attempts += 1
        start = time.perf_counter()
        failed = resolved is not None and resolved.attempt_fails()
        if not failed:
            result = task_callable()
            span.attempts.append(
                AttemptSpan(
                    index=attempts,
                    wall_seconds=time.perf_counter() - start,
                    failed=False,
                )
            )
            return result, span
        # A failed attempt burns its full runtime before dying (the task
        # is executed and its output discarded — Hadoop's failure mode is
        # a task lost near completion, not one rejected at submission).
        # This is what makes injected failures visible to the straggler
        # model: the retried task occupies its slot for every attempt, so
        # a speculative backup (priced from the clean attempt) can win.
        task_callable()
        span.attempts.append(
            AttemptSpan(
                index=attempts, wall_seconds=time.perf_counter() - start, failed=True
            )
        )
        if attempts >= max_attempts:
            raise JobFailedError(f"task {task_label} failed after {attempts} attempts")


class LocalRuntime:
    """Runs jobs in-process with per-task timing and attempt retries.

    Pass a :class:`~repro.mapreduce.tracing.Tracer` to collect every job
    span the runtime produces; a :class:`~repro.mapreduce.cluster.RunLog`
    offers the same capture at the cluster level without one.
    """

    def __init__(
        self,
        failure_injector: FailureInjector | None = None,
        tracer: Tracer | None = None,
        shuffle: ShuffleConfig | str | None = None,
    ) -> None:
        self.failure_injector = failure_injector
        self.tracer = tracer
        if isinstance(shuffle, str):
            shuffle = ShuffleConfig(mode=shuffle)
        self.shuffle = shuffle

    def _run_attempts(
        self, task_callable: Callable[[], Any], task_label: str
    ) -> tuple[Any, TaskSpan]:
        return run_task_attempts(task_callable, task_label, self.failure_injector)

    def _execute_map_tasks(
        self, job: MapReduceJob, splits: list[InputSplit]
    ) -> Iterator[tuple[MapTaskResult, TaskSpan]]:
        """Run every map task; yield ``(result, span)`` in split order.

        A lazy iterator, not a list: the driver consumes each task's
        output as it arrives (feeding it into the shuffle, which may
        spill it to disk), so whole-job map output is never required to
        be resident at once.
        """
        for split in splits:
            yield self._run_attempts(
                lambda split=split: run_map_task(job, split),
                f"{job.name}/map-{split.split_id}",
            )

    def _execute_reduce_tasks(
        self, job: MapReduceJob, partitions: list[list[tuple[Any, Any]]]
    ) -> list[tuple[list[tuple[Any, Any]], TaskSpan]]:
        """Run every reduce task; return ``(output, span)`` in partition order."""
        return [
            self._run_attempts(
                lambda partition=partition: run_reduce_task(job, partition),
                f"{job.name}/reduce-{reducer_id}",
            )
            for reducer_id, partition in enumerate(partitions)
        ]

    def run(self, job: MapReduceJob, splits: list[InputSplit]) -> JobResult:
        """Execute ``job`` over ``splits`` and return its :class:`JobResult`.

        Reduce jobs route their map output through the configured shuffle
        (:mod:`repro.mapreduce.shuffle`): each task's output is accounted
        and handed over as soon as the task finishes, then released, so
        with the external shuffle the driver never holds the whole map
        output resident.  The shuffle is always closed — spill files are
        deleted even when a task exhausts its attempts and the job aborts.
        """
        counters = Counters()
        shuffle = None if job.num_reducers == 0 else make_shuffle(self.shuffle, job)
        try:
            return self._run_with_shuffle(job, splits, counters, shuffle)
        finally:
            if shuffle is not None:
                shuffle.close()

    def _run_with_shuffle(
        self,
        job: MapReduceJob,
        splits: list[InputSplit],
        counters: Counters,
        shuffle: ShuffleBase | None,
    ) -> JobResult:
        map_task_seconds: list[float] = []
        map_spans: list[TaskSpan] = []
        all_map_output: list[tuple[Any, Any]] = []  # map-only jobs
        input_records = 0
        map_records = 0  # pre-combine emission
        map_bytes = 0
        map_output_records = 0  # post-combine records entering the shuffle
        shuffle_bytes = 0  # post-combine: what actually crosses the wire
        # Generator first in the zip: after the last task, the next() that
        # stops the zip also resumes (and so finishes) the generator,
        # closing any worker pool its hooks hold open.
        for (task, span), split in zip(self._execute_map_tasks(job, splits), splits):
            sizes = [record_size(key, value) for key, value in task.output]
            task_bytes = sum(sizes)
            input_records += len(split)
            counters.increment("map.input_records", len(split))
            counters.increment("map.output_records", len(task.output))
            if job.use_combiner:
                counters.increment("combine.input_records", task.map_records)
                counters.increment("combine.output_records", len(task.output))
            span.records_out = task.map_records
            span.bytes_out = task.map_bytes if task.map_bytes is not None else task_bytes
            map_records += task.map_records
            map_bytes += span.bytes_out
            map_output_records += len(task.output)
            shuffle_bytes += task_bytes
            map_spans.append(span)
            map_task_seconds.append(span.wall_seconds)
            if shuffle is None:
                all_map_output.extend(task.output)
            else:
                shuffle.add_records(task.output, sizes)
                task.output = []  # the shuffle owns the records now
        counters.increment("shuffle.bytes", shuffle_bytes)

        stages = [
            StageSpan(
                name="map",
                records_in=input_records,
                records_out=map_records,
                bytes_out=map_bytes,
                tasks=map_spans,
            )
        ]
        if job.use_combiner:
            stages.append(
                StageSpan(
                    name="combine",
                    records_in=map_records,
                    records_out=map_output_records,
                    bytes_out=shuffle_bytes,
                )
            )
        # The shuffle stage always carries the wire volume: shuffled bytes
        # for reduce jobs, HDFS-written output bytes for map-only jobs.
        stages.append(
            StageSpan(
                name="shuffle",
                records_in=map_output_records,
                records_out=map_output_records,
                bytes_out=shuffle_bytes,
            )
        )

        if shuffle is None:
            # Map-only jobs still pay to write their output (HDFS), so the
            # emitted bytes count as communication volume.
            return self._finish(
                job,
                JobResult(
                    job_name=job.name,
                    output=all_map_output,
                    counters=counters,
                    map_task_seconds=map_task_seconds,
                    reduce_task_seconds=[],
                    shuffle_bytes=shuffle_bytes,
                    map_output_records=map_output_records,
                ),
                stages,
            )

        partitions = shuffle.partitions()
        sanitizer = sanitizer_current()
        if sanitizer is not None:
            sanitizer.observe_partitions(job.name, partitions)
        reduce_results = self._execute_reduce_tasks(job, partitions)
        reduce_task_seconds = [span.wall_seconds for _, span in reduce_results]
        reducer_outputs = [output for output, _ in reduce_results]
        reduce_spans: list[TaskSpan] = []
        final_output: list[tuple[Any, Any]] = []
        reduce_bytes = 0
        for partition, (output, span) in zip(partitions, reduce_results):
            counters.increment("reduce.input_records", len(partition))
            counters.increment("reduce.output_records", len(output))
            span.records_out = len(output)
            span.bytes_out = sum(record_size(key, value) for key, value in output)
            reduce_bytes += span.bytes_out
            reduce_spans.append(span)
            final_output.extend(output)
        stages.append(
            StageSpan(
                name="reduce",
                records_in=map_output_records,
                records_out=len(final_output),
                bytes_out=reduce_bytes,
                tasks=reduce_spans,
            )
        )

        return self._finish(
            job,
            JobResult(
                job_name=job.name,
                output=final_output,
                counters=counters,
                map_task_seconds=map_task_seconds,
                reduce_task_seconds=reduce_task_seconds,
                shuffle_bytes=shuffle_bytes,
                map_output_records=map_output_records,
                reducer_outputs=reducer_outputs,
                shuffle_stats=dict(shuffle.stats),
            ),
            stages,
        )

    def _finish(
        self, job: MapReduceJob, result: JobResult, stages: list[StageSpan]
    ) -> JobResult:
        """Attach the span tree to the result and record it with the tracer."""
        result.trace = JobSpan(name=job.name, stage_label=job.stage_label, stages=stages)
        if self.tracer is not None:
            self.tracer.record(result.trace)
        sanitizer = sanitizer_current()
        if sanitizer is not None:
            sanitizer.observe_job_output(job.name, result.output)
        return result
