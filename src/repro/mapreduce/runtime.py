"""Execution engine for MapReduce jobs.

The runtime executes a job in-process, task by task, and *measures* each
task's CPU time.  It does not try to be a real cluster: parallelism is
reintroduced afterwards by :mod:`repro.mapreduce.cluster`, which schedules
the measured task times onto a configurable number of slots.  This split —
real computation, simulated placement — is what lets a laptop reproduce the
scaling *shapes* of a 9-node Hadoop deployment (see DESIGN.md §3).

Failure injection (`FailureInjector`) emulates task attempts: a failed
attempt is retried up to ``max_attempts`` times, as Hadoop's ApplicationMaster
would, and the wasted attempt time is charged to the task.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import JobFailedError
from repro.mapreduce.counters import Counters
from repro.mapreduce.hdfs import InputSplit
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.serde import record_size

__all__ = ["FailureInjector", "JobResult", "LocalRuntime"]


class FailureInjector:
    """Randomly fails task attempts to exercise the retry machinery."""

    def __init__(self, probability: float, seed: int = 0, max_attempts: int = 4):
        if not 0.0 <= probability < 1.0:
            raise ValueError("failure probability must be in [0, 1)")
        self.probability = probability
        self.max_attempts = max_attempts
        self._rng = np.random.default_rng(seed)

    def attempt_fails(self) -> bool:
        """Decide whether the next task attempt fails."""
        return bool(self._rng.random() < self.probability)


@dataclass
class JobResult:
    """Everything a job run produced, plus per-task measurements."""

    job_name: str
    output: list[tuple]
    counters: Counters
    map_task_seconds: list[float]
    reduce_task_seconds: list[float]
    shuffle_bytes: int
    map_output_records: int
    #: Filled in by the cluster model: simulated wall-clock of this job.
    simulated_seconds: float = 0.0
    #: Per-reducer outputs, in partition order (useful for debugging).
    reducer_outputs: list[list[tuple]] = field(default_factory=list)


class LocalRuntime:
    """Runs jobs in-process with per-task timing and attempt retries."""

    def __init__(self, failure_injector: FailureInjector | None = None):
        self.failure_injector = failure_injector

    def _run_attempts(self, task_callable, task_label: str) -> tuple[object, float]:
        """Run one task with retries; return (result, total attempt seconds)."""
        attempts = 0
        total_seconds = 0.0
        max_attempts = (
            self.failure_injector.max_attempts if self.failure_injector else 1
        )
        while True:
            attempts += 1
            start = time.perf_counter()
            failed = self.failure_injector is not None and self.failure_injector.attempt_fails()
            if not failed:
                result = task_callable()
                total_seconds += time.perf_counter() - start
                return result, total_seconds
            # A failed attempt still burns (a fraction of) its runtime.
            total_seconds += time.perf_counter() - start
            if attempts >= max_attempts:
                raise JobFailedError(
                    f"task {task_label} failed after {attempts} attempts"
                )

    def run(self, job: MapReduceJob, splits: list[InputSplit]) -> JobResult:
        """Execute ``job`` over ``splits`` and return its :class:`JobResult`."""
        counters = Counters()
        map_task_seconds: list[float] = []
        all_map_output: list[tuple] = []
        shuffle_bytes = 0

        for split in splits:
            def map_task(split=split):
                output = list(job.map(split))
                if job.use_combiner:
                    grouped: dict = defaultdict(list)
                    for key, value in output:
                        grouped[_hashable(key)].append((key, value))
                    combined = []
                    for pairs in grouped.values():
                        key = pairs[0][0]
                        combined.extend(job.combine(key, [v for _, v in pairs]))
                    output = combined
                return output

            output, seconds = self._run_attempts(map_task, f"{job.name}/map-{split.split_id}")
            map_task_seconds.append(seconds)
            counters.increment("map.input_records", len(split))
            counters.increment("map.output_records", len(output))
            for key, value in output:
                shuffle_bytes += record_size(key, value)
            all_map_output.extend(output)

        counters.increment("shuffle.bytes", shuffle_bytes)

        if job.num_reducers == 0:
            # Map-only jobs still pay to write their output (HDFS), so the
            # emitted bytes count as communication volume.
            return JobResult(
                job_name=job.name,
                output=all_map_output,
                counters=counters,
                map_task_seconds=map_task_seconds,
                reduce_task_seconds=[],
                shuffle_bytes=shuffle_bytes,
                map_output_records=len(all_map_output),
            )

        partitions: list[list[tuple]] = [[] for _ in range(job.num_reducers)]
        for key, value in all_map_output:
            partitions[job.partition(key, job.num_reducers)].append((key, value))

        reduce_task_seconds: list[float] = []
        reducer_outputs: list[list[tuple]] = []
        final_output: list[tuple] = []
        for reducer_id, partition in enumerate(partitions):
            def reduce_task(partition=partition):
                ordered = sorted(
                    partition,
                    key=lambda record: job.sort_key(record[0]),
                    reverse=job.sort_descending,
                )
                return list(job.reduce_partition(ordered))

            output, seconds = self._run_attempts(
                reduce_task, f"{job.name}/reduce-{reducer_id}"
            )
            reduce_task_seconds.append(seconds)
            counters.increment("reduce.input_records", len(partition))
            counters.increment("reduce.output_records", len(output))
            reducer_outputs.append(output)
            final_output.extend(output)

        return JobResult(
            job_name=job.name,
            output=final_output,
            counters=counters,
            map_task_seconds=map_task_seconds,
            reduce_task_seconds=reduce_task_seconds,
            shuffle_bytes=shuffle_bytes,
            map_output_records=len(all_map_output),
            reducer_outputs=reducer_outputs,
        )


def _hashable(key):
    """Map a key to something usable as a dict key for combining."""
    try:
        hash(key)
        return key
    except TypeError:
        return repr(key)
