"""A process-pool runtime: real parallelism for GIL-bound tasks.

:class:`ProcessPoolRuntime` executes a job's map (and reduce) tasks on a
``concurrent.futures.ProcessPoolExecutor``.  Where ``ThreadPoolRuntime``
only helps numpy-heavy jobs (the GIL is released inside the kernels), a
process pool also parallelizes the pure-Python stages — the greedy engine
replays of DGreedyAbs and the traceback walks — which hold the GIL the
whole time.

Outputs are byte-identical to
:class:`~repro.mapreduce.runtime.LocalRuntime`: the same split-order
collection contract, with task bodies shipped as module-level functions
over picklable ``(job, split)`` state.  Two things need care across the
process boundary:

* **Driver-side shared state.**  Some jobs are closures over mutable
  driver state (the layered DP's jobs read and write the driver's row
  store from their map tasks).  Such jobs declare ``process_safe = False``
  and are executed in-process via the inherited ``LocalRuntime`` hooks —
  correct, just not parallel.  Jobs default to ``process_safe = True``.
* **Failure injection.**  A shared-RNG injector cannot exist in N
  processes at once (each fork would replay the same draws, and the draw
  *order* would depend on scheduling).  :class:`ProcessSafeFailureInjector`
  instead derives an independent, deterministically-seeded injector per
  task label, so the failure pattern is reproducible regardless of worker
  count or completion order.
"""

from __future__ import annotations

import os
import zlib
from collections.abc import Iterator
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.mapreduce.hdfs import InputSplit
from repro.mapreduce.job import MapReduceJob, is_process_safe
from repro.mapreduce.runtime import (
    FailureInjector,
    LocalRuntime,
    MapTaskResult,
    run_map_task,
    run_reduce_task,
    run_task_attempts,
)
from repro.mapreduce.shuffle import ShuffleConfig
from repro.mapreduce.tracing import TaskSpan, Tracer

__all__ = ["ProcessPoolRuntime", "ProcessSafeFailureInjector", "default_process_count"]


def default_process_count() -> int:
    """Process count for :class:`ProcessPoolRuntime` when none is given.

    One worker per available core, clamped to [2, 16]: the floor keeps
    actual concurrency on single-core CI boxes, and the cap is tighter
    than the thread pool's because every worker is a full interpreter
    (fork/spawn cost, per-process numpy state, pickled task traffic).
    """
    return max(2, min(16, os.cpu_count() or 2))


class ProcessSafeFailureInjector(FailureInjector):
    """Failure injection that is deterministic across process pools.

    Rather than sharing one RNG (impossible across processes without the
    draw order depending on scheduling), :meth:`for_task` derives a fresh
    :class:`FailureInjector` per task from ``(seed, crc32(task label))``.
    Task labels are stable (job name + split/reducer id), so a given run
    configuration fails exactly the same attempts no matter how many
    workers execute it — or whether it runs in-process.
    """

    def for_task(self, task_label: str) -> FailureInjector:
        task_seed = (self.seed ^ zlib.crc32(task_label.encode())) & 0xFFFFFFFF
        return FailureInjector(
            self.probability, seed=task_seed, max_attempts=self.max_attempts
        )

    def resolve(self, task_label: str) -> FailureInjector:
        """Per-label derivation — the hook ``run_task_attempts`` calls.

        Because the resolution happens inside the shared task-attempt
        path, *every* runtime (local, thread, process, and the in-process
        fallback for driver-state jobs) fails exactly the same attempts
        when given the same ``(probability, seed)``.
        """
        return self.for_task(task_label)

    def attempt_fails(self) -> bool:  # pragma: no cover - guard
        raise TypeError(
            "ProcessSafeFailureInjector draws per task; use for_task(label)"
        )


def _run_map_task_in_worker(
    args: tuple[MapReduceJob, InputSplit, str, FailureInjector | None],
) -> tuple[MapTaskResult, TaskSpan]:
    """Module-level worker body (bound methods don't pickle).

    The returned :class:`~repro.mapreduce.tracing.TaskSpan` is the span
    fragment the driver stitches into the job's trace — built by the same
    ``run_task_attempts`` every runtime uses, so the fragment's shape is
    identical whether the task ran here or in the driver.
    """
    job, split, task_label, injector = args
    return run_task_attempts(lambda: run_map_task(job, split), task_label, injector)


def _run_reduce_task_in_worker(
    args: tuple[MapReduceJob, list[tuple[Any, Any]], str, FailureInjector | None],
) -> tuple[list[tuple[Any, Any]], TaskSpan]:
    job, partition, task_label, injector = args
    return run_task_attempts(
        lambda: run_reduce_task(job, partition), task_label, injector
    )


class ProcessPoolRuntime(LocalRuntime):
    """Runs map/reduce tasks on a process pool.

    Jobs (and their splits/outputs) must be picklable; jobs that share
    driver-side state opt out with ``process_safe = False`` and fall back
    to in-process execution.  Task timing is measured inside the worker,
    so the simulated cluster prices the same per-task seconds it would
    see from ``LocalRuntime`` (modulo interference noise).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        failure_injector: ProcessSafeFailureInjector | None = None,
        tracer: Tracer | None = None,
        shuffle: ShuffleConfig | str | None = None,
    ) -> None:
        if max_workers is None:
            max_workers = default_process_count()
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if failure_injector is not None and not isinstance(
            failure_injector, ProcessSafeFailureInjector
        ):
            raise TypeError(
                "ProcessPoolRuntime needs a ProcessSafeFailureInjector: a "
                "shared-RNG injector's draw order would depend on scheduling"
            )
        super().__init__(failure_injector, tracer, shuffle)
        self.max_workers = max_workers

    def _task_injector(self, task_label: str) -> FailureInjector | None:
        # Workers receive a plain per-label injector rather than the
        # process-safe parent: deriving driver-side keeps the pickled
        # payload free of the parent's RNG state.
        if self.failure_injector is None:
            return None
        return self.failure_injector.resolve(task_label)

    def _execute_map_tasks(
        self, job: MapReduceJob, splits: list[InputSplit]
    ) -> Iterator[tuple[MapTaskResult, TaskSpan]]:
        if not is_process_safe(job):
            yield from super()._execute_map_tasks(job, splits)
            return
        work = [
            (job, split, label, self._task_injector(label))
            for split in splits
            for label in [f"{job.name}/map-{split.split_id}"]
        ]
        # Yield (in split order) while the pool context stays open, so the
        # driver can stream completed task outputs into the shuffle.
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            yield from pool.map(_run_map_task_in_worker, work)

    def _execute_reduce_tasks(
        self, job: MapReduceJob, partitions: list[list[tuple[Any, Any]]]
    ) -> list[tuple[list[tuple[Any, Any]], TaskSpan]]:
        if not is_process_safe(job):
            return super()._execute_reduce_tasks(job, partitions)
        work = [
            (job, partition, label, self._task_injector(label))
            for reducer_id, partition in enumerate(partitions)
            for label in [f"{job.name}/reduce-{reducer_id}"]
        ]
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(_run_reduce_task_in_worker, work))
