"""Structured stage-level tracing for MapReduce job runs.

Every job run produces one span tree::

    job ─┬─ stage "map"     ─┬─ task "job/map-0" ─┬─ attempt 1 (failed)
         │                   └─ task "job/map-1"  └─ attempt 2
         ├─ stage "combine"  (only when the job uses a combiner)
         ├─ stage "shuffle"  (bytes that cross the wire; simulated time)
         └─ stage "reduce"  ─── task "job/reduce-0" ── attempt 1

The span tree is the *observability contract* of the runtime layer: all
three runtimes (``LocalRuntime``, ``ThreadPoolRuntime``,
``ProcessPoolRuntime``) emit the same tree for the same job because task
spans are built inside :func:`repro.mapreduce.runtime.run_task_attempts`
— the one code path every task attempt goes through — and returned to the
driver as picklable fragments that :meth:`LocalRuntime.run` stitches into
stages in split/partition order.  Retried attempts appear as *child
spans* of their task, never as duplicate tasks.

Wall time is measured; simulated time is filled in afterwards by
:class:`repro.mapreduce.cluster.SimulatedCluster` when the job is priced.
Byte counts use the deterministic serde model
(:mod:`repro.mapreduce.serde`), so traces are comparable across hosts.

The JSON rendering (:meth:`Tracer.to_dict`) is versioned with a top-level
``schema`` field; ``docs/OBSERVABILITY.md`` documents every field, and
the golden-schema test pins the key sets.  :func:`canonical_trace`
strips the timing fields and normalizes task order, which is how the
runtime-equivalence tests compare traces across execution engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "AttemptSpan",
    "TaskSpan",
    "StageSpan",
    "JobSpan",
    "Tracer",
    "canonical_trace",
    "job_emitted_bytes",
]

#: Version of the trace JSON layout.  Bump when a field is added, removed,
#: or changes meaning; the golden-schema test pins the current shape.
#: Schema 2 added the ``speculative``/``canceled`` attempt flags and the
#: top-level ``meta`` document (layer plan of DP runs).
TRACE_SCHEMA_VERSION = 2


@dataclass
class AttemptSpan:
    """One task attempt: retries of a failed task are siblings, not copies.

    ``speculative`` marks a *backup* attempt the simulated scheduler
    launched against a straggling task — those exist only in the pricing
    model (the runtime executed the task once), so their ``wall_seconds``
    is simulated slot occupancy, not measured time, and they are excluded
    from the task's wall total.  ``canceled`` marks the attempt that lost
    the race once its duplicate finished (a losing backup, or the
    original attempt when the backup won).
    """

    index: int
    wall_seconds: float
    failed: bool
    speculative: bool = False
    canceled: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "attempt",
            "index": self.index,
            "wall_seconds": self.wall_seconds,
            "failed": self.failed,
            "speculative": self.speculative,
            "canceled": self.canceled,
        }


@dataclass
class TaskSpan:
    """One map or reduce task, with its attempt history.

    Built inside ``run_task_attempts`` (so every runtime produces it the
    same way) and shipped back to the driver as a picklable fragment;
    the driver fills ``records_out``/``bytes_out`` from the task output
    it already walks for shuffle accounting.
    """

    name: str
    attempts: list[AttemptSpan] = field(default_factory=list)
    records_out: int = 0
    bytes_out: int = 0

    @property
    def wall_seconds(self) -> float:
        """Total *measured* attempt time, failed attempts included.

        Speculative backup attempts are excluded: they are simulated by
        the pricing model, not executed, so counting them would
        double-charge re-pricing (``price_log``) and inflate measured
        wall totals.
        """
        return sum(
            attempt.wall_seconds
            for attempt in self.attempts
            if not attempt.speculative
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "task",
            "name": self.name,
            "records_out": self.records_out,
            "bytes_out": self.bytes_out,
            "wall_seconds": self.wall_seconds,
            "attempts": [attempt.to_dict() for attempt in self.attempts],
        }


@dataclass
class StageSpan:
    """One pipeline stage of a job: map, combine, shuffle, or reduce.

    ``bytes_out`` is the stage's serialized output volume under the serde
    model.  For the ``shuffle`` stage it is exactly what crosses the wire
    (post-combine); for map-only jobs the shuffle stage records the bytes
    written to HDFS, matching ``JobResult.shuffle_bytes``.  ``combine``
    and ``shuffle`` carry no tasks of their own: combining runs inside
    the map tasks, and the shuffle is priced, not executed.
    """

    name: str
    records_in: int = 0
    records_out: int = 0
    bytes_out: int = 0
    simulated_seconds: float = 0.0
    tasks: list[TaskSpan] = field(default_factory=list)

    @property
    def wall_seconds(self) -> float:
        return sum(task.wall_seconds for task in self.tasks)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "stage",
            "name": self.name,
            "records_in": self.records_in,
            "records_out": self.records_out,
            "bytes_out": self.bytes_out,
            "wall_seconds": self.wall_seconds,
            "simulated_seconds": self.simulated_seconds,
            "tasks": [task.to_dict() for task in self.tasks],
        }


@dataclass
class JobSpan:
    """The root span of one executed job."""

    name: str
    stage_label: str
    stages: list[StageSpan] = field(default_factory=list)
    simulated_seconds: float = 0.0

    @property
    def wall_seconds(self) -> float:
        return sum(stage.wall_seconds for stage in self.stages)

    def stage(self, name: str) -> StageSpan | None:
        """Return the stage span called ``name``, or None when absent."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "job",
            "name": self.name,
            "stage_label": self.stage_label,
            "wall_seconds": self.wall_seconds,
            "simulated_seconds": self.simulated_seconds,
            "stages": [stage.to_dict() for stage in self.stages],
        }


class Tracer:
    """Collects the job spans of one algorithm invocation.

    A runtime with a tracer attached records every job it runs; a
    :class:`~repro.mapreduce.cluster.SimulatedCluster` additionally
    exposes the spans of its run log through ``RunLog.trace()``, which
    builds the same document from the ``JobResult.trace`` fields.
    """

    def __init__(self) -> None:
        self.jobs: list[JobSpan] = []
        self.driver_seconds: float = 0.0
        self.meta: dict[str, Any] = {}

    def record(self, span: JobSpan) -> None:
        """Append one finished job span."""
        self.jobs.append(span)

    def to_dict(self) -> dict[str, Any]:
        """Render the versioned trace document (``schema`` = 2)."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "driver_seconds": self.driver_seconds,
            "meta": dict(self.meta),
            "jobs": [span.to_dict() for span in self.jobs],
        }


#: Fields dropped by :func:`canonical_trace`: everything time-valued.
_TIMING_FIELDS = frozenset({"wall_seconds", "simulated_seconds", "driver_seconds"})


def canonical_trace(trace: dict[str, Any]) -> dict[str, Any]:
    """The runtime-independent projection of a trace document.

    Strips every timing field (wall and simulated seconds differ between
    runs and runtimes) and sorts each stage's tasks by name (concurrent
    runtimes may interleave task *execution*; collection order is already
    deterministic, but the comparison must not rely on it).  Two runs of
    the same job on any runtimes are equivalent iff their canonical
    traces are equal — including attempt counts and failure flags.
    """

    def strip(node: Any) -> Any:
        if isinstance(node, dict):
            cleaned = {
                key: strip(value)
                for key, value in node.items()
                if key not in _TIMING_FIELDS
            }
            if isinstance(cleaned.get("tasks"), list):
                cleaned["tasks"] = sorted(
                    cleaned["tasks"], key=lambda task: str(task.get("name", ""))
                )
            return cleaned
        if isinstance(node, list):
            return [strip(item) for item in node]
        return node

    result: dict[str, Any] = strip(trace)
    return result


def job_emitted_bytes(job: dict[str, Any]) -> int:
    """Bytes this job put on the wire, read from its span dict.

    The ``shuffle`` stage records post-combine serialized bytes for
    shuffled jobs and the HDFS-written output bytes for map-only jobs, so
    it is the communication volume in both cases (and matches
    ``JobResult.shuffle_bytes``).
    """
    for stage in job.get("stages", []):
        if stage.get("name") == "shuffle":
            return int(stage.get("bytes_out", 0))
    return 0
