"""Input splits: the HDFS-block stand-in.

Two split disciplines appear in the paper:

* **sub-tree aligned** splits (CON, DGreedyAbs, the DP framework): each
  mapper reads a contiguous, power-of-two sized portion of the data array
  so that it owns a complete error sub-tree (Section 4 / Figure 3);
* **block-aligned** splits (Send-Coef): each mapper takes as many data
  points as fit in an HDFS block, with no power-of-two alignment
  (Appendix A.3).

Both disciplines above hold the whole data array resident.  For
out-of-core runs, :class:`FileDataset` keeps the data in a ``.npy`` file
and hands out :class:`FileSplit` instances whose ``values`` are read
lazily through a shared memory map — a split pickles as just
``(path, offset, length)``, so a :class:`~repro.mapreduce.process.
ProcessPoolRuntime` worker maps only the slice it actually reads and the
driver never materializes the input at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, cast

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.exceptions import InvalidInputError
from repro.wavelet.transform import is_power_of_two

__all__ = ["FileDataset", "FileSplit", "InputSplit", "aligned_splits", "block_splits"]


@dataclass
class InputSplit:
    """One mapper's input: a contiguous slice of the data array.

    ``offset`` is the index of the first data point; ``values`` are the
    points themselves.  ``meta`` carries split-specific context (e.g. which
    base sub-tree the split corresponds to).
    """

    split_id: int
    offset: int
    values: NDArray[np.float64]
    meta: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def serialized_size(self) -> int:
        """Modeled on-disk size (used only for accounting, never shuffled)."""
        return int(self.values.nbytes)


def aligned_splits(data: ArrayLike, split_size: int) -> list[InputSplit]:
    """Partition ``data`` into power-of-two aligned splits of ``split_size``.

    ``len(data)`` and ``split_size`` must both be powers of two with
    ``split_size <= len(data)``, so every split is exactly the leaf set of
    one error sub-tree (the locality-preserving partitioning of Section 4).
    """
    values = np.asarray(data, dtype=np.float64)
    n = values.shape[0]
    if not is_power_of_two(n):
        raise InvalidInputError(f"data length {n} is not a power of two")
    if not is_power_of_two(split_size):
        raise InvalidInputError(f"split size {split_size} is not a power of two")
    if split_size > n:
        raise InvalidInputError(f"split size {split_size} exceeds data length {n}")
    return [
        InputSplit(split_id=i, offset=i * split_size, values=values[i * split_size : (i + 1) * split_size])
        for i in range(n // split_size)
    ]


def block_splits(data: ArrayLike, block_size: int) -> list[InputSplit]:
    """Partition ``data`` into HDFS-style blocks of ``block_size`` points.

    No power-of-two alignment is required (Send-Coef's discipline); the
    final block may be short.
    """
    values = np.asarray(data, dtype=np.float64)
    if block_size <= 0:
        raise InvalidInputError("block size must be positive")
    n = values.shape[0]
    splits: list[InputSplit] = []
    for i, start in enumerate(range(0, n, block_size)):
        splits.append(
            InputSplit(split_id=i, offset=start, values=values[start : start + block_size])
        )
    return splits


@lru_cache(maxsize=8)
def _mapped_array(path: str) -> NDArray[np.float64]:
    """One shared read-only memory map per dataset file (per process)."""
    return cast("NDArray[np.float64]", np.load(path, mmap_mode="r"))


class FileSplit(InputSplit):
    """A split whose ``values`` live in a ``.npy`` file, read on demand.

    Pickles as ``(split_id, offset, path, length, meta)`` — never the
    data — so shipping a split to a process-pool worker costs a few
    hundred bytes regardless of N.  ``values`` is a slice of a shared
    read-only memory map, so the OS pages in only what the map task
    touches and can evict it freely afterwards.
    """

    def __init__(
        self,
        split_id: int,
        offset: int,
        path: str | Path,
        length: int,
        meta: dict[str, Any] | None = None,
    ) -> None:
        # Deliberately not calling the dataclass __init__: ``values`` is
        # a lazy property here, not a stored field.
        self.split_id = split_id
        self.offset = offset
        self.path = str(path)
        self.length = int(length)
        self.meta = meta if meta is not None else {}

    @property
    def values(self) -> NDArray[np.float64]:
        return _mapped_array(self.path)[self.offset : self.offset + self.length]

    @values.setter
    def values(self, _: NDArray[np.float64]) -> None:
        raise TypeError("FileSplit.values is file-backed and read-only")

    def __len__(self) -> int:
        return self.length

    def serialized_size(self) -> int:
        return self.length * 8  # float64 points on disk

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FileSplit):
            return NotImplemented
        return (self.split_id, self.offset, self.path, self.length, self.meta) == (
            other.split_id,
            other.offset,
            other.path,
            other.length,
            other.meta,
        )

    def __repr__(self) -> str:
        return (
            f"FileSplit(split_id={self.split_id}, offset={self.offset}, "
            f"length={self.length}, path={self.path!r})"
        )


class FileDataset:
    """A float64 ``.npy`` dataset accessed through lazy, mmap-backed splits.

    The out-of-core counterpart of passing a resident array to
    :func:`aligned_splits`: algorithms that only need ``len(data)`` plus
    sub-tree aligned splits (DGreedyAbs/DGreedyRel) accept either.  The
    file must hold a one-dimensional float64 array of power-of-two
    length — validated from the ``.npy`` header without reading the data.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = str(path)
        try:
            array = np.load(self.path, mmap_mode="r")
        except (OSError, ValueError) as exc:
            raise InvalidInputError(
                f"cannot open {self.path!r} as a .npy dataset: {exc}"
            ) from exc
        if array.ndim != 1:
            raise InvalidInputError(
                f"dataset {self.path!r} must be one-dimensional, got shape {array.shape}"
            )
        if array.dtype != np.float64:
            raise InvalidInputError(
                f"dataset {self.path!r} must be float64, got dtype {array.dtype}"
            )
        self.length = int(array.shape[0])
        if not is_power_of_two(self.length):
            raise InvalidInputError(
                f"dataset length {self.length} is not a power of two"
            )

    def __len__(self) -> int:
        return self.length

    def aligned_splits(self, split_size: int) -> list[InputSplit]:
        """Power-of-two aligned :class:`FileSplit` partitioning of the file."""
        if not is_power_of_two(split_size):
            raise InvalidInputError(f"split size {split_size} is not a power of two")
        if split_size > self.length:
            raise InvalidInputError(
                f"split size {split_size} exceeds data length {self.length}"
            )
        return [
            FileSplit(
                split_id=i,
                offset=i * split_size,
                path=self.path,
                length=split_size,
            )
            for i in range(self.length // split_size)
        ]
