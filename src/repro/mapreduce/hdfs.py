"""Input splits: the HDFS-block stand-in.

Two split disciplines appear in the paper:

* **sub-tree aligned** splits (CON, DGreedyAbs, the DP framework): each
  mapper reads a contiguous, power-of-two sized portion of the data array
  so that it owns a complete error sub-tree (Section 4 / Figure 3);
* **block-aligned** splits (Send-Coef): each mapper takes as many data
  points as fit in an HDFS block, with no power-of-two alignment
  (Appendix A.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.exceptions import InvalidInputError
from repro.wavelet.transform import is_power_of_two

__all__ = ["InputSplit", "aligned_splits", "block_splits"]


@dataclass
class InputSplit:
    """One mapper's input: a contiguous slice of the data array.

    ``offset`` is the index of the first data point; ``values`` are the
    points themselves.  ``meta`` carries split-specific context (e.g. which
    base sub-tree the split corresponds to).
    """

    split_id: int
    offset: int
    values: NDArray[np.float64]
    meta: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def serialized_size(self) -> int:
        """Modeled on-disk size (used only for accounting, never shuffled)."""
        return int(self.values.nbytes)


def aligned_splits(data: ArrayLike, split_size: int) -> list[InputSplit]:
    """Partition ``data`` into power-of-two aligned splits of ``split_size``.

    ``len(data)`` and ``split_size`` must both be powers of two with
    ``split_size <= len(data)``, so every split is exactly the leaf set of
    one error sub-tree (the locality-preserving partitioning of Section 4).
    """
    values = np.asarray(data, dtype=np.float64)
    n = values.shape[0]
    if not is_power_of_two(n):
        raise InvalidInputError(f"data length {n} is not a power of two")
    if not is_power_of_two(split_size):
        raise InvalidInputError(f"split size {split_size} is not a power of two")
    if split_size > n:
        raise InvalidInputError(f"split size {split_size} exceeds data length {n}")
    return [
        InputSplit(split_id=i, offset=i * split_size, values=values[i * split_size : (i + 1) * split_size])
        for i in range(n // split_size)
    ]


def block_splits(data: ArrayLike, block_size: int) -> list[InputSplit]:
    """Partition ``data`` into HDFS-style blocks of ``block_size`` points.

    No power-of-two alignment is required (Send-Coef's discipline); the
    final block may be short.
    """
    values = np.asarray(data, dtype=np.float64)
    if block_size <= 0:
        raise InvalidInputError("block size must be positive")
    n = values.shape[0]
    splits: list[InputSplit] = []
    for i, start in enumerate(range(0, n, block_size)):
        splits.append(
            InputSplit(split_id=i, offset=start, values=values[start : start + block_size])
        )
    return splits
