"""repro: Distributed Wavelet Thresholding for Maximum Error Metrics.

A from-scratch reproduction of Mytilinis, Tsoumakos & Koziris (SIGMOD'16):
maximum-error wavelet synopses at cluster scale — the DP parallelization
framework, DIndirectHaar, DGreedyAbs/DGreedyRel, the parallel conventional
synopsis algorithms of the appendix, and the substrates they need (Haar
error trees, centralized baselines, a MapReduce engine with a simulated
Hadoop cluster, and dataset surrogates).

Quick start::

    import numpy as np
    from repro import build_synopsis

    data = np.random.default_rng(0).uniform(0, 1000, size=1 << 14)
    synopsis = build_synopsis(data, budget=len(data) // 8)
    print(synopsis.max_abs_error(data), synopsis.range_avg(100, 200))
"""

from repro.aqp import SynopsisStore
from repro.core.thresholding import ALGORITHMS, build_synopsis
from repro.wavelet.synopsis import WaveletSynopsis

__version__ = "1.0.0"

__all__ = ["ALGORITHMS", "SynopsisStore", "WaveletSynopsis", "build_synopsis", "__version__"]
