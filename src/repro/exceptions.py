"""Exception hierarchy for the ``repro`` package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidInputError(ReproError, ValueError):
    """An input array, budget, or parameter is malformed.

    Raised, for example, when a data vector is empty, a budget is
    non-positive, or a quantization step is not strictly positive.
    """


class NotPowerOfTwoError(InvalidInputError):
    """A data vector's length is not a power of two.

    The Haar error tree is a complete binary tree; use
    :func:`repro.data.loader.pad_to_power_of_two` to pad arbitrary inputs.
    """


class MemoryBudgetExceeded(ReproError):
    """A (simulated) centralized run needs more memory than the machine has.

    The paper reports that the centralized GreedyAbs and IndirectHaar could
    not run past 17M data points on an 8 GB machine.  The benchmark harness
    models the same constraint and raises this error when a centralized
    algorithm's estimated working set exceeds the configured budget.
    """

    def __init__(
        self, required_bytes: int | float, budget_bytes: int | float, algorithm: str = ""
    ) -> None:
        self.required_bytes = int(required_bytes)
        self.budget_bytes = int(budget_bytes)
        self.algorithm = algorithm
        super().__init__(
            f"{algorithm or 'algorithm'} needs ~{self.required_bytes} bytes "
            f"but only {self.budget_bytes} are available"
        )


class InfeasibleErrorBound(ReproError):
    """No synopsis can satisfy the requested error bound.

    Raised by the dual-problem solvers (MinHaarSpace and friends) when the
    quantized search space admits no solution for the given ``epsilon``.
    """


class JobFailedError(ReproError):
    """A MapReduce job failed (e.g. a task raised or failure injection hit)."""
