"""Dataset generators: the paper's SYN workloads plus NYCT/WD surrogates."""

from repro.data.loader import (
    describe,
    next_power_of_two,
    pad_to_power_of_two,
    truncate_to_power_of_two,
)
from repro.data.nyct import NYCT_TABLE3, nyct_dataset, nyct_partitions
from repro.data.synthetic import (
    DISTRIBUTIONS,
    make_distribution,
    uniform_dataset,
    zipf_dataset,
)
from repro.data.wd import WD_TABLE3, wd_dataset, wd_partitions

__all__ = [
    "DISTRIBUTIONS",
    "NYCT_TABLE3",
    "WD_TABLE3",
    "describe",
    "make_distribution",
    "next_power_of_two",
    "nyct_dataset",
    "nyct_partitions",
    "pad_to_power_of_two",
    "truncate_to_power_of_two",
    "uniform_dataset",
    "wd_dataset",
    "wd_partitions",
    "zipf_dataset",
]
