"""Dataset shaping utilities.

The error tree is a complete binary tree, so every algorithm in this
package expects power-of-two input lengths.  Real datasets rarely oblige;
these helpers pad (with a constant, conventionally zero, as the paper's
pipeline does when partitioning NYCT/WD) or truncate.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.exceptions import InvalidInputError
from repro.wavelet.transform import is_power_of_two

__all__ = ["next_power_of_two", "pad_to_power_of_two", "truncate_to_power_of_two", "describe"]


def next_power_of_two(n: int) -> int:
    """Smallest power of two that is >= ``n``."""
    if n <= 0:
        raise InvalidInputError("n must be positive")
    return 1 << (n - 1).bit_length()


def pad_to_power_of_two(data: ArrayLike, pad_value: float = 0.0) -> NDArray[np.float64]:
    """Right-pad ``data`` with ``pad_value`` up to the next power of two."""
    values = np.asarray(data, dtype=np.float64)
    if values.ndim != 1:
        raise InvalidInputError("data must be one-dimensional")
    n = values.shape[0]
    if n == 0:
        raise InvalidInputError("data must be non-empty")
    if is_power_of_two(n):
        return values.copy()
    padded = np.full(next_power_of_two(n), pad_value, dtype=np.float64)
    padded[:n] = values
    return padded


def truncate_to_power_of_two(data: ArrayLike) -> NDArray[np.float64]:
    """Keep the longest power-of-two prefix of ``data``."""
    values = np.asarray(data, dtype=np.float64)
    if values.ndim != 1:
        raise InvalidInputError("data must be one-dimensional")
    n = values.shape[0]
    if n == 0:
        raise InvalidInputError("data must be non-empty")
    keep = 1 << (n.bit_length() - 1)
    return values[:keep].copy()


def describe(data: ArrayLike) -> dict[str, float]:
    """Summary statistics in Table 3's format (records/avg/stdv/max)."""
    values = np.asarray(data, dtype=np.float64)
    return {
        "records": int(values.shape[0]),
        "avg": float(values.mean()),
        "stdv": float(values.std()),
        "max": float(values.max()),
    }
