"""WD surrogate: the wind-direction sensor dataset of Table 3.

The original data (Knoesis linked sensor data captured during hurricanes
Ike, Bill, Bertha and Katrina) is unavailable offline.  The paper's WD
experiments depend on two properties (see DESIGN.md §3):

* values are azimuth degrees in a small bounded range (Table 3 reports
  max 655 and mean ≈ 121-138 with stdv ≈ 119 across partitions);
* the series is *smooth* — consecutive sensor readings barely move — so
  synopses achieve max-abs errors about 5x smaller than on NYCT and the
  DP algorithms' ``(ε/δ)²`` factor stays small (Figure 9).

We reproduce this with a regime-switching AR(1) walk: wind direction holds
around a regime center (drawn from a right-skewed distribution matching the
mean/stdv pattern) with small within-regime noise, then jumps to a new
regime as a front passes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidInputError

__all__ = ["wd_dataset", "wd_partitions", "WD_TABLE3"]

#: Table 3 rows for the WD dataset: label -> (records, avg, stdv, max).
WD_TABLE3 = {
    "WD2M": (2_000_000, 121, 119.7, 655),
    "WD4M": (4_000_000, 122, 119.9, 655),
    "WD8M": (8_000_000, 138, 119.4, 655),
    "WD16M": (16_000_000, 127, 118.8, 655),
}

_MAX_AZIMUTH = 655.0
_REGIME_MEAN_LENGTH = 6
_REGIME_CENTER_MEAN = 120.0
_WITHIN_REGIME_STD = 45.0


def wd_dataset(n: int, seed: int = 0) -> np.ndarray:
    """Generate ``n`` surrogate wind-direction readings (azimuth degrees)."""
    if n <= 0:
        raise InvalidInputError("dataset size must be positive")
    rng = np.random.default_rng(seed)

    values = np.empty(n, dtype=np.float64)
    position = 0
    while position < n:
        length = 1 + rng.geometric(1.0 / _REGIME_MEAN_LENGTH)
        length = min(length, n - position)
        center = min(rng.exponential(_REGIME_CENTER_MEAN), _MAX_AZIMUTH)
        noise = rng.normal(0.0, _WITHIN_REGIME_STD, size=length)
        segment = np.clip(center + np.cumsum(noise) * 0.6, 0.0, _MAX_AZIMUTH)
        values[position : position + length] = segment
        position += length
    return values


def wd_partitions(unit: int, doublings: int = 4, seed: int = 0) -> dict[str, np.ndarray]:
    """Build the scaled WD partition family of Table 3.

    ``unit`` plays the role of 2M records.  Unlike NYCT, the WD partitions
    are statistically homogeneous (Table 3's means barely move), so each
    partition is simply a longer run of the same process.
    """
    if unit < 8:
        raise InvalidInputError("unit must be at least 8 records")
    labels = list(WD_TABLE3)[:doublings]
    return {
        label: wd_dataset(unit * (2**k), seed=seed) for k, label in enumerate(labels)
    }
