"""Synthetic workload generators (the paper's SYN datasets).

The paper's synthetic experiments draw data values in ``[0, M]`` with
``M ∈ {1K, 100K, 1000K}`` from a uniform distribution or zipfian
distributions with exponents 0.7 and 1.5.  Biased (zipfian) data
concentrates mass on few values, which makes the series easier to
approximate — the effect behind Figures 6 and 7.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidInputError

__all__ = ["uniform_dataset", "zipf_dataset", "DISTRIBUTIONS", "make_distribution"]

#: Default number of distinct values used by the zipfian sampler's domain.
_DEFAULT_DOMAIN = 4096


def _validate(n: int, value_range: tuple[float, float]) -> tuple[float, float]:
    if n <= 0:
        raise InvalidInputError("dataset size must be positive")
    low, high = float(value_range[0]), float(value_range[1])
    if not low < high:
        raise InvalidInputError(f"invalid value range [{low}, {high}]")
    return low, high


def uniform_dataset(n: int, value_range: tuple[float, float] = (0.0, 1000.0), seed: int = 0) -> np.ndarray:
    """Draw ``n`` values uniformly from ``value_range``."""
    low, high = _validate(n, value_range)
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=n)


def zipf_dataset(
    n: int,
    exponent: float,
    value_range: tuple[float, float] = (0.0, 1000.0),
    seed: int = 0,
    domain_size: int = _DEFAULT_DOMAIN,
) -> np.ndarray:
    """Draw ``n`` values from a truncated zipfian over ``value_range``.

    The value domain is ``domain_size`` points spread evenly over the
    range; the ``k``-th smallest value is drawn with probability
    proportional to ``(k + 1) ** -exponent``.  Small values dominate, and
    the skew grows with the exponent — zipf-1.5 data is far more biased
    than zipf-0.7, matching the regimes of Figure 6.

    Unlike ``numpy.random.zipf``, this sampler supports exponents below 1
    (the distribution is truncated, so normalization is finite).
    """
    low, high = _validate(n, value_range)
    if exponent <= 0:
        raise InvalidInputError("zipf exponent must be positive")
    if domain_size < 2:
        raise InvalidInputError("zipf domain must contain at least 2 values")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    weights = ranks**-exponent
    probabilities = weights / weights.sum()
    domain = np.linspace(low, high, domain_size)
    return rng.choice(domain, size=n, p=probabilities)


def make_distribution(
    name: str,
    n: int,
    value_range: tuple[float, float] = (0.0, 1000.0),
    seed: int = 0,
) -> np.ndarray:
    """Dispatch by the distribution names used throughout the paper.

    Supported names: ``"uniform"``, ``"zipf-0.7"``, ``"zipf-1.5"`` (or any
    ``"zipf-<exponent>"``).
    """
    if name == "uniform":
        return uniform_dataset(n, value_range, seed)
    if name.startswith("zipf-"):
        try:
            exponent = float(name.split("-", 1)[1])
        except ValueError as exc:
            raise InvalidInputError(f"bad zipf distribution name: {name!r}") from exc
        return zipf_dataset(n, exponent, value_range, seed)
    raise InvalidInputError(f"unknown distribution {name!r}")


#: The three distributions of the paper's synthetic evaluation.
DISTRIBUTIONS = ("uniform", "zipf-0.7", "zipf-1.5")
