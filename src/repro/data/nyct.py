"""NYCT surrogate: the New York City taxi trip-time dataset of Table 3.

The original data (``nycTaxiTripData2013``) is unavailable offline, so we
generate a surrogate that reproduces the statistical structure the paper's
experiments actually depend on (see DESIGN.md §3):

* trip times in seconds, heavy-tailed lognormal around ~11 minutes,
  capped at 10800 s (the 3-hour cap visible in Table 3's ``Max`` column);
* the per-partition mean roughly halves as the partition doubles —
  partitions share a prefix of real trips followed by a sparse/zero tail;
* the 32M/64M partitions contain corrupt ~2^32 outliers (Table 3 reports
  ``Max = 4294966`` and a huge standard deviation), which is what makes
  NYCT hard to approximate and drives the large ``(ε/δ)²`` work factor of
  the DP algorithms in Figure 8.

All sizes are expressed as fractions of a configurable ``unit`` so the
whole Table 3 family can be reproduced at laptop scale.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidInputError

__all__ = ["nyct_dataset", "nyct_partitions", "NYCT_TABLE3"]

#: Table 3 rows for the NYCT dataset: label -> (records, avg, stdv, max).
NYCT_TABLE3 = {
    "NYCT2M": (2_000_000, 672, 483.0, 10_800),
    "NYCT4M": (4_000_000, 511, 519.5, 10_800),
    "NYCT8M": (8_000_000, 255, 646.6, 10_800),
    "NYCT16M": (16_000_000, 127, 745.0, 10_800),
    "NYCT32M": (32_000_000, 63, 3_566.3, 4_293_410),
    "NYCT64M": (64_000_000, 31, 25_410.3, 4_294_966),
}

#: Lognormal parameters fitted to the NYCT2M row (mean 672 s, stdv 483 s).
_TRIP_MU = 6.297
_TRIP_SIGMA = 0.645
_TRIP_CAP = 10_800.0
#: Corrupt records in the paper carry ~2^32 garbage values.
_CORRUPT_VALUE = 4_294_966.0


def nyct_dataset(
    n: int,
    real_fraction: float = 1.0,
    corrupt_count: int = 0,
    seed: int = 0,
) -> np.ndarray:
    """Generate ``n`` surrogate NYCT trip-time records.

    Parameters
    ----------
    n:
        Number of records.
    real_fraction:
        Leading fraction of the array holding real (lognormal) trips; the
        remainder is zero, emulating the sparse tails of the larger
        Table 3 partitions.
    corrupt_count:
        Number of corrupt ~2^32 records sprinkled into the tail (the 32M+
        partitions of Table 3).
    seed:
        RNG seed; the same seed yields the same dataset.
    """
    if n <= 0:
        raise InvalidInputError("dataset size must be positive")
    if not 0.0 < real_fraction <= 1.0:
        raise InvalidInputError("real_fraction must be in (0, 1]")
    if corrupt_count < 0 or corrupt_count > n:
        raise InvalidInputError("corrupt_count out of range")

    rng = np.random.default_rng(seed)
    data = np.zeros(n, dtype=np.float64)
    real_count = max(1, int(round(n * real_fraction)))
    trips = rng.lognormal(mean=_TRIP_MU, sigma=_TRIP_SIGMA, size=real_count)
    data[:real_count] = np.minimum(trips, _TRIP_CAP)
    if corrupt_count:
        tail_start = real_count
        if tail_start >= n:  # no zero tail: corrupt anywhere
            tail_start = 0
        positions = rng.choice(np.arange(tail_start, n), size=corrupt_count, replace=False)
        data[positions] = _CORRUPT_VALUE
    return data


def nyct_partitions(unit: int, doublings: int = 6, seed: int = 0) -> dict[str, np.ndarray]:
    """Build the scaled Table 3 partition family.

    ``unit`` plays the role of 2M records; partition ``k`` holds
    ``unit * 2**k`` records.  Partitions share a generation recipe that
    mirrors Table 3: the real-trip prefix stops growing after the second
    partition (so the mean halves with each doubling), and the two largest
    partitions receive corrupt outliers.

    Returns a mapping from labels (``"NYCT2M"``-style, scaled) to arrays.
    """
    if unit < 8:
        raise InvalidInputError("unit must be at least 8 records")
    labels = list(NYCT_TABLE3)[:doublings]
    partitions: dict[str, np.ndarray] = {}
    for k, label in enumerate(labels):
        size = unit * (2**k)
        # Real prefix: everything for the first two partitions, then frozen
        # at 2*unit so the mean halves with each further doubling.
        real = min(size, 2 * unit) / size
        # A couple of corrupt records suffice to reproduce the max/stdv
        # blow-up of Table 3's 32M/64M rows; at laptop scale they also
        # perturb the mean, which the paper-scale partitions don't see.
        corrupt = 2 if k >= 4 else 0
        partitions[label] = nyct_dataset(
            size, real_fraction=real, corrupt_count=corrupt, seed=seed
        )
    return partitions
