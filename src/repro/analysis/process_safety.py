"""Process-safety rules: what breaks a job under ProcessPoolRuntime.

The process pool ships jobs to workers by pickling, and the workers'
mutations never reach the driver.  Two syntactic hazards cover the
incidents that motivated this family (see ``docs/STATIC_ANALYSIS.md``):

* **PS001** — a ``MapReduceJob`` subclass defined inside a function: the
  class cannot be pickled (pickle imports classes by qualified name), so
  the job silently falls over the moment a process runtime touches it.
  This is the ``_AverageJob`` closure bug of PR 3.
* **PS002** — a task-side method (``map``/``combine``/``reduce``/
  ``reduce_partition``) writing ``self.*`` state: in a worker process the
  write mutates a pickled copy and the driver never sees it.  The layered
  DP jobs do exactly this by design — and declare ``process_safe = False``,
  which silences both rules and routes them to in-process execution.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import ClassVar

from repro.analysis.core import Finding, ParsedModule, Rule

__all__ = ["JobNotModuleLevel", "TaskMethodMutatesSelf", "is_job_class", "opts_out"]

#: Methods the runtimes may execute in a worker process.
TASK_METHODS = ("map", "combine", "reduce", "reduce_partition")

#: Mutating container methods; ``self.x.append(...)`` is as lost in a
#: worker as ``self.x = ...``.
_MUTATORS = frozenset(
    {"append", "extend", "add", "update", "insert", "remove", "discard",
     "clear", "pop", "popitem", "setdefault", "sort"}
)


def _base_name(base: ast.expr) -> str | None:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def is_job_class(node: ast.ClassDef) -> bool:
    """Heuristic: the class subclasses ``MapReduceJob`` (or a ``*Job``)."""
    for base in node.bases:
        name = _base_name(base)
        if name is not None and (name == "MapReduceJob" or name.endswith("Job")):
            return True
    return False


def opts_out(node: ast.ClassDef) -> bool:
    """True when the class body declares ``process_safe = False``."""
    for statement in node.body:
        value: ast.expr | None = None
        if isinstance(statement, ast.Assign):
            if any(
                isinstance(target, ast.Name) and target.id == "process_safe"
                for target in statement.targets
            ):
                value = statement.value
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name) and statement.target.id == "process_safe":
                value = statement.value
        if isinstance(value, ast.Constant) and value.value is False:
            return True
    return False


class JobNotModuleLevel(Rule):
    """PS001: job classes must be module-level (picklable)."""

    rule_id: ClassVar[str] = "PS001"
    summary: ClassVar[str] = (
        "MapReduceJob subclass defined inside a function cannot pickle for "
        "ProcessPoolRuntime; move it to module level or declare process_safe = False"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        yield from self._walk(module, module.tree, inside_function=False)

    def _walk(
        self, module: ParsedModule, node: ast.AST, inside_function: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if inside_function and is_job_class(child) and not opts_out(child):
                    yield module.finding(
                        self.rule_id,
                        child,
                        f"job class {child.name!r} is defined inside a function; "
                        "it will not pickle for ProcessPoolRuntime (move it to module "
                        "level or declare process_safe = False)",
                    )
                yield from self._walk(module, child, inside_function)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                yield from self._walk(module, child, inside_function=True)
            else:
                yield from self._walk(module, child, inside_function)


def _self_attribute(node: ast.expr) -> str | None:
    """``self.x`` -> ``"x"``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class TaskMethodMutatesSelf(Rule):
    """PS002: task-side methods must not write driver-side ``self`` state."""

    rule_id: ClassVar[str] = "PS002"
    summary: ClassVar[str] = (
        "map/combine/reduce/reduce_partition mutates self.* — the write is lost "
        "in a worker process; use local state or declare process_safe = False"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or not is_job_class(node):
                continue
            if opts_out(node):
                continue
            for method in node.body:
                if isinstance(method, ast.FunctionDef) and method.name in TASK_METHODS:
                    yield from self._check_method(module, node.name, method)

    def _check_method(
        self, module: ParsedModule, class_name: str, method: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            attr: str | None = None
            verb = "assigns"
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    attr = attr or self._store_target(target)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                attr = self._store_target(node.target)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATORS:
                    attr = _self_attribute(node.func.value)
                    verb = f"calls .{node.func.attr}() on"
            if attr is not None:
                yield module.finding(
                    self.rule_id,
                    node,
                    f"{class_name}.{method.name} {verb} self.{attr}; the mutation is "
                    "lost under ProcessPoolRuntime (use local state or declare "
                    "process_safe = False)",
                )

    @staticmethod
    def _store_target(target: ast.expr) -> str | None:
        attr = _self_attribute(target)
        if attr is not None:
            return attr
        if isinstance(target, ast.Subscript):
            return _self_attribute(target.value)
        return None
