"""Kernel-contract rules, scoped to ``algos/`` and ``bench/``.

The vectorized kernels promise *bit-identical* output to their scalar
references, and the benchmark harness diffs them.  Three syntactic
contracts keep that promise honest:

* **KC001** — numpy allocations without an explicit ``dtype=``: inferred
  dtypes drift with the input (an int list allocates int64 and the
  packed-key tricks silently change semantics).  ``*_like`` constructors
  are exempt — they inherit their prototype's dtype by design.
* **KC002** — ``==``/``!=`` against float literals in kernel code:
  threshold and tie-break comparisons must be explicit about exactness
  (suppress with ``# lint: ignore[KC002]`` where bit-exact zero tests are
  intentional, e.g. dropping exact-zero coefficients).
* **KC003** — in-place mutation of function arguments (``arg[i] = ...``,
  ``arg += ...``): kernels are called in interleaved benchmark loops, so
  clobbering inputs corrupts the next repetition.
* **KC004** — completion-order or hash-order iteration
  (``as_completed``/``imap_unordered``, looping over a set) in kernel
  code: the parallel level walk stays bit-identical to the serial one
  only because results are collected in submission order
  (``Executor.map``); completion order varies run to run and set order
  varies across interpreter seeds.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path
from typing import ClassVar

from repro.analysis.core import Finding, ParsedModule, Rule, dotted_name

__all__ = [
    "FloatLiteralEquality",
    "MissingExplicitDtype",
    "MutatedArgument",
    "NondeterministicCollection",
]

#: Allocation call -> index of its positional ``dtype`` slot.
_ALLOCATORS = {
    "empty": 1,
    "zeros": 1,
    "ones": 1,
    "array": 1,
    "asarray": 1,
    "ascontiguousarray": 1,
    "asfortranarray": 1,
    "full": 2,
    "arange": 3,
    "linspace": 5,
}

_SCOPES = ("algos", "bench")


class _KernelRule(Rule):
    """Base for rules that only watch the kernel directories."""

    def applies_to(self, path: Path) -> bool:
        return any(scope in path.parts for scope in _SCOPES)


class MissingExplicitDtype(_KernelRule):
    """KC001: numpy allocations must pin their dtype."""

    rule_id: ClassVar[str] = "KC001"
    summary: ClassVar[str] = (
        "numpy allocation without an explicit dtype= in kernel code; inferred "
        "dtypes drift with the input and break bit-exactness"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            if len(parts) != 2 or parts[0] not in {"np", "numpy"}:
                continue
            dtype_slot = _ALLOCATORS.get(parts[1])
            if dtype_slot is None:
                continue
            if any(keyword.arg == "dtype" for keyword in node.keywords):
                continue
            if len(node.args) > dtype_slot:
                continue
            yield module.finding(
                self.rule_id,
                node,
                f"{chain}(...) without an explicit dtype=; kernel allocations "
                "must pin their dtype (bit-exactness contract)",
            )


class FloatLiteralEquality(_KernelRule):
    """KC002: exact float-literal comparisons need an explicit opt-in."""

    rule_id: ClassVar[str] = "KC002"
    summary: ClassVar[str] = (
        "== / != against a float literal in kernel code; make exact comparisons "
        "explicit or suppress where bit-exact zero tests are intended"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(
                isinstance(operand, ast.Constant) and isinstance(operand.value, float)
                for operand in operands
            ):
                yield module.finding(
                    self.rule_id,
                    node,
                    "exact ==/!= against a float literal; float equality in "
                    "tie-break/threshold code must be intentional "
                    "(suppress with lint: ignore[KC002] if it is)",
                )


class MutatedArgument(_KernelRule):
    """KC003: kernels must not mutate their arguments in place."""

    rule_id: ClassVar[str] = "KC003"
    summary: ClassVar[str] = (
        "in-place mutation of a function argument in kernel code; interleaved "
        "benchmark repetitions reuse inputs, so clobbering them corrupts runs"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: ParsedModule, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        arguments = function.args
        parameters = {
            arg.arg
            for arg in [
                *arguments.posonlyargs,
                *arguments.args,
                *arguments.kwonlyargs,
            ]
            if arg.arg not in {"self", "cls"}
        }
        rebound = {
            target.id
            for statement in ast.walk(function)
            if isinstance(statement, ast.Assign)
            for target in statement.targets
            if isinstance(target, ast.Name)
        }
        live = parameters - rebound
        for statement in ast.walk(function):
            name: str | None = None
            if isinstance(statement, ast.AugAssign):
                if isinstance(statement.target, ast.Name):
                    name = statement.target.id
                elif isinstance(statement.target, ast.Subscript) and isinstance(
                    statement.target.value, ast.Name
                ):
                    name = statement.target.value.id
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        name = target.value.id
            if name is not None and name in live:
                yield module.finding(
                    self.rule_id,
                    statement,
                    f"function {function.name!r} mutates its argument {name!r} "
                    "in place; copy first or write to a fresh array",
                )


#: Futures/pool helpers that yield results in *completion* order.
_COMPLETION_ORDER_CALLS = {"as_completed", "imap_unordered"}


class NondeterministicCollection(_KernelRule):
    """KC004: parallel kernels must collect results in submission order."""

    rule_id: ClassVar[str] = "KC004"
    summary: ClassVar[str] = (
        "completion-order or set-order iteration in kernel code; the parallel "
        "level walk is bit-identical to the serial one only under "
        "submission-order collection (Executor.map)"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                chain = dotted_name(node.func)
                if chain is not None and chain.split(".")[-1] in _COMPLETION_ORDER_CALLS:
                    yield module.finding(
                        self.rule_id,
                        node,
                        f"{chain}(...) yields results in completion order, which "
                        "varies run to run; collect with Executor.map "
                        "(submission order) instead",
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expression(node.iter):
                    yield module.finding(
                        self.rule_id,
                        node,
                        "iterating a set in kernel code; set order is "
                        "hash-dependent — iterate a sorted() or list view instead",
                    )

    @staticmethod
    def _is_set_expression(expression: ast.expr) -> bool:
        if isinstance(expression, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expression, ast.Call):
            chain = dotted_name(expression.func)
            return chain in {"set", "frozenset"}
        return False
