"""Interprocedural shared-state race detection: the RC rule family.

The detector walks the project call graph from every *concurrency
root* — code the repo actually runs on more than one worker at once:

* MapReduce task methods (``map``/``combine``/``reduce``/
  ``reduce_partition`` overrides of :class:`MapReduceJob` subclasses).
  The thread-pool runtime executes them concurrently against **one**
  shared job instance, and speculative execution re-runs the same
  callables as backup attempts — so a self-write here is a double-write
  under speculation even on a single worker.
* Callables handed to a thread/process pool (``Executor.map`` /
  ``submit``), e.g. the ``map_task`` closures of
  :class:`~repro.mapreduce.parallel.ThreadPoolRuntime` and the sibling
  combine lambda of the ``parallel`` DP kernel's ``_run_levels`` walk.

From each root a taint — the set of parameter/closure names bound to
objects shared across concurrent executions — propagates along resolved
call edges (receiver ``self``, argument bindings, direct returns of
``self``/parameters, returns of module globals).  Every function the
walk reaches is then checked:

* **RC001** — a write to module-global state (a ``global`` rebind, or a
  mutation whose receiver resolves to a module-level binding).
* **RC002** — a write to a closure cell shared across concurrent tasks
  (``nonlocal`` rebinds, or mutation through a tainted free variable).
* **RC003** — a write to shared object state: attribute/subscript
  stores, in-place container mutators, and RNG draws (a draw advances
  hidden generator state, so a shared generator makes the draw sequence
  schedule-dependent) through a tainted root.
* **RC004** — a mutable default argument (one shared instance across
  all concurrent calls) on a reachable function.

Writes lexically inside a ``with <...lock>:`` block are *guarded* and
skipped — that is the ordering-safe idiom.  Anything else needs either
a fix or a rule-scoped, justified ``# lint: ignore[RCxxx] -- why`` on
the line (the suppression layer rejects unjustified RC suppressions).

Known imprecision (see ``docs/STATIC_ANALYSIS.md``): calls through
function-valued parameters produce no edge, so task bodies invoked only
through such indirection are covered by seeding every task method as a
root rather than by tracing the handoff; lock guards are lexical, not
interprocedural; taint is path-insensitive (a name tainted anywhere in a
function is tainted everywhere in it).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.analysis.callgraph import (
    CallEdge,
    FunctionSummary,
    WriteSite,
    bind_arguments,
    build_summaries,
)
from repro.analysis.core import Finding
from repro.analysis.project import ProjectIndex

__all__ = [
    "RACE_RULES",
    "Root",
    "RaceAnalysis",
    "SharedWrite",
    "race_findings",
]

RACE_RULES = {
    "RC001": "module-global state is written from concurrency-reachable code",
    "RC002": "a closure cell shared across concurrent tasks is written",
    "RC003": "object state shared across concurrent tasks is written",
    "RC004": "a mutable default argument is shared across concurrent calls",
}

#: Methods of a job subclass that execute as (potentially concurrent,
#: potentially speculatively re-run) tasks.
TASK_METHODS = ("map", "combine", "reduce", "reduce_partition")

_JOB_BASE_NAME = "MapReduceJob"

#: How deep return-taint resolution chases ``x = f(...)`` chains.
_RETURN_DEPTH = 5


@dataclass(frozen=True)
class Root:
    """One concurrency root: a function plus its initially-shared names."""

    qualname: str
    taint: frozenset[str]
    reason: str


@dataclass(frozen=True)
class SharedWrite:
    """A write to shared state, with the rule it violates and why."""

    function: str
    site: WriteSite
    path: str
    rule: str
    reason: str


@dataclass
class _State:
    """Fixpoint of the taint propagation."""

    taint: dict[str, set[str]] = field(default_factory=dict)
    reachable: set[str] = field(default_factory=set)
    origin: dict[str, Root] = field(default_factory=dict)
    pred: dict[str, str] = field(default_factory=dict)


class RaceAnalysis:
    """Shared-state analysis over a :class:`ProjectIndex`."""

    def __init__(
        self,
        index: ProjectIndex,
        summaries: dict[str, FunctionSummary] | None = None,
    ) -> None:
        self.index = index
        self.summaries = summaries if summaries is not None else build_summaries(index)

    # -- roots ---------------------------------------------------------------

    def job_classes(self) -> list[str]:
        """Qualnames of every MapReduce job class visible to the index.

        A class is a job when its project MRO reaches a class named
        ``MapReduceJob``, or when an *unresolved* base's last component
        is ``MapReduceJob`` or ends in ``Job`` (mirrors the per-file
        heuristic, so fixture sources behave like the real tree).
        """
        jobs: list[str] = []
        for qualname, info in sorted(self.index.classes.items()):
            mro_names = {entry.node.name for entry in self.index.mro(qualname)}
            base_tails = {text.split(".")[-1] for text in info.base_names}
            if info.node.name == _JOB_BASE_NAME:
                continue
            if (
                _JOB_BASE_NAME in mro_names
                or _JOB_BASE_NAME in base_tails
                or any(tail.endswith("Job") for tail in base_tails)
            ):
                jobs.append(qualname)
        return jobs

    def default_roots(self) -> list[Root]:
        roots: list[Root] = []
        for class_qualname in self.job_classes():
            info = self.index.classes[class_qualname]
            for method in TASK_METHODS:
                qualname = info.methods.get(method)
                if qualname is None or qualname not in self.summaries:
                    continue
                roots.append(
                    Root(
                        qualname=qualname,
                        taint=frozenset({"self"}),
                        reason=(
                            f"task method {info.node.name}.{method} runs "
                            "concurrently on the thread-pool runtime and is "
                            "re-run wholesale by speculative backup attempts"
                        ),
                    )
                )
        for qualname in sorted(self.summaries):
            summary = self.summaries[qualname]
            for spawn in summary.spawns:
                if spawn.callee is None or spawn.callee not in self.summaries:
                    continue
                spawned = self.summaries[spawn.callee]
                taint = set(spawned.frees)
                if spawn.text.startswith("self."):
                    taint.add("self")
                module = self.index.modules[summary.module]
                roots.append(
                    Root(
                        qualname=spawn.callee,
                        taint=frozenset(taint),
                        reason=(
                            f"spawned on a worker pool at "
                            f"{module.path}:{spawn.line}"
                        ),
                    )
                )
        return roots

    # -- taint machinery -----------------------------------------------------

    def _root_tainted(
        self,
        summary: FunctionSummary,
        taint: frozenset[str],
        root: str,
        depth: int = 0,
        visiting: set[tuple[str, str]] | None = None,
    ) -> bool:
        """Whether ``root`` may name an object shared under ``taint``."""
        if depth > _RETURN_DEPTH:
            return False
        if visiting is None:
            visiting = set()
        key = (summary.qualname, root)
        if key in visiting:
            return False
        visiting.add(key)
        for terminal in summary.resolve_roots(root):
            if terminal in taint:
                return True
            if terminal.startswith("<ret:"):
                edge = summary.calls[int(terminal[5:-1])]
                if self._returns_shared(summary, taint, edge, depth, visiting):
                    return True
        return False

    def _returns_shared(
        self,
        summary: FunctionSummary,
        taint: frozenset[str],
        edge: CallEdge,
        depth: int,
        visiting: set[tuple[str, str]],
    ) -> bool:
        """Whether a call's return value may be a shared object."""
        for callee in edge.callees:
            callee_summary = self.summaries.get(callee)
            callee_info = self.index.functions.get(callee)
            if callee_summary is None or callee_info is None:
                continue
            if callee_summary.returns_global:
                return True
            if not callee_summary.returns:
                continue
            method_style = bool(edge.receiver_roots) or edge.constructs is not None
            bound = bind_arguments(callee_info, edge, method_style=method_style)
            for name in callee_summary.returns:
                for root in bound.get(name, ()):
                    if self._root_tainted(summary, taint, root, depth + 1, visiting):
                        return True
        return False

    def propagate(self, roots: list[Root]) -> _State:
        """Run the monotone taint worklist to fixpoint."""
        state = _State()
        queue: deque[str] = deque()
        for root in roots:
            if root.qualname not in self.summaries:
                continue
            current = state.taint.setdefault(root.qualname, set())
            grew = bool(root.taint - current) or root.qualname not in state.reachable
            current.update(root.taint)
            state.reachable.add(root.qualname)
            state.origin.setdefault(root.qualname, root)
            if grew:
                queue.append(root.qualname)
        while queue:
            qualname = queue.popleft()
            summary = self.summaries[qualname]
            taint = frozenset(state.taint.get(qualname, set()))
            for edge in summary.calls:
                for callee in edge.callees:
                    callee_summary = self.summaries.get(callee)
                    callee_info = self.index.functions.get(callee)
                    if callee_summary is None or callee_info is None:
                        continue
                    method_style = (
                        bool(edge.receiver_roots) or edge.constructs is not None
                    )
                    bound = bind_arguments(callee_info, edge, method_style=method_style)
                    new_taint = {
                        param
                        for param, arg_roots in bound.items()
                        if any(
                            self._root_tainted(summary, taint, root)
                            for root in arg_roots
                        )
                    }
                    if callee_info.parent == qualname:
                        # A directly-called nested function shares the
                        # caller's bindings through its free variables.
                        new_taint.update(
                            free
                            for free in callee_summary.frees
                            if self._root_tainted(summary, taint, free)
                        )
                    current = state.taint.setdefault(callee, set())
                    grew = bool(new_taint - current) or callee not in state.reachable
                    current.update(new_taint)
                    if callee not in state.reachable:
                        state.reachable.add(callee)
                        state.origin.setdefault(
                            callee, state.origin.get(qualname, _UNKNOWN_ROOT)
                        )
                        state.pred.setdefault(callee, qualname)
                    if grew:
                        queue.append(callee)
        return state

    # -- write classification ------------------------------------------------

    def _writes_module_global(self, summary: FunctionSummary, write: WriteSite) -> bool:
        module = self.index.modules.get(summary.module)
        module_names = module.module_names if module is not None else set()
        for terminal in summary.resolve_roots(write.root):
            if terminal.startswith("<ret:"):
                edge = summary.calls[int(terminal[5:-1])]
                for callee in edge.callees:
                    callee_summary = self.summaries.get(callee)
                    if callee_summary is not None and callee_summary.returns_global:
                        return True
                continue
            if terminal in summary.bound or terminal in summary.frees:
                continue
            if terminal in module_names:
                return True
        return False

    def _classify(
        self, summary: FunctionSummary, taint: frozenset[str], write: WriteSite
    ) -> str | None:
        if write.kind == "global":
            return "RC001"
        if write.kind == "nonlocal":
            return "RC002"
        if write.root and self._root_tainted(summary, taint, write.root):
            return "RC002" if write.root in summary.frees else "RC003"
        if self._writes_module_global(summary, write):
            return "RC001"
        return None

    def shared_writes(
        self, roots: list[Root], *, include_guarded: bool = False
    ) -> list[SharedWrite]:
        """Every shared-state write reachable from ``roots``.

        ``include_guarded`` keeps lock-guarded writes in the result —
        the pickle-safety analysis wants those too (a locked mutation of
        driver-held state still breaks process isolation).
        """
        state = self.propagate(roots)
        found: list[SharedWrite] = []
        for qualname in sorted(state.reachable):
            summary = self.summaries[qualname]
            taint = frozenset(state.taint.get(qualname, set()))
            module = self.index.modules.get(summary.module)
            path = module.path if module is not None else "<unknown>"
            reason = state.origin.get(qualname, _UNKNOWN_ROOT).reason
            for write in summary.writes:
                if write.guarded and not include_guarded:
                    continue
                rule = self._classify(summary, taint, write)
                if rule is not None:
                    found.append(
                        SharedWrite(
                            function=qualname,
                            site=write,
                            path=path,
                            rule=rule,
                            reason=reason,
                        )
                    )
        return found

    # -- findings ------------------------------------------------------------

    def findings(self, roots: list[Root] | None = None) -> list[Finding]:
        """RC001–RC004 findings from the default (or given) roots."""
        resolved_roots = roots if roots is not None else self.default_roots()
        state = self.propagate(resolved_roots)
        findings: list[Finding] = []
        seen: set[tuple[str, int, str]] = set()
        for write in self.shared_writes(resolved_roots):
            key = (write.path, write.site.line, write.rule)
            if key in seen:
                continue
            seen.add(key)
            verb = {
                "mutator": "in-place mutation of",
                "rng": "RNG draw from",
                "del": "deletion through",
            }.get(write.site.kind, "write to")
            scope = {
                "RC001": "module-global",
                "RC002": "closure-shared",
                "RC003": "shared",
            }[write.rule]
            findings.append(
                Finding(
                    rule=write.rule,
                    path=write.path,
                    line=write.site.line,
                    col=write.site.col,
                    message=(
                        f"{verb} {scope} state `{write.site.detail}` in "
                        f"{_short(write.function)} without an ordering-safe "
                        f"guard; {write.reason}"
                    ),
                )
            )
        for qualname in sorted(state.reachable):
            summary = self.summaries[qualname]
            info = self.index.functions.get(qualname)
            module = self.index.modules.get(summary.module)
            if info is None or module is None or not summary.mutable_default_params:
                continue
            reason = state.origin.get(qualname, _UNKNOWN_ROOT).reason
            for param in sorted(summary.mutable_default_params):
                key = (module.path, info.node.lineno, "RC004")
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    Finding(
                        rule="RC004",
                        path=module.path,
                        line=info.node.lineno,
                        col=info.node.col_offset + 1,
                        message=(
                            f"mutable default for `{param}` in "
                            f"{_short(qualname)} is one shared instance "
                            f"across concurrent calls; {reason}"
                        ),
                    )
                )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings


_UNKNOWN_ROOT = Root(qualname="<unknown>", taint=frozenset(), reason="reachable from a concurrency root")


def _short(qualname: str) -> str:
    """Trailing two qualname components — enough to identify a function."""
    parts = [part for part in qualname.split(".") if part != "<locals>"]
    return ".".join(parts[-2:])


def race_findings(
    index: ProjectIndex, summaries: dict[str, FunctionSummary] | None = None
) -> list[Finding]:
    """Convenience wrapper: RC findings for ``index``."""
    return RaceAnalysis(index, summaries).findings()
