"""Determinism rules: sources of run-to-run drift in emitted records.

The whole repo is built on bit-reproducibility — stable partitioners,
smallest-index tie-breaks, seeded surrogates — so anything that lets
iteration order or process identity leak into job output is a bug even
when the *values* are right:

* **DT001** — iterating a ``set`` while ``yield``-ing records: set order
  is insertion-and-hash dependent, so the shuffle sees a different record
  order per run (and per process, with randomized string hashing).  Wrap
  the iterable in ``sorted(...)``.
* **DT002** — unseeded randomness (``random.*`` module functions, legacy
  ``np.random.*`` globals, ``np.random.default_rng()`` with no seed):
  every generator in the repo threads an explicit seed.
* **DT003** — ``id()``-keyed dict access: ``id`` values are process-local
  addresses, so the mapping silently breaks across pickling boundaries
  and makes logs unreproducible.  This is the DIndirectHaar probe-map
  incident fixed in PR 3 (``DualSolution.epsilon`` replaced it).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import ClassVar

from repro.analysis.core import Finding, ParsedModule, Rule, dotted_name

__all__ = ["IdKeyedMapping", "SetIterationIntoEmit", "UnseededRandomness"]

#: ``random`` module functions that draw from the global (unseeded) state.
_STDLIB_RANDOM = frozenset(
    {"random", "randint", "randrange", "uniform", "gauss", "normalvariate",
     "betavariate", "expovariate", "choice", "choices", "sample", "shuffle"}
)

#: Legacy ``np.random.*`` globals (the pre-Generator API with hidden state).
_NUMPY_LEGACY = frozenset(
    {"rand", "randn", "random", "random_sample", "randint", "choice",
     "shuffle", "permutation", "uniform", "normal", "standard_normal"}
)


def _is_set_expression(node: ast.expr) -> bool:
    """Syntactically set-typed: literals, comprehensions, set()/frozenset()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.BoolOp):
        return any(_is_set_expression(value) for value in node.values)
    if isinstance(node, ast.IfExp):
        return _is_set_expression(node.body) or _is_set_expression(node.orelse)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def _contains_yield(body: list[ast.stmt]) -> bool:
    """Whether the statements yield records (not counting nested defs)."""
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
    return False


class SetIterationIntoEmit(Rule):
    """DT001: for-loops over sets whose bodies yield records."""

    rule_id: ClassVar[str] = "DT001"
    summary: ClassVar[str] = (
        "iterating a set while yielding records emits in hash order; "
        "wrap the iterable in sorted(...)"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node, set_attributes=frozenset())

    def _check_class(self, module: ParsedModule, node: ast.ClassDef) -> Iterator[Finding]:
        set_attributes: set[str] = set()
        for method in node.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            for statement in ast.walk(method):
                if isinstance(statement, ast.Assign) and _is_set_expression(statement.value):
                    for target in statement.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            set_attributes.add(target.attr)
        for method in node.body:
            if isinstance(method, ast.FunctionDef):
                yield from self._check_function(module, method, frozenset(set_attributes))

    def _check_function(
        self,
        module: ParsedModule,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        set_attributes: frozenset[str],
    ) -> Iterator[Finding]:
        set_locals: set[str] = set()
        for statement in ast.walk(function):
            if isinstance(statement, ast.Assign) and _is_set_expression(statement.value):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        set_locals.add(target.id)
        for statement in ast.walk(function):
            if not isinstance(statement, ast.For):
                continue
            if not self._is_set_iterable(statement.iter, set_locals, set_attributes):
                continue
            if _contains_yield(statement.body):
                yield module.finding(
                    self.rule_id,
                    statement,
                    "loop iterates a set while yielding records — the emit order "
                    "is hash-dependent; wrap the iterable in sorted(...)",
                )

    @staticmethod
    def _is_set_iterable(
        node: ast.expr, set_locals: set[str], set_attributes: frozenset[str]
    ) -> bool:
        if _is_set_expression(node):
            return True
        if isinstance(node, ast.Name) and node.id in set_locals:
            return True
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in set_attributes
        ):
            return True
        return False


class UnseededRandomness(Rule):
    """DT002: unseeded global RNGs in reproducible code paths."""

    rule_id: ClassVar[str] = "DT002"
    summary: ClassVar[str] = (
        "unseeded randomness (random.*, legacy np.random.*, bare default_rng()) "
        "breaks run-to-run reproducibility; thread an explicit seed"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            if len(parts) == 2 and parts[0] == "random" and parts[1] in _STDLIB_RANDOM:
                yield module.finding(
                    self.rule_id,
                    node,
                    f"{chain}() draws from the global stdlib RNG; "
                    "use a seeded random.Random or np.random.default_rng(seed)",
                )
            elif len(parts) >= 3 and parts[-2] == "random" and parts[-1] in _NUMPY_LEGACY:
                yield module.finding(
                    self.rule_id,
                    node,
                    f"{chain}() uses numpy's legacy global RNG; "
                    "use np.random.default_rng(seed)",
                )
            elif parts[-1] == "default_rng" and not node.args and not node.keywords:
                yield module.finding(
                    self.rule_id,
                    node,
                    "default_rng() without a seed is entropy-seeded; pass an explicit seed",
                )


def _is_id_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


class IdKeyedMapping(Rule):
    """DT003: dicts keyed by ``id()`` values."""

    rule_id: ClassVar[str] = "DT003"
    summary: ClassVar[str] = (
        "id()-keyed dicts break across process boundaries and make runs "
        "unreproducible; key on a stable field instead"
    )

    _MESSAGE = (
        "dict keyed by id(...): identities are process-local addresses, so the "
        "mapping breaks across pickling boundaries; key on a stable field instead"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Subscript) and _is_id_call(node.slice):
                yield module.finding(self.rule_id, node, self._MESSAGE)
            elif isinstance(node, ast.Dict) and any(
                key is not None and _is_id_call(key) for key in node.keys
            ):
                yield module.finding(self.rule_id, node, self._MESSAGE)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in {"get", "setdefault", "pop"}
                and node.args
                and _is_id_call(node.args[0])
            ):
                yield module.finding(self.rule_id, node, self._MESSAGE)
