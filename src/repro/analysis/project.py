"""Project symbol table: the whole-program layer under the lint pack.

Where the per-file rules (:mod:`repro.analysis.core`) see one module's
syntax, :class:`ProjectIndex` parses *every* module of a package tree and
resolves names across them: imports (including aliased and relative
imports, chased through re-exports), classes with their MRO, methods,
nested functions and lambdas, and the declared types of parameters,
attributes, and return values.  The interprocedural analyses — the
RC race detector (:mod:`repro.analysis.races`) and the transitive
pickle-safety verdicts (:mod:`repro.analysis.pickling`) — are all
queries against this index plus the per-function summaries of
:mod:`repro.analysis.callgraph`.

The index is *syntactic and annotation-driven*: no code is imported or
executed.  That makes it safe to run on anything, cacheable by content
hash (see :func:`load_or_build_index` — the CI lint job keys a cache on
the source digest so the symbol table is only rebuilt when a source file
changes), and honest about its imprecision: resolution uses the type
annotations the ``mypy --strict`` gate already enforces, so an
unannotated callee is an unresolved edge, not a guess.
"""

from __future__ import annotations

import ast
import hashlib
import pickle
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "load_or_build_index",
    "source_tree_digest",
]

#: Bump when the index layout changes so stale caches never deserialize
#: into the new shape.
INDEX_SCHEMA_VERSION = 1


@dataclass
class ModuleInfo:
    """One parsed module of the project."""

    name: str
    path: str
    source: str
    tree: ast.Module
    lines: list[str]
    #: Local name -> fully qualified imported target.
    imports: dict[str, str] = field(default_factory=dict)
    #: Names bound at module level (defs, classes, assignments, imports).
    module_names: set[str] = field(default_factory=set)


@dataclass
class FunctionInfo:
    """One function, method, nested function, or lambda."""

    qualname: str
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    #: Qualified name of the enclosing class for methods, else None.
    class_name: str | None = None
    #: Qualified name of the enclosing function for nested defs/lambdas.
    parent: str | None = None

    @property
    def name(self) -> str:
        node = self.node
        return "<lambda>" if isinstance(node, ast.Lambda) else node.name

    @property
    def is_method(self) -> bool:
        return self.class_name is not None and self.parent is None


@dataclass
class ClassInfo:
    """One class, with enough structure for MRO and attr-type queries."""

    qualname: str
    module: str
    node: ast.ClassDef
    #: Base expressions as dotted text, unresolved (resolution happens
    #: against the index, where forward references are visible).
    base_names: list[str] = field(default_factory=list)
    #: Method name -> function qualname, for methods defined in the body.
    methods: dict[str, str] = field(default_factory=dict)
    #: Attribute name -> dotted annotation text (class-level annotations
    #: and ``self.x: T`` / ``self.x = param`` assignments in ``__init__``).
    attr_annotations: dict[str, str] = field(default_factory=dict)
    #: True when the class is defined inside a function body.
    nested_in_function: bool = False


def _annotation_text(node: ast.expr | None) -> str | None:
    """Dotted text of an annotation, unwrapping quotes, Optional, and unions.

    Returns the first non-``None`` component of a union — enough for the
    repo idiom (``FailureInjector | None``); multi-class unions resolve to
    their first member, a documented imprecision.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_text(node.left) or _annotation_text(node.right)
    if isinstance(node, ast.Subscript):
        base = _annotation_text(node.value)
        if base is not None and base.split(".")[-1] == "Optional":
            return _annotation_text(node.slice)
        return base
    if isinstance(node, ast.Constant) and node.value is None:
        return None
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


class _ModuleCollector(ast.NodeVisitor):
    """Single pass over one module filling the index tables."""

    def __init__(self, index: ProjectIndex, module: ModuleInfo) -> None:
        self.index = index
        self.module = module
        self._class_stack: list[ClassInfo] = []
        self._function_stack: list[str] = []
        self._lambda_counter = 0

    # -- scope bookkeeping --------------------------------------------------

    def _qualify(self, name: str) -> str:
        if self._function_stack:
            return f"{self._function_stack[-1]}.<locals>.{name}"
        if self._class_stack:
            return f"{self._class_stack[-1].qualname}.{name}"
        return f"{self.module.name}.{name}"

    def _record_module_name(self, name: str) -> None:
        if not self._function_stack and not self._class_stack:
            self.module.module_names.add(name)

    # -- imports ------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.module.imports.setdefault(local, target)
            self._record_module_name(local)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            parts = self.module.name.split(".")
            # Relative to the containing package: a module drops its own
            # name, then one more component per extra level.
            package = parts[: len(parts) - node.level]
            base = ".".join(package + ([node.module] if node.module else []))
        else:
            base = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            target = f"{base}.{alias.name}" if base else alias.name
            self.module.imports.setdefault(local, target)
            self._record_module_name(local)

    # -- definitions ---------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qualify(node.name)
        info = ClassInfo(
            qualname=qualname,
            module=self.module.name,
            node=node,
            base_names=[
                text
                for base in node.bases
                if (text := _annotation_text(base)) is not None
            ],
            nested_in_function=bool(self._function_stack),
        )
        self._record_module_name(node.name)
        self.index.classes[qualname] = info
        self._class_stack.append(info)
        saved_functions, self._function_stack = self._function_stack, []
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                annotation = _annotation_text(statement.annotation)
                if annotation is not None:
                    info.attr_annotations.setdefault(statement.target.id, annotation)
            self.visit(statement)
        self._function_stack = saved_functions
        self._class_stack.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda, name: str
    ) -> None:
        qualname = self._qualify(name)
        in_class = bool(self._class_stack) and not self._function_stack
        info = FunctionInfo(
            qualname=qualname,
            module=self.module.name,
            node=node,
            class_name=self._class_stack[-1].qualname if self._class_stack else None,
            parent=self._function_stack[-1] if self._function_stack else None,
        )
        self.index.functions[qualname] = info
        if in_class:
            self._class_stack[-1].methods[name] = qualname
            if name == "__init__" and isinstance(node, ast.FunctionDef):
                self._collect_init_attrs(self._class_stack[-1], node)
        self._record_module_name(name)
        self._function_stack.append(qualname)
        body = node.body if isinstance(node.body, list) else [node.body]
        for statement in body:
            self.visit(statement)
        self._function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._lambda_counter += 1
        self._visit_function(node, f"<lambda-{node.lineno}-{self._lambda_counter}>")

    def _collect_init_attrs(self, info: ClassInfo, node: ast.FunctionDef) -> None:
        """``self.x: T`` and ``self.x = <annotated param>`` give attr types."""
        param_types: dict[str, str] = {}
        for arg in node.args.args + node.args.kwonlyargs:
            annotation = _annotation_text(arg.annotation)
            if annotation is not None:
                param_types[arg.arg] = annotation
        for statement in ast.walk(node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation_text: str | None = None
            if isinstance(statement, ast.AnnAssign):
                target, value = statement.target, statement.value
                annotation_text = _annotation_text(statement.annotation)
            elif isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target, value = statement.targets[0], statement.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attr = target.attr
                if annotation_text is not None:
                    info.attr_annotations.setdefault(attr, annotation_text)
                elif isinstance(value, ast.Name) and value.id in param_types:
                    info.attr_annotations.setdefault(attr, param_types[value.id])
                elif isinstance(value, ast.Call) and (
                    constructor := _annotation_text(value.func)
                ):
                    info.attr_annotations.setdefault(attr, constructor)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._record_module_name(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            self._record_module_name(node.target.id)
        self.generic_visit(node)


@dataclass
class ProjectIndex:
    """Symbol table over a set of modules; see the module docstring."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    digest: str = ""

    # -- construction --------------------------------------------------------

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "ProjectIndex":
        """Build an index from in-memory ``{dotted module name: source}``."""
        index = cls()
        for name in sorted(sources):
            source = sources[name]
            path = name.replace(".", "/") + ".py"
            index._add_module(name, path, source)
        return index

    @classmethod
    def from_files(cls, files: dict[str, Path]) -> "ProjectIndex":
        """Build an index from ``{dotted module name: file path}``."""
        index = cls()
        for name in sorted(files):
            path = files[name]
            index._add_module(name, str(path), path.read_text(encoding="utf-8"))
        return index

    def _add_module(self, name: str, path: str, source: str) -> None:
        tree = ast.parse(source, filename=path)
        module = ModuleInfo(
            name=name, path=path, source=source, tree=tree, lines=source.splitlines()
        )
        self.modules[name] = module
        _ModuleCollector(self, module).visit(tree)

    # -- name resolution -----------------------------------------------------

    def resolve(self, module: str, dotted: str) -> str | None:
        """Resolve ``dotted`` as used in ``module`` to a project symbol.

        Returns the qualified name of a function, class, or module of the
        index, chasing import aliases and re-export chains; ``None`` for
        anything external or dynamic.
        """
        return self._resolve(module, dotted, seen=set())

    def _resolve(self, module: str, dotted: str, seen: set[tuple[str, str]]) -> str | None:
        if (module, dotted) in seen:
            return None
        seen.add((module, dotted))
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in info.imports:
            target = info.imports[head] + (f".{rest}" if rest else "")
        elif head in info.module_names:
            target = f"{module}.{dotted}"
        else:
            return None
        return self._canonicalize(target, seen)

    def _canonicalize(self, target: str, seen: set[tuple[str, str]]) -> str | None:
        if target in self.functions or target in self.classes or target in self.modules:
            return target
        # ``pkg.mod.name``: find the longest module prefix and resolve the
        # remainder inside it (covers re-exports through ``__init__``).
        parts = target.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                remainder = ".".join(parts[cut:])
                return self._resolve(prefix, remainder, seen)
        return None

    # -- class queries -------------------------------------------------------

    def resolve_base(self, info: ClassInfo, base_text: str) -> str | None:
        resolved = self.resolve(info.module, base_text)
        return resolved if resolved in self.classes else None

    def mro(self, class_qualname: str) -> list[ClassInfo]:
        """Project-visible linearization: the class, then bases, DFS order."""
        ordered: list[ClassInfo] = []
        visited: set[str] = set()

        def walk(qualname: str) -> None:
            if qualname in visited or qualname not in self.classes:
                return
            visited.add(qualname)
            info = self.classes[qualname]
            ordered.append(info)
            for base_text in info.base_names:
                base = self.resolve_base(info, base_text)
                if base is not None:
                    walk(base)

        walk(class_qualname)
        return ordered

    def is_subclass_of(self, class_qualname: str, base_qualname: str) -> bool:
        return any(info.qualname == base_qualname for info in self.mro(class_qualname))

    def subclasses_of(self, base_qualname: str) -> list[ClassInfo]:
        """Every project class whose MRO reaches ``base_qualname``."""
        return [
            info
            for qualname, info in sorted(self.classes.items())
            if qualname != base_qualname and self.is_subclass_of(qualname, base_qualname)
        ]

    def find_method(
        self, class_qualname: str, method: str, *, skip_self: bool = False
    ) -> FunctionInfo | None:
        """Resolve ``method`` along the project MRO of ``class_qualname``."""
        for info in self.mro(class_qualname)[1 if skip_self else 0 :]:
            qualname = info.methods.get(method)
            if qualname is not None:
                return self.functions.get(qualname)
        return None

    def method_implementations(
        self, class_qualname: str, method: str
    ) -> list[FunctionInfo]:
        """The MRO resolution plus every project subclass override.

        The receiver's *declared* type rarely tells the whole story — a
        parameter annotated with the base class may carry any subclass at
        runtime — so call edges through a declared type conservatively
        fan out to the overrides as well.
        """
        found: dict[str, FunctionInfo] = {}
        primary = self.find_method(class_qualname, method)
        if primary is not None:
            found[primary.qualname] = primary
        for sub in self.subclasses_of(class_qualname):
            qualname = sub.methods.get(method)
            if qualname is not None and qualname in self.functions:
                found[qualname] = self.functions[qualname]
        return [found[name] for name in sorted(found)]

    def attr_type(self, class_qualname: str, attr: str) -> str | None:
        """Resolved project class of ``<class>.<attr>``, when annotated."""
        for info in self.mro(class_qualname):
            text = info.attr_annotations.get(attr)
            if text is not None:
                resolved = self.resolve(info.module, text)
                return resolved if resolved in self.classes else None
        return None


# ---------------------------------------------------------------------------
# Building from a source tree, with a content-addressed cache
# ---------------------------------------------------------------------------


def _module_name(path: Path) -> str:
    """Dotted module name: walk up while the parent is a package."""
    parts = [path.stem] if path.stem != "__init__" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        current = current.parent
    if not parts:  # a bare __init__.py with no package parent
        parts = [path.stem]
    return ".".join(reversed(parts))


def discover_modules(paths: list[Path]) -> dict[str, Path]:
    """Map dotted module names to files for every ``.py`` under ``paths``."""
    files: dict[str, Path] = {}
    for path in paths:
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            if candidate.suffix == ".py":
                files.setdefault(_module_name(candidate), candidate)
    return files


def source_tree_digest(files: dict[str, Path]) -> str:
    """Content hash of a module set; the symbol-table cache key."""
    digest = hashlib.sha256()
    digest.update(f"schema:{INDEX_SCHEMA_VERSION}".encode())
    for name in sorted(files):
        digest.update(name.encode())
        digest.update(b"\x00")
        digest.update(hashlib.sha256(files[name].read_bytes()).digest())
    return digest.hexdigest()


def load_or_build_index(paths: list[Path], cache_dir: Path | None = None) -> ProjectIndex:
    """Build the :class:`ProjectIndex` for ``paths``, using ``cache_dir``.

    The cache is keyed on the content digest of every source file: any
    edit misses and rebuilds, an untouched tree deserializes the pickled
    table instead of re-parsing ~every module (what keeps the CI lint job
    inside its wall-time with the whole-program analyses added).  Stale
    entries are pruned on write; a corrupt or unreadable entry falls back
    to a rebuild.
    """
    files = discover_modules(paths)
    digest = source_tree_digest(files)
    cache_file = None
    if cache_dir is not None:
        cache_file = cache_dir / f"symtab-{digest[:32]}.pkl"
        if cache_file.exists():
            try:
                with cache_file.open("rb") as handle:
                    cached = pickle.load(handle)
                if isinstance(cached, ProjectIndex) and cached.digest == digest:
                    return cached
            except Exception:  # noqa: BLE001 - any cache corruption means rebuild
                pass
    index = ProjectIndex.from_files(files)
    index.digest = digest
    if cache_file is not None:
        cache_dir.mkdir(parents=True, exist_ok=True)
        for stale in cache_dir.glob("symtab-*.pkl"):
            if stale != cache_file:
                stale.unlink(missing_ok=True)
        try:
            with cache_file.open("wb") as handle:
                pickle.dump(index, handle, protocol=pickle.HIGHEST_PROTOCOL)
        except OSError:
            pass
    return index
