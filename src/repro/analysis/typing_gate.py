"""The typing gate: every definition fully annotated.

**TG001** is the locally runnable proxy for the CI's ``mypy --strict``
job: it requires every function definition in the package to annotate
every parameter (``self``/``cls`` excepted) and its return type.  mypy
checks much more, but "no unannotated defs" is the part that demands the
sweep — once it holds, strict mode has real signatures to check instead
of silently treating whole call graphs as ``Any``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import ClassVar

from repro.analysis.core import Finding, ParsedModule, Rule

__all__ = ["UnannotatedDefinition"]


class UnannotatedDefinition(Rule):
    """TG001: parameters and returns must carry annotations."""

    rule_id: ClassVar[str] = "TG001"
    summary: ClassVar[str] = (
        "function definition missing parameter or return annotations; the "
        "package is strictly typed (mypy --strict in CI)"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: ParsedModule, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        arguments = function.args
        positional = [*arguments.posonlyargs, *arguments.args]
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in {"self", "cls"}:
                continue
            if arg.annotation is None:
                yield module.finding(
                    self.rule_id,
                    arg,
                    f"parameter {arg.arg!r} of {function.name!r} is unannotated",
                )
        for arg in arguments.kwonlyargs:
            if arg.annotation is None:
                yield module.finding(
                    self.rule_id,
                    arg,
                    f"parameter {arg.arg!r} of {function.name!r} is unannotated",
                )
        for variadic in (arguments.vararg, arguments.kwarg):
            if variadic is not None and variadic.annotation is None:
                yield module.finding(
                    self.rule_id,
                    variadic,
                    f"parameter {variadic.arg!r} of {function.name!r} is unannotated",
                )
        if function.returns is None:
            yield module.finding(
                self.rule_id,
                function,
                f"function {function.name!r} has no return annotation",
            )
