"""The repro invariant analyzer: per-file lint rules + whole-program analyses.

The per-file families encode invariants visible in one module's syntax —
the hazards that broke (or nearly broke) earlier PRs — plus the typing
gate backing the CI's ``mypy --strict`` job:

==========  ==============================================================
PS001/002   process-safety: jobs must pickle and must not write driver
            state from task methods (or declare ``process_safe = False``)
DT001-003   determinism: no set-order emits, unseeded RNGs, or
            ``id()``-keyed dicts
KC001-004   kernel contracts (``algos/``, ``bench/``): explicit dtypes,
            intentional float equality, no argument mutation, no
            completion-order or set-order result collection
AH001-003   API hygiene: mutable defaults, bare ``except``, ``__all__``
            drift in package ``__init__`` files
TG001       typing gate: every definition fully annotated
==========  ==============================================================

The whole-program layer (:mod:`repro.analysis.project` symbol table +
:mod:`repro.analysis.callgraph` summaries) adds interprocedural families:

==========  ==============================================================
RC001-004   shared-state races from concurrency roots (task methods,
            pool-spawned closures) — see :mod:`repro.analysis.races`
PS003/004   transitive pickle-safety verdicts vs. the declared
            ``process_safe`` flag — see :mod:`repro.analysis.pickling`
LS001-003   suppression hygiene: no blanket ignores, no stale entries,
            justified RC suppressions — see :mod:`repro.analysis.core`
==========  ==============================================================

Run ``python -m repro.analysis src/`` (the CI lint gate), or call
:func:`analyze_paths` / :func:`project_findings` programmatically.
Suppress one finding with a trailing ``# lint: ignore[RULE-ID]`` comment
(RC suppressions additionally need ``-- justification``);
``docs/STATIC_ANALYSIS.md`` documents every rule with the incident that
motivated it.  ``repro.analysis.sanitizer`` is the dynamic cross-check:
``repro build --sanitize`` hashes shuffle streams and kernel row tables
so CI can compare runtimes bit-for-bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING as _TYPE_CHECKING

if _TYPE_CHECKING:
    from pathlib import Path

from repro.analysis.api_hygiene import AllDrift, BareExcept, MutableDefaultArgument
from repro.analysis.core import (
    SUPPRESSION_RULES,
    Finding,
    ParsedModule,
    Rule,
    analyze_paths,
    analyze_source,
    apply_suppressions,
    dotted_name,
    iter_python_files,
    parse_module,
    scan_suppressions,
)
from repro.analysis.determinism import (
    IdKeyedMapping,
    SetIterationIntoEmit,
    UnseededRandomness,
)
from repro.analysis.kernel_contracts import (
    FloatLiteralEquality,
    MissingExplicitDtype,
    MutatedArgument,
    NondeterministicCollection,
)
from repro.analysis.pickling import PICKLE_RULES, job_pickle_verdicts, pickle_findings
from repro.analysis.process_safety import JobNotModuleLevel, TaskMethodMutatesSelf
from repro.analysis.project import ProjectIndex, load_or_build_index
from repro.analysis.races import RACE_RULES, RaceAnalysis, race_findings
from repro.analysis.typing_gate import UnannotatedDefinition

__all__ = [
    "AllDrift",
    "BareExcept",
    "Finding",
    "FloatLiteralEquality",
    "IdKeyedMapping",
    "JobNotModuleLevel",
    "MissingExplicitDtype",
    "MutableDefaultArgument",
    "MutatedArgument",
    "NondeterministicCollection",
    "PICKLE_RULES",
    "ParsedModule",
    "ProjectIndex",
    "RACE_RULES",
    "RaceAnalysis",
    "Rule",
    "SUPPRESSION_RULES",
    "SetIterationIntoEmit",
    "TaskMethodMutatesSelf",
    "UnannotatedDefinition",
    "UnseededRandomness",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "apply_suppressions",
    "dotted_name",
    "iter_python_files",
    "job_pickle_verdicts",
    "load_or_build_index",
    "parse_module",
    "pickle_findings",
    "project_findings",
    "project_rule_ids",
    "race_findings",
    "scan_suppressions",
]


def all_rules() -> list[Rule]:
    """One instance of every rule, in rule-id order."""
    rules: list[Rule] = [
        JobNotModuleLevel(),
        TaskMethodMutatesSelf(),
        SetIterationIntoEmit(),
        UnseededRandomness(),
        IdKeyedMapping(),
        MissingExplicitDtype(),
        FloatLiteralEquality(),
        MutatedArgument(),
        NondeterministicCollection(),
        MutableDefaultArgument(),
        BareExcept(),
        AllDrift(),
        UnannotatedDefinition(),
    ]
    return sorted(rules, key=lambda rule: rule.rule_id)


def project_rule_ids() -> set[str]:
    """Rule ids the whole-program layer can emit (RC + pickle verdicts)."""
    return set(RACE_RULES) | set(PICKLE_RULES)


def project_findings(
    paths: list[str | Path], cache_dir: Path | None = None
) -> list[Finding]:
    """Whole-program findings (RC races + PS003/PS004) for ``paths``.

    Builds (or loads from ``cache_dir``) the project symbol table, runs
    the race detector and the pickle-safety verdicts, then filters the
    results through each file's rule-scoped suppressions.  Misuse
    meta-findings (LS001/LS003) are left to the per-file pass — which
    walked the same files already — so one bad comment is reported once;
    unused-suppression findings (LS002) for the interprocedural rule ids
    are reported here, where those ids are actually known.
    """
    from pathlib import Path as _Path

    from repro.analysis.callgraph import build_summaries

    index = load_or_build_index([_Path(p) for p in paths], cache_dir)

    summaries = build_summaries(index)
    raw = race_findings(index, summaries) + pickle_findings(index, summaries)
    known = project_rule_ids()
    by_path: dict[str, list[Finding]] = {}
    for finding in raw:
        by_path.setdefault(finding.path, []).append(finding)
    # Files with suppressions but no findings still need LS002 checks.
    for module in index.modules.values():
        by_path.setdefault(module.path, [])
    lines_by_path = {
        module.path: module.lines for module in index.modules.values()
    }
    filtered: list[Finding] = []
    for path, findings in sorted(by_path.items()):
        lines = lines_by_path.get(path)
        if lines is None:
            filtered.extend(findings)
            continue
        filtered.extend(
            apply_suppressions(
                findings,
                scan_suppressions(lines, path),
                known,
                report_misuse=False,
            )
        )
    filtered.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return filtered
