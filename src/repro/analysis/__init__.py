"""The repro invariant lint pack: AST rules for the repo's contracts.

Four rule families encode the invariants the distributed algorithms rest
on — the hazards that broke (or nearly broke) earlier PRs — plus the
typing gate backing the CI's ``mypy --strict`` job:

==========  ==============================================================
PS001/002   process-safety: jobs must pickle and must not write driver
            state from task methods (or declare ``process_safe = False``)
DT001-003   determinism: no set-order emits, unseeded RNGs, or
            ``id()``-keyed dicts
KC001-004   kernel contracts (``algos/``, ``bench/``): explicit dtypes,
            intentional float equality, no argument mutation, no
            completion-order or set-order result collection
AH001-003   API hygiene: mutable defaults, bare ``except``, ``__all__``
            drift in package ``__init__`` files
TG001       typing gate: every definition fully annotated
==========  ==============================================================

Run ``python -m repro.analysis src/`` (the CI lint gate), or call
:func:`analyze_paths` programmatically.  Suppress one finding with a
trailing ``# lint: ignore[RULE-ID]`` comment; ``docs/STATIC_ANALYSIS.md``
documents every rule with the incident that motivated it.
"""

from __future__ import annotations

from repro.analysis.api_hygiene import AllDrift, BareExcept, MutableDefaultArgument
from repro.analysis.core import (
    Finding,
    ParsedModule,
    Rule,
    analyze_paths,
    analyze_source,
    dotted_name,
    iter_python_files,
    parse_module,
)
from repro.analysis.determinism import (
    IdKeyedMapping,
    SetIterationIntoEmit,
    UnseededRandomness,
)
from repro.analysis.kernel_contracts import (
    FloatLiteralEquality,
    MissingExplicitDtype,
    MutatedArgument,
    NondeterministicCollection,
)
from repro.analysis.process_safety import JobNotModuleLevel, TaskMethodMutatesSelf
from repro.analysis.typing_gate import UnannotatedDefinition

__all__ = [
    "AllDrift",
    "BareExcept",
    "Finding",
    "FloatLiteralEquality",
    "IdKeyedMapping",
    "JobNotModuleLevel",
    "MissingExplicitDtype",
    "MutableDefaultArgument",
    "MutatedArgument",
    "NondeterministicCollection",
    "ParsedModule",
    "Rule",
    "SetIterationIntoEmit",
    "TaskMethodMutatesSelf",
    "UnannotatedDefinition",
    "UnseededRandomness",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "dotted_name",
    "iter_python_files",
    "parse_module",
]


def all_rules() -> list[Rule]:
    """One instance of every rule, in rule-id order."""
    rules: list[Rule] = [
        JobNotModuleLevel(),
        TaskMethodMutatesSelf(),
        SetIterationIntoEmit(),
        UnseededRandomness(),
        IdKeyedMapping(),
        MissingExplicitDtype(),
        FloatLiteralEquality(),
        MutatedArgument(),
        NondeterministicCollection(),
        MutableDefaultArgument(),
        BareExcept(),
        AllDrift(),
        UnannotatedDefinition(),
    ]
    return sorted(rules, key=lambda rule: rule.rule_id)
