"""Shared machinery for the repro invariant lint pack.

A *rule* inspects one parsed module and yields :class:`Finding` records.
Rules are deliberately small AST visitors — no type inference, no import
resolution — because every invariant they encode (process-safety,
determinism, kernel dtype contracts, API hygiene, the typing gate) is
visible in a single module's syntax.  The trade-off is documented per
rule in ``docs/STATIC_ANALYSIS.md``: a rule may need an explicit
suppression where the pattern is intentional.

Suppression: append ``# lint: ignore[RULE-ID]`` (comma-separated for
several rules) to the flagged line, optionally followed by
``-- justification``.  Suppressions are *rule-scoped only*: a bracketless
ignore comment suppresses nothing and is itself reported (LS001), a
scoped suppression whose rule fired nothing on its line is reported as
unused (LS002, for rules in the running set), and suppressions of the
interprocedural RC family must carry a justification (LS003).
"""

from __future__ import annotations

import ast
import re
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar

__all__ = [
    "Finding",
    "ParsedModule",
    "Rule",
    "SUPPRESSION_RULES",
    "Suppression",
    "analyze_paths",
    "analyze_source",
    "apply_suppressions",
    "dotted_name",
    "iter_python_files",
    "parse_module",
    "scan_suppressions",
]

_SUPPRESSION = re.compile(
    r"#\s*lint:\s*ignore"
    r"(?:\[(?P<rules>[A-Za-z0-9_\-,\s]+)\])?"
    r"(?:\s*--\s*(?P<why>.*))?"
)

#: The lint-suppression meta-rules.  They are emitted by
#: :func:`apply_suppressions` rather than by :class:`Rule` visitors, and
#: they cannot themselves be suppressed — a suppression that silences the
#: rule about bad suppressions would be unauditable.
SUPPRESSION_RULES = {
    "LS001": (
        "blanket lint-ignore comment (no rule list) suppresses nothing; "
        "scope it as `# lint: ignore[RULE-ID]`"
    ),
    "LS002": (
        "suppression names a rule that reported nothing on its line; delete "
        "the stale entry"
    ),
    "LS003": (
        "suppressions of the interprocedural race family (RCxxx) must carry "
        "a `-- justification` explaining why the shared write is ordering-safe"
    ),
}

#: Rule-id prefixes whose suppressions require a justification comment.
_JUSTIFIED_PREFIXES = ("RC",)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` — the CLI's output format."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class ParsedModule:
    """A parsed source file, handed to every rule."""

    path: str
    tree: ast.Module
    lines: list[str]

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` located at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=rule, path=self.path, line=int(line), col=int(col) + 1, message=message)


class Rule(ABC):
    """Base class for lint rules.

    Subclasses set :attr:`rule_id` and :attr:`summary` and implement
    :meth:`check`.  :meth:`applies_to` lets path-scoped families (the
    kernel contracts only watch ``algos/`` and ``bench/``) skip modules
    wholesale.
    """

    rule_id: ClassVar[str] = ""
    summary: ClassVar[str] = ""

    def applies_to(self, path: Path) -> bool:
        """Whether this rule runs on ``path`` at all."""
        return True

    @abstractmethod
    def check(self, module: ParsedModule) -> Iterator[Finding]:
        """Yield every violation found in ``module``."""


def parse_module(source: str, path: str) -> ParsedModule:
    """Parse ``source`` into the structure rules consume."""
    tree = ast.parse(source, filename=path)
    return ParsedModule(path=path, tree=tree, lines=source.splitlines())


@dataclass(frozen=True)
class Suppression:
    """One rule-scoped lint-ignore comment, parsed from a source line."""

    path: str
    line: int
    col: int
    #: Rule ids in the bracket; empty means a (disallowed) blanket comment.
    rules: tuple[str, ...]
    #: Free text after ``--`` — the why of the suppression.
    justification: str


def scan_suppressions(lines: Sequence[str], path: str) -> list[Suppression]:
    """Parse every suppression comment in ``lines``."""
    found: list[Suppression] = []
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESSION.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        scoped = (
            tuple(token.strip() for token in rules.split(",") if token.strip())
            if rules is not None
            else ()
        )
        found.append(
            Suppression(
                path=path,
                line=number,
                col=match.start() + 1,
                rules=scoped,
                justification=(match.group("why") or "").strip(),
            )
        )
    return found


def apply_suppressions(
    findings: Iterable[Finding],
    suppressions: Sequence[Suppression],
    known_rule_ids: Iterable[str],
    *,
    report_misuse: bool = True,
) -> list[Finding]:
    """Filter ``findings`` through rule-scoped suppressions.

    Returns the surviving findings plus the suppression meta-findings:
    LS001 for blanket comments (which suppress nothing), LS002 for a
    scoped rule id in ``known_rule_ids`` that matched no finding on its
    line, and LS003 for an RC-family suppression without a justification.
    ``report_misuse=False`` limits the meta-findings to LS002 — used by
    the project analyzer, whose files the per-file pass already walked
    (one LS001/LS003 per comment, not one per analysis layer).
    """
    known = set(known_rule_ids)
    kept: list[Finding] = []
    used: set[tuple[int, str]] = set()
    by_line: dict[int, set[str]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.line, set()).update(suppression.rules)
    for finding in findings:
        if finding.rule in by_line.get(finding.line, set()):
            used.add((finding.line, finding.rule))
        else:
            kept.append(finding)
    for suppression in suppressions:
        if not suppression.rules:
            if report_misuse:
                kept.append(
                    Finding(
                        rule="LS001",
                        path=suppression.path,
                        line=suppression.line,
                        col=suppression.col,
                        message=SUPPRESSION_RULES["LS001"],
                    )
                )
            continue
        if report_misuse and not suppression.justification:
            unjustified = [
                rule
                for rule in suppression.rules
                if rule.startswith(_JUSTIFIED_PREFIXES)
            ]
            if unjustified:
                kept.append(
                    Finding(
                        rule="LS003",
                        path=suppression.path,
                        line=suppression.line,
                        col=suppression.col,
                        message=f"suppression of {', '.join(unjustified)} lacks a "
                        "`-- justification`: say why the shared write is "
                        "ordering-safe",
                    )
                )
        for rule in suppression.rules:
            if rule in known and (suppression.line, rule) not in used:
                kept.append(
                    Finding(
                        rule="LS002",
                        path=suppression.path,
                        line=suppression.line,
                        col=suppression.col,
                        message=f"unused suppression: {rule} reported nothing on "
                        "this line",
                    )
                )
    kept.sort(key=lambda finding: (finding.path, finding.line, finding.col, finding.rule))
    return kept


def analyze_source(source: str, path: str, rules: Sequence[Rule]) -> list[Finding]:
    """Run ``rules`` over one source string; suppressions applied."""
    module = parse_module(source, path)
    location = Path(path)
    findings: list[Finding] = []
    applicable: list[Rule] = []
    for rule in rules:
        if not rule.applies_to(location):
            continue
        applicable.append(rule)
        findings.extend(rule.check(module))
    return apply_suppressions(
        findings,
        scan_suppressions(module.lines, path),
        {rule.rule_id for rule in applicable},
    )


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, in deterministic order."""
    for path in paths:
        location = Path(path)
        if location.is_dir():
            yield from sorted(location.rglob("*.py"))
        elif location.suffix == ".py":
            yield location
        else:
            raise FileNotFoundError(f"not a Python file or directory: {location}")


def analyze_paths(paths: Iterable[str | Path], rules: Sequence[Rule]) -> list[Finding]:
    """Run ``rules`` over every Python file under ``paths``."""
    findings: list[Finding] = []
    for location in iter_python_files(paths):
        source = location.read_text(encoding="utf-8")
        findings.extend(analyze_source(source, str(location), rules))
    return findings


def dotted_name(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything fancier."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))
