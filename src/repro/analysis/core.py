"""Shared machinery for the repro invariant lint pack.

A *rule* inspects one parsed module and yields :class:`Finding` records.
Rules are deliberately small AST visitors — no type inference, no import
resolution — because every invariant they encode (process-safety,
determinism, kernel dtype contracts, API hygiene, the typing gate) is
visible in a single module's syntax.  The trade-off is documented per
rule in ``docs/STATIC_ANALYSIS.md``: a rule may need an explicit
suppression where the pattern is intentional.

Suppression: append ``# lint: ignore[RULE-ID]`` (comma-separated for
several rules, or no bracket to silence every rule) to the flagged line.
"""

from __future__ import annotations

import ast
import re
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar

__all__ = [
    "Finding",
    "ParsedModule",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "dotted_name",
    "iter_python_files",
    "parse_module",
]

_SUPPRESSION = re.compile(r"#\s*lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_\-,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` — the CLI's output format."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class ParsedModule:
    """A parsed source file, handed to every rule."""

    path: str
    tree: ast.Module
    lines: list[str]

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` located at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=rule, path=self.path, line=int(line), col=int(col) + 1, message=message)


class Rule(ABC):
    """Base class for lint rules.

    Subclasses set :attr:`rule_id` and :attr:`summary` and implement
    :meth:`check`.  :meth:`applies_to` lets path-scoped families (the
    kernel contracts only watch ``algos/`` and ``bench/``) skip modules
    wholesale.
    """

    rule_id: ClassVar[str] = ""
    summary: ClassVar[str] = ""

    def applies_to(self, path: Path) -> bool:
        """Whether this rule runs on ``path`` at all."""
        return True

    @abstractmethod
    def check(self, module: ParsedModule) -> Iterator[Finding]:
        """Yield every violation found in ``module``."""


def parse_module(source: str, path: str) -> ParsedModule:
    """Parse ``source`` into the structure rules consume."""
    tree = ast.parse(source, filename=path)
    return ParsedModule(path=path, tree=tree, lines=source.splitlines())


def _suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    """True when the finding's line carries a matching suppression."""
    if not 1 <= finding.line <= len(lines):
        return False
    match = _SUPPRESSION.search(lines[finding.line - 1])
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True
    return finding.rule in {token.strip() for token in rules.split(",")}


def analyze_source(source: str, path: str, rules: Sequence[Rule]) -> list[Finding]:
    """Run ``rules`` over one source string; suppressions applied."""
    module = parse_module(source, path)
    location = Path(path)
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(location):
            continue
        findings.extend(rule.check(module))
    kept = [finding for finding in findings if not _suppressed(finding, module.lines)]
    kept.sort(key=lambda finding: (finding.path, finding.line, finding.col, finding.rule))
    return kept


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, in deterministic order."""
    for path in paths:
        location = Path(path)
        if location.is_dir():
            yield from sorted(location.rglob("*.py"))
        elif location.suffix == ".py":
            yield location
        else:
            raise FileNotFoundError(f"not a Python file or directory: {location}")


def analyze_paths(paths: Iterable[str | Path], rules: Sequence[Rule]) -> list[Finding]:
    """Run ``rules`` over every Python file under ``paths``."""
    findings: list[Finding] = []
    for location in iter_python_files(paths):
        source = location.read_text(encoding="utf-8")
        findings.extend(analyze_source(source, str(location), rules))
    return findings


def dotted_name(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything fancier."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))
