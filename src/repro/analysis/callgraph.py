"""Per-function summaries and the resolved project call graph.

For every function in a :class:`~repro.analysis.project.ProjectIndex`
(methods, nested functions, and lambdas included) this module builds one
:class:`FunctionSummary`: the function's writes (attribute stores,
subscript stores, mutating container calls, shared-RNG draws), its
resolved outgoing call edges with argument-to-root bindings, the thread
or process pools it spawns work on, and the alias structure connecting
local names back to parameters, closure cells, and call results.

Resolution is *annotation-driven* (the ``mypy --strict`` gate guarantees
annotations exist): a method call ``x.m(...)`` resolves through the
declared type of ``x`` — parameter annotation, constructor assignment,
``self`` attribute annotation, or a callee's return annotation — and
conservatively fans out to every project subclass override of ``m``.
``super().m(...)`` resolves along the enclosing class's project MRO.
What cannot be resolved (higher-order calls through function-valued
parameters, external libraries) becomes no edge at all; the race
detector documents that as its known imprecision rather than guessing.

Lock awareness: writes lexically inside a ``with`` whose context
expression names a lock (its last attribute component contains
``"lock"``, e.g. ``with self._lock:``) are marked *guarded* — the
ordering-safe idiom the RC rules skip.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.project import (
    FunctionInfo,
    ProjectIndex,
    _annotation_text,
)

__all__ = [
    "CallEdge",
    "FunctionSummary",
    "SpawnSite",
    "WriteSite",
    "build_summaries",
    "bind_arguments",
]

#: Container methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {"append", "extend", "add", "update", "insert", "remove", "discard",
     "clear", "pop", "popitem", "setdefault", "sort", "reverse"}
)

#: Methods that advance hidden RNG state — a draw from a shared generator
#: is a write for ordering purposes (``random.Random`` and
#: ``numpy.random.Generator`` vocabulary).
RNG_METHODS = frozenset(
    {"random", "randint", "randrange", "randbytes", "getrandbits", "shuffle",
     "choice", "choices", "sample", "uniform", "normal", "standard_normal",
     "integers", "normalvariate", "gauss", "bytes", "permutation", "permuted"}
)

#: Constructor names whose instances run callables concurrently.
_EXECUTOR_TYPES = frozenset({"ThreadPoolExecutor", "ProcessPoolExecutor", "Pool"})

#: Executor methods whose first argument is executed on pool workers.
_SPAWN_METHODS = frozenset({"map", "submit", "apply_async", "imap", "starmap"})


@dataclass(frozen=True)
class WriteSite:
    """One mutation, recorded against the *base name* written through.

    ``root`` is the unresolved local name at the bottom of the attribute
    or subscript chain (``"self"`` for ``self.store[k] = v``), or ``""``
    for a ``global``-declared rebind.  The race detector resolves roots
    through the summary's alias graph and the taint state.
    """

    root: str
    detail: str
    line: int
    col: int
    kind: str  # "assign" | "mutator" | "rng" | "del" | "global" | "nonlocal"
    guarded: bool


@dataclass(frozen=True)
class SpawnSite:
    """A callable handed to a thread/process pool (``.map``/``.submit``)."""

    callee: str | None  # function qualname when resolved
    text: str
    line: int


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site."""

    callees: tuple[str, ...]  # function qualnames (fan-out over overrides)
    line: int
    col: int
    #: Roots of the receiver expression for method calls, () otherwise.
    receiver_roots: tuple[str, ...]
    pos_roots: tuple[tuple[str, ...], ...]
    kw_roots: tuple[tuple[str, tuple[str, ...]], ...]
    #: Local name the result is assigned to, when directly assigned.
    assigned_to: str | None
    #: Class qualname when this is ``Cls(...)`` (callees = its __init__).
    constructs: str | None
    guarded: bool


@dataclass
class FunctionSummary:
    """Everything the interprocedural analyses need about one function."""

    qualname: str
    module: str
    params: list[str] = field(default_factory=list)
    #: Names bound anywhere in the function (params included).
    bound: set[str] = field(default_factory=set)
    #: Free names: read/written here, bound in an enclosing function.
    frees: set[str] = field(default_factory=set)
    #: Params whose default is a mutable literal (shared across calls).
    mutable_default_params: set[str] = field(default_factory=set)
    global_decls: set[str] = field(default_factory=set)
    nonlocal_decls: set[str] = field(default_factory=set)
    writes: list[WriteSite] = field(default_factory=list)
    calls: list[CallEdge] = field(default_factory=list)
    spawns: list[SpawnSite] = field(default_factory=list)
    #: Local name -> names/tokens it may alias (``<ret:i>`` = call i's result).
    aliases: dict[str, set[str]] = field(default_factory=dict)
    #: Param/free names (or "self") returned directly by a return statement.
    returns: set[str] = field(default_factory=set)
    #: True when a return statement hands back a module-level binding —
    #: the returned object is process-global shared state.
    returns_global: bool = False
    #: Declared return type, resolved to a project class when possible.
    return_type: str | None = None

    def resolve_roots(self, name: str) -> set[str]:
        """Terminal roots of ``name`` through the alias graph."""
        seen: set[str] = set()
        terminal: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            targets = self.aliases.get(current)
            if not targets:
                terminal.add(current)
                continue
            stack.extend(targets)
        return terminal


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _base_name(node: ast.expr) -> str | None:
    """The Name at the bottom of an attribute/subscript chain."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    return current.id if isinstance(current, ast.Name) else None


def _attr_chain(node: ast.expr) -> list[str] | None:
    """``self.engine.base`` -> ["engine", "base"]; None off a non-Name base."""
    attrs: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        attrs.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    return list(reversed(attrs))


def _contains_executor_constructor(node: ast.expr) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            name = _dotted(child.func)
            if name is not None and name.split(".")[-1] in _EXECUTOR_TYPES:
                return True
    return False


def _is_lock_context(node: ast.expr) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    text = _dotted(target)
    return text is not None and "lock" in text.split(".")[-1].lower()


class _SummaryBuilder(ast.NodeVisitor):
    """One pass over a single function body (nested bodies excluded)."""

    def __init__(
        self,
        index: ProjectIndex,
        info: FunctionInfo,
        summary: FunctionSummary,
        nested: dict[str, str],
        lambda_names: dict[tuple[str, int, int], str],
        executor_env: set[str],
        enclosing_bound: set[str],
    ) -> None:
        self.index = index
        self.info = info
        self.summary = summary
        self.nested = nested  # local def/lambda name -> qualname
        self.lambda_names = lambda_names  # (module, line, col) -> qualname
        self.executor_names = set(executor_env)
        self.enclosing_bound = enclosing_bound
        self.guard_depth = 0
        self.loads: set[str] = set()
        module = index.modules[info.module]
        self.module_names = module.module_names
        self.imports = module.imports
        # Parameter annotations seed the local type environment — this is
        # what lets `injector.resolve(...)` resolve through the declared
        # FailureInjector type three modules away.
        self.local_types: dict[str, str] = {}
        if not isinstance(info.node, ast.Lambda):
            arguments = info.node.args
            for arg in (
                list(arguments.posonlyargs)
                + list(arguments.args)
                + list(arguments.kwonlyargs)
            ):
                annotation = _annotation_text(arg.annotation)
                if annotation is None:
                    continue
                resolved = index.resolve(info.module, annotation)
                if resolved in index.classes:
                    self.local_types[arg.arg] = resolved

    # -- helpers -------------------------------------------------------------

    def _roots(self, node: ast.expr) -> tuple[str, ...]:
        """Root names an expression's value may share structure with."""
        if isinstance(node, ast.Name):
            return (node.id,)
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            base = _base_name(node)
            return (base,) if base is not None else ()
        if isinstance(node, ast.Starred):
            return self._roots(node.value)
        if isinstance(node, ast.IfExp):
            return self._roots(node.body) + self._roots(node.orelse)
        return ()

    def _add_write(self, node: ast.expr, stmt: ast.AST, kind: str) -> None:
        base = _base_name(node)
        if base is None:
            return
        detail = _dotted(node if not isinstance(node, ast.Subscript) else node.value)
        self.summary.writes.append(
            WriteSite(
                root=base,
                detail=detail or base,
                line=getattr(stmt, "lineno", 0),
                col=getattr(stmt, "col_offset", 0) + 1,
                kind=kind,
                guarded=self.guard_depth > 0,
            )
        )

    def _bind(self, name: str, value: ast.expr | None, call_tokens: list[str]) -> None:
        self.summary.bound.add(name)
        edges = self.summary.aliases.setdefault(name, set())
        edges.update(call_tokens)
        if value is not None:
            edges.update(self._roots(value))
        if value is not None and _contains_executor_constructor(value):
            self.executor_names.add(name)

    def _class_of_expr(self, node: ast.expr) -> str | None:
        """Project class of an expression, via annotations."""
        if isinstance(node, ast.Name):
            if node.id == "self" and self.info.class_name is not None:
                return self.info.class_name
            declared = self.local_types.get(node.id)
            if declared is not None:
                return declared
            resolved = self.index.resolve(self.info.module, node.id)
            return resolved if resolved in self.index.classes else None
        if isinstance(node, ast.Attribute):
            chain = _attr_chain(node)
            base = node
            while isinstance(base, ast.Attribute):
                base = base.value
            if chain is None or not isinstance(base, ast.Name):
                return None
            current = self._class_of_expr(base)
            for attr in chain:
                if current is None:
                    return None
                current = self.index.attr_type(current, attr)
            return current
        if isinstance(node, ast.Call):
            constructed = self._resolve_class(node.func)
            if constructed is not None:
                return constructed
        return None

    def _resolve_class(self, func: ast.expr) -> str | None:
        text = _dotted(func)
        if text is None:
            return None
        resolved = self.index.resolve(self.info.module, text)
        return resolved if resolved in self.index.classes else None

    def _resolve_callable(self, func: ast.expr) -> tuple[str | None, str]:
        """Resolve a callable expression to a function qualname + its text."""
        if isinstance(func, ast.Lambda):
            key = (self.info.module, func.lineno, func.col_offset)
            return self.lambda_names.get(key), "<lambda>"
        text = _dotted(func) or "<dynamic>"
        if isinstance(func, ast.Name):
            if func.id in self.nested:
                return self.nested[func.id], text
            resolved = self.index.resolve(self.info.module, func.id)
            if resolved in self.index.functions:
                return resolved, text
            return None, text
        if isinstance(func, ast.Attribute):
            receiver_class = self._class_of_expr(func.value)
            if receiver_class is not None:
                method = self.index.find_method(receiver_class, func.attr)
                if method is not None:
                    return method.qualname, text
            resolved = self.index.resolve(self.info.module, text) if text else None
            if resolved in self.index.functions:
                return resolved, text
        return None, text

    # -- statements ----------------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self.summary.global_decls.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.summary.nonlocal_decls.update(node.names)

    def _assign_value_tokens(self, value: ast.expr, target_name: str | None) -> list[str]:
        """Visit an assignment's value; return alias tokens for call arms.

        Handles the ``x = f(...) if cond else other`` idiom: every call
        arm becomes an edge whose result is assigned to ``target_name``,
        so return-type and return-taint tracking survive the IfExp.
        """
        if isinstance(value, ast.Call):
            return [self._visit_call(value, assigned_to=target_name)]
        if isinstance(value, ast.IfExp):
            self.visit(value.test)
            tokens: list[str] = []
            for arm in (value.body, value.orelse):
                tokens.extend(self._assign_value_tokens(arm, target_name))
            return tokens
        self.visit(value)
        return []

    def _handle_store_target(self, target: ast.expr, stmt: ast.AST, value: ast.expr | None, call_tokens: list[str]) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.summary.global_decls:
                self.summary.writes.append(
                    WriteSite(
                        root="",
                        detail=target.id,
                        line=getattr(stmt, "lineno", 0),
                        col=getattr(stmt, "col_offset", 0) + 1,
                        kind="global",
                        guarded=self.guard_depth > 0,
                    )
                )
            elif target.id in self.summary.nonlocal_decls:
                self.summary.writes.append(
                    WriteSite(
                        root=target.id,
                        detail=target.id,
                        line=getattr(stmt, "lineno", 0),
                        col=getattr(stmt, "col_offset", 0) + 1,
                        kind="nonlocal",
                        guarded=self.guard_depth > 0,
                    )
                )
            else:
                self._bind(target.id, value, call_tokens)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._add_write(target, stmt, "assign")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._handle_store_target(element, stmt, None, call_tokens)
        elif isinstance(target, ast.Starred):
            self._handle_store_target(target.value, stmt, value, call_tokens)

    def visit_Assign(self, node: ast.Assign) -> None:
        call_tokens = self._assign_value_tokens(
            node.value, self._single_name(node.targets)
        )
        for target in node.targets:
            self._handle_store_target(target, node, node.value, call_tokens)
        if (name := self._single_name(node.targets)) is not None:
            inferred = self._class_of_expr(node.value)
            if inferred is not None:
                self.local_types[name] = inferred

    @staticmethod
    def _single_name(targets: list[ast.expr]) -> str | None:
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            return targets[0].id
        return None

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        call_tokens: list[str] = []
        if node.value is not None:
            target_name = node.target.id if isinstance(node.target, ast.Name) else None
            call_tokens = self._assign_value_tokens(node.value, target_name)
        self._handle_store_target(node.target, node, node.value, call_tokens)
        if isinstance(node.target, ast.Name):
            annotation = _annotation_text(node.annotation)
            if annotation is not None:
                resolved = self.index.resolve(self.info.module, annotation)
                if resolved in self.index.classes:
                    self.local_types[node.target.id] = resolved

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        self._handle_store_target(node.target, node, None, [])

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                self._add_write(target, node, "del")

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        # Elements of a shared container are shared: the loop target
        # aliases the iterable's roots.
        if isinstance(node.target, ast.Name):
            self._bind(node.target.id, node.iter, [])
        else:
            self._handle_store_target(node.target, node, node.iter, [])
        for statement in node.body + node.orelse:
            self.visit(statement)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        locked = False
        for item in node.items:
            if isinstance(item.context_expr, ast.Call):
                self._visit_call(item.context_expr, assigned_to=None)
            else:
                self.visit(item.context_expr)
            if _is_lock_context(item.context_expr):
                locked = True
            if item.optional_vars is not None:
                self._handle_store_target(
                    item.optional_vars, node, item.context_expr, []
                )
                if isinstance(item.optional_vars, ast.Name) and (
                    _contains_executor_constructor(item.context_expr)
                ):
                    self.executor_names.add(item.optional_vars.id)
        if locked:
            self.guard_depth += 1
        for statement in node.body:
            self.visit(statement)
        if locked:
            self.guard_depth -= 1

    def visit_Return(self, node: ast.Return) -> None:
        if isinstance(node.value, ast.Name):
            name = node.value.id
            if name in self.summary.bound or name in self.enclosing_bound or name == "self":
                self.summary.returns.add(name)
            elif name in self.module_names:
                self.summary.returns_global = True
        if node.value is not None:
            self.visit(node.value)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self.summary.bound.add(node.name)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._handle_store_target(node.target, node.iter, node.iter, [])
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._visit_call(node, assigned_to=None)

    def _visit_call(self, node: ast.Call, assigned_to: str | None) -> str | None:
        """Record a call edge; returns the ``<ret:i>`` alias token."""
        for argument in node.args:
            self.visit(argument)
        for keyword in node.keywords:
            self.visit(keyword.value)

        func = node.func
        receiver_roots: tuple[str, ...] = ()
        if isinstance(func, ast.Attribute):
            self.visit(func.value)
            receiver_roots = self._roots(func.value)
            base = _base_name(func.value)
            # Pool spawn: the mapped/submitted callable runs concurrently.
            if (
                base is not None
                and base in self.executor_names
                and func.attr in _SPAWN_METHODS
                and node.args
            ):
                spawned, text = self._resolve_callable(node.args[0])
                self.summary.spawns.append(
                    SpawnSite(callee=spawned, text=text, line=node.lineno)
                )
            # Mutating / RNG method call through a chain: a write on the
            # base — unless the base is an imported module (``np.sort``
            # is a function call on a module, not receiver mutation).
            receiver_is_import = (
                base is not None
                and base in self.imports
                and base not in self.summary.bound
            )
            if func.attr in MUTATOR_METHODS and not receiver_is_import:
                self._add_write(func.value, node, "mutator")
            elif (
                func.attr in RNG_METHODS
                and not receiver_is_import
                and isinstance(func.value, (ast.Attribute, ast.Name))
            ):
                self._add_write(func.value, node, "rng")
        elif isinstance(func, ast.Name):
            self.loads.add(func.id)

        callees: tuple[str, ...] = ()
        constructs: str | None = None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and self.info.class_name is not None
        ):
            target = self.index.find_method(
                self.info.class_name, func.attr, skip_self=True
            )
            if target is not None:
                callees = (target.qualname,)
            receiver_roots = ("self",)
        elif isinstance(func, ast.Attribute):
            receiver_class = self._class_of_expr(func.value)
            if receiver_class is not None:
                callees = tuple(
                    impl.qualname
                    for impl in self.index.method_implementations(
                        receiver_class, func.attr
                    )
                )
            else:
                resolved, _ = self._resolve_callable(func)
                if resolved is not None:
                    callees = (resolved,)
        else:
            constructs = self._resolve_class(func)
            if constructs is not None:
                init = self.index.find_method(constructs, "__init__")
                callees = (init.qualname,) if init is not None else ()
            else:
                resolved, _ = self._resolve_callable(func)
                if resolved is not None:
                    callees = (resolved,)

        edge = CallEdge(
            callees=callees,
            line=node.lineno,
            col=node.col_offset + 1,
            receiver_roots=receiver_roots if constructs is None else (),
            pos_roots=tuple(self._roots(argument) for argument in node.args),
            kw_roots=tuple(
                (keyword.arg, self._roots(keyword.value))
                for keyword in node.keywords
                if keyword.arg is not None
            ),
            assigned_to=assigned_to,
            constructs=constructs,
            guarded=self.guard_depth > 0,
        )
        index = len(self.summary.calls)
        self.summary.calls.append(edge)
        token = f"<ret:{index}>"
        if assigned_to is not None:
            # Return-type annotation gives the assigned local a class.
            for callee in callees:
                callee_info = self.index.functions.get(callee)
                if callee_info is None or isinstance(callee_info.node, ast.Lambda):
                    continue
                annotation = _annotation_text(callee_info.node.returns)
                if annotation is None:
                    continue
                resolved_type = self.index.resolve(callee_info.module, annotation)
                if resolved_type in self.index.classes:
                    self.local_types.setdefault(assigned_to, resolved_type)
                break
        return token

    # -- names and nesting ---------------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.loads.add(node.id)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.summary.bound.add(node.name)  # nested defs are local bindings

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.summary.bound.add(node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # its own summary covers the body


def _collect_params(summary: FunctionSummary, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> None:
    args = node.args
    every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    for arg in every:
        summary.params.append(arg.arg)
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            summary.params.append(extra.arg)
    summary.bound.update(summary.params)
    defaults = list(args.defaults)
    positional = list(args.posonlyargs) + list(args.args)
    mutable = (ast.List, ast.Dict, ast.Set)
    for arg, default in zip(positional[len(positional) - len(defaults):], defaults):
        if isinstance(default, mutable):
            summary.mutable_default_params.add(arg.arg)
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if isinstance(default, mutable):
            summary.mutable_default_params.add(arg.arg)


def build_summaries(index: ProjectIndex) -> dict[str, FunctionSummary]:
    """One :class:`FunctionSummary` per function of the index."""
    lambda_names = {
        (info.module, info.node.lineno, info.node.col_offset): qualname
        for qualname, info in index.functions.items()
        if isinstance(info.node, ast.Lambda)
    }
    summaries: dict[str, FunctionSummary] = {}
    # Parents sort before their nested functions (qualname prefix order),
    # so a child can inherit its ancestors' executor-typed names and
    # bound-name environment.
    builders: dict[str, _SummaryBuilder] = {}
    for qualname in sorted(index.functions):
        info = index.functions[qualname]
        summary = FunctionSummary(qualname=qualname, module=info.module)
        _collect_params(summary, info.node)
        nested = {
            child.name: child.qualname
            for child in index.functions.values()
            if child.parent == qualname and not isinstance(child.node, ast.Lambda)
        }
        executor_env: set[str] = set()
        enclosing_bound: set[str] = set()
        ancestor = info.parent
        while ancestor is not None:
            parent_builder = builders.get(ancestor)
            if parent_builder is not None:
                executor_env.update(parent_builder.executor_names)
                enclosing_bound.update(parent_builder.summary.bound)
            ancestor_info = index.functions.get(ancestor)
            ancestor = ancestor_info.parent if ancestor_info is not None else None
        builder = _SummaryBuilder(
            index, info, summary, nested, lambda_names, executor_env, enclosing_bound
        )
        node = info.node
        body = node.body if isinstance(node.body, list) else [node.body]
        for statement in body:
            builder.visit(statement)
        summary.frees = {
            name
            for name in (builder.loads | {w.root for w in summary.writes if w.root})
            if name not in summary.bound and name in enclosing_bound
        }
        summary.frees.update(
            name for name in summary.nonlocal_decls if name in enclosing_bound
        )
        return_annotation = (
            None if isinstance(node, ast.Lambda) else _annotation_text(node.returns)
        )
        if return_annotation is not None:
            resolved = index.resolve(info.module, return_annotation)
            if resolved in index.classes:
                summary.return_type = resolved
        builders[qualname] = builder
        summaries[qualname] = summary
    return summaries


def bind_arguments(
    callee: FunctionInfo,
    edge: CallEdge,
    *,
    method_style: bool,
) -> dict[str, tuple[str, ...]]:
    """Map an edge's argument roots onto the callee's parameter names.

    ``method_style`` shifts positional binding past ``self`` for calls
    made through a receiver (``x.m(a)`` binds ``a`` to ``m``'s second
    parameter); the receiver's own roots are bound to the first.
    """
    node = callee.node
    args = node.args
    names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    bound: dict[str, tuple[str, ...]] = {}
    offset = 0
    if method_style and names:
        bound[names[0]] = edge.receiver_roots
        offset = 1
    for position, roots in enumerate(edge.pos_roots):
        slot = position + offset
        if slot < len(names):
            bound[names[slot]] = roots
        elif args.vararg is not None:
            existing = bound.get(args.vararg.arg, ())
            bound[args.vararg.arg] = existing + roots
    keyword_names = set(names) | {a.arg for a in args.kwonlyargs}
    for name, roots in edge.kw_roots:
        if name in keyword_names:
            bound[name] = roots
        elif args.kwarg is not None:
            existing = bound.get(args.kwarg.arg, ())
            bound[args.kwarg.arg] = existing + roots
    return bound
