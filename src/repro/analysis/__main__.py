"""``python -m repro.analysis [paths]`` — the CI lint gate.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
parse errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import all_rules, analyze_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro invariant lint pack (process-safety, determinism, "
        "kernel contracts, API hygiene, typing gate)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print every rule and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    try:
        findings = analyze_paths(args.paths, rules)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except SyntaxError as error:
        print(f"error: cannot parse {error.filename}:{error.lineno}: {error.msg}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
