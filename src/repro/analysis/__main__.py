"""``python -m repro.analysis [paths]`` — the CI lint gate.

Runs the per-file rule pack and (unless ``--no-project``) the
whole-program analyses — the RC race detector and the PS003/PS004
pickle-safety verdicts — over the same paths.  ``--sarif-file`` writes
the combined findings as SARIF 2.1.0 for inline PR annotation;
``--cache-dir`` caches the project symbol table keyed on the source
digest; ``--compare-digests`` compares two sanitizer reports instead of
analyzing anything.

Exit status: 0 when clean (or reports match), 1 when findings were
reported (or reports differ), 2 on usage or parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import (
    PICKLE_RULES,
    RACE_RULES,
    all_rules,
    analyze_paths,
    project_findings,
)
from repro.analysis.core import SUPPRESSION_RULES
from repro.analysis.sanitizer import compare_reports
from repro.analysis.sarif import write_sarif


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro invariant analyzer (process-safety, determinism, "
        "kernel contracts, API hygiene, typing gate, interprocedural races, "
        "transitive pickle safety)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print every rule and exit"
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip the whole-program analyses (races, pickle verdicts)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="cache the project symbol table here, keyed on source digest",
    )
    parser.add_argument(
        "--sarif-file",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write findings as SARIF 2.1.0 to FILE",
    )
    parser.add_argument(
        "--compare-digests",
        nargs=2,
        type=Path,
        default=None,
        metavar=("A", "B"),
        help="compare two sanitizer reports for bit-identity and exit",
    )
    return parser


def _rule_descriptions() -> dict[str, str]:
    described = {rule.rule_id: rule.summary for rule in all_rules()}
    described.update(RACE_RULES)
    described.update(PICKLE_RULES)
    described.update(SUPPRESSION_RULES)
    return described


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.compare_digests is not None:
        left_path, right_path = args.compare_digests
        try:
            left = json.loads(left_path.read_text(encoding="utf-8"))
            right = json.loads(right_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        problems = compare_reports(left, right)
        for problem in problems:
            print(problem)
        if problems:
            print(
                f"sanitizer reports differ: {left_path} vs {right_path}",
                file=sys.stderr,
            )
            return 1
        print(f"sanitizer reports identical: {left_path} == {right_path}")
        return 0
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.summary}")
        for rule_id in sorted(RACE_RULES):
            print(f"{rule_id}  {RACE_RULES[rule_id]}")
        for rule_id in sorted(PICKLE_RULES):
            print(f"{rule_id}  {PICKLE_RULES[rule_id]}")
        for rule_id in sorted(SUPPRESSION_RULES):
            print(f"{rule_id}  {SUPPRESSION_RULES[rule_id]}")
        return 0
    try:
        findings = analyze_paths(args.paths, rules)
        if not args.no_project:
            findings.extend(project_findings(list(args.paths), args.cache_dir))
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except SyntaxError as error:
        print(f"error: cannot parse {error.filename}:{error.lineno}: {error.msg}", file=sys.stderr)
        return 2
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if args.sarif_file is not None:
        write_sarif(findings, _rule_descriptions(), args.sarif_file)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
