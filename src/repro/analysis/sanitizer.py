"""Runtime determinism sanitizer: hash what the runtimes actually produce.

The static analyses (:mod:`repro.analysis.races`,
:mod:`repro.analysis.pickling`) argue that the three runtimes are
schedule-independent.  This module is the dynamic cross-check: under
``repro build --sanitize out.json`` the driver hashes

* every job's final output (and per-partition shuffle streams, when the
  job reduces) in driver order, and
* every DP kernel sub-tree row table (``_run_levels`` output), collected
  concurrently and canonicalized by sorting,

into a small JSON report.  Two runs whose reports match produced
bit-identical data; CI compares local/thread/process builds this way, so
a scheduling bug the static rules missed still fails the pipeline.

Deliberately dependency-free within the repo (stdlib + numpy only): the
runtime modules import :func:`current` without pulling the analyzer in.

The active sanitizer is a module global guarded by a lock; observation
methods take the instance lock, so concurrent kernel workers may call
:meth:`Sanitizer.observe_kernel_rows` directly.  (The race detector
verifies this file too — the guarded writes are its clean exemplar.)
"""

from __future__ import annotations

import hashlib
import json
import struct
import threading
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "SANITIZER_SCHEMA_VERSION",
    "Sanitizer",
    "activate",
    "compare_reports",
    "current",
    "deactivate",
    "stable_digest",
]

SANITIZER_SCHEMA_VERSION = 1


def _update(hasher: "hashlib._Hash", value: Any, depth: int = 0) -> None:
    """Feed ``value`` into ``hasher`` as canonical type-tagged bytes.

    Canonical means: equal values hash equal regardless of dict insert
    order, set order, or numpy memory layout — and *not* via ``repr``,
    which truncates large arrays.
    """
    if depth > 32:
        raise ValueError("sanitizer digest: structure too deeply nested")
    if value is None:
        hasher.update(b"N")
    elif isinstance(value, bool):
        hasher.update(b"B1" if value else b"B0")
    elif isinstance(value, int):
        hasher.update(b"I" + str(value).encode())
    elif isinstance(value, float):
        hasher.update(b"F" + struct.pack(">d", value))
    elif isinstance(value, str):
        hasher.update(b"S" + value.encode("utf-8"))
    elif isinstance(value, bytes):
        hasher.update(b"Y" + value)
    elif isinstance(value, np.ndarray):
        contiguous = np.ascontiguousarray(value)
        hasher.update(b"A" + str(contiguous.dtype).encode())
        hasher.update(str(contiguous.shape).encode())
        hasher.update(contiguous.tobytes())
    elif isinstance(value, np.generic):
        hasher.update(b"G" + str(value.dtype).encode())
        _update(hasher, value.item(), depth + 1)
    elif isinstance(value, (list, tuple)):
        hasher.update(b"L" if isinstance(value, list) else b"T")
        hasher.update(str(len(value)).encode())
        for item in value:
            _update(hasher, item, depth + 1)
    elif isinstance(value, dict):
        entries = sorted(
            (stable_digest(key), stable_digest(item)) for key, item in value.items()
        )
        hasher.update(b"D" + str(len(entries)).encode())
        for key_digest, item_digest in entries:
            hasher.update(key_digest.encode())
            hasher.update(item_digest.encode())
    elif isinstance(value, (set, frozenset)):
        hasher.update(b"E" + str(len(value)).encode())
        for item_digest in sorted(stable_digest(item) for item in value):
            hasher.update(item_digest.encode())
    elif is_dataclass(value) and not isinstance(value, type):
        hasher.update(b"C" + type(value).__name__.encode())
        for item in fields(value):
            hasher.update(item.name.encode())
            _update(hasher, getattr(value, item.name), depth + 1)
    elif hasattr(value, "__dict__"):
        hasher.update(b"O" + type(value).__name__.encode())
        for name in sorted(vars(value)):
            hasher.update(name.encode())
            _update(hasher, vars(value)[name], depth + 1)
    else:
        hasher.update(b"R" + repr(value).encode())


def stable_digest(value: Any) -> str:
    """Canonical sha256 hex digest of an arbitrary result structure."""
    hasher = hashlib.sha256()
    _update(hasher, value)
    return hasher.hexdigest()


class Sanitizer:
    """Collects digests from one traced run; see the module docstring."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._lock = threading.Lock()
        self._jobs: list[dict[str, Any]] = []
        self._kernel_digests: list[str] = []

    def observe_job_output(self, job_name: str, output: Any) -> None:
        """Hash one job's final output (driver order — deterministic)."""
        digest = stable_digest(output)
        with self._lock:
            self._jobs.append({"job": job_name, "output": digest})

    def observe_partitions(self, job_name: str, partitions: list[Any]) -> None:
        """Hash each shuffle partition stream a reduce job consumed."""
        digests = [stable_digest(partition) for partition in partitions]
        with self._lock:
            self._jobs.append({"job": job_name, "partitions": digests})

    def observe_kernel_rows(self, rows: Any) -> None:
        """Hash one kernel sub-tree's row table.

        Called from the DP combine path, possibly concurrently (the
        ``parallel`` kernel); the digest list is canonicalized by
        sorting in :meth:`report`, so collection order cannot matter.
        """
        digest = stable_digest(rows)
        with self._lock:
            self._kernel_digests.append(digest)

    def report(self) -> dict[str, Any]:
        with self._lock:
            return {
                "schema": SANITIZER_SCHEMA_VERSION,
                "label": self.label,
                "jobs": list(self._jobs),
                "kernel_rows": sorted(self._kernel_digests),
            }

    def write(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.report(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


_ACTIVE: Sanitizer | None = None
_ACTIVE_LOCK = threading.Lock()


def activate(sanitizer: Sanitizer) -> Sanitizer:
    """Install ``sanitizer`` as the process-wide active instance."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        if _ACTIVE is not None:
            raise RuntimeError("a sanitizer is already active")
        _ACTIVE = sanitizer
    return sanitizer


def deactivate() -> Sanitizer | None:
    """Remove and return the active sanitizer (None when inactive)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        active, _ACTIVE = _ACTIVE, None
    return active


def current() -> Sanitizer | None:
    """The active sanitizer, or None — the runtimes' fast-path check."""
    return _ACTIVE


def compare_reports(left: dict[str, Any], right: dict[str, Any]) -> list[str]:
    """Human-readable mismatches between two reports; empty = identical.

    ``label`` is excluded (two runs being compared are *supposed* to
    differ in runtime); everything hashed must match.
    """
    problems: list[str] = []
    if left.get("schema") != right.get("schema"):
        problems.append(
            f"schema mismatch: {left.get('schema')} != {right.get('schema')}"
        )
        return problems
    left_jobs = left.get("jobs", [])
    right_jobs = right.get("jobs", [])
    if len(left_jobs) != len(right_jobs):
        problems.append(
            f"job-record count mismatch: {len(left_jobs)} != {len(right_jobs)}"
        )
    for position, (a, b) in enumerate(zip(left_jobs, right_jobs)):
        if a != b:
            problems.append(
                f"job record {position} ({a.get('job')!r}) differs: {a} != {b}"
            )
    if left.get("kernel_rows", []) != right.get("kernel_rows", []):
        problems.append("kernel row digests differ")
    return problems
