"""Transitive pickle-safety verdicts for MapReduce job classes.

``MapReduceJob.process_safe`` is a *claim*: the process-pool runtime
trusts it to decide whether a job may be shipped to worker processes.
The per-file PS001/PS002 rules check the claim's local plausibility
(lambdas in ``__init__``); this module *proves or refutes* it from the
project call graph:

* **Driver-state evidence** — a task method (or anything it reaches,
  via :class:`~repro.analysis.races.RaceAnalysis` taint from ``self``)
  writes through the job instance.  In a worker process that write
  lands in a copy and is lost, so the job cannot be process-safe even
  if every attribute pickles.  Lock-guarded writes count too: the lock
  fixes ordering, not isolation.
* **Capture evidence** — the constructor stores something that cannot
  cross a process boundary: a lambda, a lock/executor/file-handle
  factory, a class defined inside a function, or (recursively) an
  attribute whose annotated project class has such evidence.
* **Shared-store evidence** — the constructor stores a parameter with
  the same attribute name that a sibling job class in the same module
  mutates from task code.  The two jobs communicate through one
  driver-held object (the layered DP's ``row_store`` pattern), so the
  reader is driver-state even though it never writes.

The verdict is compared against the declared ``process_safe`` flag:

* **PS003** — declared process-safe, but evidence says otherwise.  Not
  suppressible in spirit: fix the job (or its declaration).
* **PS004** — declared driver-state, but no evidence found.  Either the
  declaration is stale or the analysis is missing a pattern; the
  finding says which job to look at.

``tests/test_job_process_safety.py`` pins these verdicts to the runtime
pickling meta-test, so the static and dynamic notions of process safety
cannot drift apart.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.callgraph import FunctionSummary, build_summaries
from repro.analysis.core import Finding
from repro.analysis.project import ClassInfo, ProjectIndex, _annotation_text
from repro.analysis.races import RaceAnalysis, Root, TASK_METHODS

__all__ = [
    "PICKLE_RULES",
    "PickleVerdict",
    "job_pickle_verdicts",
    "pickle_findings",
]

PICKLE_RULES = {
    "PS003": (
        "job is declared process_safe but the call graph shows driver-state "
        "or unpicklable-capture evidence"
    ),
    "PS004": (
        "job is declared driver-state (process_safe = False) but the call "
        "graph shows no evidence; the declaration may be stale"
    ),
}

#: Constructor factories whose product cannot cross a process boundary.
_UNPICKLABLE_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
     "ThreadPoolExecutor", "ProcessPoolExecutor", "open"}
)

_ATTR_RECURSION_DEPTH = 3


@dataclass
class PickleVerdict:
    """The analyzer's answer for one concrete job class."""

    class_qualname: str
    declared: bool
    evidence: list[str] = field(default_factory=list)

    @property
    def process_safe(self) -> bool:
        return not self.evidence


def _declared_process_safe(index: ProjectIndex, class_qualname: str) -> bool:
    """The ``process_safe`` class attribute along the project MRO."""
    for info in index.mro(class_qualname):
        for statement in info.node.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target, value = statement.targets[0], statement.value
            elif isinstance(statement, ast.AnnAssign):
                target, value = statement.target, statement.value
            if (
                isinstance(target, ast.Name)
                and target.id == "process_safe"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, bool)
            ):
                return value.value
    return True  # MapReduceJob's own default


def _capture_evidence(
    index: ProjectIndex,
    class_qualname: str,
    depth: int = 0,
    seen: set[str] | None = None,
) -> list[str]:
    """Unpicklable things the class (transitively) holds."""
    if seen is None:
        seen = set()
    if class_qualname in seen or depth > _ATTR_RECURSION_DEPTH:
        return []
    seen.add(class_qualname)
    info = index.classes.get(class_qualname)
    if info is None:
        return []
    evidence: list[str] = []
    short = info.node.name
    if info.nested_in_function:
        evidence.append(
            f"{short} is defined inside a function, so worker processes "
            "cannot import it"
        )
    init = index.find_method(class_qualname, "__init__")
    if init is not None and isinstance(init.node, ast.FunctionDef):
        for statement in ast.walk(init.node):
            if not isinstance(statement, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                statement.targets
                if isinstance(statement, ast.Assign)
                else [statement.target]
            )
            value = statement.value
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if isinstance(value, ast.Lambda):
                    evidence.append(
                        f"{short}.{target.attr} captures a lambda "
                        f"(line {statement.lineno})"
                    )
                elif isinstance(value, ast.Call):
                    factory = _annotation_text(value.func)
                    if (
                        factory is not None
                        and factory.split(".")[-1] in _UNPICKLABLE_FACTORIES
                    ):
                        evidence.append(
                            f"{short}.{target.attr} holds a "
                            f"{factory.split('.')[-1]} (line {statement.lineno})"
                        )
    # Recurse through annotated project-class attributes: holding an
    # unpicklable object two hops away is still holding it.
    for mro_entry in index.mro(class_qualname):
        for attr, annotation in sorted(mro_entry.attr_annotations.items()):
            resolved = index.resolve(mro_entry.module, annotation)
            if resolved is None or resolved not in index.classes:
                continue
            nested = _capture_evidence(index, resolved, depth + 1, seen)
            evidence.extend(
                f"{short}.{attr}: {entry}" for entry in nested
            )
    return evidence


def _task_write_evidence(
    analysis: RaceAnalysis, info: ClassInfo
) -> tuple[list[str], set[str]]:
    """Driver-state writes reachable from this job's own task methods.

    Returns the evidence strings plus the set of ``self`` attribute
    names written (feeds the shared-store pairing).
    """
    roots = [
        Root(
            qualname=info.methods[method],
            taint=frozenset({"self"}),
            reason=f"task method {info.node.name}.{method}",
        )
        for method in TASK_METHODS
        if method in info.methods and info.methods[method] in analysis.summaries
    ]
    if not roots:
        return [], set()
    evidence: list[str] = []
    written_attrs: set[str] = set()
    for write in analysis.shared_writes(roots, include_guarded=True):
        if write.rule not in {"RC002", "RC003"}:
            continue
        if write.site.kind in {"global", "nonlocal"}:
            continue
        evidence.append(
            f"task code writes driver-held state `{write.site.detail}` at "
            f"{write.path}:{write.site.line}"
        )
        detail = write.site.detail
        if detail.startswith("self."):
            written_attrs.add(detail.split(".")[1])
    return evidence, written_attrs


def job_pickle_verdicts(
    index: ProjectIndex,
    summaries: dict[str, FunctionSummary] | None = None,
) -> dict[str, PickleVerdict]:
    """Static verdicts for every concrete job class of the index.

    Concrete means the class overrides ``map`` in its own body — the
    same definition the runtime pickling meta-test uses, so the two
    registries enumerate identical classes.
    """
    if summaries is None:
        summaries = build_summaries(index)
    analysis = RaceAnalysis(index, summaries)
    concrete = [
        qualname
        for qualname in analysis.job_classes()
        if "map" in index.classes[qualname].methods
    ]
    verdicts: dict[str, PickleVerdict] = {}
    written_by_class: dict[str, set[str]] = {}
    for qualname in concrete:
        info = index.classes[qualname]
        verdict = PickleVerdict(
            class_qualname=qualname,
            declared=_declared_process_safe(index, qualname),
        )
        task_evidence, written = _task_write_evidence(analysis, info)
        verdict.evidence.extend(task_evidence)
        verdict.evidence.extend(_capture_evidence(index, qualname))
        written_by_class[qualname] = written
        verdicts[qualname] = verdict
    # Shared-store pairing: a job whose ctor stores an attribute that a
    # sibling job in the same module mutates from task code shares that
    # driver-side object — the reader is driver-state too.
    for qualname, verdict in verdicts.items():
        info = index.classes[qualname]
        stored = set(info.attr_annotations)
        for other, written in written_by_class.items():
            if other == qualname or not written:
                continue
            other_info = index.classes[other]
            if other_info.module != info.module:
                continue
            for attr in sorted(stored & written):
                verdict.evidence.append(
                    f"shares driver-side store `{attr}` with "
                    f"{other_info.node.name}, which mutates it from task code"
                )
    return verdicts


def pickle_findings(
    index: ProjectIndex, summaries: dict[str, FunctionSummary] | None = None
) -> list[Finding]:
    """PS003/PS004 findings: declaration vs. evidence mismatches."""
    findings: list[Finding] = []
    for qualname, verdict in sorted(job_pickle_verdicts(index, summaries).items()):
        info = index.classes[qualname]
        module = index.modules[info.module]
        if verdict.declared and verdict.evidence:
            findings.append(
                Finding(
                    rule="PS003",
                    path=module.path,
                    line=info.node.lineno,
                    col=info.node.col_offset + 1,
                    message=(
                        f"{info.node.name} declares process_safe = True but "
                        f"the call graph disagrees: {verdict.evidence[0]}"
                    ),
                )
            )
        elif not verdict.declared and not verdict.evidence:
            findings.append(
                Finding(
                    rule="PS004",
                    path=module.path,
                    line=info.node.lineno,
                    col=info.node.col_offset + 1,
                    message=(
                        f"{info.node.name} declares process_safe = False but "
                        "no driver-state or capture evidence was found; the "
                        "declaration may be stale"
                    ),
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
