"""API-hygiene rules: small traps at the package surface.

* **AH001** — mutable default arguments (``def f(x=[])``): the default is
  evaluated once and shared across calls.
* **AH002** — bare ``except:``: swallows ``KeyboardInterrupt`` and
  ``SystemExit``; catch a concrete exception (the repo has a
  :class:`~repro.exceptions.ReproError` hierarchy for its own failures).
* **AH003** — ``__all__`` drift in package ``__init__`` files: a public
  name imported into the package namespace but missing from ``__all__``
  (or listed but unbound) silently splits the documented API from the
  real one.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path
from typing import ClassVar

from repro.analysis.core import Finding, ParsedModule, Rule

__all__ = ["AllDrift", "BareExcept", "MutableDefaultArgument"]


class MutableDefaultArgument(Rule):
    """AH001: default arguments must not be mutable."""

    rule_id: ClassVar[str] = "AH001"
    summary: ClassVar[str] = (
        "mutable default argument is evaluated once and shared across calls; "
        "default to None and create inside the function"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if default is None:
                    continue
                if self._is_mutable(default):
                    yield module.finding(
                        self.rule_id,
                        default,
                        f"function {node.name!r} has a mutable default argument; "
                        "use None and create the container inside the function",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"list", "dict", "set", "bytearray"}
        return False


class BareExcept(Rule):
    """AH002: no bare ``except:`` clauses."""

    rule_id: ClassVar[str] = "AH002"
    summary: ClassVar[str] = (
        "bare except swallows KeyboardInterrupt/SystemExit; name the exception "
        "(the repo's own failures derive from ReproError)"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield module.finding(
                    self.rule_id,
                    node,
                    "bare except: catches KeyboardInterrupt and SystemExit; "
                    "name a concrete exception type",
                )


class AllDrift(Rule):
    """AH003: ``__all__`` must match the bound public names in ``__init__``."""

    rule_id: ClassVar[str] = "AH003"
    summary: ClassVar[str] = (
        "__all__ in a package __init__ omits a bound public name (or lists an "
        "unbound one); keep the exported API and __all__ in sync"
    )

    def applies_to(self, path: Path) -> bool:
        return path.name == "__init__.py"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        exported: set[str] | None = None
        all_node: ast.AST | None = None
        bound: set[str] = set()
        for statement in module.tree.body:
            if isinstance(statement, ast.ImportFrom):
                if statement.module == "__future__":
                    continue
                for alias in statement.names:
                    bound.add(alias.asname or alias.name)
            elif isinstance(statement, ast.Import):
                for alias in statement.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(statement.name)
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__all__":
                            exported = self._literal_names(statement.value)
                            all_node = statement
                        else:
                            bound.add(target.id)
            elif isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
                bound.add(statement.target.id)
        if exported is None or all_node is None:
            return
        public = {name for name in bound if not name.startswith("_")}
        for name in sorted(public - exported):
            yield module.finding(
                self.rule_id,
                all_node,
                f"public name {name!r} is bound in this package __init__ but "
                "missing from __all__",
            )
        for name in sorted(exported - bound):
            yield module.finding(
                self.rule_id,
                all_node,
                f"__all__ lists {name!r} but the name is not bound at module level",
            )

    @staticmethod
    def _literal_names(node: ast.expr) -> set[str]:
        names: set[str] = set()
        if isinstance(node, (ast.List, ast.Tuple)):
            for element in node.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    names.add(element.value)
        return names
