"""SARIF 2.1.0 export for analyzer findings.

``python -m repro.analysis --sarif-file out.sarif`` writes the combined
per-file + whole-program findings in the Static Analysis Results
Interchange Format, which GitHub's code-scanning upload turns into
inline PR annotations.  One run, one tool, one result per finding —
deliberately minimal, but valid against the 2.1.0 schema.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any

from repro.analysis.core import Finding

__all__ = ["to_sarif", "write_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(
    findings: Sequence[Finding], rule_descriptions: Mapping[str, str]
) -> dict[str, Any]:
    """Render ``findings`` as a SARIF log object."""
    used_rules = sorted({finding.rule for finding in findings})
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": rule_descriptions.get(rule_id, rule_id)
            },
        }
        for rule_id in used_rules
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": max(finding.col, 1),
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(
    findings: Sequence[Finding],
    rule_descriptions: Mapping[str, str],
    path: str | Path,
) -> None:
    """Write the SARIF log for ``findings`` to ``path``."""
    Path(path).write_text(
        json.dumps(to_sarif(findings, rule_descriptions), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
