"""2-D wavelet synopses and their thresholding.

:class:`WaveletSynopsis2D` mirrors the 1-D synopsis over the standard
2-D decomposition.  Two thresholding schemes are provided:

* :func:`conventional_synopsis_2d` — top-``B`` by 2-D normalized
  significance (L2-optimal over the orthogonal standard basis);
* :func:`greedy_abs_2d` — the max-abs greedy adapted to two dimensions.
  The 1-D four-quantity trick does not port (a 2-D coefficient's support
  splits into four sign quadrants), so the engine maintains the dense
  signed-error matrix and recomputes each affected coefficient's maximum
  potential error with vectorized quadrant scans — exact, ``O(N^2)``
  memory, intended for the moderate grids of OLAP-style cubes.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

import numpy as np
from numpy.typing import ArrayLike

from repro.algos.heap import AddressableMinHeap
from repro.exceptions import InvalidInputError
from repro.wavelet.error_tree import node_leaf_range
from repro.wavelet.transform import is_power_of_two
from repro.wavelet.transform2d import (
    haar_transform_2d,
    inverse_haar_transform_2d,
    normalized_significance_2d,
    reconstruct_cell,
    reconstruct_rectangle_sum,
)

__all__ = ["WaveletSynopsis2D", "conventional_synopsis_2d", "greedy_abs_2d"]


@dataclass
class WaveletSynopsis2D:
    """Sparse set of retained standard-decomposition coefficients."""

    shape: tuple[int, int]
    coefficients: dict[tuple[int, int], float]
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        rows, cols = self.shape
        if not (is_power_of_two(rows) and is_power_of_two(cols)):
            raise InvalidInputError(f"shape {self.shape} must be powers of two")
        cleaned = {}
        for (a, b), value in self.coefficients.items():
            if not (0 <= a < rows and 0 <= b < cols):
                raise InvalidInputError(f"coefficient index {(a, b)} out of range")
            if float(value) != 0.0:
                cleaned[(int(a), int(b))] = float(value)
        self.coefficients = cleaned

    @property
    def size(self) -> int:
        """Number of retained non-zero coefficients."""
        return len(self.coefficients)

    def dense(self) -> np.ndarray:
        """Dense coefficient matrix ``W_hat``."""
        dense = np.zeros(self.shape, dtype=np.float64)
        for (a, b), value in self.coefficients.items():
            dense[a, b] = value
        return dense

    def reconstruct(self) -> np.ndarray:
        """Full approximate matrix."""
        return inverse_haar_transform_2d(self.dense())

    def cell_query(self, row: int, col: int) -> float:
        """Approximate value of one cell in ``O(log^2 N)``."""
        return reconstruct_cell(self.coefficients, row, col, self.shape)

    def rectangle_sum(self, row_range: tuple[int, int], col_range: tuple[int, int]) -> float:
        """Approximate sum over an inclusive rectangle in ``O(log^2 N)``."""
        return reconstruct_rectangle_sum(self.coefficients, row_range, col_range, self.shape)

    def max_abs_error(self, matrix: ArrayLike) -> float:
        """Maximum absolute reconstruction error against ``matrix``."""
        return float(np.max(np.abs(self.reconstruct() - np.asarray(matrix, dtype=np.float64))))

    def l2_error(self, matrix: ArrayLike) -> float:
        """Root-mean-squared reconstruction error against ``matrix``."""
        diff = self.reconstruct() - np.asarray(matrix, dtype=np.float64)
        return float(np.sqrt(np.mean(diff**2)))

    def to_dict(self) -> dict[str, Any]:
        """Serialize to plain Python types (JSON-friendly).

        Coefficient keys flatten to ``"row,col"`` strings (JSON objects
        cannot key on tuples).
        """
        return {
            "shape": list(self.shape),
            "coefficients": {
                f"{a},{b}": value
                for (a, b), value in sorted(self.coefficients.items())
            },
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "WaveletSynopsis2D":
        """Inverse of :meth:`to_dict`."""
        rows, cols = payload["shape"]
        coefficients: dict[tuple[int, int], float] = {}
        for key, value in payload["coefficients"].items():
            a, b = key.split(",")
            coefficients[(int(a), int(b))] = float(value)
        return cls(
            shape=(int(rows), int(cols)),
            coefficients=coefficients,
            meta=dict(payload.get("meta", {})),
        )


def conventional_synopsis_2d(matrix: ArrayLike, budget: int) -> WaveletSynopsis2D:
    """Top-``budget`` coefficients by 2-D normalized significance."""
    values = np.asarray(matrix, dtype=np.float64)
    if budget < 0:
        raise InvalidInputError("budget must be non-negative")
    coefficients = haar_transform_2d(values)
    significance = normalized_significance_2d(coefficients)
    flat_order = np.argsort(-significance, axis=None, kind="stable")
    retained: dict[tuple[int, int], float] = {}
    for flat in flat_order[:budget]:
        a, b = np.unravel_index(flat, values.shape)
        retained[(int(a), int(b))] = float(coefficients[a, b])
    return WaveletSynopsis2D(
        shape=values.shape,
        coefficients=retained,
        meta={"algorithm": "CONV-2D", "budget": budget},
    )


class _Greedy2DEngine:
    """Greedy discard over the 2-D standard decomposition."""

    def __init__(self, matrix: ArrayLike) -> None:
        self.values = np.asarray(matrix, dtype=np.float64)
        self.shape = self.values.shape
        self.coefficients = haar_transform_2d(self.values)
        self.errors = np.zeros(self.shape, dtype=np.float64)
        rows, cols = self.shape
        self.heap = AddressableMinHeap()
        self._ids: dict[tuple[int, int], int] = {}
        self._nodes: dict[int, tuple[int, int]] = {}
        next_id = 0
        for a in range(rows):
            for b in range(cols):
                self._ids[(a, b)] = next_id
                self._nodes[next_id] = (a, b)
                next_id += 1
        for node, item in self._ids.items():
            self.heap.push(item, self._ma(node))

    def _quadrants(
        self, node: tuple[int, int]
    ) -> Iterator[tuple[slice, slice, float]]:
        """Yield ``(row slice, col slice, sign)`` of the node's support."""
        a, b = node
        n_rows, n_cols = self.shape
        r_lo, r_hi = node_leaf_range(a, n_rows)
        c_lo, c_hi = node_leaf_range(b, n_cols)
        if a == 0:
            row_parts = [(slice(r_lo, r_hi), 1.0)]
        else:
            r_mid = (r_lo + r_hi) // 2
            row_parts = [(slice(r_lo, r_mid), 1.0), (slice(r_mid, r_hi), -1.0)]
        if b == 0:
            col_parts = [(slice(c_lo, c_hi), 1.0)]
        else:
            c_mid = (c_lo + c_hi) // 2
            col_parts = [(slice(c_lo, c_mid), 1.0), (slice(c_mid, c_hi), -1.0)]
        for row_slice, row_sign in row_parts:
            for col_slice, col_sign in col_parts:
                yield row_slice, col_slice, row_sign * col_sign

    def _ma(self, node: tuple[int, int]) -> float:
        value = float(self.coefficients[node])
        worst = 0.0
        for row_slice, col_slice, sign in self._quadrants(node):
            region = self.errors[row_slice, col_slice]
            worst = max(worst, float(np.max(np.abs(region - sign * value))))
        return worst

    def remove_next(self) -> tuple[tuple[int, int], float, float]:
        """Discard the min-MA coefficient; return (node, value, error after)."""
        item, _ = self.heap.pop()
        node = self._nodes[item]
        value = float(self.coefficients[node])
        for row_slice, col_slice, sign in self._quadrants(node):
            self.errors[row_slice, col_slice] -= sign * value
        # Refresh every alive coefficient whose support intersects.
        a, b = node
        n_rows, n_cols = self.shape
        r_lo, r_hi = node_leaf_range(a, n_rows)
        c_lo, c_hi = node_leaf_range(b, n_cols)
        dirtied = []
        for other, item_id in self._ids.items():
            if item_id not in self.heap:
                continue
            oa, ob = other
            o_r = node_leaf_range(oa, n_rows)
            o_c = node_leaf_range(ob, n_cols)
            if o_r[0] < r_hi and r_lo < o_r[1] and o_c[0] < c_hi and c_lo < o_c[1]:
                dirtied.append((item_id, self._ma(other)))
        self.heap.update_many(dirtied)
        return node, value, float(np.max(np.abs(self.errors)))

    def __len__(self) -> int:
        return len(self.heap)


def greedy_abs_2d(matrix: ArrayLike, budget: int) -> WaveletSynopsis2D:
    """Max-abs greedy thresholding over a 2-D grid.

    Same discipline as the 1-D GreedyAbs: discard minimum-potential-error
    coefficients until the grid is empty and keep the best of the final
    ``budget + 1`` states.
    """
    values = np.asarray(matrix, dtype=np.float64)
    if budget < 0:
        raise InvalidInputError("budget must be non-negative")
    engine = _Greedy2DEngine(values)
    removals: list[tuple[tuple[int, int], float, float]] = []
    while len(engine):
        removals.append(engine.remove_next())

    total = len(removals)
    first = max(0, total - budget)
    best_step, best_error = first, (removals[first - 1][2] if first else 0.0)
    for step in range(first + 1, total + 1):
        error = removals[step - 1][2]
        if error <= best_error:
            best_step, best_error = step, error
    retained = {node: value for node, value, _ in removals[best_step:]}
    return WaveletSynopsis2D(
        shape=values.shape,
        coefficients=retained,
        meta={"algorithm": "GreedyAbs-2D", "budget": budget, "max_abs_error": best_error},
    )
