"""Aggregate error measures for wavelet synopses (Eqs. 1-3 of the paper).

All metrics compare a reconstructed (approximate) vector against the
original data:

* :func:`l2_error` — root-mean-squared error (Eq. 1);
* :func:`max_abs_error` — maximum absolute error (Eq. 2), the target of
  GreedyAbs / IndirectHaar and their distributed versions;
* :func:`max_rel_error` — maximum relative error with a sanity bound ``S``
  (Eq. 3), the target of GreedyRel.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.exceptions import InvalidInputError

__all__ = [
    "DEFAULT_SANITY_BOUND",
    "signed_errors",
    "l2_error",
    "max_abs_error",
    "max_rel_error",
]

#: Default sanity bound for the relative error metric.  The paper requires
#: ``S > 0`` to prevent tiny data values from dominating the metric.
DEFAULT_SANITY_BOUND = 1.0


def _as_pair(
    data: ArrayLike, approximation: ArrayLike
) -> tuple[NDArray[np.float64], NDArray[np.float64]]:
    original = np.asarray(data, dtype=np.float64)
    approx = np.asarray(approximation, dtype=np.float64)
    if original.shape != approx.shape:
        raise InvalidInputError(
            f"shape mismatch: data {original.shape} vs approximation {approx.shape}"
        )
    if original.ndim != 1:
        raise InvalidInputError("metrics are defined over one-dimensional vectors")
    return original, approx


def signed_errors(data: ArrayLike, approximation: ArrayLike) -> NDArray[np.float64]:
    """Return the signed accumulated errors ``err_i = d_hat_i - d_i``."""
    original, approx = _as_pair(data, approximation)
    return approx - original


def l2_error(data: ArrayLike, approximation: ArrayLike) -> float:
    """Root-mean-squared reconstruction error (Eq. 1)."""
    original, approx = _as_pair(data, approximation)
    return float(np.sqrt(np.mean((approx - original) ** 2)))


def max_abs_error(data: ArrayLike, approximation: ArrayLike) -> float:
    """Maximum absolute reconstruction error (Eq. 2)."""
    original, approx = _as_pair(data, approximation)
    return float(np.max(np.abs(approx - original)))


def max_rel_error(
    data: ArrayLike, approximation: ArrayLike, sanity_bound: float = DEFAULT_SANITY_BOUND
) -> float:
    """Maximum relative reconstruction error with sanity bound ``S`` (Eq. 3).

    Each value's absolute error is divided by ``max(|d_i|, S)``; ``S`` must
    be strictly positive.
    """
    if sanity_bound <= 0:
        raise InvalidInputError("the sanity bound S must be strictly positive")
    original, approx = _as_pair(data, approximation)
    denominators = np.maximum(np.abs(original), sanity_bound)
    return float(np.max(np.abs(approx - original) / denominators))
