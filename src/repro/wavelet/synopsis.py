"""Wavelet synopses: sparse sets of retained coefficients.

A :class:`WaveletSynopsis` is the output of every thresholding algorithm in
this package.  It stores only the retained (non-zero) coefficients; all the
others are implicitly zero.  Synopses support full reconstruction as well as
``O(log N)`` point and range-sum queries, which is what makes them usable
for approximate query processing.

*Restricted* synopses retain original Haar coefficient values (GreedyAbs,
conventional thresholding); *unrestricted* synopses may store arbitrary
values at each node (MinHaarSpace and its distributed version).  Both
reconstruct through the same error-tree semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np
from numpy.typing import ArrayLike

from repro.exceptions import InvalidInputError
from repro.wavelet import metrics
from repro.wavelet.error_tree import reconstruct_range_sum, reconstruct_value
from repro.wavelet.transform import inverse_haar_transform, is_power_of_two

__all__ = ["WaveletSynopsis"]


@dataclass
class WaveletSynopsis:
    """A sparse wavelet representation of an ``N``-point data vector.

    Parameters
    ----------
    n:
        Length of the underlying data vector (a power of two).
    coefficients:
        Mapping from error-tree node index to retained coefficient value.
    meta:
        Free-form provenance (algorithm name, parameters, job statistics).
    """

    n: int
    coefficients: dict[int, float]
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n):
            raise InvalidInputError(f"N={self.n} is not a power of two")
        cleaned = {}
        for index, value in self.coefficients.items():
            index = int(index)
            if not 0 <= index < self.n:
                raise InvalidInputError(
                    f"coefficient index {index} out of range for N={self.n}"
                )
            value = float(value)
            if value != 0.0:
                cleaned[index] = value
        self.coefficients = cleaned

    @property
    def size(self) -> int:
        """Number of retained non-zero coefficients."""
        return len(self.coefficients)

    def dense(self) -> np.ndarray:
        """Return the dense length-``N`` coefficient vector ``W_hat``."""
        dense = np.zeros(self.n, dtype=np.float64)
        for index, value in self.coefficients.items():
            dense[index] = value
        return dense

    def reconstruct(self) -> np.ndarray:
        """Reconstruct the full approximate data vector ``d_hat``."""
        return inverse_haar_transform(self.dense())

    def point_query(self, leaf: int) -> float:
        """Approximate value of ``d_leaf`` in ``O(log N)`` time."""
        return reconstruct_value(self.coefficients, leaf, self.n)

    def range_sum(self, lo: int, hi: int) -> float:
        """Approximate range sum ``d(lo:hi)`` (inclusive) in ``O(log N)``."""
        return reconstruct_range_sum(self.coefficients, lo, hi, self.n)

    def range_avg(self, lo: int, hi: int) -> float:
        """Approximate range average over ``[lo, hi]`` (inclusive)."""
        if lo > hi:
            raise InvalidInputError(f"empty range [{lo}, {hi}]")
        return self.range_sum(lo, hi) / (hi - lo + 1)

    def max_abs_error(self, data: ArrayLike) -> float:
        """Maximum absolute reconstruction error against ``data``."""
        return metrics.max_abs_error(data, self.reconstruct())

    def max_rel_error(
        self, data: ArrayLike, sanity_bound: float = metrics.DEFAULT_SANITY_BOUND
    ) -> float:
        """Maximum relative reconstruction error against ``data``."""
        return metrics.max_rel_error(data, self.reconstruct(), sanity_bound)

    def l2_error(self, data: ArrayLike) -> float:
        """Root-mean-squared reconstruction error against ``data``."""
        return metrics.l2_error(data, self.reconstruct())

    def to_dict(self) -> dict[str, Any]:
        """Serialize to plain Python types (JSON-friendly)."""
        return {
            "n": self.n,
            "coefficients": {str(k): v for k, v in sorted(self.coefficients.items())},
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "WaveletSynopsis":
        """Inverse of :meth:`to_dict`."""
        return cls(
            n=int(payload["n"]),
            coefficients={int(k): float(v) for k, v in payload["coefficients"].items()},
            meta=dict(payload.get("meta", {})),
        )

    def same_coefficients(self, other: "WaveletSynopsis", tolerance: float = 0.0) -> bool:
        """Return True if both synopses retain the same coefficient values."""
        if self.n != other.n or set(self.coefficients) != set(other.coefficients):
            return False
        return all(
            abs(value - other.coefficients[index]) <= tolerance
            for index, value in self.coefficients.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        algo = self.meta.get("algorithm", "?")
        return f"WaveletSynopsis(n={self.n}, size={self.size}, algorithm={algo!r})"
