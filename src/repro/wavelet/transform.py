"""The Haar wavelet transform in the *error-tree* convention of the paper.

The transform of a length-``N`` (power of two) data vector ``A`` is an array
``W`` of the same length where

* ``W[0]`` is the overall average of ``A``;
* ``W[1]`` is the single detail coefficient of the coarsest resolution;
* level ``l`` (``l = 0 .. log2(N) - 1``) detail coefficients occupy indices
  ``2**l .. 2**(l+1) - 1``, in order of increasing resolution.

Each detail coefficient is computed as *(left average - right average) / 2*,
matching Table 1 of the paper::

    >>> haar_transform([5, 5, 0, 26, 1, 3, 14, 2]).tolist()
    [7.0, 2.0, -4.0, -3.0, 0.0, -13.0, -1.0, 6.0]

This is the non-normalized form used throughout the thresholding literature;
:func:`normalized_significance` converts to the L2-relevant magnitude
``|c_i| / sqrt(2**level(c_i))`` used by the conventional thresholding scheme.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.exceptions import InvalidInputError, NotPowerOfTwoError

__all__ = [
    "haar_transform",
    "inverse_haar_transform",
    "coefficient_level",
    "coefficient_levels",
    "normalized_significance",
    "haar_basis_vector",
    "is_power_of_two",
    "decomposition_steps",
]


def is_power_of_two(n: int) -> bool:
    """Return ``True`` if ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def _validate_length(n: int) -> None:
    if n <= 0:
        raise InvalidInputError("data vector must be non-empty")
    if not is_power_of_two(n):
        raise NotPowerOfTwoError(
            f"data length {n} is not a power of two; pad the input first"
        )


def haar_transform(data: ArrayLike) -> NDArray[np.float64]:
    """Compute the Haar wavelet decomposition ``W_A`` of ``data``.

    Parameters
    ----------
    data:
        A one-dimensional sequence whose length is a power of two.

    Returns
    -------
    numpy.ndarray
        ``W_A`` in error-tree order (overall average first, finest detail
        coefficients last).
    """
    values = np.asarray(data, dtype=np.float64)
    if values.ndim != 1:
        raise InvalidInputError("data vector must be one-dimensional")
    n = values.shape[0]
    _validate_length(n)

    out = np.empty(n, dtype=np.float64)
    current = values
    while current.shape[0] > 1:
        half = current.shape[0] // 2
        left = current[0::2]
        right = current[1::2]
        out[half : 2 * half] = (left - right) / 2.0
        current = (left + right) / 2.0
    out[0] = current[0]
    return out


def inverse_haar_transform(coefficients: ArrayLike) -> NDArray[np.float64]:
    """Reconstruct the original data vector from a full Haar decomposition.

    Exact inverse of :func:`haar_transform` (up to floating-point rounding).
    """
    coeffs = np.asarray(coefficients, dtype=np.float64)
    if coeffs.ndim != 1:
        raise InvalidInputError("coefficient vector must be one-dimensional")
    n = coeffs.shape[0]
    _validate_length(n)

    current = coeffs[:1].copy()
    size = 1
    while size < n:
        details = coeffs[size : 2 * size]
        expanded = np.empty(2 * size, dtype=np.float64)
        expanded[0::2] = current + details
        expanded[1::2] = current - details
        current = expanded
        size *= 2
    return current


def decomposition_steps(data: ArrayLike) -> list[tuple[NDArray[np.float64], NDArray[np.float64]]]:
    """Return the per-resolution (averages, details) pairs of the transform.

    The first element corresponds to the finest resolution, mirroring the
    rows of Table 1 in the paper (read bottom-up).  Useful for examples and
    debugging; :func:`haar_transform` is the efficient entry point.
    """
    values = np.asarray(data, dtype=np.float64)
    _validate_length(values.shape[0])
    steps = []
    current = values
    while current.shape[0] > 1:
        left = current[0::2]
        right = current[1::2]
        averages = (left + right) / 2.0
        details = (left - right) / 2.0
        steps.append((averages, details))
        current = averages
    return steps


def coefficient_level(index: int) -> int:
    """Return the resolution level of coefficient ``c_index``.

    Level 0 is the coarsest resolution.  Both the overall average ``c_0``
    and the top detail coefficient ``c_1`` live at level 0 (their basis
    vectors have identical norms), matching the significance formula of
    Section 2.3.
    """
    if index < 0:
        raise InvalidInputError("coefficient index must be non-negative")
    if index == 0:
        return 0
    return index.bit_length() - 1


def coefficient_levels(n: int) -> np.ndarray:
    """Vectorized :func:`coefficient_level` for all indices ``0 .. n-1``."""
    _validate_length(n)
    indices = np.arange(n)
    levels = np.zeros(n, dtype=np.int64)
    nonzero = indices > 0
    levels[nonzero] = np.floor(np.log2(indices[nonzero])).astype(np.int64)
    return levels


def normalized_significance(coefficients: ArrayLike) -> NDArray[np.float64]:
    """Return the significance ``c_i* = |c_i| / sqrt(2**level(c_i))``.

    The conventional (L2-optimal) thresholding scheme retains the ``B``
    coefficients with the greatest significance (Section 2.3).
    """
    coeffs = np.asarray(coefficients, dtype=np.float64)
    levels = coefficient_levels(coeffs.shape[0])
    return np.abs(coeffs) / np.sqrt(np.exp2(levels))


def haar_basis_vector(index: int, n: int) -> np.ndarray:
    """Return the (non-normalized) Haar basis vector of coefficient ``index``.

    The reconstruction identity is ``A = sum_i W[i] * haar_basis_vector(i, N)``.
    The vector of ``c_0`` is all ones; the vector of a detail coefficient is
    ``+1`` over the left half of its support, ``-1`` over the right half and
    ``0`` elsewhere.  (The *orthonormal* basis used by Send-Coef divides by
    ``sqrt`` of the support size; see :mod:`repro.core.conventional_dist`.)
    """
    _validate_length(n)
    if not 0 <= index < n:
        raise InvalidInputError(f"coefficient index {index} out of range for N={n}")
    vector = np.zeros(n, dtype=np.float64)
    if index == 0:
        vector[:] = 1.0
        return vector
    level = coefficient_level(index)
    support = n >> level
    start = (index - (1 << level)) * support
    half = support // 2
    vector[start : start + half] = 1.0
    vector[start + half : start + support] = -1.0
    return vector
