"""Two-dimensional Haar wavelets (standard decomposition).

The paper's lineage uses wavelets for *multidimensional* aggregates too
(Vitter & Wang [31], cited for the relative-error metric): OLAP-style
data cubes summarized by a sparse set of 2-D coefficients.  This module
extends the substrate with the **standard decomposition**: the 1-D
transform applied to every row, then to every column of the result.

The standard decomposition is a tensor product of the 1-D transform, so
everything composes from the 1-D error-tree machinery:

* coefficient ``(a, b)``'s basis is the outer product of the 1-D basis
  vectors of ``a`` (rows) and ``b`` (columns);
* a cell ``(r, c)`` is reconstructed from the ``O(log^2 N)`` coefficients
  on ``path(r) x path(c)`` with sign ``delta_ra * delta_cb``;
* a rectangle sum uses the 1-D range-sum weights per dimension:
  ``sum w_row(a) * w_col(b) * W[a, b]``.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.exceptions import InvalidInputError
from repro.wavelet.error_tree import data_path, leaf_sign, node_leaf_range
from repro.wavelet.transform import (
    coefficient_levels,
    haar_transform,
    inverse_haar_transform,
    is_power_of_two,
)

__all__ = [
    "haar_transform_2d",
    "inverse_haar_transform_2d",
    "normalized_significance_2d",
    "reconstruct_cell",
    "range_weights",
    "reconstruct_rectangle_sum",
]


def _validate_matrix(matrix: ArrayLike) -> NDArray[np.float64]:
    values = np.asarray(matrix, dtype=np.float64)
    if values.ndim != 2:
        raise InvalidInputError("input must be a 2-D matrix")
    rows, cols = values.shape
    if not (is_power_of_two(rows) and is_power_of_two(cols)):
        raise InvalidInputError(
            f"matrix dimensions {values.shape} must both be powers of two"
        )
    return values


def haar_transform_2d(matrix: ArrayLike) -> NDArray[np.float64]:
    """Standard 2-D Haar decomposition: 1-D transform on rows then columns."""
    values = _validate_matrix(matrix)
    row_transformed = np.apply_along_axis(haar_transform, 1, values)
    return np.apply_along_axis(haar_transform, 0, row_transformed)


def inverse_haar_transform_2d(coefficients: ArrayLike) -> NDArray[np.float64]:
    """Exact inverse of :func:`haar_transform_2d`."""
    values = _validate_matrix(coefficients)
    col_restored = np.apply_along_axis(inverse_haar_transform, 0, values)
    return np.apply_along_axis(inverse_haar_transform, 1, col_restored)


def normalized_significance_2d(coefficients: ArrayLike) -> NDArray[np.float64]:
    """Significance ``|c| / sqrt(2**(level_row + level_col))``.

    The 2-D analogue of the conventional scheme: retaining the top-``B``
    by this measure minimizes the L2 reconstruction error (the standard
    basis is orthogonal; tested against brute force).
    """
    values = _validate_matrix(coefficients)
    rows, cols = values.shape
    row_levels = coefficient_levels(rows)[:, None]
    col_levels = coefficient_levels(cols)[None, :]
    return np.abs(values) / np.sqrt(np.exp2(row_levels + col_levels))


def reconstruct_cell(
    coefficients: Mapping[tuple[int, int], float] | NDArray[np.float64],
    row: int,
    col: int,
    shape: tuple[int, int],
) -> float:
    """Reconstruct one cell from a sparse ``{(a, b): value}`` mapping.

    ``O(log^2 N)`` — the product of the two 1-D paths.
    """
    n_rows, n_cols = int(shape[0]), int(shape[1])
    row, col = int(row), int(col)
    total = 0.0
    row_signs = [(a, leaf_sign(a, row, n_rows)) for a in data_path(row, n_rows)]
    col_signs = [(b, leaf_sign(b, col, n_cols)) for b in data_path(col, n_cols)]
    getter = coefficients.get if hasattr(coefficients, "get") else None
    for a, sign_a in row_signs:
        for b, sign_b in col_signs:
            value = getter((a, b), 0.0) if getter else float(coefficients[a, b])
            if value != 0.0:
                total += sign_a * sign_b * value
    return total


def range_weights(lo: int, hi: int, n: int) -> dict[int, float]:
    """1-D range-sum weights: ``d(lo:hi) = sum_j w[j] * c_j``.

    Only the nodes on ``path(lo)`` and ``path(hi)`` carry non-zero weight
    (Section 2.2); this is the per-dimension factor of the 2-D rectangle
    sum.
    """
    lo, hi = int(lo), int(hi)
    if lo > hi:
        raise InvalidInputError(f"empty range [{lo}, {hi}]")
    weights: dict[int, float] = {}
    for node in set(data_path(lo, n)) | set(data_path(hi, n)):
        if node == 0:
            weights[0] = float(hi - lo + 1)
            continue
        node_lo, node_hi = node_leaf_range(node, n)
        mid = (node_lo + node_hi) // 2
        left = max(0, min(hi, mid - 1) - max(lo, node_lo) + 1)
        right = max(0, min(hi, node_hi - 1) - max(lo, mid) + 1)
        if left != right:
            weights[node] = float(left - right)
    return weights


def reconstruct_rectangle_sum(
    coefficients: Mapping[tuple[int, int], float] | NDArray[np.float64],
    row_range: tuple[int, int],
    col_range: tuple[int, int],
    shape: tuple[int, int],
) -> float:
    """Rectangle sum over inclusive ranges from a sparse coefficient map.

    ``O(log^2 N)`` coefficients contribute — the tensor product of the two
    1-D weight sets.
    """
    n_rows, n_cols = shape
    row_w = range_weights(row_range[0], row_range[1], n_rows)
    col_w = range_weights(col_range[0], col_range[1], n_cols)
    getter = coefficients.get if hasattr(coefficients, "get") else None
    total = 0.0
    for a, wa in row_w.items():
        for b, wb in col_w.items():
            value = getter((a, b), 0.0) if getter else float(coefficients[a, b])
            if value != 0.0:
                total += wa * wb * value
    return total
