"""Haar wavelet substrate: transform, error tree, synopses, and metrics."""

from repro.wavelet.error_tree import (
    ErrorTree,
    data_path,
    leaf_sign,
    node_children,
    node_leaf_range,
    node_level,
    node_parent,
    reconstruct_range_sum,
    reconstruct_value,
    subtree_nodes,
)
from repro.wavelet.metrics import (
    DEFAULT_SANITY_BOUND,
    l2_error,
    max_abs_error,
    max_rel_error,
    signed_errors,
)
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.synopsis2d import (
    WaveletSynopsis2D,
    conventional_synopsis_2d,
    greedy_abs_2d,
)
from repro.wavelet.transform2d import (
    haar_transform_2d,
    inverse_haar_transform_2d,
    normalized_significance_2d,
    range_weights,
    reconstruct_cell,
    reconstruct_rectangle_sum,
)
from repro.wavelet.transform import (
    coefficient_level,
    coefficient_levels,
    decomposition_steps,
    haar_basis_vector,
    haar_transform,
    inverse_haar_transform,
    is_power_of_two,
    normalized_significance,
)

__all__ = [
    "ErrorTree",
    "WaveletSynopsis",
    "WaveletSynopsis2D",
    "conventional_synopsis_2d",
    "greedy_abs_2d",
    "haar_transform_2d",
    "inverse_haar_transform_2d",
    "normalized_significance_2d",
    "range_weights",
    "reconstruct_cell",
    "reconstruct_rectangle_sum",
    "DEFAULT_SANITY_BOUND",
    "coefficient_level",
    "coefficient_levels",
    "data_path",
    "decomposition_steps",
    "haar_basis_vector",
    "haar_transform",
    "inverse_haar_transform",
    "is_power_of_two",
    "l2_error",
    "leaf_sign",
    "max_abs_error",
    "max_rel_error",
    "node_children",
    "node_leaf_range",
    "node_level",
    "node_parent",
    "normalized_significance",
    "reconstruct_range_sum",
    "reconstruct_value",
    "signed_errors",
    "subtree_nodes",
]
