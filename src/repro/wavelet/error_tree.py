"""The Haar *error tree* (Section 2.2 of the paper).

The error tree of an ``N``-point decomposition is a complete binary tree:

* internal node ``c_j`` (``1 <= j < N``) has children ``c_{2j}``/``c_{2j+1}``
  when ``2j < N`` and data children ``d_{2j-N}``/``d_{2j+1-N}`` otherwise;
* ``c_0`` (the overall average) sits above ``c_1`` and contributes
  positively to every data value;
* the data value ``d_i`` is reconstructed as
  ``sum_{c_j in path_i} delta_ij * c_j`` where ``delta_ij`` is ``+1`` when
  ``d_i`` lies in the left sub-tree of ``c_j`` (or ``j == 0``) and ``-1``
  otherwise.

This module provides both static navigation helpers (pure index arithmetic,
no tree materialization) and the :class:`ErrorTree` convenience wrapper used
by the centralized algorithms and the partitioning schemes.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

import numpy as np
from numpy.typing import ArrayLike

from repro.exceptions import InvalidInputError
from repro.wavelet.transform import (
    coefficient_level,
    haar_transform,
    is_power_of_two,
)

__all__ = [
    "node_level",
    "node_leaf_range",
    "node_children",
    "node_parent",
    "leaf_sign",
    "data_path",
    "path_signs",
    "reconstruct_value",
    "reconstruct_range_sum",
    "subtree_nodes",
    "ErrorTree",
]


def node_level(index: int) -> int:
    """Level of node ``c_index`` in the error tree (0 = coarsest)."""
    return coefficient_level(index)


def node_leaf_range(index: int, n: int) -> tuple[int, int]:
    """Return the half-open data range ``[lo, hi)`` covered by ``c_index``.

    ``c_0`` and ``c_1`` both cover the whole array.
    """
    if not is_power_of_two(n):
        raise InvalidInputError(f"N={n} is not a power of two")
    if not 0 <= index < n:
        raise InvalidInputError(f"node index {index} out of range for N={n}")
    if index == 0:
        return 0, n
    level = node_level(index)
    support = n >> level
    start = (index - (1 << level)) * support
    return start, start + support


def node_children(index: int, n: int) -> tuple[int, int] | None:
    """Return the two coefficient children of ``c_index`` or ``None``.

    ``None`` means the node's children are data values (bottom level).
    ``c_0`` is special: its only coefficient child is ``c_1`` and this
    function reports ``(1, 1)`` for it to keep the return type uniform.
    """
    if index == 0:
        return (1, 1) if n > 1 else None
    if 2 * index < n:
        return 2 * index, 2 * index + 1
    return None


def node_parent(index: int) -> int:
    """Return the parent node of ``c_index`` (``c_1``'s parent is ``c_0``)."""
    if index <= 0:
        raise InvalidInputError("the root c_0 has no parent")
    if index == 1:
        return 0
    return index // 2


def leaf_sign(node: int, leaf: int, n: int) -> int:
    """Return ``delta`` in ``{+1, -1}``: the sign of ``c_node`` at ``d_leaf``.

    ``+1`` when ``d_leaf`` is in the left sub-tree of ``c_node`` (or node 0),
    ``-1`` when in the right sub-tree, and ``0`` when ``d_leaf`` is outside
    the node's support.
    """
    lo, hi = node_leaf_range(node, n)
    if not lo <= leaf < hi:
        return 0
    if node == 0:
        return 1
    mid = (lo + hi) // 2
    return 1 if leaf < mid else -1


def data_path(leaf: int, n: int) -> list[int]:
    """Return ``path_leaf``: the node indices from ``c_0`` down to ``d_leaf``.

    The list is ordered coarsest-first: ``[0, 1, ...]`` and has
    ``log2(N) + 1`` entries.
    """
    if not is_power_of_two(n):
        raise InvalidInputError(f"N={n} is not a power of two")
    if not 0 <= leaf < n:
        raise InvalidInputError(f"leaf index {leaf} out of range for N={n}")
    if n == 1:
        return [0]
    log_n = n.bit_length() - 1
    path = [0]
    for level in range(log_n):
        path.append((1 << level) + (leaf >> (log_n - level)))
    return path


def path_signs(leaf: int, n: int) -> list[tuple[int, int]]:
    """Return ``[(node, delta), ...]`` along ``path_leaf`` (coarsest first)."""
    return [(node, leaf_sign(node, leaf, n)) for node in data_path(leaf, n)]


def reconstruct_value(coefficients: Mapping[int, float] | np.ndarray, leaf: int, n: int) -> float:
    """Reconstruct ``d_leaf`` from a (possibly sparse) coefficient set.

    ``coefficients`` may be a dense array of length ``N`` or any mapping
    from node index to retained coefficient value; missing entries are
    implicitly zero.  This is the ``O(log N)`` per-value query of
    Section 2.2.
    """
    if isinstance(coefficients, Mapping):
        getter = lambda j: coefficients.get(j, 0.0)  # noqa: E731
    else:
        dense = np.asarray(coefficients)
        getter = lambda j: float(dense[j])  # noqa: E731
    total = 0.0
    for node, sign in path_signs(leaf, n):
        total += sign * getter(node)
    return total


def reconstruct_range_sum(
    coefficients: Mapping[int, float] | np.ndarray, lo: int, hi: int, n: int
) -> float:
    """Return the range sum ``d(lo:hi)`` (inclusive bounds, as in the paper).

    Uses only the nodes on ``path_lo`` and ``path_hi`` — at most
    ``2 log N + 1`` coefficients regardless of the width of the range
    (Section 2.2).  Each node ``c_j`` contributes
    ``(|leftleaves_{j,lo:hi}| - |rightleaves_{j,lo:hi}|) * c_j`` and ``c_0``
    contributes ``(hi - lo + 1) * c_0``.
    """
    if lo > hi:
        raise InvalidInputError(f"empty range [{lo}, {hi}]")
    if isinstance(coefficients, Mapping):
        getter = lambda j: coefficients.get(j, 0.0)  # noqa: E731
    else:
        dense = np.asarray(coefficients)
        getter = lambda j: float(dense[j])  # noqa: E731

    nodes = set(data_path(lo, n)) | set(data_path(hi, n))
    total = 0.0
    for node in nodes:
        value = getter(node)
        if value == 0.0:
            continue
        if node == 0:
            total += (hi - lo + 1) * value
            continue
        left_lo, left_hi = node_leaf_range(node, n)
        mid = (left_lo + left_hi) // 2
        left_count = max(0, min(hi, mid - 1) - max(lo, left_lo) + 1)
        right_count = max(0, min(hi, left_hi - 1) - max(lo, mid) + 1)
        total += (left_count - right_count) * value
    return total


def subtree_nodes(root: int, n: int) -> Iterator[int]:
    """Yield all coefficient nodes of the sub-tree rooted at ``root``.

    Breadth-first order; includes ``root`` itself.  For ``root == 0`` this
    is every node ``0 .. N-1``.
    """
    if root == 0:
        yield from range(n)
        return
    frontier = [root]
    while frontier:
        next_frontier = []
        for node in frontier:
            yield node
            if 2 * node < n:
                next_frontier.append(2 * node)
                next_frontier.append(2 * node + 1)
        frontier = next_frontier


class ErrorTree:
    """A materialized error tree: data, coefficients, and navigation.

    Thin convenience wrapper used by the centralized algorithms; the
    distributed algorithms work on index arithmetic plus per-partition
    slices instead and never materialize a global tree.
    """

    def __init__(self, data: ArrayLike) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        if self.data.ndim != 1:
            raise InvalidInputError("data must be one-dimensional")
        self.n = int(self.data.shape[0])
        if not is_power_of_two(self.n):
            raise InvalidInputError(f"N={self.n} is not a power of two")
        self.coefficients = haar_transform(self.data)

    @property
    def log_n(self) -> int:
        """``log2(N)``, the number of detail levels."""
        return self.n.bit_length() - 1

    def level(self, index: int) -> int:
        """Level of node ``c_index``."""
        return node_level(index)

    def leaf_range(self, index: int) -> tuple[int, int]:
        """Half-open data range covered by node ``c_index``."""
        return node_leaf_range(index, self.n)

    def children(self, index: int) -> tuple[int, int] | None:
        """Coefficient children of ``c_index`` (see :func:`node_children`)."""
        return node_children(index, self.n)

    def parent(self, index: int) -> int:
        """Parent node of ``c_index``."""
        return node_parent(index)

    def path(self, leaf: int) -> list[int]:
        """``path_leaf`` from the root down to ``d_leaf``."""
        return data_path(leaf, self.n)

    def sign(self, node: int, leaf: int) -> int:
        """``delta`` of node ``c_node`` at data value ``d_leaf``."""
        return leaf_sign(node, leaf, self.n)

    def reconstruct_value(self, leaf: int, retained: Mapping[int, float] | None = None) -> float:
        """Reconstruct ``d_leaf`` from ``retained`` (default: all coefficients)."""
        source = self.coefficients if retained is None else retained
        return reconstruct_value(source, leaf, self.n)

    def range_sum(self, lo: int, hi: int, retained: Mapping[int, float] | None = None) -> float:
        """Range sum ``d(lo:hi)`` from ``retained`` (default: all coefficients)."""
        source = self.coefficients if retained is None else retained
        return reconstruct_range_sum(source, lo, hi, self.n)
