"""The conventional (L2-optimal) thresholding scheme (Section 2.3).

Retains the ``B`` coefficients with the greatest significance
``c_i* = |c_i| / sqrt(2**level(c_i))``; provably minimizes the L2 error
but offers no maximum-error guarantee.  Serves as the quality baseline of
Figures 8b/9b and as the shared output of the four parallel algorithms of
Appendix A (CON, Send-V, Send-Coef, H-WTopk).
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.exceptions import InvalidInputError
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import haar_transform, normalized_significance

__all__ = ["conventional_synopsis", "top_b_indices", "largest_coefficient"]


def top_b_indices(coefficients: ArrayLike, budget: int) -> list[int]:
    """Indices of the ``budget`` most significant coefficients.

    Ties break on the lower index, keeping every implementation of the
    conventional synopsis (centralized and all four distributed
    algorithms) byte-identical.
    """
    if budget < 0:
        raise InvalidInputError("budget must be non-negative")
    significance = normalized_significance(coefficients)
    order = sorted(range(len(significance)), key=lambda i: (-significance[i], i))
    return sorted(order[:budget])


def conventional_synopsis(data: ArrayLike, budget: int) -> WaveletSynopsis:
    """Centralized conventional synopsis: top-``budget`` by significance."""
    values = np.asarray(data, dtype=np.float64)
    coefficients = haar_transform(values)
    retained = {
        index: float(coefficients[index])
        for index in top_b_indices(coefficients, budget)
        if coefficients[index] != 0.0  # lint: ignore[KC002]
    }
    return WaveletSynopsis(
        n=int(values.shape[0]),
        coefficients=retained,
        meta={"algorithm": "CONV", "budget": budget},
    )


def largest_coefficient(coefficients: ArrayLike, rank: int) -> float:
    """Magnitude of the ``rank``-th largest coefficient (1-based).

    IndirectHaar's error lower bound is the ``(B+1)``-largest coefficient
    (Algorithm 2, line 2).  Returns 0.0 when ``rank`` exceeds the array.
    """
    if rank <= 0:
        raise InvalidInputError("rank must be positive")
    magnitudes = np.sort(np.abs(np.asarray(coefficients, dtype=np.float64)))[::-1]
    if rank > magnitudes.shape[0]:
        return 0.0
    return float(magnitudes[rank - 1])
