"""Centralized thresholding algorithms (the paper's baselines).

* :func:`greedy_abs` / :func:`greedy_rel` — Karras & Mamoulis's one-pass
  greedy heuristics for max-abs / max-rel error (Section 5.1, 5.4);
* :func:`min_haar_space` — the dual-problem DP (Problem 2);
* :func:`indirect_haar` — Problem 1 via binary search over the dual
  (Algorithm 2);
* :func:`conventional_synopsis` — the L2-optimal baseline (Section 2.3).
"""

from repro.algos.conventional import (
    conventional_synopsis,
    largest_coefficient,
    top_b_indices,
)
from repro.algos.greedy_abs import (
    GreedyAbsTree,
    GreedyRun,
    Removal,
    greedy_abs,
    greedy_abs_order,
)
from repro.algos.greedy_rel import GreedyRelTree, greedy_rel, greedy_rel_order
from repro.algos.heap import AddressableMinHeap
from repro.algos.indirect_haar import indirect_haar, indirect_haar_search
from repro.algos.minhaarspace import (
    DP_KERNELS,
    DualSolution,
    KernelSpec,
    MRow,
    approx_params,
    combine_rows,
    combine_rows_restricted,
    compute_subtree_rows,
    compute_subtree_rows_restricted,
    effective_delta,
    finalize_root,
    finalize_root_restricted,
    leaf_row,
    min_haar_space,
    min_haar_space_restricted,
    resolve_kernel,
    traceback_subtree,
)

__all__ = [
    "AddressableMinHeap",
    "DP_KERNELS",
    "DualSolution",
    "GreedyAbsTree",
    "GreedyRelTree",
    "GreedyRun",
    "KernelSpec",
    "MRow",
    "Removal",
    "approx_params",
    "combine_rows",
    "combine_rows_restricted",
    "compute_subtree_rows",
    "compute_subtree_rows_restricted",
    "effective_delta",
    "resolve_kernel",
    "conventional_synopsis",
    "finalize_root",
    "finalize_root_restricted",
    "greedy_abs",
    "greedy_abs_order",
    "greedy_rel",
    "greedy_rel_order",
    "indirect_haar",
    "indirect_haar_search",
    "largest_coefficient",
    "leaf_row",
    "min_haar_space",
    "min_haar_space_restricted",
    "top_b_indices",
    "traceback_subtree",
]
