"""GreedyAbs: one-pass greedy thresholding for maximum *absolute* error.

Reimplementation of Karras & Mamoulis (VLDB'05) as described in
Section 5.1 of the paper.  The algorithm repeatedly discards the
coefficient whose removal incurs the smallest *maximum potential absolute
error* ``MA_k`` (Eq. 7/8), maintaining for every internal node only four
quantities — the max/min signed errors of its left and right leaf sets —
and a min-priority queue over the ``MA`` values.

Because the maximum absolute error is not monotone under removals, the
algorithm keeps discarding past the budget ``B`` and returns the best of
the last ``B + 1`` states (end of Section 5.1).

The same engine runs in three roles for the distributed algorithm
(Section 5.2):

* the whole error tree (centralized GreedyAbs),
* a *base sub-tree* seeded with a uniform incoming error,
* the *root sub-tree* over one virtual leaf per base sub-tree.

All three are complete binary trees over ``m`` leaves with coefficient
slots ``1 .. m-1`` (plus the overall average in slot ``0`` when the tree
is the whole decomposition), which is exactly what
:class:`GreedyAbsTree` models.

Vectorization (see docs/ALGORITHMS.md, "Complexity and vectorization")
----------------------------------------------------------------------
The four quantities of Eq. 8 are stored as one *doubled* segment tree:
``smax[j]`` holds the max signed leaf error under tree node ``j`` and
``sneg[j]`` the max *negated* leaf error (i.e. ``-min``) for
``j in [1, 2m)``, leaves at ``[m, 2m)``.  Node ``k``'s ``max_left`` is
then simply ``smax[2k]``, its ``-min_right`` is ``sneg[2k + 1]``, and
both arrays aggregate with the *same* pairwise-max operation.  Storing
the negated minima also collapses Eq. 8 to

    ``MA_j = max(max(Lmax, Rneg) - c_j, max(Rmax, Lneg) + c_j)``

which is bit-exact to the reference four-``abs`` form because IEEE-754
``max`` is associative and ``x - c`` is monotone in ``x`` (so ``max``
commutes with shifting both operands by the same constant).

In the array layout the descendants of ``k`` at depth ``d`` form the
contiguous slice ``[k << d, (k + 1) << d)``, so a removal processes its
dirtied sub-tree level by level, *deepest first*: each level's ±c shift
and its MA recomputation (which reads the already-processed level below)
fuse into one pass of numpy slice ops — or one scalar memoryview loop on
narrow levels, where interpreter arithmetic beats numpy's per-call
dispatch.  Leaf entries carry a single signed error, so only ``smax`` is
maintained in the leaf region and leaf minima read through ``smax``.
The ancestor chain — inherently sequential — walks memoryviews carrying
the path child's fresh aggregates in locals, so each ancestor costs one
sibling read, two writes, and (while alive) one 5-op MA update; the
root values it ends with give ``error_after`` for free.

Dirtied priorities enter a *lazy* ``heapq``-based queue of packed
integer keys ``(float64_bits(MA) << id_bits) | node``: because
``MA >= 0``, IEEE-754 bit patterns order exactly like the floats, so the
packed order is exactly the ``(priority, node)`` order of the scalar
reference engine's addressable heap (``-0.0`` is normalized to ``+0.0``,
which every float comparison treats as equal).  A key is pushed only
when a node's ``MA`` drops below its lowest enqueued key, stale entries
are re-validated against the node's current ``MA`` at pop time, and the
queue is rebuilt from the alive nodes' current MAs once stale entries
dominate — none of which can reorder the valid pops.

Every arithmetic step mirrors the reference engine
(:mod:`repro.algos.reference`) value-for-value — IEEE-754 double
rounding is deterministic and ``np.maximum`` agrees with Python's
``max`` on finite floats — so the two engines emit identical removal
sequences, differential-tested under Hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush, heappushpop
from typing import NamedTuple

import numpy as np
from numpy.typing import ArrayLike

from repro.exceptions import InvalidInputError
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import haar_transform, is_power_of_two

__all__ = ["Removal", "GreedyRun", "GreedyAbsTree", "greedy_abs", "greedy_abs_order"]

#: Level width below which the memoryview scalar path beats numpy's
#: per-call dispatch overhead (tuned via benchmarks/bench_greedy_kernel.py).
_SCALAR_LEVEL_CUTOFF = 32


class Removal(NamedTuple):
    """One discard step: which node went, and the tree-wide error after."""

    node: int
    value: float
    error_after: float


@dataclass
class GreedyRun:
    """The full removal sequence of one greedy execution."""

    removals: list[Removal]
    initial_error: float

    def error_at_step(self, step: int) -> float:
        """Tree-wide max error after ``step`` removals (0 = none)."""
        if step == 0:
            return self.initial_error
        return self.removals[step - 1].error_after

    def best_cut(self, budget: int) -> tuple[int, float]:
        """Pick the best of the last ``budget + 1`` states.

        Returns ``(step, error)`` where the synopsis keeps everything
        removed *after* ``step``.  Ties prefer the smaller synopsis.
        """
        total = len(self.removals)
        first = max(0, total - budget)
        best_step, best_error = first, self.error_at_step(first)
        for step in range(first + 1, total + 1):
            error = self.error_at_step(step)
            if error <= best_error:
                best_step, best_error = step, error
        return best_step, best_error


class GreedyAbsTree:
    """Greedy discard engine over one complete error (sub-)tree.

    Parameters
    ----------
    coefficients:
        Array of length ``m`` (a power of two).  Slot ``j`` for
        ``1 <= j < m`` is the detail coefficient of local node ``j``;
        slot ``0`` is the overall average, used only when
        ``include_average`` is True (base sub-trees have no average slot).
    initial_errors:
        Signed accumulated error ``err_i`` per leaf before any local
        removal — the *incoming error* a base sub-tree inherits from
        discarded ancestors (Section 5.2).  Defaults to all zeros.
    include_average:
        Whether slot 0 participates (True for whole decompositions).

    ``coefficients`` and the error aggregates ``smax``/``sneg`` are
    contiguous float64 ndarrays; the four quantities of the scalar
    formulation are the views ``max_left == smax[2j]``,
    ``-min_right == sneg[2j + 1]``, and so on.  The leaf region
    ``[m, 2m)`` is maintained in ``smax`` only (a leaf's min equals its
    max); ``sneg[m:]`` is valid at construction and never updated.
    """

    def __init__(
        self,
        coefficients: ArrayLike,
        initial_errors: ArrayLike | None = None,
        include_average: bool = True,
    ) -> None:
        coeffs = np.array(coefficients, dtype=np.float64, copy=True)
        if coeffs.ndim != 1 or not is_power_of_two(coeffs.shape[0]):
            raise InvalidInputError("coefficient array length must be a power of two")
        self.m = m = int(coeffs.shape[0])
        self.coefficients = coeffs
        self.include_average = include_average

        if initial_errors is None:
            errors = np.zeros(m, dtype=np.float64)
        else:
            errors = np.array(initial_errors, dtype=np.float64, copy=True)
            if errors.ndim != 1 or errors.shape[0] != m:
                raise InvalidInputError("initial_errors length must equal tree size")

        self.smax = smax = np.zeros(2 * m, dtype=np.float64)
        self.sneg = sneg = np.zeros(2 * m, dtype=np.float64)
        smax[m:] = errors
        np.negative(errors, out=sneg[m:])
        a = m
        while a > 1:
            a >>= 1
            b = 2 * a
            left = slice(b, 2 * b, 2)
            right = slice(b + 1, 2 * b, 2)
            np.maximum(smax[left], smax[right], out=smax[a:b])
            np.maximum(sneg[left], sneg[right], out=sneg[a:b])

        # Priorities.  _ma_arr[j] is the live MA of node j while alive;
        # stale once removed (pops check _alive first).
        self._ma_arr = ma = np.zeros(m, dtype=np.float64)
        if m > 1:
            c = coeffs[1:]
            a_side = np.maximum(smax[2::2], sneg[3::2])
            b_side = np.maximum(smax[3::2], sneg[2::2])
            np.maximum(a_side - c, b_side + c, out=ma[1:])
        self._alive = np.zeros(m, dtype=bool)
        self._alive[1:] = True
        self._alive[0] = include_average
        self._alive_count = (m - 1) + (1 if include_average else 0)

        # Scalar hot paths go through memoryviews: they share the numpy
        # buffers but index at Python-list speed.
        self._vmax = memoryview(smax)
        self._vneg = memoryview(sneg)
        self._vma = memoryview(ma)
        self._vcoef = memoryview(coeffs)
        self._valive = memoryview(self._alive)
        if include_average:
            c0 = coeffs[0]
            ma[0] = max(smax[1] - c0, sneg[1] + c0)

        # One float64 cell viewed as int64: writing _packf[0] = v makes
        # _packi[0] the sortable IEEE bit pattern of v (v >= 0).
        pack_cell = np.empty(1, dtype=np.float64)
        self._packf = memoryview(pack_cell)
        self._packi = memoryview(pack_cell.view(np.int64))
        self._id_bits = id_bits = max(20, m.bit_length())
        self._id_mask = (1 << id_bits) - 1

        # Lazy min-queue of packed (MA-bits, node) keys.  Invariant:
        # every alive node has an entry keyed at _minstored[node] <= its
        # true MA, so the first pop whose key matches the node's current
        # MA is the true minimum under the deterministic
        # (priority, node-id) order of the reference engine's heap.
        self._minstored = ma.copy()
        self._vms = memoryview(self._minstored)
        start = 0 if include_average else 1
        ids = np.arange(start, m, dtype=np.int64)
        keys = (((ma[start:] + 0.0).view(np.int64) << id_bits) | ids).tolist()
        heapify(keys)
        self._heap = keys

        self._scratch1 = np.empty(m, dtype=np.float64)
        self._scratch2 = np.empty(m, dtype=np.float64)
        self._push_mask = np.empty(m, dtype=bool)

    # -- potential error computations -------------------------------------

    def _ma(self, j: int) -> float:
        c = self._vcoef[j]
        if j == 0:
            neg = -self._vmax[1] if self.m == 1 else self._vneg[1]
            return max(self._vmax[1] - c, neg + c)
        left, right = 2 * j, 2 * j + 1
        xl = self._vmax[left]
        xr = self._vmax[right]
        if left >= self.m:
            gl, gr = -xl, -xr
        else:
            gl, gr = self._vneg[left], self._vneg[right]
        return max(max(xl, gr) - c, max(xr, gl) + c)

    def current_error(self) -> float:
        """Tree-wide maximum absolute error of the running synopsis."""
        v = self._vmax[1]
        if self.m == 1:
            return v if v >= 0.0 else -v
        return max(v, self._vneg[1])

    # -- removal ----------------------------------------------------------

    def __len__(self) -> int:
        return self._alive_count

    def remove_next(self) -> Removal:
        """Discard the node with minimum ``MA`` and update the tree."""
        if not self._alive_count:
            raise IndexError("pop from empty heap")
        heap = self._heap
        valive = self._valive
        vma = self._vma
        id_bits = self._id_bits
        id_mask = self._id_mask
        packf = self._packf
        packi = self._packi
        key = heappop(heap)
        while True:
            k = key & id_mask
            if not valive[k]:
                key = heappop(heap)
                continue
            packf[0] = vma[k] + 0.0
            current_key = (packi[0] << id_bits) | k
            if key == current_key:
                break
            if key < current_key:
                # Stale-low entry: the true MA rose since it was pushed.
                # Reinsert at the current key (cf. AddressableMinHeap.update)
                # and take the new minimum in one sift.
                self._vms[k] = vma[k]
                key = heappushpop(heap, current_key)
            else:
                # A lower entry for k is still queued.
                key = heappop(heap)
        value = self._vcoef[k]
        valive[k] = False
        self._alive_count -= 1
        if k == 0:
            error_after = self._remove_average(value)
        else:
            error_after = self._remove_detail(k, value)
        return Removal(k, value, error_after)

    def _remove_average(self, c: float) -> float:
        m = self.m
        vmax = self._vmax
        if m == 1:
            v = vmax[1] - c
            vmax[1] = v
            return v if v >= 0.0 else -v
        # Every leaf error shifts by -c, hence every max aggregate drops
        # by c and every negated-min aggregate rises by c; every alive
        # node's MA is refreshed in one pass.
        if m <= 2 * _SCALAR_LEVEL_CUTOFF:
            vneg = self._vneg
            for j in range(1, m):
                vmax[j] = vmax[j] - c
                vneg[j] = vneg[j] + c
            for j in range(m, 2 * m):
                vmax[j] = vmax[j] - c
            self._scalar_ma_refresh(1, m)
        else:
            half = m >> 1
            self.smax[1:] -= c
            self.sneg[1:m] += c
            self._vector_ma_refresh(1, half)
            self._vector_ma_refresh(half, m)
        return max(vmax[1], self._vneg[1])

    def _remove_detail(self, k: int, c: float) -> float:
        m = self.m
        vmax = self._vmax
        vneg = self._vneg
        valive = self._valive
        vma = self._vma
        vms = self._vms
        vcoef = self._vcoef
        heap = self._heap
        packf = self._packf
        packi = self._packi
        id_bits = self._id_bits
        half = m >> 1
        left = 2 * k
        right = left + 1

        if left >= m:
            # Height-1 node: its children are the two leaf entries — one
            # fused shift (smax only) that also yields k's new aggregates.
            xl = vmax[left] - c
            xr = vmax[right] + c
            vmax[left] = xl
            vmax[right] = xr
            if xl >= xr:
                cx = xl
                cg = -xr
            else:
                cx = xr
                cg = -xl
        else:
            # Sub-tree shifts: everything under k's left child moves by
            # -c, everything under the right child by +c (Section 5.1).
            # Level t below k is the contiguous block
            # [k << t+1, (k + 1) << t+1), halves descending from 2k and
            # 2k + 1.  Levels run DEEPEST FIRST so each interior level's
            # MA refresh (which reads children one level down) fuses into
            # the same pass as its shift.
            smax = self.smax
            sneg = self.sneg
            a = left
            w = 1
            while a < m:
                a <<= 1
                w <<= 1
            # Leaf level: only smax is maintained for leaf entries.
            mid = a + w
            if w <= 8:
                for j in range(a, mid):
                    vmax[j] = vmax[j] - c
                for j in range(mid, mid + w):
                    vmax[j] = vmax[j] + c
            else:
                smax[a:mid] -= c
                smax[mid : mid + w] += c
            a >>= 1
            w >>= 1
            # Interior levels, fused shift + MA refresh.
            while a >= left:
                mid = a + w
                b = mid + w
                if w <= _SCALAR_LEVEL_CUTOFF:
                    lf = a >= half
                    for j in range(a, mid):
                        vmax[j] = vmax[j] - c
                        vneg[j] = vneg[j] + c
                        if valive[j]:
                            cj = vcoef[j]
                            jl = j + j
                            jr = jl + 1
                            xl = vmax[jl]
                            xr = vmax[jr]
                            if lf:
                                gl = -xl
                                gr = -xr
                            else:
                                gl = vneg[jl]
                                gr = vneg[jr]
                            hi = (xl if xl >= gr else gr) - cj
                            t = (xr if xr >= gl else gl) + cj
                            if t > hi:
                                hi = t
                            vma[j] = hi
                            if hi < vms[j]:
                                vms[j] = hi
                                packf[0] = hi + 0.0
                                heappush(heap, (packi[0] << id_bits) | j)
                    for j in range(mid, b):
                        vmax[j] = vmax[j] + c
                        vneg[j] = vneg[j] - c
                        if valive[j]:
                            cj = vcoef[j]
                            jl = j + j
                            jr = jl + 1
                            xl = vmax[jl]
                            xr = vmax[jr]
                            if lf:
                                gl = -xl
                                gr = -xr
                            else:
                                gl = vneg[jl]
                                gr = vneg[jr]
                            hi = (xl if xl >= gr else gr) - cj
                            t = (xr if xr >= gl else gl) + cj
                            if t > hi:
                                hi = t
                            vma[j] = hi
                            if hi < vms[j]:
                                vms[j] = hi
                                packf[0] = hi + 0.0
                                heappush(heap, (packi[0] << id_bits) | j)
                else:
                    smax[a:mid] -= c
                    sneg[a:mid] += c
                    smax[mid:b] += c
                    sneg[mid:b] -= c
                    self._vector_ma_refresh(a, b)
                a >>= 1
                w >>= 1
            cx = vmax[left]
            t = vmax[right]
            if t > cx:
                cx = t
            cg = vneg[left]
            t = vneg[right]
            if t > cg:
                cg = t

        vmax[k] = cx
        vneg[k] = cg
        # Ancestor chain.  Each ancestor has exactly one child on the
        # path from k (the sibling sub-tree is untouched), so its
        # aggregates are the pairwise max of the path child's fresh
        # values — carried in the locals cx/cg — and one sibling read.
        child = k
        while child > 1:
            q = child >> 1
            sib = child ^ 1
            sx = vmax[sib]
            sg = vneg[sib]
            nmax = sx if sx >= cx else cx
            nneg = sg if sg >= cg else cg
            vmax[q] = nmax
            vneg[q] = nneg
            if valive[q]:
                cq = vcoef[q]
                if child & 1:
                    # Path child is the right child: L = sibling, R = path.
                    hi = (sx if sx >= cg else cg) - cq
                    t = (cx if cx >= sg else sg) + cq
                else:
                    hi = (cx if cx >= sg else sg) - cq
                    t = (sx if sx >= cg else cg) + cq
                if t > hi:
                    hi = t
                vma[q] = hi
                if hi < vms[q]:
                    vms[q] = hi
                    packf[0] = hi + 0.0
                    heappush(heap, (packi[0] << id_bits) | q)
            cx = nmax
            cg = nneg
            child = q
        # cx/cg now hold the root aggregates: refresh the average slot
        # (its MA reads only those) and report the tree-wide error.
        if self.include_average and valive[0]:
            c0 = vcoef[0]
            ma0 = cx - c0
            t = cg + c0
            if t > ma0:
                ma0 = t
            vma[0] = ma0
            if ma0 < vms[0]:
                vms[0] = ma0
                packf[0] = ma0 + 0.0
                heappush(heap, packi[0] << id_bits)
        return cx if cx >= cg else cg

    def _scalar_ma_refresh(self, a: int, b: int) -> None:
        """Recompute MA for alive nodes in ``[a, b)`` (children current)."""
        half = self.m >> 1
        vmax = self._vmax
        vneg = self._vneg
        valive = self._valive
        vma = self._vma
        vms = self._vms
        vcoef = self._vcoef
        heap = self._heap
        packf = self._packf
        packi = self._packi
        id_bits = self._id_bits
        for j in range(a, b):
            if valive[j]:
                cj = vcoef[j]
                jl = j + j
                jr = jl + 1
                xl = vmax[jl]
                xr = vmax[jr]
                if j >= half:
                    gl = -xl
                    gr = -xr
                else:
                    gl = vneg[jl]
                    gr = vneg[jr]
                hi = (xl if xl >= gr else gr) - cj
                t = (xr if xr >= gl else gl) + cj
                if t > hi:
                    hi = t
                vma[j] = hi
                if hi < vms[j]:
                    vms[j] = hi
                    packf[0] = hi + 0.0
                    heappush(heap, (packi[0] << id_bits) | j)

    def _vector_ma_refresh(self, a: int, b: int) -> None:
        """Recompute MA for the id range ``[a, b)`` in one numpy pass.

        New keys enter the queue only where they undercut the node's
        lowest enqueued key (and the node is alive) — the batched
        analogue of one ``heap.update`` per dirtied node.  ``[a, b)``
        must not straddle the half-way point (children must be all
        interior or all leaves).
        """
        if b <= a:
            return
        smax = self.smax
        w = b - a
        cseg = self.coefficients[a:b]
        ma_seg = self._ma_arr[a:b]
        s1 = self._scratch1[:w]
        s2 = self._scratch2[:w]
        left = slice(2 * a, 2 * b, 2)
        right = slice(2 * a + 1, 2 * b, 2)
        if 2 * a >= self.m:
            # Children are leaf entries: negated minima read through smax.
            np.negative(smax[right], out=s1)
            np.maximum(smax[left], s1, out=s1)
            np.negative(smax[left], out=s2)
            np.maximum(smax[right], s2, out=s2)
        else:
            sneg = self.sneg
            np.maximum(smax[left], sneg[right], out=s1)
            np.maximum(smax[right], sneg[left], out=s2)
        np.subtract(s1, cseg, out=ma_seg)
        np.add(s2, cseg, out=s1)
        np.maximum(ma_seg, s1, out=ma_seg)
        mask = self._push_mask[:w]
        np.less(ma_seg, self._minstored[a:b], out=mask)
        mask &= self._alive[a:b]
        idx = mask.nonzero()[0]
        if idx.size:
            vms = self._vms
            heap = self._heap
            vals = ma_seg[idx]
            keys = ((vals + 0.0).view(np.int64) << self._id_bits) | (idx + a)
            for off, v, key in zip(idx.tolist(), vals.tolist(), keys.tolist()):
                vms[a + off] = v
                heappush(heap, key)

    def run_to_exhaustion(self) -> GreedyRun:
        """Discard every node; return the ordered removal sequence.

        Same semantics as calling :meth:`remove_next` until empty, with
        the pop loop inlined (locals bound once) and the lazy queue
        periodically compacted: when stale entries far outnumber alive
        nodes the heap is rebuilt with one exact key per alive node at
        its *current* MA.  A rebuilt key pops exactly where the node's
        lowest prior entry would have validated or re-inserted to, so
        the valid pop sequence — and hence the removal sequence — is
        unchanged.
        """
        initial = self.current_error()
        removals = []
        append = removals.append
        valive = self._valive
        vma = self._vma
        vms = self._vms
        vcoef = self._vcoef
        packf = self._packf
        packi = self._packi
        id_bits = self._id_bits
        id_mask = self._id_mask
        remove_detail = self._remove_detail
        remove_average = self._remove_average
        new = tuple.__new__
        cls = Removal
        alive = self._alive_count
        heap = self._heap
        while alive:
            if len(heap) > 4 * alive + 4096:
                ids = self._alive.nonzero()[0]
                vals = self._ma_arr[ids] + 0.0
                self._minstored[ids] = vals
                heap = ((vals.view(np.int64) << id_bits) | ids).tolist()
                heapify(heap)
                self._heap = heap
            key = heappop(heap)
            while True:
                k = key & id_mask
                if not valive[k]:
                    key = heappop(heap)
                    continue
                packf[0] = vma[k] + 0.0
                current_key = (packi[0] << id_bits) | k
                if key == current_key:
                    break
                if key < current_key:
                    vms[k] = vma[k]
                    key = heappushpop(heap, current_key)
                else:
                    key = heappop(heap)
            value = vcoef[k]
            valive[k] = False
            alive -= 1
            self._alive_count = alive
            if k:
                error_after = remove_detail(k, value)
            else:
                error_after = remove_average(value)
            append(new(cls, (k, value, error_after)))
        return GreedyRun(removals=removals, initial_error=initial)


def greedy_abs_order(
    coefficients: ArrayLike,
    initial_errors: ArrayLike | None = None,
    include_average: bool = True,
) -> GreedyRun:
    """Run the greedy engine to exhaustion over one (sub-)tree."""
    tree = GreedyAbsTree(coefficients, initial_errors, include_average)
    return tree.run_to_exhaustion()


def greedy_abs(data: ArrayLike, budget: int) -> WaveletSynopsis:
    """Centralized GreedyAbs: best max-abs synopsis within ``budget``.

    Computes the full decomposition, discards greedily until the tree is
    empty, and keeps the best of the last ``budget + 1`` coefficient sets.
    """
    if budget < 0:
        raise InvalidInputError("budget must be non-negative")
    values = np.asarray(data, dtype=np.float64)
    coefficients = haar_transform(values)
    run = greedy_abs_order(coefficients)
    step, error = run.best_cut(budget)
    retained = {r.node: r.value for r in run.removals[step:]}
    return WaveletSynopsis(
        n=int(values.shape[0]),
        coefficients=retained,
        meta={"algorithm": "GreedyAbs", "budget": budget, "max_abs_error": error},
    )
