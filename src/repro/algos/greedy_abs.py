"""GreedyAbs: one-pass greedy thresholding for maximum *absolute* error.

Reimplementation of Karras & Mamoulis (VLDB'05) as described in
Section 5.1 of the paper.  The algorithm repeatedly discards the
coefficient whose removal incurs the smallest *maximum potential absolute
error* ``MA_k`` (Eq. 7/8), maintaining for every internal node only four
quantities — the max/min signed errors of its left and right leaf sets —
and an addressable min-heap over the ``MA`` values.

Because the maximum absolute error is not monotone under removals, the
algorithm keeps discarding past the budget ``B`` and returns the best of
the last ``B + 1`` states (end of Section 5.1).

The same engine runs in three roles for the distributed algorithm
(Section 5.2):

* the whole error tree (centralized GreedyAbs),
* a *base sub-tree* seeded with a uniform incoming error,
* the *root sub-tree* over one virtual leaf per base sub-tree.

All three are complete binary trees over ``m`` leaves with coefficient
slots ``1 .. m-1`` (plus the overall average in slot ``0`` when the tree
is the whole decomposition), which is exactly what
:class:`GreedyAbsTree` models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algos.heap import AddressableMinHeap
from repro.exceptions import InvalidInputError
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import haar_transform, is_power_of_two

__all__ = ["Removal", "GreedyRun", "GreedyAbsTree", "greedy_abs", "greedy_abs_order"]


@dataclass(frozen=True)
class Removal:
    """One discard step: which node went, and the tree-wide error after."""

    node: int
    value: float
    error_after: float


@dataclass
class GreedyRun:
    """The full removal sequence of one greedy execution."""

    removals: list[Removal]
    initial_error: float

    def error_at_step(self, step: int) -> float:
        """Tree-wide max error after ``step`` removals (0 = none)."""
        if step == 0:
            return self.initial_error
        return self.removals[step - 1].error_after

    def best_cut(self, budget: int) -> tuple[int, float]:
        """Pick the best of the last ``budget + 1`` states.

        Returns ``(step, error)`` where the synopsis keeps everything
        removed *after* ``step``.  Ties prefer the smaller synopsis.
        """
        total = len(self.removals)
        first = max(0, total - budget)
        best_step, best_error = first, self.error_at_step(first)
        for step in range(first + 1, total + 1):
            error = self.error_at_step(step)
            if error <= best_error:
                best_step, best_error = step, error
        return best_step, best_error


class GreedyAbsTree:
    """Greedy discard engine over one complete error (sub-)tree.

    Parameters
    ----------
    coefficients:
        Array of length ``m`` (a power of two).  Slot ``j`` for
        ``1 <= j < m`` is the detail coefficient of local node ``j``;
        slot ``0`` is the overall average, used only when
        ``include_average`` is True (base sub-trees have no average slot).
    initial_errors:
        Signed accumulated error ``err_i`` per leaf before any local
        removal — the *incoming error* a base sub-tree inherits from
        discarded ancestors (Section 5.2).  Defaults to all zeros.
    include_average:
        Whether slot 0 participates (True for whole decompositions).
    """

    def __init__(self, coefficients, initial_errors=None, include_average: bool = True):
        coeffs = np.asarray(coefficients, dtype=np.float64)
        if coeffs.ndim != 1 or not is_power_of_two(coeffs.shape[0]):
            raise InvalidInputError("coefficient array length must be a power of two")
        self.m = int(coeffs.shape[0])
        self.coefficients = coeffs.tolist()
        self.include_average = include_average

        if initial_errors is None:
            errors = [0.0] * self.m
        else:
            errors = [float(e) for e in initial_errors]
            if len(errors) != self.m:
                raise InvalidInputError("initial_errors length must equal tree size")

        m = self.m
        self._single_leaf_error = errors[0] if m == 1 else 0.0
        self.max_left = [0.0] * m
        self.min_left = [0.0] * m
        self.max_right = [0.0] * m
        self.min_right = [0.0] * m
        for j in range(m // 2, m):
            self.max_left[j] = self.min_left[j] = errors[2 * j - m]
            self.max_right[j] = self.min_right[j] = errors[2 * j + 1 - m]
        for j in range(m // 2 - 1, 0, -1):
            self._recompute_quantities(j)

        self.heap = AddressableMinHeap()
        for j in range(1, m):
            self.heap.push(j, self._ma(j))
        if include_average:
            self.heap.push(0, self._ma_average())

    # -- potential error computations -------------------------------------

    def _ma(self, j: int) -> float:
        c = self.coefficients[j]
        return max(
            abs(self.max_left[j] - c),
            abs(self.min_left[j] - c),
            abs(self.max_right[j] + c),
            abs(self.min_right[j] + c),
        )

    def _ma_average(self) -> float:
        c = self.coefficients[0]
        if self.m == 1:
            err = self._single_leaf_error
            return abs(err - c)
        high = max(self.max_left[1], self.max_right[1])
        low = min(self.min_left[1], self.min_right[1])
        return max(abs(high - c), abs(low - c))

    def _recompute_quantities(self, j: int) -> None:
        left, right = 2 * j, 2 * j + 1
        self.max_left[j] = max(self.max_left[left], self.max_right[left])
        self.min_left[j] = min(self.min_left[left], self.min_right[left])
        self.max_right[j] = max(self.max_left[right], self.max_right[right])
        self.min_right[j] = min(self.min_left[right], self.min_right[right])

    def current_error(self) -> float:
        """Tree-wide maximum absolute error of the running synopsis."""
        if self.m == 1:
            return abs(self._single_leaf_error)
        return max(
            abs(self.max_left[1]),
            abs(self.min_left[1]),
            abs(self.max_right[1]),
            abs(self.min_right[1]),
        )

    # -- removal ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.heap)

    def remove_next(self) -> Removal:
        """Discard the node with minimum ``MA`` and update the tree."""
        k, _ = self.heap.pop()
        value = self.coefficients[k]
        if k == 0:
            self._remove_average(value)
        else:
            self._remove_detail(k, value)
        return Removal(node=k, value=value, error_after=self.current_error())

    def _remove_average(self, c: float) -> None:
        if self.m == 1:
            self._single_leaf_error -= c
            return
        for j in range(1, self.m):
            self.max_left[j] -= c
            self.min_left[j] -= c
            self.max_right[j] -= c
            self.min_right[j] -= c
            if j in self.heap:
                self.heap.update(j, self._ma(j))

    def _remove_detail(self, k: int, c: float) -> None:
        m = self.m
        heap = self.heap
        # The removed node's own leaves shift: left -c, right +c.
        self.max_left[k] -= c
        self.min_left[k] -= c
        self.max_right[k] += c
        self.min_right[k] += c

        # Descendants: whole sub-trees shift uniformly (left -c, right +c);
        # every alive descendant's MA must be refreshed (Section 5.1).
        if 2 * k < m:
            stack = [(2 * k, -c), (2 * k + 1, c)]
            while stack:
                j, delta = stack.pop()
                self.max_left[j] += delta
                self.min_left[j] += delta
                self.max_right[j] += delta
                self.min_right[j] += delta
                if j in heap:
                    heap.update(j, self._ma(j))
                child = 2 * j
                if child < m:
                    stack.append((child, delta))
                    stack.append((child + 1, delta))

        # Ancestors: recompute the four quantities bottom-up and refresh MA.
        j = k // 2
        while j >= 1:
            self._recompute_quantities(j)
            if j in heap:
                heap.update(j, self._ma(j))
            j //= 2
        if self.include_average and 0 in heap:
            heap.update(0, self._ma_average())

    def run_to_exhaustion(self) -> GreedyRun:
        """Discard every node; return the ordered removal sequence."""
        initial = self.current_error()
        removals = []
        while len(self.heap):
            removals.append(self.remove_next())
        return GreedyRun(removals=removals, initial_error=initial)


def greedy_abs_order(
    coefficients, initial_errors=None, include_average: bool = True
) -> GreedyRun:
    """Run the greedy engine to exhaustion over one (sub-)tree."""
    tree = GreedyAbsTree(coefficients, initial_errors, include_average)
    return tree.run_to_exhaustion()


def greedy_abs(data, budget: int) -> WaveletSynopsis:
    """Centralized GreedyAbs: best max-abs synopsis within ``budget``.

    Computes the full decomposition, discards greedily until the tree is
    empty, and keeps the best of the last ``budget + 1`` coefficient sets.
    """
    if budget < 0:
        raise InvalidInputError("budget must be non-negative")
    values = np.asarray(data, dtype=np.float64)
    coefficients = haar_transform(values)
    run = greedy_abs_order(coefficients)
    step, error = run.best_cut(budget)
    retained = {r.node: r.value for r in run.removals[step:]}
    return WaveletSynopsis(
        n=int(values.shape[0]),
        coefficients=retained,
        meta={"algorithm": "GreedyAbs", "budget": budget, "max_abs_error": error},
    )
