"""IndirectHaar: answering Problem 1 through the dual DP (Algorithm 2).

The primal problem (budget ``B``, minimize max-abs error) is solved by
binary search over the error bound: each probe runs MinHaarSpace (or its
distributed twin DMHaarSpace — the solver is injected) and compares the
resulting synopsis size against ``B``.

The search brackets are the paper's (Algorithm 2, lines 1-2): the error of
the conventional ``B``-term synopsis above, and the ``(B+1)``-largest
coefficient magnitude below.  Because the solution space is quantized by
``delta``, the upper bracket is re-expanded when quantization makes it
infeasible, and the search also terminates once the bracket shrinks below
one quantum.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
from numpy.typing import ArrayLike

from repro.algos.conventional import conventional_synopsis, largest_coefficient
from repro.algos.minhaarspace import DualSolution, min_haar_space
from repro.exceptions import InfeasibleErrorBound, InvalidInputError
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import haar_transform

__all__ = ["indirect_haar", "indirect_haar_search"]

Solver = Callable[[float], DualSolution]


def indirect_haar_search(
    solver: Solver,
    error_low: float,
    error_high: float,
    budget: int,
    delta: float,
    max_iterations: int = 48,
) -> tuple[DualSolution, int]:
    """Algorithm 2's binary search, decoupled from how probes are solved.

    Returns ``(best_solution, solver_runs)``; the best solution is the one
    with minimum achieved error among all probes of size <= ``budget``.
    """
    if budget < 0:
        raise InvalidInputError("budget must be non-negative")
    if delta <= 0:
        raise InvalidInputError("delta must be strictly positive")

    runs = 0
    best: DualSolution | None = None

    def probe(epsilon: float) -> DualSolution | None:
        nonlocal runs, best
        runs += 1
        try:
            solution = solver(max(epsilon, delta))
        except InfeasibleErrorBound:
            return None
        if solution.size <= budget and (best is None or solution.max_error < best.max_error):
            best = solution
        return solution

    # Quantization may make the nominal upper bracket infeasible: expand.
    e_high = max(error_high, delta)
    expansion_guard = 0
    while expansion_guard < 32:
        solution = probe(e_high)
        if solution is not None and solution.size <= budget:
            break
        e_high *= 2.0
        expansion_guard += 1
    if best is None:
        raise InfeasibleErrorBound(
            "could not find any feasible synopsis within the budget"
        )

    e_low = min(error_low, e_high)
    finished = False
    iterations = 0
    while not finished and iterations < max_iterations and e_high - e_low > delta:
        iterations += 1
        e_mid = (e_high + e_low) / 2.0
        solution = probe(e_mid)
        if solution is None:  # quantization-infeasible: treat as too tight
            e_low = e_mid
            continue
        if solution.size <= budget:
            # Optimality check (lines 9-11): can a strictly smaller error
            # bound still fit the budget?
            achieved = solution.max_error
            tighter = probe(achieved - delta)
            if tighter is None or tighter.size > budget:
                finished = True
            else:
                e_high = min(achieved, e_high - delta)
        else:
            e_low = e_mid

    return best, runs


def indirect_haar(
    data: ArrayLike,
    budget: int,
    delta: float,
    solver: Solver | None = None,
    max_iterations: int = 48,
    restricted: bool = False,
) -> WaveletSynopsis:
    """Centralized IndirectHaar: best max-abs synopsis within ``budget``.

    ``solver`` defaults to centralized MinHaarSpace over ``data``
    (unrestricted, as the paper's footnote 2; ``restricted=True`` swaps in
    the classic restricted search space); the distributed driver passes
    DMHaarSpace instead.
    """
    values = np.asarray(data, dtype=np.float64)
    coefficients = haar_transform(values)

    conventional = conventional_synopsis(values, budget)
    error_high = conventional.max_abs_error(values)
    if error_high == 0.0:  # lint: ignore[KC002]
        conventional.meta.update({"algorithm": "IndirectHaar", "dp_runs": 0})
        return conventional
    error_low = largest_coefficient(coefficients, budget + 1)

    if solver is None:
        if restricted:
            from repro.algos.minhaarspace import min_haar_space_restricted

            solver = lambda epsilon: min_haar_space_restricted(values, epsilon, delta)  # noqa: E731
        else:
            solver = lambda epsilon: min_haar_space(values, epsilon, delta)  # noqa: E731

    best, runs = indirect_haar_search(
        solver, error_low, error_high, budget, delta, max_iterations
    )
    synopsis = best.synopsis
    synopsis.meta.update(
        {
            "algorithm": "IndirectHaar",
            "budget": budget,
            "delta": delta,
            "max_abs_error": best.max_error,
            "dp_runs": runs,
        }
    )
    return synopsis
