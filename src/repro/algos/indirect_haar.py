"""IndirectHaar: answering Problem 1 through the dual DP (Algorithm 2).

The primal problem (budget ``B``, minimize max-abs error) is solved by
binary search over the error bound: each probe runs MinHaarSpace (or its
distributed twin DMHaarSpace — the solver is injected) and compares the
resulting synopsis size against ``B``.

The search brackets are the paper's (Algorithm 2, lines 1-2): the error of
the conventional ``B``-term synopsis above, and the ``(B+1)``-largest
coefficient magnitude below.  Because the solution space is quantized by
``delta``, the upper bracket is re-expanded when quantization makes it
infeasible, and the search also terminates once the bracket shrinks below
one quantum.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
from numpy.typing import ArrayLike

from repro.algos.conventional import conventional_synopsis, largest_coefficient
from repro.algos.minhaarspace import DualSolution, min_haar_space
from repro.exceptions import InfeasibleErrorBound, InvalidInputError
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import haar_transform

__all__ = ["indirect_haar", "indirect_haar_search", "search_resolution"]

Solver = Callable[[float], DualSolution]


def search_resolution(error_high: float, delta: float, n: int, rho: float) -> float:
    """Binary-search step matched to the solver's grid resolution.

    The exact DP resolves error bounds to within ``delta``, so Algorithm 2
    terminates once its bracket shrinks below one quantum.  The
    approximate tier's grid is the coarsened ``delta'`` of
    :func:`~repro.algos.minhaarspace.approx_params` — searching finer
    than that re-solves near-identical coarse DPs for no gain (each one a
    full distributed pass in DIndirectHaar).  The resolution is evaluated
    at the upper bracket, the scale of every epsilon the search can
    probe; the winning synopsis then satisfies ``error <= (1 + rho) *
    (E_exact + resolution)``.
    """
    if rho <= 0:
        return delta
    from repro.algos.minhaarspace import approx_params

    _, coarse = approx_params(max(error_high, delta), delta, n, rho)
    return max(delta, coarse)


def indirect_haar_search(
    solver: Solver,
    error_low: float,
    error_high: float,
    budget: int,
    delta: float,
    max_iterations: int = 48,
) -> tuple[DualSolution, int]:
    """Algorithm 2's binary search, decoupled from how probes are solved.

    Returns ``(best_solution, solver_runs)``; the best solution is the one
    with minimum achieved error among all probes of size <= ``budget``.

    Probes are memoized: re-probing an already-solved ``epsilon`` (the
    optimality check of lines 9-11 frequently lands on one) returns the
    cached :class:`DualSolution` without touching the solver, and any
    probe at or below the tightest bound already known to fail — too big
    for the budget, or quantization-infeasible — is answered from that
    failure by the same monotonicity the bracket updates rely on
    (shrinking ``epsilon`` never shrinks the minimum size).  ``runs``
    counts actual solver invocations, so skipped probes are visible as a
    lower ``dp_runs`` in the synopsis metadata.
    """
    if budget < 0:
        raise InvalidInputError("budget must be non-negative")
    if delta <= 0:
        raise InvalidInputError("delta must be strictly positive")

    runs = 0
    best: DualSolution | None = None
    cache: dict[float, DualSolution | None] = {}
    # Largest epsilon known to fail (over budget or infeasible), with its
    # recorded outcome: every probe at or below it is implied.
    failed_at = -np.inf
    failed_result: DualSolution | None = None

    def probe(epsilon: float) -> DualSolution | None:
        nonlocal runs, best, failed_at, failed_result
        clamped = max(epsilon, delta)
        if clamped in cache:
            return cache[clamped]
        if clamped <= failed_at:
            return failed_result
        runs += 1
        try:
            solution: DualSolution | None = solver(clamped)
        except InfeasibleErrorBound:
            solution = None
        cache[clamped] = solution
        if solution is None or solution.size > budget:
            if clamped > failed_at:
                failed_at = clamped
                failed_result = solution
        elif best is None or solution.max_error < best.max_error:
            best = solution
        return solution

    # Quantization may make the nominal upper bracket infeasible: expand.
    e_high = max(error_high, delta)
    expansion_guard = 0
    while expansion_guard < 32:
        solution = probe(e_high)
        if solution is not None and solution.size <= budget:
            break
        e_high *= 2.0
        expansion_guard += 1
    if best is None:
        raise InfeasibleErrorBound(
            "could not find any feasible synopsis within the budget"
        )

    e_low = min(error_low, e_high)
    finished = False
    iterations = 0
    while not finished and iterations < max_iterations and e_high - e_low > delta:
        iterations += 1
        e_mid = (e_high + e_low) / 2.0
        solution = probe(e_mid)
        if solution is None:  # quantization-infeasible: treat as too tight
            e_low = e_mid
            continue
        if solution.size <= budget:
            achieved = solution.max_error
            if achieved > e_mid:
                # Only the approximate tier lands here: the achieved error
                # may exceed the probe's bound by up to its (1 + rho)
                # inflation, so the lines 9-11 shortcut below (which jumps
                # the bracket to the achieved error) would *raise* e_high.
                # Bisect on the bound itself instead.
                e_high = e_mid
                continue
            # Optimality check (lines 9-11): can a strictly smaller error
            # bound still fit the budget?
            tighter = probe(achieved - delta)
            if tighter is None or tighter.size > budget:
                finished = True
            else:
                e_high = min(achieved, e_high - delta)
        else:
            e_low = e_mid

    return best, runs


def indirect_haar(
    data: ArrayLike,
    budget: int,
    delta: float,
    solver: Solver | None = None,
    max_iterations: int = 48,
    restricted: bool = False,
    rho: float = 0.0,
    kernel: str = "auto",
) -> WaveletSynopsis:
    """Centralized IndirectHaar: best max-abs synopsis within ``budget``.

    ``solver`` defaults to centralized MinHaarSpace over ``data``
    (unrestricted, as the paper's footnote 2; ``restricted=True`` swaps in
    the classic restricted search space); the distributed driver passes
    DMHaarSpace instead.

    ``rho > 0`` answers every probe with the approximate DP tier
    (:func:`repro.algos.minhaarspace.approx_params`): the synopsis still
    respects ``budget``, and because each probe at bound ``e`` achieves
    error at most ``(1 + rho) * e``, the search's winner has error at
    most ``(1 + rho) * (E_exact + delta)`` where ``E_exact`` is the
    exact search's result.  ``kernel`` picks a combine kernel from
    :data:`repro.algos.minhaarspace.DP_KERNELS`; both are ignored when an
    explicit ``solver`` is supplied.
    """
    values = np.asarray(data, dtype=np.float64)
    coefficients = haar_transform(values)

    conventional = conventional_synopsis(values, budget)
    error_high = conventional.max_abs_error(values)
    if error_high == 0.0:  # lint: ignore[KC002]
        conventional.meta.update({"algorithm": "IndirectHaar", "dp_runs": 0, "rho": rho})
        return conventional
    error_low = largest_coefficient(coefficients, budget + 1)

    if solver is None:
        if restricted:
            from repro.algos.minhaarspace import min_haar_space_restricted

            solver = lambda epsilon: min_haar_space_restricted(  # noqa: E731
                values, epsilon, delta, rho=rho, kernel=kernel
            )
        else:
            solver = lambda epsilon: min_haar_space(  # noqa: E731
                values, epsilon, delta, rho=rho, kernel=kernel
            )

    best, runs = indirect_haar_search(
        solver,
        error_low,
        error_high,
        budget,
        search_resolution(error_high, delta, int(values.shape[0]), rho),
        max_iterations,
    )
    synopsis = best.synopsis
    synopsis.meta.update(
        {
            "algorithm": "IndirectHaar",
            "budget": budget,
            "delta": delta,
            "rho": rho,
            "max_abs_error": best.max_error,
            "dp_runs": runs,
        }
    )
    return synopsis
