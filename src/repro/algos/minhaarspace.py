"""MinHaarSpace: the dual-problem DP (Karras/Sacharidis/Mamoulis, KDD'07).

Solves **Problem 2**: given an error bound ``epsilon``, build an
*unrestricted* wavelet synopsis (coefficient values are free, not tied to
the Haar coefficients) with ``max_abs <= epsilon`` and as few non-zero
entries as possible.

The DP walks the error tree bottom-up.  For every node ``j`` it builds an
*M-row* ``M[j]``: one entry per quantized *incoming value* ``v`` (the
partial reconstruction accumulated along the path of ancestors), holding

* the minimum number of non-zero coefficients needed inside ``T_j``,
* the achieved maximum absolute error in the scope of ``T_j``, and
* the traceback choice (which incoming value the left child receives).

Incoming values live on the uniform grid ``v = k * delta``; ``delta`` is
the user knob trading solution quality for time/space, exactly as in the
paper (Figures 6-7).  A node's feasible incoming-value domain is the
``±epsilon`` band around its subtree mean, intersected with the grid, so
each row has ``O(epsilon / delta)`` entries — the quantity that also
bounds the communication of the distributed version (Section 4).

The row algebra is deliberately *compositional*: a data value is a row, a
coefficient node combines its two child rows, and the same ``combine`` is
reused verbatim by DMHaarSpace where child rows arrive from a previous
distributed layer instead of from recursion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import InfeasibleErrorBound, InvalidInputError
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import is_power_of_two

__all__ = [
    "MRow",
    "DualSolution",
    "effective_delta",
    "leaf_row",
    "combine_rows",
    "combine_rows_restricted",
    "compute_subtree_rows",
    "compute_subtree_rows_restricted",
    "traceback_subtree",
    "finalize_root",
    "min_haar_space",
    "min_haar_space_restricted",
]


def effective_delta(epsilon: float, delta: float, n: int) -> float:
    """Clamp ``delta`` so the quantized domains survive the tree depth.

    Combining two child rows can lose one grid point of domain width when
    the children's bounds have odd parity, so after ``log2 N`` levels a
    domain of fewer than ``~log2 N`` points can become empty even though
    real-valued solutions exist.  The paper hits the same wall ("the
    algorithm could not run ... as these values were higher than the space
    they need to quantize", Section 6.2); we refine ``delta`` just enough
    that every row keeps at least ``log2 N + 2`` entries, which also caps
    row width — and with it runtime and communication — at
    ``O(max(epsilon/delta, log N))``.
    """
    if delta <= 0:
        raise InvalidInputError("delta must be strictly positive")
    if epsilon <= 0:
        return delta
    depth = max(n.bit_length() - 1, 1)
    ceiling = 2.0 * epsilon / (depth + 2)
    return min(delta, ceiling) if ceiling > 0 else delta

#: Tie-break weight: rows minimize coefficient count first, then achieved
#: error.  Scores are ``count * weight + error`` with ``weight > epsilon``.
def _lexicographic_weight(epsilon: float, delta: float) -> float:
    return 2.0 * epsilon + delta + 1.0


@dataclass
class MRow:
    """One DP row: per-incoming-grid-value minimum cost inside a sub-tree.

    ``start`` is the grid index of the first entry: entry ``i`` describes
    incoming value ``(start + i) * delta``.  ``choices[i]`` is the grid
    index handed to the *left* child (``-1`` for data-leaf rows).
    """

    start: int
    counts: np.ndarray
    errors: np.ndarray
    choices: np.ndarray

    def __len__(self) -> int:
        return int(self.counts.shape[0])

    @property
    def end(self) -> int:
        """Grid index of the last entry (inclusive)."""
        return self.start + len(self) - 1

    def entry(self, grid_index: int) -> tuple[int, float]:
        """Return ``(count, error)`` at an absolute grid index."""
        offset = grid_index - self.start
        if not 0 <= offset < len(self):
            raise InvalidInputError(f"grid index {grid_index} outside row domain")
        return int(self.counts[offset]), float(self.errors[offset])

    def serialized_size(self) -> int:
        """Modeled shuffle size: the O(epsilon/delta) cost of Section 4."""
        return 8 + 4 * len(self) + 8 * len(self) + 4 * len(self)


@dataclass
class DualSolution:
    """Output of a Problem-2 solve."""

    size: int
    max_error: float
    synopsis: WaveletSynopsis


def leaf_row(value: float, epsilon: float, delta: float) -> MRow:
    """Row of a data leaf: zero cost wherever ``|v - value| <= epsilon``."""
    if epsilon < 0:
        raise InvalidInputError("epsilon must be non-negative")
    if delta <= 0:
        raise InvalidInputError("delta must be strictly positive")
    start = math.ceil((value - epsilon) / delta - 1e-12)
    stop = math.floor((value + epsilon) / delta + 1e-12)
    if stop < start:
        raise InfeasibleErrorBound(
            f"no grid point within ±{epsilon} of {value} at quantization {delta}"
        )
    grid = np.arange(start, stop + 1, dtype=np.int64)
    errors = np.abs(grid * delta - value)
    return MRow(
        start=start,
        counts=np.zeros(len(grid), dtype=np.int32),
        errors=errors.astype(np.float64),
        choices=np.full(len(grid), -1, dtype=np.int64),
    )


def combine_rows(left: MRow, right: MRow, epsilon: float, delta: float) -> MRow:
    """Combine two child rows into their parent coefficient node's row.

    For incoming ``v``, the node may assign a value ``z`` (cost 1 when
    ``z != 0``), passing ``v + z`` to the left child and ``v - z`` to the
    right.  On the grid this means choosing ``vl`` in the left domain with
    ``vr = 2v - vl`` in the right domain; ``z = 0`` corresponds to
    ``vl == v``.  The row minimizes count, then achieved error.
    """
    weight = _lexicographic_weight(epsilon, delta)
    v_start = math.ceil((left.start + right.start) / 2)
    v_stop = math.floor((left.end + right.end) / 2)
    if v_stop < v_start:
        raise InfeasibleErrorBound(
            "empty combined domain (quantization too coarse for this epsilon)"
        )

    width = v_stop - v_start + 1
    counts = np.empty(width, dtype=np.int32)
    errors = np.empty(width, dtype=np.float64)
    choices = np.empty(width, dtype=np.int64)

    for offset, v in enumerate(range(v_start, v_stop + 1)):
        vl_lo = max(left.start, 2 * v - right.end)
        vl_hi = min(left.end, 2 * v - right.start)
        if vl_hi < vl_lo:
            # No pairing for this v; mark as infeasible (pruned below).
            counts[offset] = np.iinfo(np.int32).max // 2
            errors[offset] = np.inf
            choices[offset] = -1
            continue
        lseg_counts = left.counts[vl_lo - left.start : vl_hi - left.start + 1]
        lseg_errors = left.errors[vl_lo - left.start : vl_hi - left.start + 1]
        # As vl ascends, vr = 2v - vl descends through the right row.
        r_hi = 2 * v - vl_lo
        r_lo = 2 * v - vl_hi
        rseg_counts = right.counts[r_lo - right.start : r_hi - right.start + 1][::-1]
        rseg_errors = right.errors[r_lo - right.start : r_hi - right.start + 1][::-1]

        total_counts = lseg_counts.astype(np.int64) + rseg_counts + 1
        if vl_lo <= v <= vl_hi:
            total_counts[v - vl_lo] -= 1  # z == 0 stores nothing
        total_errors = np.maximum(lseg_errors, rseg_errors)
        scores = total_counts * weight + total_errors
        best = int(np.argmin(scores))
        counts[offset] = total_counts[best]
        errors[offset] = total_errors[best]
        choices[offset] = vl_lo + best

    feasible = np.isfinite(errors)
    if not feasible.any():
        raise InfeasibleErrorBound("no feasible incoming value for combined row")
    # Trim infeasible fringe entries (can only occur at the borders).
    first = int(np.argmax(feasible))
    last = width - 1 - int(np.argmax(feasible[::-1]))
    return MRow(
        start=v_start + first,
        counts=counts[first : last + 1],
        errors=errors[first : last + 1],
        choices=choices[first : last + 1],
    )


def combine_rows_restricted(
    left: MRow, right: MRow, z_offset: int, epsilon: float, delta: float
) -> MRow:
    """Combine child rows when the node may only keep its own coefficient.

    The *restricted* variant of the DP: at each node the choice is binary —
    drop the coefficient (``z = 0``) or keep its (grid-snapped) Haar value
    ``z = z_offset * delta``.  This is the classic restricted-synopsis
    search space; with the same grid it can never use fewer coefficients
    than the unrestricted :func:`combine_rows` (tested).
    """
    candidates: list[tuple[int, int]] = [(0, 0)]  # (z grid offset, stored count)
    if z_offset != 0:
        candidates.append((z_offset, 1))

    starts = []
    ends = []
    for z, _ in candidates:
        # v feasible for this z when v+z in left domain and v-z in right.
        starts.append(max(left.start - z, right.start + z))
        ends.append(min(left.end - z, right.end + z))
    v_start = min(starts)
    v_stop = max(ends)
    if v_stop < v_start:
        raise InfeasibleErrorBound(
            "empty restricted domain (quantization too coarse for this epsilon)"
        )

    weight = _lexicographic_weight(epsilon, delta)
    width = v_stop - v_start + 1
    counts = np.full(width, np.iinfo(np.int32).max // 2, dtype=np.int32)
    errors = np.full(width, np.inf, dtype=np.float64)
    choices = np.full(width, -1, dtype=np.int64)
    scores = np.full(width, np.inf, dtype=np.float64)

    for (z, stored), lo, hi in zip(candidates, starts, ends):
        if hi < lo:
            continue
        span = slice(lo - v_start, hi - v_start + 1)
        lseg = slice(lo + z - left.start, hi + z - left.start + 1)
        rseg = slice(lo - z - right.start, hi - z - right.start + 1)
        cand_counts = left.counts[lseg].astype(np.int64) + right.counts[rseg] + stored
        cand_errors = np.maximum(left.errors[lseg], right.errors[rseg])
        cand_scores = cand_counts * weight + cand_errors
        better = cand_scores < scores[span]
        view = np.arange(lo, hi + 1)
        counts[span] = np.where(better, cand_counts, counts[span])
        errors[span] = np.where(better, cand_errors, errors[span])
        choices[span] = np.where(better, view + z, choices[span])
        scores[span] = np.where(better, cand_scores, scores[span])

    feasible = np.isfinite(errors)
    if not feasible.any():
        raise InfeasibleErrorBound("no feasible incoming value for restricted row")
    first = int(np.argmax(feasible))
    last = width - 1 - int(np.argmax(feasible[::-1]))
    trimmed = slice(first, last + 1)
    if not np.isfinite(errors[trimmed]).all():
        # Restricted domains can be non-contiguous (union of two bands);
        # keep infeasible holes explicit so parents skip them.
        pass
    return MRow(
        start=v_start + first,
        counts=counts[trimmed],
        errors=errors[trimmed],
        choices=choices[trimmed],
    )


def compute_subtree_rows_restricted(
    leaf_rows: list[MRow], coefficients, epsilon: float, delta: float
) -> list[MRow | None]:
    """Restricted-variant DP over one sub-tree.

    ``coefficients`` is the local coefficient array (slot ``j`` for local
    node ``j``; slot 0 ignored), whose values are snapped to the grid.
    """
    m = len(leaf_rows)
    if not is_power_of_two(m):
        raise InvalidInputError("leaf count must be a power of two")
    if m == 1:
        return [leaf_rows[0]]

    def snapped(node: int) -> int:
        return int(round(float(coefficients[node]) / delta))

    rows: list[MRow | None] = [None] * m
    for j in range(m - 1, m // 2 - 1, -1):
        rows[j] = combine_rows_restricted(
            leaf_rows[2 * j - m], leaf_rows[2 * j + 1 - m], snapped(j), epsilon, delta
        )
    for j in range(m // 2 - 1, 0, -1):
        rows[j] = combine_rows_restricted(
            rows[2 * j], rows[2 * j + 1], snapped(j), epsilon, delta
        )
    return rows


def compute_subtree_rows(leaf_rows: list[MRow], epsilon: float, delta: float) -> list[MRow | None]:
    """Run the DP bottom-up over a complete sub-tree of ``m`` leaves.

    ``leaf_rows[i]`` is the row of the ``i``-th leaf — a data leaf
    (:func:`leaf_row`) at the bottom layer, or a lower sub-tree's root row
    in the distributed framework.  Returns ``rows`` indexed by local node
    (``rows[0]`` unused, ``rows[1]`` is the local root's M-row).
    """
    m = len(leaf_rows)
    if not is_power_of_two(m):
        raise InvalidInputError("leaf count must be a power of two")
    if m == 1:
        # Degenerate sub-tree: no internal coefficient nodes.
        return [leaf_rows[0]]
    rows: list[MRow | None] = [None] * m
    for j in range(m - 1, m // 2 - 1, -1):
        rows[j] = combine_rows(leaf_rows[2 * j - m], leaf_rows[2 * j + 1 - m], epsilon, delta)
    for j in range(m // 2 - 1, 0, -1):
        rows[j] = combine_rows(rows[2 * j], rows[2 * j + 1], epsilon, delta)
    return rows


def traceback_subtree(
    rows: list[MRow | None], root_incoming: int, delta: float
) -> tuple[dict[int, float], list[int]]:
    """Walk a sub-tree's rows top-down from a chosen incoming value.

    Returns ``(assignments, leaf_incomings)``: the non-zero coefficient
    values selected inside the sub-tree (keyed by *local* node index) and
    the incoming grid index delivered to each of the ``m`` leaves — which
    the distributed framework forwards to the next layer down.
    """
    m = len(rows)
    if m == 1:
        return {}, [root_incoming]
    assignments: dict[int, float] = {}
    leaf_incomings = [0] * m
    stack = [(1, root_incoming)]
    while stack:
        node, v = stack.pop()
        row = rows[node]
        vl = int(row.choices[v - row.start])
        vr = 2 * v - vl
        if vl != v:
            assignments[node] = (vl - v) * delta
        if 2 * node < m:
            stack.append((2 * node, vl))
            stack.append((2 * node + 1, vr))
        else:
            leaf_incomings[2 * node - m] = vl
            leaf_incomings[2 * node + 1 - m] = vr
    return assignments, leaf_incomings


def finalize_root(row: MRow, epsilon: float, delta: float) -> tuple[int, float, int]:
    """Choose the overall-average coefficient ``c_0``.

    The incoming value of the top detail node equals the value assigned at
    ``c_0`` (zero if ``c_0`` is dropped).  Returns
    ``(total_count, achieved_error, chosen_grid_index)``.
    """
    weight = _lexicographic_weight(epsilon, delta)
    counts = row.counts.astype(np.int64) + 1
    if row.start <= 0 <= row.end:
        counts[0 - row.start] -= 1  # dropping c_0 entirely
    scores = counts * weight + row.errors
    best = int(np.argmin(scores))
    return int(counts[best]), float(row.errors[best]), row.start + best


def finalize_root_restricted(
    row: MRow, average_offset: int, epsilon: float, delta: float
) -> tuple[int, float, int]:
    """Restricted finalize: ``c_0`` is either dropped or its snapped value."""
    weight = _lexicographic_weight(epsilon, delta)
    best: tuple[float, int, float, int] | None = None
    for choice, stored in ((0, 0), (average_offset, 1)):
        if not row.start <= choice <= row.end:
            continue
        count = int(row.counts[choice - row.start]) + stored
        error = float(row.errors[choice - row.start])
        if not np.isfinite(error):
            continue
        score = count * weight + error
        if best is None or score < best[0]:
            best = (score, count, error, choice)
    if best is None:
        raise InfeasibleErrorBound("no feasible restricted root choice")
    return best[1], best[2], best[3]


def min_haar_space_restricted(data, epsilon: float, delta: float) -> DualSolution:
    """Restricted MinHaarSpace: minimum-size synopsis with error <= epsilon,
    retaining only (grid-snapped) original Haar coefficient values.

    Same dual problem as :func:`min_haar_space` over the classic restricted
    search space; needs at least as many coefficients as the unrestricted
    solver for the same bound (tested).  Demonstrates that the Section 4
    framework's row algebra is not specific to one DP.
    """
    from repro.wavelet.transform import haar_transform

    values = np.asarray(data, dtype=np.float64)
    if values.ndim != 1 or not is_power_of_two(values.shape[0]):
        raise InvalidInputError("data length must be a power of two")
    n = int(values.shape[0])
    delta = effective_delta(epsilon, delta, n)
    coefficients = haar_transform(values)

    leaves = [leaf_row(v, epsilon, delta) for v in values]
    rows = compute_subtree_rows_restricted(leaves, coefficients, epsilon, delta)
    root_row = rows[1] if n > 1 else rows[0]
    average_offset = int(round(float(coefficients[0]) / delta))
    size, error, chosen = finalize_root_restricted(root_row, average_offset, epsilon, delta)

    retained: dict[int, float] = {}
    if chosen != 0:
        retained[0] = chosen * delta
    if n > 1:
        assignments, _ = traceback_subtree(rows, chosen, delta)
        retained.update(assignments)

    synopsis = WaveletSynopsis(
        n=n,
        coefficients=retained,
        meta={
            "algorithm": "MinHaarSpaceRestricted",
            "epsilon": epsilon,
            "delta": delta,
            "max_abs_error": error,
        },
    )
    return DualSolution(size=size, max_error=error, synopsis=synopsis)


def min_haar_space(data, epsilon: float, delta: float) -> DualSolution:
    """Centralized MinHaarSpace: minimum-size synopsis with error <= epsilon.

    Raises :class:`InfeasibleErrorBound` when the quantized search space
    admits no solution (callers such as IndirectHaar treat this as
    "epsilon too small" and search upward).
    """
    values = np.asarray(data, dtype=np.float64)
    if values.ndim != 1 or not is_power_of_two(values.shape[0]):
        raise InvalidInputError("data length must be a power of two")
    n = int(values.shape[0])
    delta = effective_delta(epsilon, delta, n)

    leaves = [leaf_row(v, epsilon, delta) for v in values]
    rows = compute_subtree_rows(leaves, epsilon, delta)
    root_row = rows[1] if n > 1 else rows[0]
    size, error, chosen = finalize_root(root_row, epsilon, delta)

    coefficients: dict[int, float] = {}
    if chosen != 0:
        coefficients[0] = chosen * delta
    if n > 1:
        assignments, _ = traceback_subtree(rows, chosen, delta)
        coefficients.update(assignments)

    synopsis = WaveletSynopsis(
        n=n,
        coefficients=coefficients,
        meta={
            "algorithm": "MinHaarSpace",
            "epsilon": epsilon,
            "delta": delta,
            "max_abs_error": error,
        },
    )
    return DualSolution(size=size, max_error=error, synopsis=synopsis)
