"""MinHaarSpace: the dual-problem DP (Karras/Sacharidis/Mamoulis, KDD'07).

Solves **Problem 2**: given an error bound ``epsilon``, build an
*unrestricted* wavelet synopsis (coefficient values are free, not tied to
the Haar coefficients) with ``max_abs <= epsilon`` and as few non-zero
entries as possible.

The DP walks the error tree bottom-up.  For every node ``j`` it builds an
*M-row* ``M[j]``: one entry per quantized *incoming value* ``v`` (the
partial reconstruction accumulated along the path of ancestors), holding

* the minimum number of non-zero coefficients needed inside ``T_j``,
* the achieved maximum absolute error in the scope of ``T_j``, and
* the traceback choice (which incoming value the left child receives).

Incoming values live on the uniform grid ``v = k * delta``; ``delta`` is
the user knob trading solution quality for time/space, exactly as in the
paper (Figures 6-7).  A node's feasible incoming-value domain is the
``±epsilon`` band around its subtree mean, intersected with the grid, so
each row has ``O(epsilon / delta)`` entries — the quantity that also
bounds the communication of the distributed version (Section 4).

The row algebra is deliberately *compositional*: a data value is a row, a
coefficient node combines its two child rows, and the same ``combine`` is
reused verbatim by DMHaarSpace where child rows arrive from a previous
distributed layer instead of from recursion.
"""

from __future__ import annotations

import math
import os
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray
from numpy.lib.stride_tricks import sliding_window_view

from repro.analysis.sanitizer import current as sanitizer_current
from repro.exceptions import InfeasibleErrorBound, InvalidInputError
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import is_power_of_two

__all__ = [
    "MRow",
    "DualSolution",
    "DP_KERNELS",
    "KernelSpec",
    "approx_params",
    "effective_delta",
    "leaf_row",
    "leaf_rows",
    "combine_rows",
    "combine_rows_scalar",
    "combine_rows_restricted",
    "combine_rows_restricted_scalar",
    "compute_subtree_rows",
    "compute_subtree_rows_restricted",
    "resolve_kernel",
    "traceback_subtree",
    "finalize_root",
    "min_haar_space",
    "min_haar_space_restricted",
]

#: Count stored at infeasible row entries: far above any real count, and
#: small enough that the windowed kernel's int32 candidate sums — worst
#: case two sentinels plus one — stay below ``int32`` max.
INFEASIBLE_COUNT = np.iinfo(np.int32).max // 4

#: Candidate-matrix size (|v domain| * |left row|) below which the scalar
#: per-``v`` loop beats the windowed kernel: numpy's window setup costs a
#: handful of array allocations, which only amortize once the batched
#: reduction covers a few hundred cells (tuned with
#: ``benchmarks/bench_dp_kernel.py``; see docs/ALGORITHMS.md).
SCALAR_FALLBACK_CELLS = 256

#: Cells per block of the windowed kernel's ``(v, vl)`` candidate matrix.
#: Wide rows are processed in chunks this size so the three scratch
#: matrices (int32 counts, float64 errors, float64 scores — ~640 KB
#: total) stay cache-resident; one full-width pass at fine quantizations
#: is memory-bound and measurably slower (benchmarks/bench_dp_kernel.py).
_MAX_BLOCK_CELLS = 1 << 15


def effective_delta(epsilon: float, delta: float, n: int) -> float:
    """Clamp ``delta`` so the quantized domains survive the tree depth.

    Combining two child rows can lose one grid point of domain width when
    the children's bounds have odd parity, so after ``log2 N`` levels a
    domain of fewer than ``~log2 N`` points can become empty even though
    real-valued solutions exist.  The paper hits the same wall ("the
    algorithm could not run ... as these values were higher than the space
    they need to quantize", Section 6.2); we refine ``delta`` just enough
    that every row keeps at least ``log2 N + 2`` entries, which also caps
    row width — and with it runtime and communication — at
    ``O(max(epsilon/delta, log N))``.
    """
    if delta <= 0:
        raise InvalidInputError("delta must be strictly positive")
    if epsilon <= 0:
        return delta
    depth = max(n.bit_length() - 1, 1)
    ceiling = 2.0 * epsilon / (depth + 2)
    return min(delta, ceiling) if ceiling > 0 else delta


def approx_params(
    epsilon: float, delta: float, n: int, rho: float = 0.0
) -> tuple[float, float]:
    """DP parameters ``(epsilon_dp, delta_dp)`` of the ``rho``-approximate tier.

    The approximate tier trades a bounded error inflation for narrower
    M-rows (Guha-style synopsis-space coarsening): the DP runs with the
    inflated bound ``epsilon_dp = (1 + rho) * epsilon`` on the coarsened
    grid ``delta_dp = 2 * rho * epsilon / levels`` with ``levels =
    log2(N) + 1`` (one snap at ``c_0`` plus one per combine level).

    Guarantee (asserted by the differential tests): any solution of the
    exact DP at ``(epsilon, delta)`` maps onto the coarse grid by
    snapping incoming values top-down — each of the ``levels`` snaps
    drifts the reconstruction by at most ``delta_dp / 2``, zero
    coefficients stay zero, so the mapped solution has the same count
    and error ``<= epsilon + levels * delta_dp / 2 = (1 + rho) *
    epsilon``.  The approximate DP therefore returns

    * ``size <= size`` of the exact DP at ``(epsilon, delta)``, and
    * ``max_error <= (1 + rho) * epsilon``

    while every M-row shrinks to ``O((1 + rho) * levels / rho)`` entries
    — independent of ``epsilon / delta``.  When the requested grid is
    already at least that coarse (``delta_dp <= delta'``) coarsening
    cannot help and the exact parameters come back unchanged, so
    ``rho = 0`` is bit-identical to the exact path by construction.
    """
    if rho < 0:
        raise InvalidInputError("rho must be non-negative")
    base = effective_delta(epsilon, delta, n)
    if rho == 0 or epsilon <= 0:
        return epsilon, base
    levels = max(n.bit_length() - 1, 1) + 1
    coarse = 2.0 * rho * epsilon / levels
    if coarse <= base:
        return epsilon, base
    epsilon_dp = (1.0 + rho) * epsilon
    return epsilon_dp, effective_delta(epsilon_dp, coarse, n)

#: Tie-break weight: rows minimize coefficient count first, then achieved
#: error.  Scores are ``count * weight + error`` with ``weight > epsilon``.
def _lexicographic_weight(epsilon: float, delta: float) -> float:
    return 2.0 * epsilon + delta + 1.0


@dataclass
class MRow:
    """One DP row: per-incoming-grid-value minimum cost inside a sub-tree.

    ``start`` is the grid index of the first entry: entry ``i`` describes
    incoming value ``(start + i) * delta``.  ``choices[i]`` is the grid
    index handed to the *left* child (``-1`` for data-leaf rows).
    """

    start: int
    counts: np.ndarray
    errors: np.ndarray
    choices: np.ndarray

    def __len__(self) -> int:
        return int(self.counts.shape[0])

    @property
    def end(self) -> int:
        """Grid index of the last entry (inclusive)."""
        return self.start + len(self) - 1

    def entry(self, grid_index: int) -> tuple[int, float]:
        """Return ``(count, error)`` at an absolute grid index."""
        offset = grid_index - self.start
        if not 0 <= offset < len(self):
            raise InvalidInputError(f"grid index {grid_index} outside row domain")
        return int(self.counts[offset]), float(self.errors[offset])

    def serialized_size(self) -> int:
        """Modeled shuffle size: the O(epsilon/delta) cost of Section 4."""
        return MRow.sized(len(self))

    @staticmethod
    def sized(entries: int) -> int:
        """Modeled serialized bytes of a row with ``entries`` grid points.

        The closed form the Eq. 6 bound checker
        (:mod:`repro.observe.bounds`) uses to predict shuffle volume
        without building rows; keeping it next to ``serialized_size``
        means the prediction and the measurement share one definition.
        """
        return 8 + 4 * entries + 8 * entries + 4 * entries


@dataclass
class DualSolution:
    """Output of a Problem-2 solve.

    ``epsilon`` is the error bound the solve was asked for — carried on
    the solution itself so callers that probe many bounds (the binary
    search of IndirectHaar) can re-run the winning probe without keeping
    an external solution-to-epsilon map.
    """

    size: int
    max_error: float
    synopsis: WaveletSynopsis
    epsilon: float | None = None


#: Child-row entry count below which thread-pool dispatch of a level's
#: sibling combines costs more than the combines themselves (a task
#: submission is ~an empty numpy call; a windowed combine only dwarfs it
#: once rows reach a few hundred entries — benchmarks/bench_dp_kernel.py).
PARALLEL_MIN_ENTRIES = 256


@dataclass(frozen=True)
class KernelSpec:
    """One entry of the DP combine-kernel registry.

    ``force`` pins the per-combine kernel (``"scalar"`` /
    ``"windowed"``; ``None`` keeps the cell-count dispatch), and
    ``parallel`` runs each tree level's independent sibling combines on
    a thread pool — the heavy argmin windows release the GIL, so sibling
    sub-trees overlap on real cores while results are collected in
    deterministic index order (``Executor.map``, never completion
    order).  Every spec is bit-identical to every other: the registry
    only trades time, never output.
    """

    name: str
    force: str | None = None
    parallel: bool = False
    workers: int | None = None

    def resolved_workers(self) -> int:
        if self.workers is not None:
            return max(self.workers, 1)
        return max(2, min(8, os.cpu_count() or 1))


#: The combine-kernel registry (the runtime/shuffle registry pattern):
#: ``auto`` is the production dispatcher, ``scalar``/``windowed`` pin one
#: kernel (differential tests, benchmarks), ``parallel`` adds the
#: thread-pool blocked path for wide rows.  All entries are bit-identical.
DP_KERNELS: dict[str, KernelSpec] = {
    "auto": KernelSpec("auto"),
    "scalar": KernelSpec("scalar", force="scalar"),
    "windowed": KernelSpec("windowed", force="windowed"),
    "parallel": KernelSpec("parallel", parallel=True),
}


def resolve_kernel(kernel: str | KernelSpec) -> KernelSpec:
    """Look up a kernel by registry name (specs pass through unchanged)."""
    if isinstance(kernel, KernelSpec):
        return kernel
    spec = DP_KERNELS.get(kernel)
    if spec is None:
        raise InvalidInputError(
            f"unknown DP kernel {kernel!r}; choose one of {sorted(DP_KERNELS)}"
        )
    return spec


def leaf_row(value: float, epsilon: float, delta: float) -> MRow:
    """Row of a data leaf: zero cost wherever ``|v - value| <= epsilon``."""
    return leaf_rows([value], epsilon, delta)[0]


def leaf_rows(values: ArrayLike, epsilon: float, delta: float) -> list[MRow]:
    """Rows of a whole batch of data leaves (one :func:`leaf_row` each).

    The grid bounds of all rows are computed in one vectorized pass and a
    single shared index ramp serves every row's error column — the
    batched form the sub-tree map tasks use, where per-leaf Python setup
    used to dominate the bottom DP layer.
    """
    if epsilon < 0:
        raise InvalidInputError("epsilon must be non-negative")
    if delta <= 0:
        raise InvalidInputError("delta must be strictly positive")
    batch = np.asarray(values, dtype=np.float64)
    starts = np.ceil((batch - epsilon) / delta - 1e-12).astype(np.int64)
    stops = np.floor((batch + epsilon) / delta + 1e-12).astype(np.int64)
    infeasible = stops < starts
    if infeasible.any():
        value = float(batch[int(np.argmax(infeasible))])
        raise InfeasibleErrorBound(
            f"no grid point within ±{epsilon} of {value} at quantization {delta}"
        )
    widths = stops - starts + 1
    ramp = np.arange(int(widths.max()) if len(batch) else 0, dtype=np.int64)
    rows = []
    for value, start, width in zip(batch.tolist(), starts.tolist(), widths.tolist()):
        grid = start + ramp[:width]
        rows.append(
            MRow(
                start=start,
                counts=np.zeros(width, dtype=np.int32),
                errors=np.abs(grid * delta - value),
                choices=np.full(width, -1, dtype=np.int64),
            )
        )
    return rows


def _build_row(
    v_start: int,
    counts: NDArray[np.int64],
    errors: NDArray[np.float64],
    choices: NDArray[np.int64],
    infeasible_message: str,
) -> MRow:
    """Finish a combined row: canonicalize infeasible entries and trim.

    Entries whose error is non-finite carry no usable pairing; both the
    scalar and windowed kernels funnel through here so infeasible entries
    are represented identically (``INFEASIBLE_COUNT`` / ``inf`` / ``-1``)
    regardless of which kernel produced them.  Fringe infeasibility is
    trimmed; interior holes (non-contiguous restricted domains) stay
    explicit so parents skip them.
    """
    feasible = np.isfinite(errors)
    if not feasible.any():
        raise InfeasibleErrorBound(infeasible_message)
    counts = np.where(feasible, counts, INFEASIBLE_COUNT).astype(np.int32)
    choices = np.where(feasible, choices, -1)
    first = int(np.argmax(feasible))
    last = len(feasible) - 1 - int(np.argmax(feasible[::-1]))
    return MRow(
        start=v_start + first,
        counts=counts[first : last + 1],
        errors=errors[first : last + 1],
        choices=choices[first : last + 1],
    )


def _combined_domain(left: MRow, right: MRow) -> tuple[int, int]:
    v_start = math.ceil((left.start + right.start) / 2)
    v_stop = math.floor((left.end + right.end) / 2)
    if v_stop < v_start:
        raise InfeasibleErrorBound(
            "empty combined domain (quantization too coarse for this epsilon)"
        )
    return v_start, v_stop


def combine_rows(
    left: MRow,
    right: MRow,
    epsilon: float,
    delta: float,
    kernel: str | KernelSpec = "auto",
) -> MRow:
    """Combine two child rows into their parent coefficient node's row.

    For incoming ``v``, the node may assign a value ``z`` (cost 1 when
    ``z != 0``), passing ``v + z`` to the left child and ``v - z`` to the
    right.  On the grid this means choosing ``vl`` in the left domain with
    ``vr = 2v - vl`` in the right domain; ``z = 0`` corresponds to
    ``vl == v``.  The row minimizes count, then achieved error.

    Dispatches between two kernels with identical results (tested
    entry-for-entry): the windowed batch kernel for real rows, and the
    per-``v`` scalar loop for tiny rows where the batch setup overhead
    loses (:data:`SCALAR_FALLBACK_CELLS`).  A :data:`DP_KERNELS` entry
    (or spec) pins the choice instead.
    """
    spec = resolve_kernel(kernel)
    v_start, v_stop = _combined_domain(left, right)
    if spec.force == "scalar":
        chosen = _combine_kernel_scalar
    elif spec.force == "windowed":
        chosen = _combine_kernel_windowed
    elif (v_stop - v_start + 1) * len(left) <= SCALAR_FALLBACK_CELLS:
        chosen = _combine_kernel_scalar
    else:
        chosen = _combine_kernel_windowed
    counts, errors, choices = chosen(left, right, v_start, v_stop, epsilon, delta)
    return _build_row(
        v_start, counts, errors, choices, "no feasible incoming value for combined row"
    )


def combine_rows_scalar(left: MRow, right: MRow, epsilon: float, delta: float) -> MRow:
    """The per-``v`` scalar combine, kept as the differential-test and
    benchmark reference for the windowed kernel (and its small-row
    fallback path)."""
    v_start, v_stop = _combined_domain(left, right)
    counts, errors, choices = _combine_kernel_scalar(
        left, right, v_start, v_stop, epsilon, delta
    )
    return _build_row(
        v_start, counts, errors, choices, "no feasible incoming value for combined row"
    )


def _combine_kernel_scalar(
    left: MRow, right: MRow, v_start: int, v_stop: int, epsilon: float, delta: float
) -> tuple[NDArray[np.int64], NDArray[np.float64], NDArray[np.int64]]:
    """One tiny-slice numpy pass per incoming value ``v``."""
    weight = _lexicographic_weight(epsilon, delta)
    width = v_stop - v_start + 1
    counts = np.empty(width, dtype=np.int64)
    errors = np.empty(width, dtype=np.float64)
    choices = np.empty(width, dtype=np.int64)

    for offset, v in enumerate(range(v_start, v_stop + 1)):
        vl_lo = max(left.start, 2 * v - right.end)
        vl_hi = min(left.end, 2 * v - right.start)
        if vl_hi < vl_lo:
            # No pairing for this v (cannot occur inside the combined
            # domain, kept for safety); canonicalized by _build_row.
            counts[offset] = INFEASIBLE_COUNT
            errors[offset] = np.inf
            choices[offset] = -1
            continue
        lseg_counts = left.counts[vl_lo - left.start : vl_hi - left.start + 1]
        lseg_errors = left.errors[vl_lo - left.start : vl_hi - left.start + 1]
        # As vl ascends, vr = 2v - vl descends through the right row.
        r_hi = 2 * v - vl_lo
        r_lo = 2 * v - vl_hi
        rseg_counts = right.counts[r_lo - right.start : r_hi - right.start + 1][::-1]
        rseg_errors = right.errors[r_lo - right.start : r_hi - right.start + 1][::-1]

        total_counts = lseg_counts.astype(np.int64) + rseg_counts + 1
        if vl_lo <= v <= vl_hi:
            total_counts[v - vl_lo] -= 1  # z == 0 stores nothing
        total_errors = np.maximum(lseg_errors, rseg_errors)
        scores = total_counts * weight + total_errors
        best = int(np.argmin(scores))
        counts[offset] = total_counts[best]
        errors[offset] = total_errors[best]
        choices[offset] = vl_lo + best
    return counts, errors, choices


def _combine_kernel_windowed(
    left: MRow, right: MRow, v_start: int, v_stop: int, epsilon: float, delta: float
) -> tuple[NDArray[np.int64], NDArray[np.float64], NDArray[np.int64]]:
    """All incoming values in one batched 2-D reduction.

    Key observation: with the right row *reversed*, the candidate set of
    every ``v`` is a contiguous window.  Writing ``k = vl - left.start``
    and pairing ``vr = 2v - vl``, the reversed-right index is
    ``k - m(v)`` with ``m(v) = 2v - left.start - right.end`` — so row
    ``v`` of the candidate matrix is the fixed-length window of the
    (sentinel-padded) reversed right row starting at ``pad - m(v)``, and
    ``numpy.lib.stride_tricks.sliding_window_view`` materializes every
    row's window without per-``v`` slicing.  One ``argmin`` over the
    ``(v, vl)`` block then resolves every minimum, with the same
    smallest-``vl`` tie-break as the scalar loop (first minimum wins).

    Window starts descend by 2 as ``v`` ascends, so the blocked loop
    walks the *descending-``v``* row order instead — window starts then
    ascend and each block streams the padded arrays front-to-back
    (prefetch-friendly; measurably faster at widths >= 1024 than the
    back-to-front walk, see BENCH_dp_kernel.json) — and every block's
    outputs are flipped back into ascending-``v`` order on the way out.
    """
    weight = _lexicographic_weight(epsilon, delta)
    wl = len(left)
    wr = len(right)
    width = v_stop - v_start + 1

    vs = np.arange(v_start, v_stop + 1, dtype=np.int64)
    shifts = 2 * vs - left.start - right.end  # m(v), ascending by 2
    pad_lo = max(int(shifts[-1]), 0)
    pad_hi = max(wl - wr - int(shifts[0]), 0)
    padded = pad_lo + wr + pad_hi
    right_counts = np.full(padded, INFEASIBLE_COUNT, dtype=np.int32)
    right_errors = np.full(padded, np.inf, dtype=np.float64)
    right_counts[pad_lo : pad_lo + wr] = right.counts[::-1]
    right_errors[pad_lo : pad_lo + wr] = right.errors[::-1]
    # Row i of the window matrices is v = v_stop - i: a step +2 slice of
    # the sliding windows starting at the LAST v's window — a strided
    # view, no per-v gather copies.
    window_starts = pad_lo - shifts
    count_windows = sliding_window_view(right_counts, wl)[int(window_starts[-1]) :: 2][
        :width
    ]
    error_windows = sliding_window_view(right_errors, wl)[int(window_starts[-1]) :: 2][
        :width
    ]

    # int32 throughout the count matrix halves its memory traffic; the
    # sentinel is sized so even sentinel + sentinel + 1 cannot overflow.
    left_counts_plus_one = (left.counts.astype(np.int32) + 1)[np.newaxis, :]
    left_errors = left.errors[np.newaxis, :]
    # v values where z = 0 is on the table: v must lie in both domains.
    zero_lo = max(left.start, right.start)
    zero_hi = min(left.end, right.end)

    counts = np.empty(width, dtype=np.int64)
    errors = np.empty(width, dtype=np.float64)
    choices = np.empty(width, dtype=np.int64)
    block = max(1, _MAX_BLOCK_CELLS // wl)
    first = min(block, width)
    # Scratch reused across blocks: the kernel's large-width cost is
    # dominated by memory traffic, not arithmetic, so keeping the block
    # matrices allocated once and cache-resident is most of the speedup.
    total_counts = np.empty((first, wl), dtype=np.int32)
    total_errors = np.empty((first, wl), dtype=np.float64)
    scores = np.empty((first, wl), dtype=np.float64)
    descending_vs = vs[::-1]
    for begin in range(0, width, block):
        end = min(begin + block, width)
        rows = end - begin
        counts_block = total_counts[:rows]
        errors_block = total_errors[:rows]
        scores_block = scores[:rows]
        np.add(count_windows[begin:end], left_counts_plus_one, out=counts_block)
        np.maximum(error_windows[begin:end], left_errors, out=errors_block)
        v_block = descending_vs[begin:end]
        zero_rows = np.nonzero((v_block >= zero_lo) & (v_block <= zero_hi))[0]
        if len(zero_rows):
            # z == 0 stores nothing; applied to the integer counts BEFORE
            # the weight multiply so tie-breaks stay bit-identical to the
            # scalar kernel ((c-1)*w and c*w - w can differ in the last ulp).
            counts_block[zero_rows, v_block[zero_rows] - left.start] -= 1
        np.multiply(counts_block, weight, out=scores_block)
        np.add(scores_block, errors_block, out=scores_block)
        best = np.argmin(scores_block, axis=1)
        picked = np.arange(rows, dtype=np.int64)
        # Rows begin..end of the descending-v walk land, flipped, at the
        # mirrored slice of the ascending-v output.
        out = slice(width - end, width - begin)
        counts[out] = counts_block[picked, best][::-1]
        errors[out] = errors_block[picked, best][::-1]
        choices[out] = (left.start + best)[::-1]
    return counts, errors, choices


def _restricted_candidates(
    left: MRow, right: MRow, z_offset: int
) -> tuple[list[tuple[int, int]], list[int], list[int], int, int]:
    candidates: list[tuple[int, int]] = [(0, 0)]  # (z grid offset, stored count)
    if z_offset != 0:
        candidates.append((z_offset, 1))
    starts = []
    ends = []
    for z, _ in candidates:
        # v feasible for this z when v+z in left domain and v-z in right.
        starts.append(max(left.start - z, right.start + z))
        ends.append(min(left.end - z, right.end + z))
    v_start = min(starts)
    v_stop = max(ends)
    if v_stop < v_start:
        raise InfeasibleErrorBound(
            "empty restricted domain (quantization too coarse for this epsilon)"
        )
    return candidates, starts, ends, v_start, v_stop


def combine_rows_restricted(
    left: MRow, right: MRow, z_offset: int, epsilon: float, delta: float
) -> MRow:
    """Combine child rows when the node may only keep its own coefficient.

    The *restricted* variant of the DP: at each node the choice is binary —
    drop the coefficient (``z = 0``) or keep its (grid-snapped) Haar value
    ``z = z_offset * delta``.  This is the classic restricted-synopsis
    search space; with the same grid it can never use fewer coefficients
    than the unrestricted :func:`combine_rows` (tested).

    Both candidates are laid out as rows of one stacked score matrix and
    resolved by a single ``argmin`` (``z = 0`` wins ties, matching the
    sequential strictly-better update of the scalar reference).
    """
    candidates, starts, ends, v_start, v_stop = _restricted_candidates(
        left, right, z_offset
    )
    weight = _lexicographic_weight(epsilon, delta)
    width = v_stop - v_start + 1
    stacked_counts = np.full((len(candidates), width), INFEASIBLE_COUNT, dtype=np.int64)
    stacked_errors = np.full((len(candidates), width), np.inf, dtype=np.float64)
    for row, ((z, stored), lo, hi) in enumerate(zip(candidates, starts, ends)):
        if hi < lo:
            continue
        span = slice(lo - v_start, hi - v_start + 1)
        lseg = slice(lo + z - left.start, hi + z - left.start + 1)
        rseg = slice(lo - z - right.start, hi - z - right.start + 1)
        stacked_counts[row, span] = (
            left.counts[lseg].astype(np.int64) + right.counts[rseg] + stored
        )
        stacked_errors[row, span] = np.maximum(left.errors[lseg], right.errors[rseg])

    scores = stacked_counts * weight + stacked_errors
    pick = np.argmin(scores, axis=0)
    columns = np.arange(width, dtype=np.int64)
    z_of = np.array([z for z, _ in candidates], dtype=np.int64)
    counts = stacked_counts[pick, columns]
    errors = stacked_errors[pick, columns]
    choices = np.arange(v_start, v_stop + 1, dtype=np.int64) + z_of[pick]
    return _build_row(
        v_start, counts, errors, choices, "no feasible incoming value for restricted row"
    )


def combine_rows_restricted_scalar(
    left: MRow, right: MRow, z_offset: int, epsilon: float, delta: float
) -> MRow:
    """Sequential per-candidate restricted combine (differential reference)."""
    candidates, starts, ends, v_start, v_stop = _restricted_candidates(
        left, right, z_offset
    )
    weight = _lexicographic_weight(epsilon, delta)
    width = v_stop - v_start + 1
    counts = np.full(width, INFEASIBLE_COUNT, dtype=np.int64)
    errors = np.full(width, np.inf, dtype=np.float64)
    choices = np.full(width, -1, dtype=np.int64)
    scores = np.full(width, np.inf, dtype=np.float64)

    for (z, stored), lo, hi in zip(candidates, starts, ends):
        if hi < lo:
            continue
        span = slice(lo - v_start, hi - v_start + 1)
        lseg = slice(lo + z - left.start, hi + z - left.start + 1)
        rseg = slice(lo - z - right.start, hi - z - right.start + 1)
        cand_counts = left.counts[lseg].astype(np.int64) + right.counts[rseg] + stored
        cand_errors = np.maximum(left.errors[lseg], right.errors[rseg])
        cand_scores = cand_counts * weight + cand_errors
        better = cand_scores < scores[span]
        view = np.arange(lo, hi + 1, dtype=np.int64)
        counts[span] = np.where(better, cand_counts, counts[span])
        errors[span] = np.where(better, cand_errors, errors[span])
        choices[span] = np.where(better, view + z, choices[span])
        scores[span] = np.where(better, cand_scores, scores[span])

    return _build_row(
        v_start, counts, errors, choices, "no feasible incoming value for restricted row"
    )


def _run_levels(
    leaf_rows: Sequence[MRow],
    spec: KernelSpec,
    node_combine: Callable[[int, MRow, MRow], MRow],
) -> list[MRow | None]:
    """Walk a sub-tree level by level, bottom-up.

    All nodes of one level combine independent child pairs, so a level is
    an embarrassingly parallel batch: the ``parallel`` kernel runs it on
    a thread pool (the windowed kernel's numpy reductions release the
    GIL) once its child rows are wide enough to amortize task dispatch
    (:data:`PARALLEL_MIN_ENTRIES`).  Results are collected with
    ``Executor.map`` — index order, never completion order — so the row
    table is identical to the serial walk's, and infeasibility inside a
    level deterministically surfaces from the lowest node index.
    """
    m = len(leaf_rows)
    rows: list[MRow | None] = [None] * m
    executor = (
        ThreadPoolExecutor(max_workers=spec.resolved_workers())
        if spec.parallel and m >= 4
        else None
    )

    def child_rows(j: int) -> tuple[MRow, MRow]:
        if j >= m // 2:  # bottom level: children are the input leaf rows
            return leaf_rows[2 * j - m], leaf_rows[2 * j + 1 - m]
        left, right = rows[2 * j], rows[2 * j + 1]
        assert left is not None and right is not None
        return left, right

    def run_level(level_nodes: range) -> None:
        pairs = [child_rows(j) for j in level_nodes]
        if executor is not None and len(pairs) > 1 and any(
            max(len(left), len(right)) >= PARALLEL_MIN_ENTRIES for left, right in pairs
        ):
            combined = list(
                executor.map(
                    lambda task: node_combine(task[0], task[1][0], task[1][1]),
                    zip(level_nodes, pairs),
                )
            )
        else:
            combined = [
                node_combine(j, left, right)
                for j, (left, right) in zip(level_nodes, pairs)
            ]
        for j, row in zip(level_nodes, combined):
            rows[j] = row

    try:
        size = m // 2
        while size >= 1:
            run_level(range(size, 2 * size))
            size //= 2
    finally:
        if executor is not None:
            executor.shutdown(wait=False)
    sanitizer = sanitizer_current()
    if sanitizer is not None:
        # Sub-trees may run concurrently (thread map tasks); the sanitizer
        # sorts kernel digests at report time, so call order cannot matter.
        sanitizer.observe_kernel_rows(rows)
    return rows


def compute_subtree_rows_restricted(
    leaf_rows: list[MRow],
    coefficients: ArrayLike,
    epsilon: float,
    delta: float,
    kernel: str | KernelSpec = "auto",
) -> list[MRow | None]:
    """Restricted-variant DP over one sub-tree.

    ``coefficients`` is the local coefficient array (slot ``j`` for local
    node ``j``; slot 0 ignored), whose values are snapped to the grid.
    """
    m = len(leaf_rows)
    if not is_power_of_two(m):
        raise InvalidInputError("leaf count must be a power of two")
    if m == 1:
        return [leaf_rows[0]]
    spec = resolve_kernel(kernel)
    local = np.asarray(coefficients, dtype=np.float64)

    def node_combine(j: int, left: MRow, right: MRow) -> MRow:
        z_offset = int(round(float(local[j]) / delta))
        if spec.force == "scalar":
            return combine_rows_restricted_scalar(left, right, z_offset, epsilon, delta)
        return combine_rows_restricted(left, right, z_offset, epsilon, delta)

    return _run_levels(leaf_rows, spec, node_combine)


def compute_subtree_rows(
    leaf_rows: list[MRow],
    epsilon: float,
    delta: float,
    kernel: str | KernelSpec = "auto",
) -> list[MRow | None]:
    """Run the DP bottom-up over a complete sub-tree of ``m`` leaves.

    ``leaf_rows[i]`` is the row of the ``i``-th leaf — a data leaf
    (:func:`leaf_row`) at the bottom layer, or a lower sub-tree's root row
    in the distributed framework.  Returns ``rows`` indexed by local node
    (``rows[0]`` unused, ``rows[1]`` is the local root's M-row).
    """
    m = len(leaf_rows)
    if not is_power_of_two(m):
        raise InvalidInputError("leaf count must be a power of two")
    if m == 1:
        # Degenerate sub-tree: no internal coefficient nodes.
        return [leaf_rows[0]]
    spec = resolve_kernel(kernel)

    def node_combine(j: int, left: MRow, right: MRow) -> MRow:
        return combine_rows(left, right, epsilon, delta, kernel=spec)

    return _run_levels(leaf_rows, spec, node_combine)


def traceback_subtree(
    rows: list[MRow | None], root_incoming: int, delta: float
) -> tuple[dict[int, float], list[int]]:
    """Walk a sub-tree's rows top-down from a chosen incoming value.

    Returns ``(assignments, leaf_incomings)``: the non-zero coefficient
    values selected inside the sub-tree (keyed by *local* node index) and
    the incoming grid index delivered to each of the ``m`` leaves — which
    the distributed framework forwards to the next layer down.
    """
    m = len(rows)
    if m == 1:
        return {}, [root_incoming]
    assignments: dict[int, float] = {}
    leaf_incomings = [0] * m
    stack = [(1, root_incoming)]
    while stack:
        node, v = stack.pop()
        row = rows[node]
        vl = int(row.choices[v - row.start])
        vr = 2 * v - vl
        if vl != v:
            assignments[node] = (vl - v) * delta
        if 2 * node < m:
            stack.append((2 * node, vl))
            stack.append((2 * node + 1, vr))
        else:
            leaf_incomings[2 * node - m] = vl
            leaf_incomings[2 * node + 1 - m] = vr
    return assignments, leaf_incomings


def finalize_root(row: MRow, epsilon: float, delta: float) -> tuple[int, float, int]:
    """Choose the overall-average coefficient ``c_0``.

    The incoming value of the top detail node equals the value assigned at
    ``c_0`` (zero if ``c_0`` is dropped).  Returns
    ``(total_count, achieved_error, chosen_grid_index)``.
    """
    weight = _lexicographic_weight(epsilon, delta)
    counts = row.counts.astype(np.int64) + 1
    if row.start <= 0 <= row.end:
        counts[0 - row.start] -= 1  # dropping c_0 entirely
    scores = counts * weight + row.errors
    best = int(np.argmin(scores))
    return int(counts[best]), float(row.errors[best]), row.start + best


def finalize_root_restricted(
    row: MRow, average_offset: int, epsilon: float, delta: float
) -> tuple[int, float, int]:
    """Restricted finalize: ``c_0`` is either dropped or its snapped value."""
    weight = _lexicographic_weight(epsilon, delta)
    best: tuple[float, int, float, int] | None = None
    for choice, stored in ((0, 0), (average_offset, 1)):
        if not row.start <= choice <= row.end:
            continue
        count = int(row.counts[choice - row.start]) + stored
        error = float(row.errors[choice - row.start])
        if not np.isfinite(error):
            continue
        score = count * weight + error
        if best is None or score < best[0]:
            best = (score, count, error, choice)
    if best is None:
        raise InfeasibleErrorBound("no feasible restricted root choice")
    return best[1], best[2], best[3]


def min_haar_space_restricted(
    data: ArrayLike,
    epsilon: float,
    delta: float,
    rho: float = 0.0,
    kernel: str | KernelSpec = "auto",
) -> DualSolution:
    """Restricted MinHaarSpace: minimum-size synopsis with error <= epsilon,
    retaining only (grid-snapped) original Haar coefficient values.

    Same dual problem as :func:`min_haar_space` over the classic restricted
    search space; needs at least as many coefficients as the unrestricted
    solver for the same bound (tested).  Demonstrates that the Section 4
    framework's row algebra is not specific to one DP.  ``rho`` selects
    the approximate tier (:func:`approx_params`); ``kernel`` picks a
    :data:`DP_KERNELS` entry.
    """
    from repro.wavelet.transform import haar_transform

    values = np.asarray(data, dtype=np.float64)
    if values.ndim != 1 or not is_power_of_two(values.shape[0]):
        raise InvalidInputError("data length must be a power of two")
    n = int(values.shape[0])
    epsilon_dp, delta = approx_params(epsilon, delta, n, rho)
    coefficients = haar_transform(values)

    leaves = leaf_rows(values, epsilon_dp, delta)
    rows = compute_subtree_rows_restricted(
        leaves, coefficients, epsilon_dp, delta, kernel=kernel
    )
    root_row = rows[1] if n > 1 else rows[0]
    assert root_row is not None
    average_offset = int(round(float(coefficients[0]) / delta))
    size, error, chosen = finalize_root_restricted(
        root_row, average_offset, epsilon_dp, delta
    )

    retained: dict[int, float] = {}
    if chosen != 0:
        retained[0] = chosen * delta
    if n > 1:
        assignments, _ = traceback_subtree(rows, chosen, delta)
        retained.update(assignments)

    synopsis = WaveletSynopsis(
        n=n,
        coefficients=retained,
        meta={
            "algorithm": "MinHaarSpaceRestricted",
            "epsilon": epsilon,
            "delta": delta,
            "rho": rho,
            "max_abs_error": error,
        },
    )
    return DualSolution(size=size, max_error=error, synopsis=synopsis, epsilon=epsilon)


def min_haar_space(
    data: ArrayLike,
    epsilon: float,
    delta: float,
    rho: float = 0.0,
    kernel: str | KernelSpec = "auto",
) -> DualSolution:
    """Centralized MinHaarSpace: minimum-size synopsis with error <= epsilon.

    Raises :class:`InfeasibleErrorBound` when the quantized search space
    admits no solution (callers such as IndirectHaar treat this as
    "epsilon too small" and search upward).

    ``rho > 0`` selects the approximate tier: the DP runs at the
    coarsened :func:`approx_params` grid, returning a synopsis of at most
    the exact solver's size with ``max_error <= (1 + rho) * epsilon``
    (``rho = 0`` is bit-identical to the exact path).  ``kernel`` picks a
    :data:`DP_KERNELS` entry.
    """
    values = np.asarray(data, dtype=np.float64)
    if values.ndim != 1 or not is_power_of_two(values.shape[0]):
        raise InvalidInputError("data length must be a power of two")
    n = int(values.shape[0])
    epsilon_dp, delta = approx_params(epsilon, delta, n, rho)

    leaves = leaf_rows(values, epsilon_dp, delta)
    rows = compute_subtree_rows(leaves, epsilon_dp, delta, kernel=kernel)
    root_row = rows[1] if n > 1 else rows[0]
    assert root_row is not None
    size, error, chosen = finalize_root(root_row, epsilon_dp, delta)

    coefficients: dict[int, float] = {}
    if chosen != 0:
        coefficients[0] = chosen * delta
    if n > 1:
        assignments, _ = traceback_subtree(rows, chosen, delta)
        coefficients.update(assignments)

    synopsis = WaveletSynopsis(
        n=n,
        coefficients=coefficients,
        meta={
            "algorithm": "MinHaarSpace",
            "epsilon": epsilon,
            "delta": delta,
            "rho": rho,
            "max_abs_error": error,
        },
    )
    return DualSolution(size=size, max_error=error, synopsis=synopsis, epsilon=epsilon)
