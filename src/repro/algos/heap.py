"""An addressable binary min-heap.

GreedyAbs/GreedyRel repeatedly extract the coefficient with the minimum
potential error and *update the priorities* of its ancestors and
descendants in place (Section 5.1).  ``heapq`` cannot reprioritize, so we
maintain an explicit position map supporting ``update`` and ``remove`` in
``O(log n)``.

Ties are broken on the item id, which keeps the greedy algorithms fully
deterministic (important when comparing distributed against centralized
runs coefficient-by-coefficient).
"""

from __future__ import annotations

from collections.abc import Iterable
from heapq import heapify

__all__ = ["AddressableMinHeap"]


class AddressableMinHeap:
    """Min-heap over ``(priority, item_id)`` with in-place reprioritization."""

    def __init__(self) -> None:
        self._entries: list[tuple[float, int]] = []
        self._positions: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._positions

    def priority(self, item_id: int) -> float:
        """Current priority of ``item_id`` (KeyError if absent)."""
        return self._entries[self._positions[item_id]][0]

    def push(self, item_id: int, priority: float) -> None:
        """Insert a new item (ValueError if it is already present)."""
        if item_id in self._positions:
            raise ValueError(f"item {item_id} already in heap")
        self._entries.append((priority, item_id))
        self._positions[item_id] = len(self._entries) - 1
        self._sift_up(len(self._entries) - 1)

    def peek(self) -> tuple[int, float]:
        """Return ``(item_id, priority)`` of the minimum without removing it."""
        if not self._entries:
            raise IndexError("peek from empty heap")
        priority, item_id = self._entries[0]
        return item_id, priority

    def pop(self) -> tuple[int, float]:
        """Remove and return ``(item_id, priority)`` of the minimum."""
        if not self._entries:
            raise IndexError("pop from empty heap")
        priority, item_id = self._entries[0]
        self._delete_at(0)
        return item_id, priority

    def update(self, item_id: int, priority: float) -> None:
        """Change the priority of ``item_id`` (KeyError if absent)."""
        index = self._positions[item_id]
        old_priority = self._entries[index][0]
        if priority == old_priority:
            return
        self._entries[index] = (priority, item_id)
        if (priority, item_id) < (old_priority, item_id):
            self._sift_up(index)
        else:
            self._sift_down(index)

    def update_many(self, updates: Iterable[tuple[int, float]]) -> None:
        """Batch reprioritization of ``(item_id, priority)`` pairs.

        Equivalent to calling :meth:`update` once per pair (KeyError if
        any item is absent; the last pair wins on duplicate ids), but
        when the batch is large relative to the heap it overwrites all
        entries first and restores the invariant with a single bottom-up
        heapify — ``O(n)`` instead of ``O(batch · log n)`` sift calls.
        The pop order is unaffected either way: it depends only on the
        ``(priority, item_id)`` multiset, not the internal layout.
        """
        pairs = list(updates)
        if not pairs:
            return
        entries = self._entries
        if len(pairs) * len(entries).bit_length() < len(entries):
            for item_id, priority in pairs:
                self.update(item_id, priority)
            return
        positions = self._positions
        for item_id, priority in pairs:
            entries[positions[item_id]] = (priority, item_id)
        heapify(entries)
        for index, (_, item_id) in enumerate(entries):
            positions[item_id] = index

    def push_or_update(self, item_id: int, priority: float) -> None:
        """``update`` when present, ``push`` otherwise."""
        if item_id in self._positions:
            self.update(item_id, priority)
        else:
            self.push(item_id, priority)

    def remove(self, item_id: int) -> None:
        """Delete ``item_id`` from the heap (KeyError if absent)."""
        self._delete_at(self._positions[item_id])

    def _delete_at(self, index: int) -> None:
        last = len(self._entries) - 1
        priority, item_id = self._entries[index]
        del self._positions[item_id]
        if index != last:
            moved = self._entries[last]
            self._entries[index] = moved
            self._positions[moved[1]] = index
            self._entries.pop()
            if moved < (priority, item_id):
                self._sift_up(index)
            else:
                self._sift_down(index)
        else:
            self._entries.pop()

    def _sift_up(self, index: int) -> None:
        entry = self._entries[index]
        while index > 0:
            parent = (index - 1) // 2
            parent_entry = self._entries[parent]
            if entry >= parent_entry:
                break
            self._entries[index] = parent_entry
            self._positions[parent_entry[1]] = index
            index = parent
        self._entries[index] = entry
        self._positions[entry[1]] = index

    def _sift_down(self, index: int) -> None:
        entry = self._entries[index]
        size = len(self._entries)
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            right = child + 1
            if right < size and self._entries[right] < self._entries[child]:
                child = right
            if self._entries[child] >= entry:
                break
            self._entries[index] = self._entries[child]
            self._positions[self._entries[index][1]] = index
            index = child
        self._entries[index] = entry
        self._positions[entry[1]] = index
