"""Scalar reference engines for GreedyAbs / GreedyRel.

These are the original node-at-a-time implementations (Python lists, one
``AddressableMinHeap.update`` per dirtied node).  They are kept verbatim
as the *oracle* for the vectorized engines in
:mod:`repro.algos.greedy_abs` / :mod:`repro.algos.greedy_rel`: the
vectorized engines must reproduce their removal sequences exactly,
removal for removal, including the deterministic tie-break on node id
(differential-tested in ``tests/test_greedy_vectorized.py``), and the
perf-regression harness (``benchmarks/bench_greedy_kernel.py``) measures
speedups against them.

Do not optimize this module — its value is being the slow, obviously
correct baseline.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.algos.greedy_abs import GreedyRun, Removal
from repro.algos.heap import AddressableMinHeap
from repro.exceptions import InvalidInputError
from repro.wavelet.metrics import DEFAULT_SANITY_BOUND
from repro.wavelet.transform import is_power_of_two

__all__ = [
    "ScalarGreedyAbsTree",
    "ScalarGreedyRelTree",
    "scalar_greedy_abs_order",
    "scalar_greedy_rel_order",
]


class ScalarGreedyAbsTree:
    """Scalar greedy discard engine over one complete error (sub-)tree.

    See :class:`repro.algos.greedy_abs.GreedyAbsTree` for the parameter
    contract; both classes accept identical inputs and must emit
    identical removal sequences.
    """

    def __init__(
        self,
        coefficients: ArrayLike,
        initial_errors: ArrayLike | None = None,
        include_average: bool = True,
    ) -> None:
        coeffs = np.asarray(coefficients, dtype=np.float64)
        if coeffs.ndim != 1 or not is_power_of_two(coeffs.shape[0]):
            raise InvalidInputError("coefficient array length must be a power of two")
        self.m = int(coeffs.shape[0])
        self.coefficients = coeffs.tolist()
        self.include_average = include_average

        if initial_errors is None:
            errors = [0.0] * self.m
        else:
            errors = [float(e) for e in initial_errors]
            if len(errors) != self.m:
                raise InvalidInputError("initial_errors length must equal tree size")

        m = self.m
        self._single_leaf_error = errors[0] if m == 1 else 0.0
        self.max_left = [0.0] * m
        self.min_left = [0.0] * m
        self.max_right = [0.0] * m
        self.min_right = [0.0] * m
        for j in range(m // 2, m):
            self.max_left[j] = self.min_left[j] = errors[2 * j - m]
            self.max_right[j] = self.min_right[j] = errors[2 * j + 1 - m]
        for j in range(m // 2 - 1, 0, -1):
            self._recompute_quantities(j)

        self.heap = AddressableMinHeap()
        for j in range(1, m):
            self.heap.push(j, self._ma(j))
        if include_average:
            self.heap.push(0, self._ma_average())

    # -- potential error computations -------------------------------------

    def _ma(self, j: int) -> float:
        c = self.coefficients[j]
        return max(
            abs(self.max_left[j] - c),
            abs(self.min_left[j] - c),
            abs(self.max_right[j] + c),
            abs(self.min_right[j] + c),
        )

    def _ma_average(self) -> float:
        c = self.coefficients[0]
        if self.m == 1:
            err = self._single_leaf_error
            return abs(err - c)
        high = max(self.max_left[1], self.max_right[1])
        low = min(self.min_left[1], self.min_right[1])
        return max(abs(high - c), abs(low - c))

    def _recompute_quantities(self, j: int) -> None:
        left, right = 2 * j, 2 * j + 1
        self.max_left[j] = max(self.max_left[left], self.max_right[left])
        self.min_left[j] = min(self.min_left[left], self.min_right[left])
        self.max_right[j] = max(self.max_left[right], self.max_right[right])
        self.min_right[j] = min(self.min_left[right], self.min_right[right])

    def current_error(self) -> float:
        """Tree-wide maximum absolute error of the running synopsis."""
        if self.m == 1:
            return abs(self._single_leaf_error)
        return max(
            abs(self.max_left[1]),
            abs(self.min_left[1]),
            abs(self.max_right[1]),
            abs(self.min_right[1]),
        )

    # -- removal ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.heap)

    def remove_next(self) -> Removal:
        """Discard the node with minimum ``MA`` and update the tree."""
        k, _ = self.heap.pop()
        value = self.coefficients[k]
        if k == 0:
            self._remove_average(value)
        else:
            self._remove_detail(k, value)
        return Removal(node=k, value=value, error_after=self.current_error())

    def _remove_average(self, c: float) -> None:
        if self.m == 1:
            self._single_leaf_error -= c
            return
        for j in range(1, self.m):
            self.max_left[j] -= c
            self.min_left[j] -= c
            self.max_right[j] -= c
            self.min_right[j] -= c
            if j in self.heap:
                self.heap.update(j, self._ma(j))

    def _remove_detail(self, k: int, c: float) -> None:
        m = self.m
        heap = self.heap
        # The removed node's own leaves shift: left -c, right +c.
        self.max_left[k] -= c
        self.min_left[k] -= c
        self.max_right[k] += c
        self.min_right[k] += c

        # Descendants: whole sub-trees shift uniformly (left -c, right +c);
        # every alive descendant's MA must be refreshed (Section 5.1).
        if 2 * k < m:
            stack = [(2 * k, -c), (2 * k + 1, c)]
            while stack:
                j, delta = stack.pop()
                self.max_left[j] += delta
                self.min_left[j] += delta
                self.max_right[j] += delta
                self.min_right[j] += delta
                if j in heap:
                    heap.update(j, self._ma(j))
                child = 2 * j
                if child < m:
                    stack.append((child, delta))
                    stack.append((child + 1, delta))

        # Ancestors: recompute the four quantities bottom-up and refresh MA.
        j = k // 2
        while j >= 1:
            self._recompute_quantities(j)
            if j in heap:
                heap.update(j, self._ma(j))
            j //= 2
        if self.include_average and 0 in heap:
            heap.update(0, self._ma_average())

    def run_to_exhaustion(self) -> GreedyRun:
        """Discard every node; return the ordered removal sequence."""
        initial = self.current_error()
        removals = []
        while len(self.heap):
            removals.append(self.remove_next())
        return GreedyRun(removals=removals, initial_error=initial)


class ScalarGreedyRelTree:
    """Scalar greedy discard engine minimizing maximum relative error.

    See :class:`repro.algos.greedy_rel.GreedyRelTree` for the parameter
    contract; both classes accept identical inputs and must emit
    identical removal sequences.
    """

    def __init__(
        self,
        coefficients: ArrayLike,
        leaf_values: ArrayLike,
        sanity_bound: float = DEFAULT_SANITY_BOUND,
        initial_errors: ArrayLike | None = None,
        include_average: bool = True,
    ) -> None:
        coeffs = np.asarray(coefficients, dtype=np.float64)
        leaves = np.asarray(leaf_values, dtype=np.float64)
        if coeffs.ndim != 1 or not is_power_of_two(coeffs.shape[0]):
            raise InvalidInputError("coefficient array length must be a power of two")
        if leaves.shape != coeffs.shape:
            raise InvalidInputError("leaf_values must have the same length as coefficients")
        if sanity_bound <= 0:
            raise InvalidInputError("the sanity bound S must be strictly positive")

        self.m = int(coeffs.shape[0])
        self.coefficients = coeffs.tolist()
        self.include_average = include_average
        self.denominators = np.maximum(np.abs(leaves), sanity_bound)
        if initial_errors is None:
            self.errors = np.zeros(self.m, dtype=np.float64)
        else:
            self.errors = np.asarray(initial_errors, dtype=np.float64).copy()
            if self.errors.shape[0] != self.m:
                raise InvalidInputError("initial_errors length must equal tree size")

        self.heap = AddressableMinHeap()
        for j in range(1, self.m):
            self.heap.push(j, self._mr(j))
        if include_average:
            self.heap.push(0, self._mr_average())

    def _leaf_range(self, j: int) -> tuple[int, int, int]:
        """Local (lo, mid, hi) leaf bounds of node ``j >= 1``."""
        level = j.bit_length() - 1
        span = self.m >> level
        lo = (j - (1 << level)) * span
        return lo, lo + span // 2, lo + span

    def _mr(self, j: int) -> float:
        c = self.coefficients[j]
        lo, mid, hi = self._leaf_range(j)
        left = np.abs(self.errors[lo:mid] - c) / self.denominators[lo:mid]
        right = np.abs(self.errors[mid:hi] + c) / self.denominators[mid:hi]
        return float(max(left.max(initial=0.0), right.max(initial=0.0)))

    def _mr_average(self) -> float:
        c = self.coefficients[0]
        return float(np.max(np.abs(self.errors - c) / self.denominators))

    def current_error(self) -> float:
        """Tree-wide maximum relative error of the running synopsis."""
        return float(np.max(np.abs(self.errors) / self.denominators))

    def __len__(self) -> int:
        return len(self.heap)

    def remove_next(self) -> Removal:
        """Discard the node with minimum ``MR`` and update the tree."""
        k, _ = self.heap.pop()
        value = self.coefficients[k]
        if k == 0:
            self.errors -= value
            refresh_range = (0, self.m)
        else:
            lo, mid, hi = self._leaf_range(k)
            self.errors[lo:mid] -= value
            self.errors[mid:hi] += value
            refresh_range = (lo, hi)
        self._refresh(k, refresh_range)
        return Removal(node=k, value=value, error_after=self.current_error())

    def _refresh(self, k: int, leaf_range: tuple[int, int]) -> None:
        """Recompute MR for every alive node overlapping ``leaf_range``."""
        heap = self.heap
        if k == 0:
            for j in range(1, self.m):
                if j in heap:
                    heap.update(j, self._mr(j))
            return
        # Descendants of k.
        stack = [2 * k, 2 * k + 1] if 2 * k < self.m else []
        while stack:
            j = stack.pop()
            if j in heap:
                heap.update(j, self._mr(j))
            child = 2 * j
            if child < self.m:
                stack.append(child)
                stack.append(child + 1)
        # Ancestors of k.
        j = k // 2
        while j >= 1:
            if j in heap:
                heap.update(j, self._mr(j))
            j //= 2
        if self.include_average and 0 in heap:
            heap.update(0, self._mr_average())

    def run_to_exhaustion(self) -> GreedyRun:
        """Discard every node; return the ordered removal sequence."""
        initial = self.current_error()
        removals = []
        while len(self.heap):
            removals.append(self.remove_next())
        return GreedyRun(removals=removals, initial_error=initial)


def scalar_greedy_abs_order(
    coefficients: ArrayLike,
    initial_errors: ArrayLike | None = None,
    include_average: bool = True,
) -> GreedyRun:
    """Run the scalar reference abs engine to exhaustion."""
    tree = ScalarGreedyAbsTree(coefficients, initial_errors, include_average)
    return tree.run_to_exhaustion()


def scalar_greedy_rel_order(
    coefficients: ArrayLike,
    leaf_values: ArrayLike,
    sanity_bound: float = DEFAULT_SANITY_BOUND,
    initial_errors: ArrayLike | None = None,
    include_average: bool = True,
) -> GreedyRun:
    """Run the scalar reference rel engine to exhaustion."""
    tree = ScalarGreedyRelTree(
        coefficients, leaf_values, sanity_bound, initial_errors, include_average
    )
    return tree.run_to_exhaustion()
