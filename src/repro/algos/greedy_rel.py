"""GreedyRel: greedy thresholding for maximum *relative* error.

The relative-error variant of GreedyAbs (Section 5.4).  The four-quantity
trick of Eq. 8 breaks here because the denominator ``max(|d_j|, S)`` of
Eq. 10 differs per leaf, so the maximum potential relative error ``MR_k``
is maintained by vectorized scans over each node's leaf range instead:
per removal this costs ``O(|T_k| log |T_k|)`` vector element-operations,
the same asymptotics as the candidate-set structures of the original
GreedyRel paper with far simpler bookkeeping.

The engine mirrors :class:`repro.algos.greedy_abs.GreedyAbsTree` and runs
in the same three roles (whole tree, base sub-tree with incoming error,
root sub-tree) for the distributed DGreedyRel.
"""

from __future__ import annotations

import numpy as np

from repro.algos.greedy_abs import GreedyRun, Removal
from repro.algos.heap import AddressableMinHeap
from repro.exceptions import InvalidInputError
from repro.wavelet.metrics import DEFAULT_SANITY_BOUND
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import haar_transform, is_power_of_two

__all__ = ["GreedyRelTree", "greedy_rel", "greedy_rel_order"]


class GreedyRelTree:
    """Greedy discard engine minimizing maximum relative error.

    Parameters
    ----------
    coefficients:
        Length-``m`` array; slot 0 is the overall average (see
        :class:`repro.algos.greedy_abs.GreedyAbsTree` for the layout).
    leaf_values:
        The ``m`` original data values under this (sub-)tree; they define
        the per-leaf denominators ``max(|d_i|, S)`` of Eq. 10.
    sanity_bound:
        The ``S > 0`` of Eq. 10.
    initial_errors:
        Incoming signed error per leaf (uniform for base sub-trees).
    include_average:
        Whether slot 0 participates.
    """

    def __init__(
        self,
        coefficients,
        leaf_values,
        sanity_bound: float = DEFAULT_SANITY_BOUND,
        initial_errors=None,
        include_average: bool = True,
    ):
        coeffs = np.asarray(coefficients, dtype=np.float64)
        leaves = np.asarray(leaf_values, dtype=np.float64)
        if coeffs.ndim != 1 or not is_power_of_two(coeffs.shape[0]):
            raise InvalidInputError("coefficient array length must be a power of two")
        if leaves.shape != coeffs.shape:
            raise InvalidInputError("leaf_values must have the same length as coefficients")
        if sanity_bound <= 0:
            raise InvalidInputError("the sanity bound S must be strictly positive")

        self.m = int(coeffs.shape[0])
        self.coefficients = coeffs.tolist()
        self.include_average = include_average
        self.denominators = np.maximum(np.abs(leaves), sanity_bound)
        if initial_errors is None:
            self.errors = np.zeros(self.m, dtype=np.float64)
        else:
            self.errors = np.asarray(initial_errors, dtype=np.float64).copy()
            if self.errors.shape[0] != self.m:
                raise InvalidInputError("initial_errors length must equal tree size")

        self.heap = AddressableMinHeap()
        for j in range(1, self.m):
            self.heap.push(j, self._mr(j))
        if include_average:
            self.heap.push(0, self._mr_average())

    def _leaf_range(self, j: int) -> tuple[int, int, int]:
        """Local (lo, mid, hi) leaf bounds of node ``j >= 1``."""
        level = j.bit_length() - 1
        span = self.m >> level
        lo = (j - (1 << level)) * span
        return lo, lo + span // 2, lo + span

    def _mr(self, j: int) -> float:
        c = self.coefficients[j]
        lo, mid, hi = self._leaf_range(j)
        left = np.abs(self.errors[lo:mid] - c) / self.denominators[lo:mid]
        right = np.abs(self.errors[mid:hi] + c) / self.denominators[mid:hi]
        return float(max(left.max(initial=0.0), right.max(initial=0.0)))

    def _mr_average(self) -> float:
        c = self.coefficients[0]
        return float(np.max(np.abs(self.errors - c) / self.denominators))

    def current_error(self) -> float:
        """Tree-wide maximum relative error of the running synopsis."""
        return float(np.max(np.abs(self.errors) / self.denominators))

    def __len__(self) -> int:
        return len(self.heap)

    def remove_next(self) -> Removal:
        """Discard the node with minimum ``MR`` and update the tree."""
        k, _ = self.heap.pop()
        value = self.coefficients[k]
        if k == 0:
            self.errors -= value
            refresh_range = (0, self.m)
        else:
            lo, mid, hi = self._leaf_range(k)
            self.errors[lo:mid] -= value
            self.errors[mid:hi] += value
            refresh_range = (lo, hi)
        self._refresh(k, refresh_range)
        return Removal(node=k, value=value, error_after=self.current_error())

    def _refresh(self, k: int, leaf_range: tuple[int, int]) -> None:
        """Recompute MR for every alive node overlapping ``leaf_range``."""
        heap = self.heap
        if k == 0:
            for j in range(1, self.m):
                if j in heap:
                    heap.update(j, self._mr(j))
            return
        # Descendants of k.
        stack = [2 * k, 2 * k + 1] if 2 * k < self.m else []
        while stack:
            j = stack.pop()
            if j in heap:
                heap.update(j, self._mr(j))
            child = 2 * j
            if child < self.m:
                stack.append(child)
                stack.append(child + 1)
        # Ancestors of k.
        j = k // 2
        while j >= 1:
            if j in heap:
                heap.update(j, self._mr(j))
            j //= 2
        if self.include_average and 0 in heap:
            heap.update(0, self._mr_average())

    def run_to_exhaustion(self) -> GreedyRun:
        """Discard every node; return the ordered removal sequence."""
        initial = self.current_error()
        removals = []
        while len(self.heap):
            removals.append(self.remove_next())
        return GreedyRun(removals=removals, initial_error=initial)


def greedy_rel_order(
    coefficients,
    leaf_values,
    sanity_bound: float = DEFAULT_SANITY_BOUND,
    initial_errors=None,
    include_average: bool = True,
) -> GreedyRun:
    """Run the relative-error greedy engine to exhaustion."""
    tree = GreedyRelTree(coefficients, leaf_values, sanity_bound, initial_errors, include_average)
    return tree.run_to_exhaustion()


def greedy_rel(data, budget: int, sanity_bound: float = DEFAULT_SANITY_BOUND) -> WaveletSynopsis:
    """Centralized GreedyRel: best max-rel synopsis within ``budget``."""
    if budget < 0:
        raise InvalidInputError("budget must be non-negative")
    values = np.asarray(data, dtype=np.float64)
    coefficients = haar_transform(values)
    run = greedy_rel_order(coefficients, values, sanity_bound)
    step, error = run.best_cut(budget)
    retained = {r.node: r.value for r in run.removals[step:]}
    return WaveletSynopsis(
        n=int(values.shape[0]),
        coefficients=retained,
        meta={
            "algorithm": "GreedyRel",
            "budget": budget,
            "max_rel_error": error,
            "sanity_bound": sanity_bound,
        },
    )
