"""GreedyRel: greedy thresholding for maximum *relative* error.

The relative-error variant of GreedyAbs (Section 5.4).  The four-quantity
trick of Eq. 8 breaks here because the denominator ``max(|d_j|, S)`` of
Eq. 10 differs per leaf, so the maximum potential relative error ``MR_k``
is maintained through per-level *term trees* instead — the vectorized
equivalent of the candidate-set structures of the original GreedyRel
paper.

The engine mirrors :class:`repro.algos.greedy_abs.GreedyAbsTree` and runs
in the same three roles (whole tree, base sub-tree with incoming error,
root sub-tree) for the distributed DGreedyRel.

Vectorization (see docs/ALGORITHMS.md, "Complexity and vectorization")
----------------------------------------------------------------------
For tree level ``L`` every leaf ``i`` has exactly one owning node ``a``
(the level-``L`` ancestor of leaf ``i``), and ``MR_a`` is the maximum of
the *signed terms* ``p_i = (err_i - c_a) / den_i`` over ``a``'s left
leaves and ``(err_i + c_a) / den_i`` over its right leaves, in absolute
value.  The engine keeps, per level, a segment tree over those terms —
``tq[j]`` aggregating ``max p`` and ``tg[j]`` aggregating ``max -p``
under tree node ``j`` — so ``MR_a = max(tq[a], tg[a])`` is an O(1)
block-root read.  This is bit-exact to the reference's
``max |err ∓ c| / den`` scans because ``|x| / d == |x / d|`` for
IEEE-754 doubles (division rounds the magnitude independently of sign)
and ``max`` is exactly associative.

A removal of node ``k`` spanning ``s`` leaves then touches only its own
leaf range in each tree: descendant levels refresh all their blocks
inside the range in one reshape-broadcast pass per level; each ancestor
level refreshes the range with one uniform ``(err ± c_a) / den`` pass
(the range lies in a single half of the one dirtied block) followed by
an O(log) climb to the block root.  Two more trees of the same shape
over ``err / den`` and ``(err - c0) / den`` give ``current_error`` and
the average slot's ``MR`` as root reads, replacing the reference's full
O(m) scans per removal.  Total: O(s·log m) amortized element work per
removal instead of O(m); levels whose dirtied blocks are all dead are
skipped entirely, so late-run removals keep getting cheaper.

Because a rebuild always recomputes every leaf term of the range it
covers before aggregating, leaf terms need no persistence: all trees
share one leaf-term scratch buffer (``_lterm``), and the per-tree arrays
hold interior aggregates only.  Narrow updates run through memoryview
scalar loops that fuse the term computation with the first aggregation
level; wide ones run through numpy slice ops, exactly as in the abs
engine.

Dirtied priorities enter the same lazy packed-integer queue as
:class:`~repro.algos.greedy_abs.GreedyAbsTree` (keys
``(float64_bits(MR) << id_bits) | node``), which reproduces the
``(priority, node)`` pop order of the scalar reference engine's
addressable heap — differential-tested in
``tests/test_greedy_vectorized.py`` against
:class:`repro.algos.reference.ScalarGreedyRelTree`.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush, heappushpop

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.algos.greedy_abs import GreedyRun, Removal
from repro.exceptions import InvalidInputError
from repro.wavelet.metrics import DEFAULT_SANITY_BOUND
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import haar_transform, is_power_of_two

__all__ = ["GreedyRelTree", "greedy_rel", "greedy_rel_order"]

#: Removal span below which the memoryview scalar path beats numpy's
#: per-call dispatch overhead (tuned via benchmarks/bench_greedy_kernel.py).
_SCALAR_SPAN_CUTOFF = 32


class GreedyRelTree:
    """Greedy discard engine minimizing maximum relative error.

    Parameters
    ----------
    coefficients:
        Length-``m`` array; slot 0 is the overall average (see
        :class:`repro.algos.greedy_abs.GreedyAbsTree` for the layout).
    leaf_values:
        The ``m`` original data values under this (sub-)tree; they define
        the per-leaf denominators ``max(|d_i|, S)`` of Eq. 10.
    sanity_bound:
        The ``S > 0`` of Eq. 10.
    initial_errors:
        Incoming signed error per leaf (uniform for base sub-trees).
    include_average:
        Whether slot 0 participates.
    """

    def __init__(
        self,
        coefficients: ArrayLike,
        leaf_values: ArrayLike,
        sanity_bound: float = DEFAULT_SANITY_BOUND,
        initial_errors: ArrayLike | None = None,
        include_average: bool = True,
    ) -> None:
        coeffs = np.array(coefficients, dtype=np.float64, copy=True)
        leaves = np.asarray(leaf_values, dtype=np.float64)
        if coeffs.ndim != 1 or not is_power_of_two(coeffs.shape[0]):
            raise InvalidInputError("coefficient array length must be a power of two")
        if leaves.shape != coeffs.shape:
            raise InvalidInputError("leaf_values must have the same length as coefficients")
        if sanity_bound <= 0:
            raise InvalidInputError("the sanity bound S must be strictly positive")

        self.m = m = int(coeffs.shape[0])
        self.coefficients = coeffs
        self.include_average = include_average
        self.denominators = den = np.maximum(np.abs(leaves), sanity_bound)
        if initial_errors is None:
            self.errors = err = np.zeros(m, dtype=np.float64)
        else:
            self.errors = err = np.array(initial_errors, dtype=np.float64, copy=True)
            if err.ndim != 1 or err.shape[0] != m:
                raise InvalidInputError("initial_errors length must equal tree size")

        #: Number of detail levels; level ``L`` holds nodes
        #: ``[1 << L, 2 << L)`` each spanning ``m >> L >= 2`` leaves.
        self._levels = levels = m.bit_length() - 1

        self._scratch1 = np.empty(m, dtype=np.float64)
        self._scratch2 = np.empty(max(m // 2, 1), dtype=np.float64)
        self._push_mask = np.empty(m, dtype=bool)
        self._ma_arr = ma = np.zeros(m, dtype=np.float64)
        # Shared leaf-term scratch: slot m + i holds the current tree's
        # term for leaf i, valid only within one fill-and-rebuild pass.
        self._lterm = np.empty(2 * m, dtype=np.float64)

        # Current-error tree over u_i = err_i / den_i:
        # current_error == max(uq[1], ug[1]) == max |err_i| / den_i.
        self._uq = uq = np.empty(m, dtype=np.float64)
        self._ug = ug = np.empty(m, dtype=np.float64)
        if m > 1:
            np.divide(err, den, out=self._lterm[m:])
            self._rebuild_vec(uq, ug, 1, levels - 1, 0)

        # Per-level term trees; MR of a level-L node j is
        # max(tq[L][j], tg[L][j]).
        self._tq: list[np.ndarray] = []
        self._tg: list[np.ndarray] = []
        for L in range(levels):
            nb = 1 << L
            tq = np.empty(m, dtype=np.float64)
            tg = np.empty(m, dtype=np.float64)
            self._fill_level_terms(L, 0, m)
            self._tq.append(tq)
            self._tg.append(tg)
            self._rebuild_vec(tq, tg, 1, levels - 1, L)
            np.maximum(tq[nb : 2 * nb], tg[nb : 2 * nb], out=ma[nb : 2 * nb])

        # Average tree over w_i = (err_i - c0) / den_i; dead once slot 0
        # is removed (or absent).
        if include_average:
            c0 = coeffs[0]
            self._wq = wq = np.empty(m, dtype=np.float64)
            self._wg = wg = np.empty(m, dtype=np.float64)
            if m > 1:
                seg = self._lterm[m:]
                np.subtract(err, c0, out=seg)
                seg /= den
                self._rebuild_vec(wq, wg, 1, levels - 1, 0)
                ma[0] = max(wq[1], wg[1])
            else:
                v = (err[0] - c0) / den[0]
                ma[0] = v if v >= 0.0 else -v
        else:
            self._wq = None
            self._wg = None

        self._alive = np.zeros(m, dtype=bool)
        self._alive[1:] = True
        self._alive[0] = include_average
        self._alive_count = (m - 1) + (1 if include_average else 0)

        # Scalar hot paths go through memoryviews: they share the numpy
        # buffers but index at Python-list speed.
        self._verr = memoryview(err)
        self._vden = memoryview(den)
        self._vcoef = memoryview(coeffs)
        self._vma = memoryview(ma)
        self._valive = memoryview(self._alive)
        self._vuq = memoryview(uq)
        self._vug = memoryview(ug)
        if include_average:
            self._vwq = memoryview(self._wq)
            self._vwg = memoryview(self._wg)
        else:
            self._vwq = None
            self._vwg = None
        self._vtq = [memoryview(t) for t in self._tq]
        self._vtg = [memoryview(t) for t in self._tg]

        # One float64 cell viewed as int64: writing _packf[0] = v makes
        # _packi[0] the sortable IEEE bit pattern of v (v >= 0).
        pack_cell = np.empty(1, dtype=np.float64)
        self._packf = memoryview(pack_cell)
        self._packi = memoryview(pack_cell.view(np.int64))
        self._id_bits = id_bits = max(20, m.bit_length())
        self._id_mask = (1 << id_bits) - 1

        # Lazy min-queue of packed (MR-bits, node) keys; same invariants
        # as GreedyAbsTree's queue.
        self._minstored = ma.copy()
        self._vms = memoryview(self._minstored)
        start = 0 if include_average else 1
        ids = np.arange(start, m, dtype=np.int64)
        keys = (((ma[start:] + 0.0).view(np.int64) << id_bits) | ids).tolist()
        heapify(keys)
        self._heap = keys

    # -- tree maintenance --------------------------------------------------

    def _leaf_range(self, j: int) -> tuple[int, int, int]:
        """Local (lo, mid, hi) leaf bounds of node ``j >= 1``."""
        level = j.bit_length() - 1
        span = self.m >> level
        lo = (j - (1 << level)) * span
        return lo, lo + span // 2, lo + span

    def _fill_level_terms(self, L: int, lo: int, hi: int) -> None:
        """Write level-``L`` signed terms for leaves ``[lo, hi)`` into the
        shared scratch (one reshape-broadcast pass; the range must cover
        whole level-``L`` blocks)."""
        m = self.m
        sp = m >> L
        hh = sp >> 1
        nb = (hi - lo) // sp
        j0 = (1 << L) + lo // sp
        E = self._lterm[m + lo : m + hi].reshape(nb, sp)
        err2 = self.errors[lo:hi].reshape(nb, sp)
        den2 = self.denominators[lo:hi].reshape(nb, sp)
        c_col = self.coefficients[j0 : j0 + nb, None]
        np.subtract(err2[:, :hh], c_col, out=E[:, :hh])
        np.add(err2[:, hh:], c_col, out=E[:, hh:])
        E /= den2

    def _rebuild_vec(
        self,
        tq: NDArray[np.float64],
        tg: NDArray[np.float64],
        k: int,
        t_hi: int,
        t_lo: int,
    ) -> None:
        """Rebuild aggregate levels ``t_hi .. t_lo`` (depths below ``k``).

        Level ``t`` is the contiguous block ``[k << t, (k + 1) << t)``;
        its children (level ``t + 1``) must be current — interior ones in
        ``tq``/``tg``, leaf ones as just-filled terms in the shared
        ``_lterm`` scratch.
        """
        m = self.m
        for t in range(t_hi, t_lo - 1, -1):
            a = k << t
            w = 1 << t
            b = a + w
            left = slice(2 * a, 2 * b, 2)
            right = slice(2 * a + 1, 2 * b, 2)
            if 2 * a >= m:
                lt = self._lterm
                s = self._scratch2[:w]
                np.minimum(lt[left], lt[right], out=s)
                np.maximum(lt[left], lt[right], out=tq[a:b])
                np.negative(s, out=tg[a:b])
            else:
                np.maximum(tq[left], tq[right], out=tq[a:b])
                np.maximum(tg[left], tg[right], out=tg[a:b])

    def _rebuild_sc_int(
        self, vt: NDArray[np.float64], vtg: NDArray[np.float64], k: int, t_hi: int
    ) -> None:
        """Scalar rebuild of the interior-children levels ``t_hi .. 0``."""
        for t in range(t_hi, -1, -1):
            for j in range(k << t, (k + 1) << t):
                xl = vt[2 * j]
                xr = vt[2 * j + 1]
                vt[j] = xl if xl >= xr else xr  # lint: ignore[KC003]
                xl = vtg[2 * j]
                xr = vtg[2 * j + 1]
                vtg[j] = xl if xl >= xr else xr  # lint: ignore[KC003]

    def _batch_push(
        self, tq: NDArray[np.float64], tg: NDArray[np.float64], a0: int, nb: int
    ) -> None:
        """Refresh MR for block roots ``[a0, a0 + nb)`` and rekey.

        The batched analogue of one ``heap.update`` per dirtied node:
        new keys enter the queue only where they undercut the node's
        lowest enqueued key (and the node is alive).
        """
        s1 = self._scratch1[:nb]
        np.maximum(tq[a0 : a0 + nb], tg[a0 : a0 + nb], out=s1)
        self._ma_arr[a0 : a0 + nb] = s1
        mask = self._push_mask[:nb]
        np.less(s1, self._minstored[a0 : a0 + nb], out=mask)
        mask &= self._alive[a0 : a0 + nb]
        idx = mask.nonzero()[0]
        if idx.size:
            vms = self._vms
            heap = self._heap
            vals = s1[idx]
            keys = ((vals + 0.0).view(np.int64) << self._id_bits) | (idx + a0)
            for off, v, key in zip(idx.tolist(), vals.tolist(), keys.tolist()):
                vms[a0 + off] = v
                heappush(heap, key)

    # -- state queries -----------------------------------------------------

    def current_error(self) -> float:
        """Tree-wide maximum relative error of the running synopsis."""
        if self.m == 1:
            v = self._verr[0] / self._vden[0]
            return v if v >= 0.0 else -v
        x = self._vuq[1]
        g = self._vug[1]
        return x if x >= g else g

    def __len__(self) -> int:
        return self._alive_count

    # -- removal -----------------------------------------------------------

    def remove_next(self) -> Removal:
        """Discard the node with minimum ``MR`` and update the tree."""
        if not self._alive_count:
            raise IndexError("pop from empty heap")
        heap = self._heap
        valive = self._valive
        vma = self._vma
        id_bits = self._id_bits
        id_mask = self._id_mask
        packf = self._packf
        packi = self._packi
        key = heappop(heap)
        while True:
            k = key & id_mask
            if not valive[k]:
                key = heappop(heap)
                continue
            packf[0] = vma[k] + 0.0
            current_key = (packi[0] << id_bits) | k
            if key == current_key:
                break
            if key < current_key:
                # Stale-low entry: the true MR rose since it was pushed.
                self._vms[k] = vma[k]
                key = heappushpop(heap, current_key)
            else:
                # A lower entry for k is still queued.
                key = heappop(heap)
        value = self._vcoef[k]
        valive[k] = False
        self._alive_count -= 1
        if k == 0:
            error_after = self._remove_average(value)
        else:
            error_after = self._remove_detail(k, value)
        return Removal(k, value, error_after)

    def _remove_average(self, c0: float) -> float:
        m = self.m
        if m == 1:
            v = self._verr[0] - c0
            self._verr[0] = v
            u = v / self._vden[0]
            return u if u >= 0.0 else -u
        err = self.errors
        den = self.denominators
        levels = self._levels
        # Every leaf error shifts by -c0; every term of every tree must
        # be recomputed (this happens at most once per run).
        err -= c0
        np.divide(err, den, out=self._lterm[m:])
        self._rebuild_vec(self._uq, self._ug, 1, levels - 1, 0)
        alive = self._alive
        for L in range(levels):
            nb = 1 << L
            if not alive[nb : 2 * nb].any():
                continue
            self._fill_level_terms(L, 0, m)
            tq = self._tq[L]
            tg = self._tg[L]
            self._rebuild_vec(tq, tg, 1, levels - 1, L)
            self._batch_push(tq, tg, nb, nb)
        x = self._vuq[1]
        g = self._vug[1]
        return x if x >= g else g

    def _remove_detail(self, k: int, c: float) -> float:
        m = self.m
        levels = self._levels
        Lk = k.bit_length() - 1
        depth = levels - Lk
        leaf0 = k << depth
        lo = leaf0 - m
        s = 1 << depth
        mid = lo + (s >> 1)
        hi = lo + s
        err = self.errors
        den = self.denominators
        verr = self._verr
        vden = self._vden
        vcoef = self._vcoef
        valive = self._valive
        vma = self._vma
        vms = self._vms
        heap = self._heap
        packf = self._packf
        packi = self._packi
        id_bits = self._id_bits
        small = s <= _SCALAR_SPAN_CUTOFF
        # Leaf parents of k's sub-tree.
        lp0 = k << (depth - 1)
        lp1 = lp0 + (1 << (depth - 1))

        # The removed node's leaves shift: left half -c, right half +c.
        if small:
            for i in range(lo, mid):
                verr[i] = verr[i] - c
            for i in range(mid, hi):
                verr[i] = verr[i] + c
        else:
            err[lo:mid] -= c
            err[mid:hi] += c

        # Current-error tree: recompute u over the range (fused with the
        # leaf-parent aggregation), rebuild k's sub-tree, climb to the
        # root (whose values are the answer).
        vuq = self._vuq
        vug = self._vug
        if small:
            for j in range(lp0, lp1):
                i = 2 * j - m
                tl = verr[i] / vden[i]
                tr = verr[i + 1] / vden[i + 1]
                if tl >= tr:
                    vuq[j] = tl
                    vug[j] = -tr
                else:
                    vuq[j] = tr
                    vug[j] = -tl
            self._rebuild_sc_int(vuq, vug, k, depth - 2)
        else:
            np.divide(err[lo:hi], den[lo:hi], out=self._lterm[leaf0 : leaf0 + s])
            self._rebuild_vec(self._uq, self._ug, k, depth - 1, 0)

        # Average slot: same update against the w tree, then one fused
        # climb refreshing both trees' ancestor aggregates.
        avg = valive[0]
        if avg:
            c0 = vcoef[0]
            vwq = self._vwq
            vwg = self._vwg
            if small:
                for j in range(lp0, lp1):
                    i = 2 * j - m
                    tl = (verr[i] - c0) / vden[i]
                    tr = (verr[i + 1] - c0) / vden[i + 1]
                    if tl >= tr:
                        vwq[j] = tl
                        vwg[j] = -tr
                    else:
                        vwq[j] = tr
                        vwg[j] = -tl
                self._rebuild_sc_int(vwq, vwg, k, depth - 2)
            else:
                seg = self._lterm[leaf0 : leaf0 + s]
                np.subtract(err[lo:hi], c0, out=seg)
                seg /= den[lo:hi]
                self._rebuild_vec(self._wq, self._wg, k, depth - 1, 0)
            ex = vuq[k]
            eg = vug[k]
            wx = vwq[k]
            wg = vwg[k]
            child = k
            while child > 1:
                q = child >> 1
                sib = child ^ 1
                t = vuq[sib]
                if t > ex:
                    ex = t
                t = vug[sib]
                if t > eg:
                    eg = t
                vuq[q] = ex
                vug[q] = eg
                t = vwq[sib]
                if t > wx:
                    wx = t
                t = vwg[sib]
                if t > wg:
                    wg = t
                vwq[q] = wx
                vwg[q] = wg
                child = q
            ma0 = wx if wx >= wg else wg
            vma[0] = ma0
            if ma0 < vms[0]:
                vms[0] = ma0
                packf[0] = ma0 + 0.0
                heappush(heap, packi[0] << id_bits)
        else:
            ex = vuq[k]
            eg = vug[k]
            child = k
            while child > 1:
                q = child >> 1
                sib = child ^ 1
                t = vuq[sib]
                if t > ex:
                    ex = t
                t = vug[sib]
                if t > eg:
                    eg = t
                vuq[q] = ex
                vug[q] = eg
                child = q

        # Descendant levels: all their blocks inside [lo, hi) dirtied.
        alive = self._alive
        for L in range(Lk + 1, levels):
            d = L - Lk
            nb = 1 << d
            a0 = k << d
            sp = m >> L
            if small:
                vt = self._vtq[L]
                vtg = self._vtg[L]
                sub = levels - L
                for bidx in range(nb):
                    j = a0 + bidx
                    if not valive[j]:
                        continue
                    cb = vcoef[j]
                    if sp == 2:
                        i = 2 * j - m
                        tl = (verr[i] - cb) / vden[i]
                        tr = (verr[i + 1] + cb) / vden[i + 1]
                        if tl >= tr:
                            vt[j] = tl
                            vtg[j] = -tr
                        else:
                            vt[j] = tr
                            vtg[j] = -tl
                    else:
                        bp0 = j << (sub - 1)
                        nlp = 1 << (sub - 1)
                        bpm = bp0 + (nlp >> 1)
                        for jp in range(bp0, bpm):
                            i = 2 * jp - m
                            tl = (verr[i] - cb) / vden[i]
                            tr = (verr[i + 1] - cb) / vden[i + 1]
                            if tl >= tr:
                                vt[jp] = tl
                                vtg[jp] = -tr
                            else:
                                vt[jp] = tr
                                vtg[jp] = -tl
                        for jp in range(bpm, bp0 + nlp):
                            i = 2 * jp - m
                            tl = (verr[i] + cb) / vden[i]
                            tr = (verr[i + 1] + cb) / vden[i + 1]
                            if tl >= tr:
                                vt[jp] = tl
                                vtg[jp] = -tr
                            else:
                                vt[jp] = tr
                                vtg[jp] = -tl
                        self._rebuild_sc_int(vt, vtg, j, sub - 2)
                    x = vt[j]
                    g = vtg[j]
                    mr = x if x >= g else g
                    vma[j] = mr
                    if mr < vms[j]:
                        vms[j] = mr
                        packf[0] = mr + 0.0
                        heappush(heap, (packi[0] << id_bits) | j)
            else:
                if not alive[a0 : a0 + nb].any():
                    continue
                self._fill_level_terms(L, lo, hi)
                tq = self._tq[L]
                tg = self._tg[L]
                self._rebuild_vec(tq, tg, k, depth - 1, d)
                self._batch_push(tq, tg, a0, nb)

        # Ancestor levels: [lo, hi) lies in one half of the single
        # dirtied block, so the term shift is uniform (+c if k descends
        # from the right child, -c from the left).
        for L in range(Lk - 1, -1, -1):
            a = k >> (Lk - L)
            if not valive[a]:
                continue
            ca = vcoef[a]
            delta = ca if (k >> (Lk - L - 1)) & 1 else -ca
            vt = self._vtq[L]
            vtg = self._vtg[L]
            if small:
                for j in range(lp0, lp1):
                    i = 2 * j - m
                    tl = (verr[i] + delta) / vden[i]
                    tr = (verr[i + 1] + delta) / vden[i + 1]
                    if tl >= tr:
                        vt[j] = tl
                        vtg[j] = -tr
                    else:
                        vt[j] = tr
                        vtg[j] = -tl
                self._rebuild_sc_int(vt, vtg, k, depth - 2)
            else:
                tq = self._tq[L]
                seg = self._lterm[leaf0 : leaf0 + s]
                np.add(err[lo:hi], delta, out=seg)
                seg /= den[lo:hi]
                self._rebuild_vec(tq, self._tg[L], k, depth - 1, 0)
            cx = vt[k]
            cg = vtg[k]
            child = k
            while child > a:
                q = child >> 1
                sib = child ^ 1
                t = vt[sib]
                if t > cx:
                    cx = t
                t = vtg[sib]
                if t > cg:
                    cg = t
                vt[q] = cx
                vtg[q] = cg
                child = q
            mr = cx if cx >= cg else cg
            vma[a] = mr
            if mr < vms[a]:
                vms[a] = mr
                packf[0] = mr + 0.0
                heappush(heap, (packi[0] << id_bits) | a)

        return ex if ex >= eg else eg

    def run_to_exhaustion(self) -> GreedyRun:
        """Discard every node; return the ordered removal sequence.

        Same semantics as calling :meth:`remove_next` until empty, with
        the pop loop inlined and the lazy queue periodically compacted
        (see :meth:`GreedyAbsTree.run_to_exhaustion`).
        """
        initial = self.current_error()
        removals = []
        append = removals.append
        valive = self._valive
        vma = self._vma
        vms = self._vms
        vcoef = self._vcoef
        packf = self._packf
        packi = self._packi
        id_bits = self._id_bits
        id_mask = self._id_mask
        remove_detail = self._remove_detail
        remove_average = self._remove_average
        new = tuple.__new__
        cls = Removal
        alive = self._alive_count
        heap = self._heap
        while alive:
            if len(heap) > 4 * alive + 4096:
                ids = self._alive.nonzero()[0]
                vals = self._ma_arr[ids] + 0.0
                self._minstored[ids] = vals
                heap = ((vals.view(np.int64) << id_bits) | ids).tolist()
                heapify(heap)
                self._heap = heap
            key = heappop(heap)
            while True:
                k = key & id_mask
                if not valive[k]:
                    key = heappop(heap)
                    continue
                packf[0] = vma[k] + 0.0
                current_key = (packi[0] << id_bits) | k
                if key == current_key:
                    break
                if key < current_key:
                    vms[k] = vma[k]
                    key = heappushpop(heap, current_key)
                else:
                    key = heappop(heap)
            value = vcoef[k]
            valive[k] = False
            alive -= 1
            self._alive_count = alive
            if k:
                error_after = remove_detail(k, value)
            else:
                error_after = remove_average(value)
            append(new(cls, (k, value, error_after)))
        return GreedyRun(removals=removals, initial_error=initial)


def greedy_rel_order(
    coefficients: ArrayLike,
    leaf_values: ArrayLike,
    sanity_bound: float = DEFAULT_SANITY_BOUND,
    initial_errors: ArrayLike | None = None,
    include_average: bool = True,
) -> GreedyRun:
    """Run the relative-error greedy engine to exhaustion."""
    tree = GreedyRelTree(coefficients, leaf_values, sanity_bound, initial_errors, include_average)
    return tree.run_to_exhaustion()


def greedy_rel(
    data: ArrayLike, budget: int, sanity_bound: float = DEFAULT_SANITY_BOUND
) -> WaveletSynopsis:
    """Centralized GreedyRel: best max-rel synopsis within ``budget``."""
    if budget < 0:
        raise InvalidInputError("budget must be non-negative")
    values = np.asarray(data, dtype=np.float64)
    coefficients = haar_transform(values)
    run = greedy_rel_order(coefficients, values, sanity_bound)
    step, error = run.best_cut(budget)
    retained = {r.node: r.value for r in run.removals[step:]}
    return WaveletSynopsis(
        n=int(values.shape[0]),
        coefficients=retained,
        meta={
            "algorithm": "GreedyRel",
            "budget": budget,
            "max_rel_error": error,
            "sanity_bound": sanity_bound,
        },
    )
