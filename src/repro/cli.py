"""Command-line interface: build and query wavelet synopses from files.

Examples::

    # Build a max-error synopsis of a column of numbers.
    python -m repro build data.txt --budget 1024 --algorithm dgreedy-abs \
        --output synopsis.json

    # Query it.
    python -m repro query synopsis.json --point 123
    python -m repro query synopsis.json --range 100 199

    # Inspect quality against the original data.
    python -m repro evaluate synopsis.json data.txt
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.algos.minhaarspace import DP_KERNELS
from repro.analysis import sanitizer as _sanitizer
from repro.core.thresholding import ALGORITHMS, build_synopsis
from repro.exceptions import ReproError
from repro.mapreduce.cluster import (
    RUNTIMES,
    ClusterConfig,
    SimulatedCluster,
    make_runtime,
)
from repro.mapreduce.hdfs import FileDataset
from repro.mapreduce.shuffle import DEFAULT_BUFFER_BYTES, SHUFFLE_MODES, ShuffleConfig
from repro.serving import Query, ShardedSynopsisStore
from repro.wavelet.metrics import DEFAULT_SANITY_BOUND
from repro.wavelet.synopsis import WaveletSynopsis

__all__ = ["main"]


def _load_data(path: str) -> np.ndarray:
    """Load a 1-D array from .npy or whitespace/comma-separated text."""
    location = Path(path)
    if not location.exists():
        raise ReproError(f"input file not found: {path}")
    if location.suffix == ".npy":
        data = np.load(location)
    else:
        text = location.read_text().replace(",", " ")
        try:
            data = np.array([float(token) for token in text.split()])
        except ValueError as exc:
            raise ReproError(f"non-numeric token in {path}: {exc}") from exc
    data = np.asarray(data, dtype=np.float64).ravel()
    if data.size == 0:
        raise ReproError(f"no numeric data found in {path}")
    return data


def _load_synopsis(path: str) -> WaveletSynopsis:
    with open(path) as handle:
        return WaveletSynopsis.from_dict(json.load(handle))


def _cmd_build(args: argparse.Namespace) -> int:
    data: FileDataset | np.ndarray
    if args.file_backed:
        if Path(args.data).suffix != ".npy":
            raise ReproError("--file-backed requires a .npy data file")
        data = FileDataset(args.data)
    else:
        data = _load_data(args.data)
    shuffle = ShuffleConfig(
        mode=args.shuffle,
        spill_dir=args.spill_dir,
        buffer_bytes=args.spill_buffer_bytes,
    )
    config = ClusterConfig(speculation=True) if args.speculation else ClusterConfig()
    cluster = SimulatedCluster(
        config=config, runtime=make_runtime(args.runtime, shuffle=shuffle)
    )
    if args.sanitize:
        _sanitizer.activate(_sanitizer.Sanitizer(label=args.runtime))
    try:
        synopsis = build_synopsis(
            data,
            budget=args.budget,
            algorithm=args.algorithm,
            delta=args.delta,
            sanity_bound=args.sanity_bound,
            subtree_leaves=args.subtree_leaves,
            cluster=cluster,
            rho=args.dp_rho,
            dp_kernel=args.dp_kernel,
            layer_plan=args.layer_plan,
        )
    finally:
        if args.sanitize:
            active = _sanitizer.deactivate()
            if active is not None:
                active.write(args.sanitize)
                print(f"wrote sanitizer report to {args.sanitize}", file=sys.stderr)
    if args.trace:
        Path(args.trace).write_text(json.dumps(cluster.log.trace(), indent=2))
        print(
            f"wrote trace ({cluster.log.job_count} jobs) to {args.trace}",
            file=sys.stderr,
        )
    payload = synopsis.to_dict()
    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2))
        print(f"wrote {synopsis.size}-coefficient synopsis to {args.output}")
    else:
        json.dump(payload, sys.stdout, indent=2)
        print()
    if isinstance(data, FileDataset):
        # Out-of-core build: evaluating max_abs would materialize the
        # reconstruction over the whole input, defeating the point.
        quality = ""
    else:
        padded = np.pad(data, (0, synopsis.n - data.size))
        quality = f" max_abs={synopsis.max_abs_error(padded):.4f}"
    print(
        f"algorithm={args.algorithm} N={synopsis.n} size={synopsis.size}{quality}",
        file=sys.stderr,
    )
    if args.shuffle == "external":
        spills = sum(job.shuffle_stats.get("spills", 0) for job in cluster.log.jobs)
        spilled = sum(
            job.shuffle_stats.get("spilled_bytes_encoded", 0)
            for job in cluster.log.jobs
        )
        runs = sum(job.shuffle_stats.get("run_files", 0) for job in cluster.log.jobs)
        print(
            f"shuffle=external spills={spills} run_files={runs} "
            f"spilled_bytes={spilled}",
            file=sys.stderr,
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    synopsis = _load_synopsis(args.synopsis)
    if args.point is not None:
        print(synopsis.point_query(args.point))
    elif args.range is not None:
        lo, hi = args.range
        print(synopsis.range_sum(lo, hi))
    else:
        print("specify --point or --range", file=sys.stderr)
        return 2
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    synopsis = _load_synopsis(args.synopsis)
    data = _load_data(args.data)
    padded = np.zeros(synopsis.n)
    padded[: data.size] = data
    print(f"size     : {synopsis.size}")
    print(f"max_abs  : {synopsis.max_abs_error(padded):.6f}")
    print(f"max_rel  : {synopsis.max_rel_error(padded, args.sanity_bound):.6f}")
    print(f"L2       : {synopsis.l2_error(padded):.6f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    cluster = SimulatedCluster(runtime=make_runtime(args.runtime))
    store_path = Path(args.store)
    if store_path.exists():
        store = ShardedSynopsisStore.load(store_path, cluster=cluster)
    else:
        store = ShardedSynopsisStore(
            shards=args.shards,
            cache_entries=args.cache_entries,
            segment_leaves=args.segment_leaves,
            cluster=cluster,
        )
    for name, data_path in args.create or []:
        version = store.create(
            name,
            _load_data(data_path),
            tier=args.tier,
            budget=args.budget,
            epsilon=args.epsilon,
            delta=args.delta,
            base_leaves=args.base_leaves,
            subtree_leaves=args.subtree_leaves,
            rho=args.dp_rho,
            dp_kernel=args.dp_kernel,
        )
        print(
            f"created {name} v{version.version} tier={version.tier} "
            f"size={version.synopsis.size} guarantee={version.guarantee:.6g}",
            file=sys.stderr,
        )
    scratch = args.rebuild_mode == "scratch"
    for name, data_path in args.append or []:
        version = store.append(name, _load_data(data_path), full_rebuild=scratch)
        print(
            f"appended to {name}: v{version.version} mode={version.stats.mode} "
            f"reused={version.stats.reused_subtrees}/{version.stats.total_subtrees} "
            f"sub-trees",
            file=sys.stderr,
        )
    if args.queries:
        entries = json.loads(Path(args.queries).read_text())
        results = store.batch(
            [
                Query(
                    op=entry["op"],
                    series=entry["series"],
                    index=entry.get("index"),
                    lo=entry.get("lo"),
                    hi=entry.get("hi"),
                )
                for entry in entries
            ]
        )
        payload = [asdict(result) for result in results]
        if args.out:
            Path(args.out).write_text(json.dumps(payload, indent=2))
            print(f"wrote {len(payload)} query results to {args.out}", file=sys.stderr)
        else:
            json.dump(payload, sys.stdout, indent=2)
            print()
    store.save(store_path)
    if args.sanitize:
        report = store.digest_report(label=f"{args.runtime}:{args.rebuild_mode}")
        Path(args.sanitize).write_text(json.dumps(report, indent=2))
        print(
            f"wrote serving digest report ({len(report['jobs'])} versions) "
            f"to {args.sanitize}",
            file=sys.stderr,
        )
    for row in store.report():
        print(
            f"{row['series']}: v{row['version']} tier={row['tier']} "
            f"length={row['length']} coefficients={row['coefficients']} "
            f"guarantee={row['max_abs_guarantee']:.6g}",
            file=sys.stderr,
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Max-error wavelet synopses (SIGMOD'16 reproduction)"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="build a synopsis from a data file")
    build.add_argument("data", help=".npy or text file with one number per token")
    build.add_argument("--budget", type=int, required=True, help="max coefficients B")
    build.add_argument(
        "--algorithm", default="dgreedy-abs", choices=sorted(ALGORITHMS)
    )
    build.add_argument("--delta", type=float, default=1.0, help="DP quantization step")
    build.add_argument(
        "--dp-rho",
        type=float,
        default=0.0,
        help="approximate DP tier coarsening knob: 0 is the exact DP, "
        "rho > 0 inflates the achieved error by at most (1 + rho) while "
        "shrinking M-rows and shuffle bytes (indirect-haar*/dindirect-haar*)",
    )
    build.add_argument(
        "--dp-kernel",
        default="auto",
        choices=sorted(DP_KERNELS),
        help="DP combine kernel: 'auto' dispatches per row size, "
        "'scalar'/'windowed' pin one kernel, 'parallel' adds a thread "
        "pool over each level's sibling sub-trees; all are bit-identical",
    )
    build.add_argument(
        "--layer-plan",
        help="DP band schedule (dindirect-haar* only): 'auto' asks the "
        "adaptive planner for the predicted-makespan minimizer, 'h=K' "
        "pins uniform height-K bands, 'H1,H2,...' (optionally "
        "'@driver') gives explicit bottom-up heights; omitted = the "
        "classic --subtree-leaves decomposition. Bit-identical output "
        "either way at --dp-rho 0",
    )
    build.add_argument(
        "--speculation",
        action="store_true",
        help="enable speculative backup attempts for straggling tasks in "
        "the simulated scheduler (affects simulated makespan only; "
        "results are unchanged)",
    )
    build.add_argument(
        "--sanity-bound", type=float, default=DEFAULT_SANITY_BOUND, help="rel-error S"
    )
    build.add_argument("--subtree-leaves", type=int, default=1024)
    build.add_argument(
        "--runtime",
        default="local",
        choices=sorted(RUNTIMES),
        help="task execution engine: 'local' (sequential, cleanest cost-model "
        "timings), 'threads' (parallel numpy-heavy tasks), 'process' "
        "(parallel GIL-bound tasks)",
    )
    build.add_argument(
        "--shuffle",
        default="memory",
        choices=list(SHUFFLE_MODES),
        help="shuffle discipline: 'memory' (resident partitions) or "
        "'external' (bounded buffer, sorted spill runs, k-way merge); "
        "results are bit-identical either way",
    )
    build.add_argument(
        "--spill-dir",
        help="directory for external-shuffle run files (a system temp "
        "directory when omitted); always left empty afterwards",
    )
    build.add_argument(
        "--spill-buffer-bytes",
        type=int,
        default=DEFAULT_BUFFER_BYTES,
        help="external-shuffle in-memory buffer, in serde-model bytes",
    )
    build.add_argument(
        "--file-backed",
        action="store_true",
        help="read the .npy input through mmap-backed splits instead of "
        "loading it (out-of-core; dgreedy-abs/dgreedy-rel only)",
    )
    build.add_argument("--output", help="write the synopsis JSON here")
    build.add_argument(
        "--trace",
        help="write the run's stage-level trace JSON here (inspect with "
        "`python -m repro.observe`)",
    )
    build.add_argument(
        "--sanitize",
        metavar="REPORT",
        help="hash job outputs, shuffle partitions, and kernel row tables "
        "into this JSON report; compare two runtimes' reports with "
        "`python -m repro.analysis --compare-digests A B`",
    )
    build.set_defaults(handler=_cmd_build)

    query = commands.add_parser("query", help="query a stored synopsis")
    query.add_argument("synopsis", help="synopsis JSON from `repro build`")
    query.add_argument("--point", type=int, help="approximate value at this index")
    query.add_argument(
        "--range", type=int, nargs=2, metavar=("LO", "HI"), help="approximate range sum"
    )
    query.set_defaults(handler=_cmd_query)

    evaluate = commands.add_parser("evaluate", help="error metrics vs the original data")
    evaluate.add_argument("synopsis")
    evaluate.add_argument("data")
    evaluate.add_argument("--sanity-bound", type=float, default=DEFAULT_SANITY_BOUND)
    evaluate.set_defaults(handler=_cmd_evaluate)

    serve = commands.add_parser(
        "serve",
        help="online serving store: create/append series, answer batched queries",
    )
    serve.add_argument("store", help="store JSON (loaded if it exists, else created)")
    serve.add_argument(
        "--create",
        nargs=2,
        action="append",
        metavar=("NAME", "DATA"),
        help="register DATA under NAME and build version 1 (repeatable)",
    )
    serve.add_argument(
        "--append",
        nargs=2,
        action="append",
        metavar=("NAME", "DATA"),
        help="append DATA to series NAME and re-threshold (repeatable)",
    )
    serve.add_argument(
        "--tier",
        default="greedy",
        choices=("greedy", "dp"),
        help="maintenance tier for --create: 'greedy' keeps --budget "
        "coefficients, 'dp' pins an error target (--epsilon, or derived "
        "from --budget)",
    )
    serve.add_argument("--budget", type=int, default=64, help="max coefficients B")
    serve.add_argument(
        "--epsilon", type=float, help="pinned max-abs error target (dp tier)"
    )
    serve.add_argument("--delta", type=float, default=1.0, help="DP quantization step")
    serve.add_argument("--dp-rho", type=float, default=0.0, help="approximate DP knob")
    serve.add_argument("--dp-kernel", default="auto", choices=sorted(DP_KERNELS))
    serve.add_argument(
        "--rebuild-mode",
        default="incremental",
        choices=("incremental", "scratch"),
        help="'incremental' re-thresholds only dirtied sub-trees on append; "
        "'scratch' rebuilds fully (the differential baseline) — results "
        "are identical, only the work differs",
    )
    serve.add_argument(
        "--queries",
        help="JSON file: list of {op, series, index|lo+hi} batched lookups",
    )
    serve.add_argument("--out", help="write query results JSON here (default stdout)")
    serve.add_argument("--shards", type=int, default=8, help="store shard count")
    serve.add_argument(
        "--cache-entries", type=int, default=256, help="reconstruction LRU capacity"
    )
    serve.add_argument(
        "--segment-leaves",
        type=int,
        default=1024,
        help="leaves per cached reconstruction segment",
    )
    serve.add_argument("--base-leaves", type=int, default=1024)
    serve.add_argument("--subtree-leaves", type=int, default=1024)
    serve.add_argument("--runtime", default="local", choices=sorted(RUNTIMES))
    serve.add_argument(
        "--sanitize",
        metavar="REPORT",
        help="write per-version synopsis digests in the sanitizer report "
        "schema; incremental and scratch runs of the same sequence must "
        "compare clean under `python -m repro.analysis --compare-digests`",
    )
    serve.set_defaults(handler=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
