"""Incremental re-thresholding: rebuild only what an append dirtied.

Two maintenance tiers, one per thresholding family:

* :class:`DPMaintainer` — MinHaarSpace at a *pinned* error target.  The
  layered DP's per-sub-tree rows are pure functions of ``(sub-tree
  data, epsilon, delta, kernel)``, so a :class:`~repro.core.dp_framework.
  DPRowCache` carried across builds lets :meth:`~repro.core.dp_framework.
  LayeredDPDriver.bottom_up` re-run only the sub-trees overlapping the
  appended leaf range (:func:`~repro.core.partitioning.dirty_subtrees`)
  and re-merge through the same finalize/traceback — **bit-identical**
  to a from-scratch build at the same parameters (``rho = 0``; the
  differential suite in ``tests/test_serving_incremental.py`` proves it
  across all three runtimes).
* :class:`GreedyMaintainer` — a *compositional* greedy tier.  Exact
  incremental DGreedyAbs is impossible (one new average perturbs every
  root coefficient and hence every base sub-tree's incoming error), so
  the serving tier decomposes ``d_i = avg_j + detail_i`` instead: each
  base sub-tree is greedy-thresholded in isolation with zero incoming
  error (:func:`~repro.core.dgreedy.base_subtree_greedy`), the root
  sub-tree over the averages (:func:`~repro.core.dgreedy.
  root_subtree_greedy`), and the published guarantee is the triangle
  inequality's ``e_root + max_j e_j`` (proof sketch in
  docs/SERVING.md).  An append recomputes only the dirtied base runs
  plus the (cheap, ``R``-element) root run; cached runs are pure
  functions of their slice, so incremental == scratch bit-for-bit.

Growing ``N`` past the current power of two invalidates every cached
sub-tree (the tree re-shapes), so both maintainers detect the length
change and fall back to a full rebuild — amortized-rare under append
workloads (doubling happens ``O(log N)`` times).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike

from repro.algos.greedy_abs import greedy_abs
from repro.algos.minhaarspace import approx_params, min_haar_space
from repro.core.dgreedy import base_subtree_greedy, root_subtree_greedy
from repro.core.dp_framework import DPRowCache, LayeredDPDriver, MinHaarSpaceDP
from repro.core.partitioning import (
    dirty_base_range,
    local_to_global,
    root_base_partition,
)
from repro.exceptions import InfeasibleErrorBound, InvalidInputError
from repro.mapreduce.cluster import SimulatedCluster
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import is_power_of_two

__all__ = ["MaintenanceStats", "GreedyMaintainer", "DPMaintainer"]

#: Feasibility-escalation bound: the DP maintainer doubles a pinned
#: epsilon at most this many times before giving up (2^64 covers any
#: float64 data range).
_MAX_EPSILON_ESCALATIONS = 64


@dataclass(frozen=True)
class MaintenanceStats:
    """What one rebuild actually recomputed.

    ``mode`` is ``"full"`` (every sub-tree ran), ``"incremental"`` (only
    the dirty slice ran), or ``"centralized"`` (the series is too small
    for a sub-tree partition and was rebuilt whole).
    """

    mode: str
    dirty_subtrees: int
    total_subtrees: int
    reused_subtrees: int


class GreedyMaintainer:
    """Compositional greedy tier: per-sub-tree runs cached across appends."""

    tier = "greedy"

    def __init__(self, budget: int, base_leaves: int = 1024) -> None:
        if budget < 0:
            raise InvalidInputError("budget must be non-negative")
        if not is_power_of_two(base_leaves) or base_leaves < 2:
            raise InvalidInputError("base_leaves must be a power of two >= 2")
        self.budget = budget
        self.base_leaves = base_leaves
        self._n = 0
        self._complete = False
        self._averages = np.empty(0, dtype=np.float64)
        self._local_errors = np.empty(0, dtype=np.float64)
        self._local_retained: list[dict[int, float]] = []

    def _allocation(self, n: int, root_size: int) -> tuple[int, int]:
        """Deterministic budget split: (root budget, per-sub-tree budget).

        Root-first: the root tree is only ``R`` of the ``N`` slots, and
        retaining it *fully* makes the cross-sub-tree term of the
        guarantee vanish (``e_root = 0``), leaving just ``max_j e_j`` —
        so the root gets up to ``R`` coefficients before the remainder
        splits evenly across base sub-trees.  A pure function of
        ``(budget, n, root_size)``, so incremental and scratch builds
        always allocate identically.
        """
        if self.budget <= 0:
            return 0, 0
        b_root = min(self.budget, root_size)
        return b_root, (self.budget - b_root) // root_size

    def build(
        self,
        values: ArrayLike,
        dirty: tuple[int, int] | None = None,
        cluster: SimulatedCluster | None = None,
    ) -> tuple[WaveletSynopsis, MaintenanceStats]:
        """(Re)build the synopsis; ``dirty`` is the appended leaf range.

        ``values`` is the full padded buffer.  ``dirty=None`` — or any
        state mismatch (length change, no complete prior build) — forces
        a full rebuild.  ``cluster`` is accepted for interface symmetry
        with :class:`DPMaintainer`; this tier runs driver-side.
        """
        data = np.asarray(values, dtype=np.float64)
        if data.ndim != 1 or not is_power_of_two(int(data.shape[0])):
            raise InvalidInputError("serving buffer length must be a power of two")
        n = int(data.shape[0])
        if n != self._n or not self._complete:
            dirty = None
        if n < 4:
            self._n = n
            self._complete = False
            synopsis = greedy_abs(data, self.budget)
            guarantee = float(synopsis.meta["max_abs_error"])
            synopsis.meta.update(
                {"algorithm": "ServingGreedy", "serving_guarantee": guarantee}
            )
            return synopsis, MaintenanceStats("centralized", 1, 1, 0)

        base = self.base_leaves if self.base_leaves < n else n // 2
        root_size, _ = root_base_partition(n, base)
        if dirty is None:
            first, last = 0, root_size
            if n != self._n or len(self._local_retained) != root_size:
                self._n = n
                self._averages = np.zeros(root_size, dtype=np.float64)
                self._local_errors = np.zeros(root_size, dtype=np.float64)
                self._local_retained = [{} for _ in range(root_size)]
        else:
            first, last = dirty_base_range(n, base, dirty[0], dirty[1])

        b_root, b_base = self._allocation(n, root_size)
        for j in range(first, last):
            retained, error, average = base_subtree_greedy(
                data[j * base : (j + 1) * base], b_base
            )
            self._local_retained[j] = retained
            self._local_errors[j] = error
            self._averages[j] = average
        root_retained, root_error = root_subtree_greedy(self._averages, b_root)

        coefficients: dict[int, float] = dict(root_retained)
        for j, retained in enumerate(self._local_retained):
            subtree_root = root_size + j
            for node, value in retained.items():
                coefficients[local_to_global(subtree_root, node)] = value
        worst_local = float(np.max(self._local_errors))
        guarantee = float(root_error) + worst_local
        self._complete = True
        dirty_count = last - first
        synopsis = WaveletSynopsis(
            n=n,
            coefficients=coefficients,
            meta={
                "algorithm": "ServingGreedy",
                "budget": self.budget,
                "base_leaves": base,
                "serving_guarantee": guarantee,
                "root_error": float(root_error),
                "worst_local_error": worst_local,
            },
        )
        mode = "full" if dirty_count == root_size else "incremental"
        return synopsis, MaintenanceStats(
            mode, dirty_count, root_size, root_size - dirty_count
        )


class DPMaintainer:
    """Pinned-epsilon MinHaarSpace tier with a row cache across appends."""

    tier = "dp"

    def __init__(
        self,
        epsilon: float,
        delta: float = 1.0,
        subtree_leaves: int = 1024,
        kernel: str = "auto",
        rho: float = 0.0,
    ) -> None:
        if epsilon < 0:
            raise InvalidInputError("epsilon must be non-negative")
        if delta <= 0:
            raise InvalidInputError("delta must be strictly positive")
        if not is_power_of_two(subtree_leaves) or subtree_leaves < 2:
            raise InvalidInputError("subtree_leaves must be a power of two >= 2")
        if rho < 0:
            raise InvalidInputError("rho must be non-negative")
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.subtree_leaves = subtree_leaves
        self.kernel = kernel
        self.rho = float(rho)
        self._n = 0
        self._complete = False
        self._cache = DPRowCache()

    def build(
        self,
        values: ArrayLike,
        dirty: tuple[int, int] | None = None,
        cluster: SimulatedCluster | None = None,
    ) -> tuple[WaveletSynopsis, MaintenanceStats]:
        """(Re)build at the pinned epsilon; ``dirty`` is the appended range.

        When appended data makes the pinned target infeasible the
        maintainer *escalates*: epsilon doubles (cache cleared, full
        rebuild) until the DP is feasible again — a deterministic pure
        function of ``(data, initial epsilon)``, so incremental and
        scratch stores escalate identically (docs/SERVING.md).
        """
        data = np.asarray(values, dtype=np.float64)
        if data.ndim != 1 or not is_power_of_two(int(data.shape[0])):
            raise InvalidInputError("serving buffer length must be a power of two")
        n = int(data.shape[0])
        cluster = cluster or SimulatedCluster()
        if n != self._n or not self._complete:
            self._cache.clear()
            self._n = n
            dirty = None
        for _attempt in range(_MAX_EPSILON_ESCALATIONS):
            try:
                return self._build_once(data, n, cluster, dirty)
            except InfeasibleErrorBound:
                self.epsilon *= 2.0
                self._cache.clear()
                self._complete = False
                dirty = None
        raise InfeasibleErrorBound(
            f"serving DP error target did not become feasible within "
            f"{_MAX_EPSILON_ESCALATIONS} doublings (epsilon={self.epsilon})"
        )

    def _build_once(
        self,
        data: np.ndarray,
        n: int,
        cluster: SimulatedCluster,
        dirty: tuple[int, int] | None,
    ) -> tuple[WaveletSynopsis, MaintenanceStats]:
        epsilon_dp, delta_eff = approx_params(self.epsilon, self.delta, n, self.rho)
        if n == 1:
            with cluster.driver():
                solution = min_haar_space(
                    data, self.epsilon, self.delta, rho=self.rho, kernel=self.kernel
                )
            synopsis = solution.synopsis
            synopsis.meta.update(
                {
                    "algorithm": "ServingDP",
                    "serving_guarantee": epsilon_dp,
                    "epsilon_target": self.epsilon,
                }
            )
            self._complete = False
            return synopsis, MaintenanceStats("centralized", 1, 1, 0)

        dp = MinHaarSpaceDP(epsilon_dp, delta_eff, kernel=self.kernel)
        driver = LayeredDPDriver(dp, cluster, self.subtree_leaves)
        result = driver.bottom_up(data, cache=self._cache, dirty_range=dirty)
        with cluster.driver():
            size, error, chosen = dp.finalize(result.top_row, result.overall_average)
        coefficients: dict[int, float] = {}
        if chosen != 0:
            coefficients[0] = chosen * delta_eff
        coefficients.update(driver.top_down(n, result.row_store, chosen))
        self._complete = True

        height = min(self.subtree_leaves.bit_length() - 1, n.bit_length() - 1)
        leaf_count = 1 << height
        total = n // leaf_count
        if dirty is None:
            dirty_count = total
        else:
            first, last = dirty_base_range(n, leaf_count, dirty[0], dirty[1])
            dirty_count = last - first
        synopsis = WaveletSynopsis(
            n=n,
            coefficients=coefficients,
            meta={
                "algorithm": "ServingDP",
                "epsilon_target": self.epsilon,
                "delta": delta_eff,
                "rho": self.rho,
                "dp_size": size,
                "max_abs_error": error,
                "serving_guarantee": epsilon_dp,
            },
        )
        mode = "full" if dirty_count == total else "incremental"
        return synopsis, MaintenanceStats(mode, dirty_count, total, total - dirty_count)
