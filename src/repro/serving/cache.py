"""LRU reconstruction cache for the serving layer's point queries.

Point lookups against a wavelet synopsis cost ``O(log N)`` each via the
root-to-leaf path sum; a serving workload that hammers a hot region pays
that log factor per query.  The cache instead materializes the leaf
values of one error-(sub-)tree *segment* at a time — ``segment_leaves``
values per inverse transform — and answers subsequent points in that
segment by array lookup.

Entries are keyed ``(name, version, segment_index)``: bumping a series'
version on append makes every stale entry unreachable (natural miss),
and :meth:`ReconstructionCache.invalidate` additionally purges the dead
entries eagerly so an append frees their memory immediately rather than
waiting for LRU pressure.

A segment is reconstructed from the synopsis alone: the sub-tree rooted
at ``n / seg_len + segment_index`` owns the segment's leaves, the
ancestor path contributes one constant (:func:`~repro.core.partitioning.
incoming_value`), and the in-subtree coefficients map to local detail
slots (:func:`~repro.core.dindirect.global_to_local`) — one
``O(seg_len)`` inverse transform reproduces ``data[start : start +
seg_len]`` as the synopsis approximates it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np
from numpy.typing import NDArray

from repro.core.dindirect import global_to_local, incoming_value
from repro.exceptions import InvalidInputError
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import inverse_haar_transform, is_power_of_two

__all__ = ["ReconstructionCache", "reconstruct_segment"]


def reconstruct_segment(
    synopsis: WaveletSynopsis, start: int, seg_len: int
) -> NDArray[np.float64]:
    """Reconstruct ``seg_len`` approximate leaves starting at ``start``.

    ``seg_len`` must be a power of two dividing ``synopsis.n`` and
    ``start`` must be segment-aligned.
    """
    n = synopsis.n
    if seg_len == n:
        return synopsis.reconstruct()
    if not is_power_of_two(seg_len) or n % seg_len or start % seg_len:
        raise InvalidInputError(
            f"segment [{start}, {start + seg_len}) is not aligned for N={n}"
        )
    subtree_root = n // seg_len + start // seg_len
    local = np.zeros(seg_len, dtype=np.float64)
    local[0] = incoming_value(synopsis.coefficients, subtree_root, n)
    for node, value in synopsis.coefficients.items():
        local_node = global_to_local(subtree_root, node)
        if local_node is not None and local_node < seg_len:
            local[local_node] = value
    return inverse_haar_transform(local)


class ReconstructionCache:
    """Bounded LRU of reconstructed segments, safe under concurrent readers.

    The lock guards only dict bookkeeping; reconstruction itself runs
    outside it, so two threads missing the same segment may both build
    it — they build the identical array (pure function of an immutable
    synopsis), and last-write-wins is harmless.
    """

    def __init__(self, max_entries: int = 256, segment_leaves: int = 1024) -> None:
        if max_entries < 1:
            raise InvalidInputError("cache must hold at least one entry")
        if not is_power_of_two(segment_leaves) or segment_leaves < 2:
            raise InvalidInputError("segment_leaves must be a power of two >= 2")
        self.max_entries = max_entries
        self.segment_leaves = segment_leaves
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, int, int], NDArray[np.float64]] = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def segment_length(self, n: int) -> int:
        """Effective segment size for a series of ``n`` leaves."""
        return min(self.segment_leaves, n)

    def point(
        self, name: str, version: int, synopsis: WaveletSynopsis, index: int
    ) -> float:
        """Approximate value at ``index``, via the cached segment."""
        seg_len = self.segment_length(synopsis.n)
        segment = self.segment(name, version, synopsis, index // seg_len)
        return float(segment[index % seg_len])

    def segment(
        self, name: str, version: int, synopsis: WaveletSynopsis, segment_index: int
    ) -> NDArray[np.float64]:
        """The reconstructed segment, from cache or built on miss."""
        key = (name, version, segment_index)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return cached
        seg_len = self.segment_length(synopsis.n)
        built = reconstruct_segment(synopsis, segment_index * seg_len, seg_len)
        with self._lock:
            self._misses += 1
            self._entries[key] = built
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
        return built

    def invalidate(self, name: str) -> int:
        """Drop every entry of ``name`` (any version); returns the count."""
        with self._lock:
            dead = [key for key in self._entries if key[0] == name]
            for key in dead:
                del self._entries[key]
            return len(dead)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def counters(self) -> dict[str, int]:
        """Snapshot of hit/miss/eviction/size counters."""
        with self._lock:
            return {
                "cache_hits": self._hits,
                "cache_misses": self._misses,
                "cache_evictions": self._evictions,
                "cache_entries": len(self._entries),
            }
