"""Online AQP serving layer: sharded synopsis store with incremental
re-thresholding.

The paper builds synopses offline; this package serves them online —
concurrent reads via versioned snapshots and a reconstruction LRU,
appends via incremental re-thresholding that rebuilds only the dirtied
sub-trees (docs/SERVING.md).
"""

from repro.serving.cache import ReconstructionCache, reconstruct_segment
from repro.serving.incremental import DPMaintainer, GreedyMaintainer, MaintenanceStats
from repro.serving.store import Query, QueryResult, SeriesVersion, ShardedSynopsisStore

__all__ = [
    "ReconstructionCache",
    "reconstruct_segment",
    "DPMaintainer",
    "GreedyMaintainer",
    "MaintenanceStats",
    "Query",
    "QueryResult",
    "SeriesVersion",
    "ShardedSynopsisStore",
]
