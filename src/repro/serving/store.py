"""Sharded, versioned synopsis store: the online AQP serving layer.

:class:`ShardedSynopsisStore` grows the flat :class:`repro.aqp.
SynopsisStore` into a serving subsystem:

* **Sharding** — series hash-partition across ``shards`` buckets by
  ``crc32(name)`` (never builtin ``hash``: it is salted per process and
  would shard differently across runs).  Each shard has its own lock, so
  lookups on different shards never contend.
* **Versioned snapshots** — every (re)build publishes an immutable
  :class:`SeriesVersion` by a single reference swap under the shard
  lock.  Readers resolve a snapshot once and then work lock-free on
  frozen state; a concurrent append can never expose a torn synopsis,
  only flip readers atomically from version ``v`` to ``v + 1``.  Each
  snapshot carries a :func:`~repro.analysis.sanitizer.stable_digest` of
  its payload, and the store keeps a version→digest history compatible
  with ``python -m repro.analysis --compare-digests``.
* **Batched queries** — :meth:`ShardedSynopsisStore.batch` resolves one
  snapshot per distinct series for the whole batch, so a batch observes
  a single consistent version per series.
* **Incremental re-thresholding** — appends route through the
  :mod:`repro.serving.incremental` maintainers: only the sub-trees
  overlapping the appended range are re-thresholded, then re-merged
  through the root pass, preserving each tier's guarantee
  (docs/SERVING.md).
* **Reconstruction LRU** — point lookups go through a
  :class:`~repro.serving.cache.ReconstructionCache` keyed
  ``(name, version, segment)``; appends invalidate eagerly.

Write concurrency is per series: a per-series mutation lock serializes
appends to the same series while appends to different series (and all
reads) proceed in parallel.
"""

from __future__ import annotations

import json
import threading
import zlib
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

import numpy as np
from numpy.typing import ArrayLike

from repro.analysis.sanitizer import stable_digest
from repro.core.thresholding import serving_error_target
from repro.data.loader import pad_to_power_of_two
from repro.exceptions import InvalidInputError, ReproError
from repro.mapreduce.cluster import SimulatedCluster
from repro.serving.cache import ReconstructionCache
from repro.serving.incremental import (
    DPMaintainer,
    GreedyMaintainer,
    MaintenanceStats,
)
from repro.wavelet.synopsis import WaveletSynopsis

__all__ = ["Query", "QueryResult", "SeriesVersion", "ShardedSynopsisStore"]

#: Query operations understood by :meth:`ShardedSynopsisStore.batch`.
QUERY_OPS = ("point", "range_sum", "range_avg")


@dataclass(frozen=True)
class Query:
    """One lookup in a batch; ranges are inclusive ``[lo, hi]``."""

    op: str
    series: str
    index: int | None = None
    lo: int | None = None
    hi: int | None = None


@dataclass(frozen=True)
class QueryResult:
    """Answer plus the guarantee and version it was served under.

    ``lower``/``upper`` are deterministic bounds on the exact answer
    derived from the per-value guarantee (for sums, scaled by the range
    width).
    """

    series: str
    op: str
    value: float
    version: int
    guarantee: float
    lower: float
    upper: float


@dataclass(frozen=True)
class SeriesVersion:
    """Immutable published state of one series at one version."""

    name: str
    version: int
    tier: str
    synopsis: WaveletSynopsis
    length: int
    guarantee: float
    digest: str
    stats: MaintenanceStats


@dataclass
class _Series:
    """Mutable per-series state; ``lock`` serializes appends."""

    name: str
    tier: str
    params: dict[str, Any]
    maintainer: GreedyMaintainer | DPMaintainer
    buffer: np.ndarray
    length: int
    current: SeriesVersion
    lock: threading.Lock = field(default_factory=threading.Lock)


def _digest(synopsis: WaveletSynopsis, length: int, guarantee: float) -> str:
    """Canonical digest of a published version's observable payload."""
    return stable_digest(
        {
            "n": synopsis.n,
            "coefficients": synopsis.coefficients,
            "length": length,
            "guarantee": guarantee,
        }
    )


class ShardedSynopsisStore:
    """Concurrent, versioned serving store over incremental maintainers."""

    def __init__(
        self,
        shards: int = 8,
        cache_entries: int = 256,
        segment_leaves: int = 1024,
        cluster: SimulatedCluster | None = None,
    ) -> None:
        if shards < 1:
            raise InvalidInputError("store needs at least one shard")
        self.shards = shards
        self._buckets: list[dict[str, _Series]] = [{} for _ in range(shards)]
        self._shard_locks = [threading.Lock() for _ in range(shards)]
        self.cache = ReconstructionCache(cache_entries, segment_leaves)
        self._cluster = cluster or SimulatedCluster()
        self._counters_lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._history_lock = threading.Lock()
        self._history: list[dict[str, Any]] = []

    # -- sharding -----------------------------------------------------------

    def _shard_of(self, name: str) -> int:
        return zlib.crc32(name.encode("utf-8")) % self.shards

    def _series(self, name: str) -> _Series:
        shard = self._shard_of(name)
        with self._shard_locks[shard]:
            series = self._buckets[shard].get(name)
        if series is None:
            raise ReproError(
                f"unknown series {name!r}; available: {self.names()}"
            )
        return series

    def names(self) -> list[str]:
        """Registered series names, sorted, across all shards."""
        found: list[str] = []
        for shard, bucket in enumerate(self._buckets):
            with self._shard_locks[shard]:
                found.extend(bucket)
        return sorted(found)

    def __contains__(self, name: str) -> bool:
        shard = self._shard_of(name)
        with self._shard_locks[shard]:
            return name in self._buckets[shard]

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets)

    # -- bookkeeping --------------------------------------------------------

    def _count(self, key: str, by: int = 1) -> None:
        with self._counters_lock:
            self._counters[key] = self._counters.get(key, 0) + by

    def counters(self) -> dict[str, int]:
        """Operation counters merged with the reconstruction cache's."""
        with self._counters_lock:
            merged = dict(self._counters)
        merged.update(self.cache.counters())
        return merged

    def _publish(self, series: _Series, version: SeriesVersion) -> None:
        shard = self._shard_of(series.name)
        with self._shard_locks[shard]:
            series.current = version
            self._buckets[shard][series.name] = series
        with self._history_lock:
            self._history.append(
                {
                    "series": version.name,
                    "version": version.version,
                    "digest": version.digest,
                    "mode": version.stats.mode,
                }
            )
        self._count(f"{version.stats.mode}_rebuilds")

    def history(self) -> list[dict[str, Any]]:
        """Chronological (series, version, digest, mode) publication log."""
        with self._history_lock:
            return [dict(entry) for entry in self._history]

    def digest_report(self, label: str = "serving") -> dict[str, Any]:
        """Version digests in the sanitizer's report schema.

        Comparable with ``python -m repro.analysis --compare-digests``:
        an incremental store and a scratch store fed the same create /
        append sequence must produce identical reports.
        """
        jobs = [
            {"job": f"serving.{e['series']}.v{e['version']}", "output": e["digest"]}
            for e in self.history()
        ]
        return {"schema": 1, "label": label, "jobs": jobs, "kernel_rows": []}

    # -- registration and maintenance ---------------------------------------

    def create(
        self,
        name: str,
        data: ArrayLike,
        tier: str = "greedy",
        budget: int = 64,
        epsilon: float | None = None,
        delta: float = 1.0,
        base_leaves: int = 1024,
        subtree_leaves: int = 1024,
        rho: float = 0.0,
        dp_kernel: str = "auto",
    ) -> SeriesVersion:
        """Register ``data`` under ``name`` and build version 1.

        ``tier="greedy"`` keeps ``budget`` coefficients; ``tier="dp"``
        pins an error target — ``epsilon`` directly, or derived from
        ``budget`` via :func:`~repro.core.thresholding.
        serving_error_target` when omitted.  Re-creating a name replaces
        the series (version numbering restarts).
        """
        values = np.asarray(data, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise InvalidInputError("series must be a non-empty 1-D array")
        maintainer: GreedyMaintainer | DPMaintainer
        if tier == "greedy":
            maintainer = GreedyMaintainer(budget, base_leaves=base_leaves)
            params: dict[str, Any] = {"budget": budget, "base_leaves": base_leaves}
        elif tier == "dp":
            if epsilon is None:
                epsilon = serving_error_target(
                    values, budget, delta, rho=rho, dp_kernel=dp_kernel
                )
            maintainer = DPMaintainer(
                epsilon,
                delta=delta,
                subtree_leaves=subtree_leaves,
                kernel=dp_kernel,
                rho=rho,
            )
            params = {
                "epsilon": epsilon,
                "delta": delta,
                "subtree_leaves": subtree_leaves,
                "kernel": dp_kernel,
                "rho": rho,
            }
        else:
            raise InvalidInputError(
                f"unknown serving tier {tier!r}; choose 'greedy' or 'dp'"
            )
        buffer = pad_to_power_of_two(values)
        series = _Series(
            name=name,
            tier=tier,
            params=params,
            maintainer=maintainer,
            buffer=buffer,
            length=int(values.size),
            current=None,  # type: ignore[arg-type]  # published below before any reader can see it
        )
        self.cache.invalidate(name)
        return self._rebuild(series, dirty=None)

    def _rebuild(
        self, series: _Series, dirty: tuple[int, int] | None
    ) -> SeriesVersion:
        synopsis, stats = series.maintainer.build(series.buffer, dirty, self._cluster)
        guarantee = float(synopsis.meta["serving_guarantee"])
        synopsis.meta["series"] = series.name
        synopsis.meta["original_length"] = series.length
        synopsis.meta["max_abs_guarantee"] = guarantee
        previous = series.current
        version = 1 if previous is None else previous.version + 1
        published = SeriesVersion(
            name=series.name,
            version=version,
            tier=series.tier,
            synopsis=synopsis,
            length=series.length,
            guarantee=guarantee,
            digest=_digest(synopsis, series.length, guarantee),
            stats=stats,
        )
        self._publish(series, published)
        return published

    def append(
        self, name: str, values: ArrayLike, full_rebuild: bool = False
    ) -> SeriesVersion:
        """Append ``values`` to ``name`` and publish a new version.

        Appends that fit the current power-of-two buffer re-threshold
        only the dirtied sub-trees; growing past the buffer (or passing
        ``full_rebuild=True``, the differential baseline) rebuilds from
        scratch.  Concurrent appends to the same series serialize;
        readers continue on the previous version until the atomic swap.
        """
        fresh = np.asarray(values, dtype=np.float64)
        if fresh.ndim != 1 or fresh.size == 0:
            raise InvalidInputError("appended values must be a non-empty 1-D array")
        series = self._series(name)
        with series.lock:
            old_length = series.length
            new_length = old_length + int(fresh.size)
            if new_length <= series.buffer.shape[0]:
                series.buffer[old_length:new_length] = fresh
                dirty: tuple[int, int] | None = (old_length, new_length)
            else:
                grown = np.zeros(
                    1 << (new_length - 1).bit_length(), dtype=np.float64
                )
                grown[:old_length] = series.buffer[:old_length]
                grown[old_length:new_length] = fresh
                series.buffer = grown
                dirty = None
            series.length = new_length
            if full_rebuild:
                dirty = None
            self._count("appends")
            published = self._rebuild(series, dirty)
        self.cache.invalidate(name)
        return published

    # -- reads --------------------------------------------------------------

    def snapshot(self, name: str) -> SeriesVersion:
        """The current immutable version of ``name``."""
        return self._series(name).current

    def guarantee(self, name: str) -> float:
        """Published per-value max-abs guarantee of ``name``."""
        return self.snapshot(name).guarantee

    @staticmethod
    def _clip(snapshot: SeriesVersion, lo: int, hi: int) -> None:
        if lo > hi:
            raise InvalidInputError(f"empty range [{lo}, {hi}]")
        if lo < 0 or hi >= snapshot.length:
            raise InvalidInputError(
                f"range [{lo}, {hi}] out of bounds for series of length "
                f"{snapshot.length}"
            )

    def _answer(self, query: Query, snapshot: SeriesVersion) -> QueryResult:
        if query.op == "point":
            if query.index is None:
                raise InvalidInputError("point query needs an index")
            self._clip(snapshot, query.index, query.index)
            value = self.cache.point(
                snapshot.name, snapshot.version, snapshot.synopsis, query.index
            )
            slack = snapshot.guarantee
        elif query.op in ("range_sum", "range_avg"):
            if query.lo is None or query.hi is None:
                raise InvalidInputError(f"{query.op} query needs lo and hi")
            self._clip(snapshot, query.lo, query.hi)
            if query.op == "range_sum":
                value = snapshot.synopsis.range_sum(query.lo, query.hi)
                slack = (query.hi - query.lo + 1) * snapshot.guarantee
            else:
                value = snapshot.synopsis.range_avg(query.lo, query.hi)
                slack = snapshot.guarantee
        else:
            raise InvalidInputError(
                f"unknown query op {query.op!r}; choose one of {QUERY_OPS}"
            )
        return QueryResult(
            series=snapshot.name,
            op=query.op,
            value=float(value),
            version=snapshot.version,
            guarantee=snapshot.guarantee,
            lower=float(value) - slack,
            upper=float(value) + slack,
        )

    def batch(self, queries: list[Query] | tuple[Query, ...]) -> list[QueryResult]:
        """Answer a batch; one snapshot per distinct series for the batch.

        All results for a given series therefore share a version, even
        if an append lands mid-batch.
        """
        snapshots: dict[str, SeriesVersion] = {}
        results: list[QueryResult] = []
        for query in queries:
            snapshot = snapshots.get(query.series)
            if snapshot is None:
                snapshot = self.snapshot(query.series)
                snapshots[query.series] = snapshot
            results.append(self._answer(query, snapshot))
            self._count(f"{query.op}_queries")
        self._count("batches")
        self._count("queries", len(results))
        return results

    def point(self, name: str, index: int) -> float:
        """Approximate value of one element (cache-served)."""
        return self.batch([Query("point", name, index=index)])[0].value

    def range_sum(self, name: str, lo: int, hi: int) -> float:
        """Approximate sum over the inclusive range ``[lo, hi]``."""
        return self.batch([Query("range_sum", name, lo=lo, hi=hi)])[0].value

    def range_avg(self, name: str, lo: int, hi: int) -> float:
        """Approximate average over the inclusive range ``[lo, hi]``."""
        return self.batch([Query("range_avg", name, lo=lo, hi=hi)])[0].value

    def range_sum_bounds(self, name: str, lo: int, hi: int) -> tuple[float, float]:
        """Deterministic bounds on the exact range sum."""
        result = self.batch([Query("range_sum", name, lo=lo, hi=hi)])[0]
        return result.lower, result.upper

    def report(self) -> list[dict[str, Any]]:
        """Per-series summary: version, size, ratio, guarantee, tier."""
        rows: list[dict[str, Any]] = []
        for name in self.names():
            snapshot = self.snapshot(name)
            rows.append(
                {
                    "series": name,
                    "version": snapshot.version,
                    "tier": snapshot.tier,
                    "length": snapshot.length,
                    "coefficients": snapshot.synopsis.size,
                    "ratio": snapshot.length / max(snapshot.synopsis.size, 1),
                    "max_abs_guarantee": snapshot.guarantee,
                    "rebuild_mode": snapshot.stats.mode,
                    "reused_subtrees": snapshot.stats.reused_subtrees,
                }
            )
        return rows

    # -- persistence --------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialize series data + tier parameters + current synopses.

        Maintainer caches (DP rows, per-sub-tree greedy runs) are *not*
        serialized — a loaded store lazily falls back to one full
        rebuild on the first append to each series.
        """
        entries: dict[str, Any] = {}
        for name in self.names():
            series = self._series(name)
            with series.lock:
                params = dict(series.params)
                if isinstance(series.maintainer, DPMaintainer):
                    # persist the post-escalation target, not the original
                    params["epsilon"] = series.maintainer.epsilon
                entries[name] = {
                    "tier": series.tier,
                    "params": params,
                    "data": series.buffer[: series.length].tolist(),
                    "version": series.current.version,
                    "synopsis": series.current.synopsis.to_dict(),
                    "stats": asdict(series.current.stats),
                }
        payload = {
            "schema": 1,
            "shards": self.shards,
            "cache_entries": self.cache.max_entries,
            "segment_leaves": self.cache.segment_leaves,
            "series": entries,
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(
        cls, path: str | Path, cluster: SimulatedCluster | None = None
    ) -> "ShardedSynopsisStore":
        """Inverse of :meth:`save` (maintainer caches start cold)."""
        payload = json.loads(Path(path).read_text())
        store = cls(
            shards=int(payload["shards"]),
            cache_entries=int(payload["cache_entries"]),
            segment_leaves=int(payload["segment_leaves"]),
            cluster=cluster,
        )
        for name, entry in payload["series"].items():
            params = entry["params"]
            maintainer: GreedyMaintainer | DPMaintainer
            if entry["tier"] == "greedy":
                maintainer = GreedyMaintainer(
                    int(params["budget"]), base_leaves=int(params["base_leaves"])
                )
            else:
                maintainer = DPMaintainer(
                    float(params["epsilon"]),
                    delta=float(params["delta"]),
                    subtree_leaves=int(params["subtree_leaves"]),
                    kernel=str(params["kernel"]),
                    rho=float(params["rho"]),
                )
            data = np.asarray(entry["data"], dtype=np.float64)
            synopsis = WaveletSynopsis.from_dict(entry["synopsis"])
            guarantee = float(synopsis.meta["serving_guarantee"])
            stats = MaintenanceStats(**entry["stats"])
            series = _Series(
                name=name,
                tier=entry["tier"],
                params=params,
                maintainer=maintainer,
                buffer=pad_to_power_of_two(data),
                length=int(data.size),
                current=None,  # type: ignore[arg-type]  # published below before any reader can see it
            )
            published = SeriesVersion(
                name=name,
                version=int(entry["version"]),
                tier=entry["tier"],
                synopsis=synopsis,
                length=int(data.size),
                guarantee=guarantee,
                digest=_digest(synopsis, int(data.size), guarantee),
                stats=stats,
            )
            shard = store._shard_of(name)
            with store._shard_locks[shard]:
                series.current = published
                store._buckets[shard][name] = series
        return store
