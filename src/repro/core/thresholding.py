"""The public facade: one entry point over every thresholding algorithm.

:func:`build_synopsis` dispatches on algorithm name and metric, pads
non-power-of-two inputs, and wires a simulated cluster through the
distributed algorithms.  Downstream users who just want "a good max-error
synopsis of this array" start here; the per-algorithm modules remain
available for finer control.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.algos.conventional import conventional_synopsis
from repro.algos.greedy_abs import greedy_abs
from repro.algos.greedy_rel import greedy_rel
from repro.algos.indirect_haar import indirect_haar
from repro.core.conventional_dist import (
    con_synopsis,
    h_wtopk_synopsis,
    send_coef_synopsis,
    send_v_synopsis,
)
from repro.core.dgreedy import d_greedy_abs, d_greedy_rel
from repro.core.dindirect import d_indirect_haar
from repro.data.loader import pad_to_power_of_two
from repro.exceptions import InvalidInputError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.hdfs import FileDataset
from repro.wavelet.metrics import DEFAULT_SANITY_BOUND
from repro.wavelet.synopsis import WaveletSynopsis

__all__ = ["ALGORITHMS", "build_synopsis", "serving_error_target"]

#: Algorithm registry: name -> (metric, distributed?).
ALGORITHMS = {
    "greedy-abs": ("max_abs", False),
    "greedy-rel": ("max_rel", False),
    "indirect-haar": ("max_abs", False),
    "indirect-haar-restricted": ("max_abs", False),
    "conventional": ("l2", False),
    "dgreedy-abs": ("max_abs", True),
    "dgreedy-rel": ("max_rel", True),
    "dindirect-haar": ("max_abs", True),
    "dindirect-haar-restricted": ("max_abs", True),
    "con": ("l2", True),
    "send-v": ("l2", True),
    "send-coef": ("l2", True),
    "h-wtopk": ("l2", True),
}


def serving_error_target(
    data: ArrayLike,
    budget: int,
    delta: float = 1.0,
    rho: float = 0.0,
    dp_kernel: str = "auto",
) -> float:
    """Derive the max-abs error target a serving DP series pins for ``budget``.

    The serving layer's incremental DP rebuild is only an exact replay
    when ``epsilon`` is held fixed across appends (re-running the
    IndirectHaar search after each append would re-probe different
    epsilons and invalidate every cached M-row).  This runs the
    centralized search once at registration time and returns the winning
    probe's epsilon; the degenerate case where the conventional synopsis
    is already exact falls back to ``delta`` (always feasible there).
    """
    values = pad_to_power_of_two(np.asarray(data, dtype=np.float64))
    synopsis = indirect_haar(values, budget, delta, rho=rho, kernel=dp_kernel)
    return float(synopsis.meta.get("epsilon", delta))


def build_synopsis(
    data: ArrayLike | FileDataset,
    budget: int,
    algorithm: str = "dgreedy-abs",
    cluster: SimulatedCluster | None = None,
    delta: float = 1.0,
    sanity_bound: float = DEFAULT_SANITY_BOUND,
    subtree_leaves: int = 1024,
    pad: bool = True,
    rho: float = 0.0,
    dp_kernel: str = "auto",
    layer_plan: str | None = None,
) -> WaveletSynopsis:
    """Build a ``budget``-coefficient wavelet synopsis of ``data``.

    Parameters
    ----------
    data:
        One-dimensional sequence.  Non-power-of-two lengths are zero-padded
        when ``pad`` is True (queries on indices past the original length
        return the padding).  A :class:`~repro.mapreduce.hdfs.FileDataset`
        keeps the input on disk (out-of-core); only the sub-tree
        partitioned greedy algorithms (``dgreedy-abs``/``dgreedy-rel``)
        support it — every other driver materializes the full array.
    budget:
        Maximum number of retained coefficients ``B``.
    algorithm:
        One of :data:`ALGORITHMS`.  The default ``"dgreedy-abs"`` is the
        paper's fastest max-error algorithm.
    cluster:
        Simulated cluster for the distributed algorithms (a default
        40-map-slot cluster is created when omitted); its log ends up in
        ``synopsis.meta["cluster"]`` where the algorithm records one.
    delta:
        Quantization step for the DP-based algorithms (quality knob).
    sanity_bound:
        The ``S`` of the relative error metric.
    subtree_leaves:
        Sub-tree size for the distributed partitionings.
    rho:
        Coarsening knob of the approximate DP tier (DP-based algorithms
        only).  ``0`` is the exact DP; ``rho > 0`` trades an error
        inflation of at most ``(1 + rho)`` for narrower M-rows — see
        :func:`repro.algos.minhaarspace.approx_params`.
    dp_kernel:
        Combine-kernel registry entry for the DP-based algorithms
        (:data:`repro.algos.minhaarspace.DP_KERNELS`); all entries are
        bit-identical, the knob only trades time.
    layer_plan:
        Band schedule for the distributed DP algorithms
        (``dindirect-haar`` variants): ``"auto"`` for the adaptive
        planner, ``"h=K"`` / ``"H1,H2,..."`` (optionally ``"@driver"``)
        for an explicit schedule, or ``None`` for the classic uniform
        ``subtree_leaves`` decomposition.  Plans only change *where* DP
        work runs, never the synopsis — every plan is bit-identical at
        ``rho = 0``.  Rejected for algorithms without a distributed DP.
    """
    if algorithm not in ALGORITHMS:
        raise InvalidInputError(
            f"unknown algorithm {algorithm!r}; choose one of {sorted(ALGORITHMS)}"
        )
    if layer_plan is not None and algorithm not in (
        "dindirect-haar",
        "dindirect-haar-restricted",
    ):
        raise InvalidInputError(
            f"layer_plan applies only to the distributed DP algorithms, not {algorithm!r}"
        )
    if isinstance(data, FileDataset):
        if algorithm not in ("dgreedy-abs", "dgreedy-rel"):
            raise InvalidInputError(
                f"algorithm {algorithm!r} materializes the full data array and "
                "cannot run on a FileDataset; use dgreedy-abs or dgreedy-rel"
            )
        cluster = cluster or SimulatedCluster()
        if algorithm == "dgreedy-abs":
            return d_greedy_abs(data, budget, cluster, base_leaves=subtree_leaves)
        return d_greedy_rel(
            data, budget, sanity_bound, cluster, base_leaves=subtree_leaves
        )
    values = np.asarray(data, dtype=np.float64)
    if pad:
        values = pad_to_power_of_two(values)

    if algorithm == "greedy-abs":
        return greedy_abs(values, budget)
    if algorithm == "greedy-rel":
        return greedy_rel(values, budget, sanity_bound)
    if algorithm == "indirect-haar":
        return indirect_haar(values, budget, delta, rho=rho, kernel=dp_kernel)
    if algorithm == "indirect-haar-restricted":
        return indirect_haar(
            values, budget, delta, restricted=True, rho=rho, kernel=dp_kernel
        )
    if algorithm == "conventional":
        return conventional_synopsis(values, budget)

    cluster = cluster or SimulatedCluster()
    if algorithm == "dgreedy-abs":
        return d_greedy_abs(values, budget, cluster, base_leaves=subtree_leaves)
    if algorithm == "dgreedy-rel":
        return d_greedy_rel(
            values, budget, sanity_bound, cluster, base_leaves=subtree_leaves
        )
    if algorithm == "dindirect-haar":
        return d_indirect_haar(
            values,
            budget,
            delta,
            cluster,
            subtree_leaves,
            rho=rho,
            kernel=dp_kernel,
            layer_plan=layer_plan,
        )
    if algorithm == "dindirect-haar-restricted":
        return d_indirect_haar(
            values,
            budget,
            delta,
            cluster,
            subtree_leaves,
            restricted=True,
            rho=rho,
            kernel=dp_kernel,
            layer_plan=layer_plan,
        )
    if algorithm == "con":
        return con_synopsis(values, budget, cluster, split_size=subtree_leaves)
    if algorithm == "send-v":
        return send_v_synopsis(values, budget, cluster, split_size=subtree_leaves)
    if algorithm == "send-coef":
        return send_coef_synopsis(values, budget, cluster, block_size=subtree_leaves)
    return h_wtopk_synopsis(values, budget, cluster, block_size=subtree_leaves)
