"""The DP parallelization framework of Section 4 (Algorithm 1).

Any thresholding DP whose per-node state is an *M-row* combining two child
rows can be distributed with this driver:

1. the error tree is cut into bands of sub-trees by a
   :class:`~repro.core.partitioning.LayerPlan` — the classic fixed
   height ``h``, an explicit per-layer schedule, or the adaptive
   planner's pick (:func:`repro.core.layer_planner.plan_layers_auto`);
   the top band may be *driver-resident*, running inside the driver's
   finalize step instead of paying a MapReduce round per pass;
2. one MapReduce job per layer, bottom-up: each map task runs the DP over
   its sub-tree (leaf rows come from raw data at the bottom layer, from
   the previous layer's emitted root rows above) and emits
   ``(parent sub-tree, local root M-row)`` — the ``(j, M[j])`` key-values
   of the paper; the shuffle regroups rows under the next layer's
   sub-trees, preserving locality;
3. the driver finalizes at the root, then a top-down pass of jobs re-enters
   each sub-tree to select coefficients (the "additional step" of
   Section 4), forwarding each sub-tree leaf's chosen incoming value to
   the layer below.

The DP itself is injected as a :class:`RowDP`; :class:`MinHaarSpaceDP`
is the instantiation used by DMHaarSpace, and the framework's
communication per layer is exactly Eq. 5 — ``|Layer_i|`` rows of
``max |M[j]|`` bytes — because the rows themselves are what is shuffled.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

import numpy as np
from numpy.typing import ArrayLike

from repro.algos.minhaarspace import (
    DualSolution,
    KernelSpec,
    MRow,
    combine_rows,
    compute_subtree_rows,
    finalize_root,
    leaf_row,
    leaf_rows,
    resolve_kernel,
    traceback_subtree,
)
from repro.exceptions import InfeasibleErrorBound, InvalidInputError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.hdfs import InputSplit
from repro.mapreduce.job import MapReduceJob
from repro.core.partitioning import (
    Layer,
    LayerPlan,
    dirty_subtrees,
    local_to_global,
    parse_layer_plan,
)
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import is_power_of_two

__all__ = [
    "RowDP",
    "MinHaarSpaceDP",
    "DPRowCache",
    "LayeredDPDriver",
    "dm_haar_space",
    "resolve_layer_plan",
]


class RowDP:
    """Interface of a row-based DP pluggable into the framework.

    ``leaf_values`` lets value-dependent DPs (the restricted variant) see
    the data under a sub-tree: raw data at the bottom layer, child
    sub-tree *averages* above — from which the sub-tree's own Haar
    coefficients are computable locally, so locality is preserved.
    """

    def leaf_row(self, value: float) -> MRow:
        """Row of a raw data value."""
        raise NotImplementedError

    def leaf_rows(self, values: ArrayLike) -> list[MRow]:
        """Rows of a batch of raw data values (override to vectorize)."""
        return [self.leaf_row(float(value)) for value in values]

    def subtree_rows(
        self, leaf_rows: list[MRow], leaf_values: ArrayLike | None = None
    ) -> list[MRow | None]:
        """Run the DP bottom-up over one sub-tree; return all its rows."""
        raise NotImplementedError

    def finalize(self, root_row: MRow, overall_average: float = 0.0) -> tuple[int, float, int]:
        """Close the recursion at ``c_0``: ``(cost, error, root choice)``."""
        raise NotImplementedError

    def traceback(self, rows: list[MRow | None], incoming: int) -> tuple[dict[int, float], list[int]]:
        """Select coefficients in one sub-tree given its root's incoming value."""
        raise NotImplementedError


class MinHaarSpaceDP(RowDP):
    """MinHaarSpace as a pluggable row DP (rows keyed by incoming value)."""

    def __init__(
        self, epsilon: float, delta: float, kernel: str | KernelSpec = "auto"
    ) -> None:
        if delta <= 0:
            raise InvalidInputError("delta must be strictly positive")
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.kernel = resolve_kernel(kernel)

    def leaf_row(self, value: float) -> MRow:
        return leaf_row(value, self.epsilon, self.delta)

    def leaf_rows(self, values: ArrayLike) -> list[MRow]:
        return leaf_rows(values, self.epsilon, self.delta)

    def subtree_rows(
        self, leaf_rows: list[MRow], leaf_values: ArrayLike | None = None
    ) -> list[MRow | None]:
        return compute_subtree_rows(leaf_rows, self.epsilon, self.delta, kernel=self.kernel)

    def combine(self, left: MRow, right: MRow) -> MRow:
        return combine_rows(left, right, self.epsilon, self.delta, kernel=self.kernel)

    def finalize(self, root_row: MRow, overall_average: float = 0.0) -> tuple[int, float, int]:
        return finalize_root(root_row, self.epsilon, self.delta)

    def traceback(self, rows: list[MRow | None], incoming: int) -> tuple[dict[int, float], list[int]]:
        return traceback_subtree(rows, incoming, self.delta)


class MinHaarSpaceRestrictedDP(RowDP):
    """The restricted-synopsis DP as a second framework instantiation.

    Each node may only keep its own (grid-snapped) Haar coefficient.  The
    coefficient of every sub-tree node is computed locally from the
    sub-tree's leaf values (raw data at the bottom layer, child averages
    above), so the framework's locality-preserving partitioning carries
    over unchanged — the demonstration that Section 4 is DP-agnostic.
    """

    def __init__(
        self, epsilon: float, delta: float, kernel: str | KernelSpec = "auto"
    ) -> None:
        if delta <= 0:
            raise InvalidInputError("delta must be strictly positive")
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.kernel = resolve_kernel(kernel)

    def leaf_row(self, value: float) -> MRow:
        return leaf_row(value, self.epsilon, self.delta)

    def leaf_rows(self, values: ArrayLike) -> list[MRow]:
        return leaf_rows(values, self.epsilon, self.delta)

    def subtree_rows(
        self, leaf_rows: list[MRow], leaf_values: ArrayLike | None = None
    ) -> list[MRow | None]:
        from repro.algos.minhaarspace import compute_subtree_rows_restricted
        from repro.wavelet.transform import haar_transform

        if leaf_values is None:
            raise InvalidInputError("the restricted DP needs the sub-tree leaf values")
        local_coefficients = haar_transform(np.asarray(leaf_values, dtype=np.float64))
        return compute_subtree_rows_restricted(
            leaf_rows, local_coefficients, self.epsilon, self.delta, kernel=self.kernel
        )

    def finalize(self, root_row: MRow, overall_average: float = 0.0) -> tuple[int, float, int]:
        from repro.algos.minhaarspace import finalize_root_restricted

        average_offset = int(round(overall_average / self.delta))
        return finalize_root_restricted(root_row, average_offset, self.epsilon, self.delta)

    def traceback(self, rows: list[MRow | None], incoming: int) -> tuple[dict[int, float], list[int]]:
        return traceback_subtree(rows, incoming, self.delta)


@dataclass
class _BottomUpResult:
    top_row: MRow
    row_store: dict[tuple[int, int], list]
    overall_average: float


@dataclass
class DPRowCache:
    """Per-sub-tree DP state retained across incremental rebuilds.

    ``rows`` is the driver-side row store keyed ``(layer index, sub-tree
    root)`` — the same mapping :meth:`LayeredDPDriver.bottom_up` has
    always filled; ``emits`` keeps each sub-tree's upward emission (its
    root M-row and leaf average) under the same key.  Both are pure
    functions of the sub-tree's data and the DP parameters, so a cached
    entry is bit-identical to what a from-scratch run would recompute —
    the exactness argument of the serving layer's incremental rebuild
    (docs/SERVING.md).  Entries for sub-trees marked dirty are simply
    overwritten; the cache never needs explicit invalidation beyond
    :meth:`clear` on a full reset (e.g. when ``N`` grows).
    """

    rows: dict[tuple[int, int], list[MRow | None]] = field(default_factory=dict)
    emits: dict[tuple[int, int], tuple[MRow, float]] = field(default_factory=dict)

    def clear(self) -> None:
        """Drop all cached state (the next build recomputes everything)."""
        self.rows.clear()
        self.emits.clear()


class _BottomUpLayerJob(MapReduceJob):
    """One stage of Algorithm 1: run the DP over each sub-tree in parallel.

    Map input: one split per sub-tree holding either raw data (bottom
    layer) or the child root rows delivered by the previous stage.  The
    map side caches the full row set for the later top-down pass (the
    stand-in for persisting to HDFS) and emits the local root's row keyed
    by the *parent* sub-tree.
    """

    #: Map tasks write the driver-side row store (the HDFS-persistence
    #: stand-in), so this job must run in the driver process.
    process_safe = False

    #: Per-layer instances share one role: the Eq. 6 bound checker keys
    #: on this label and matches layers by the per-instance ``name``.
    stage_label = "dp.bottom_up"

    def __init__(
        self,
        dp: RowDP,
        layer: Layer,
        row_store: dict[tuple[int, int], list[MRow | None]],
        parent_leaf_count: int,
    ) -> None:
        self.dp = dp
        self.layer = layer
        self.row_store = row_store
        self.parent_leaf_count = parent_leaf_count
        self.name = f"dp-layer-{layer.index}"
        self.num_reducers = 0

    def map(self, split: InputSplit) -> Iterator[tuple[Any, Any]]:
        spec = split.meta["spec"]
        if self.layer.is_bottom:
            leaf_values = np.asarray(split.values, dtype=np.float64)
            leaf_rows = self.dp.leaf_rows(leaf_values)
        else:
            leaf_rows = split.meta["child_rows"]
            leaf_values = np.asarray(split.meta["child_values"], dtype=np.float64)
        rows = self.dp.subtree_rows(leaf_rows, leaf_values)
        self.row_store[(self.layer.index, spec.root)] = rows  # lint: ignore[RC003] -- each split owns a distinct (layer, root) key and dict item assignment is atomic under the GIL; speculative re-runs store identical rows
        root_row = rows[1] if len(rows) > 1 else rows[0]
        parent = spec.root // self.parent_leaf_count if not self.layer.is_top else 0
        # The sub-tree average travels with the row: the layer above needs
        # it to compute its own (value-dependent) node coefficients.
        yield parent, (spec.root, root_row, float(np.mean(leaf_values)))


class _TopDownLayerJob(MapReduceJob):
    """Coefficient selection: re-enter each sub-tree with its incoming value."""

    #: Reads the driver-side row store filled by the bottom-up pass.
    process_safe = False

    stage_label = "dp.traceback"

    def __init__(
        self, dp: RowDP, layer: Layer, row_store: dict[tuple[int, int], list[MRow | None]]
    ) -> None:
        self.dp = dp
        self.layer = layer
        self.row_store = row_store
        self.name = f"dp-traceback-{layer.index}"
        self.num_reducers = 0

    def map(self, split: InputSplit) -> Iterator[tuple[Any, Any]]:
        spec = split.meta["spec"]
        incoming = split.meta["incoming"]
        rows = self.row_store[(self.layer.index, spec.root)]
        assignments, leaf_incomings = self.dp.traceback(rows, incoming)
        for local_node, value in assignments.items():
            yield "coef", (local_to_global(spec.root, local_node), value)
        if not self.layer.is_bottom:
            for child_root, child_incoming in zip(spec.child_roots(), leaf_incomings):
                yield "incoming", (child_root, child_incoming)


class LayeredDPDriver:
    """Runs a :class:`RowDP` over the whole error tree via layered jobs.

    The decomposition comes from a :class:`~repro.core.partitioning.LayerPlan`
    — pass ``plan`` explicitly (the adaptive planner's output, or any
    hand-written schedule); without one, the classic fixed-height
    decomposition derived from ``subtree_leaves`` is used.  A plan whose
    top band is *driver-resident* runs that band's single ``c_1``
    sub-tree inside the driver (both passes), saving one MapReduce round
    each way; the computation is the same ``subtree_rows``/``traceback``
    call a map task would have made, so synopses are bit-identical
    whatever the plan.
    """

    def __init__(
        self,
        dp: RowDP,
        cluster: SimulatedCluster,
        subtree_leaves: int = 1024,
        plan: LayerPlan | None = None,
    ) -> None:
        if not is_power_of_two(subtree_leaves) or subtree_leaves < 2:
            raise InvalidInputError("subtree_leaves must be a power of two >= 2")
        self.dp = dp
        self.cluster = cluster
        self.subtree_leaves = subtree_leaves
        self.plan = plan

    def _plan(self, n: int) -> LayerPlan:
        if self.plan is not None:
            if self.plan.n != n:
                raise InvalidInputError(
                    f"layer plan is for N={self.plan.n}, but the data has N={n}"
                )
            return self.plan
        height = min(self.subtree_leaves.bit_length() - 1, n.bit_length() - 1)
        return LayerPlan.uniform(n, height)

    def bottom_up(
        self,
        data: np.ndarray,
        cache: DPRowCache | None = None,
        dirty_range: tuple[int, int] | None = None,
    ) -> _BottomUpResult:
        """Algorithm 1: compute every sub-tree's rows, return the top row.

        ``cache`` carries per-sub-tree state across calls (the serving
        layer's incremental rebuild); ``dirty_range`` restricts the work
        to the sub-trees overlapping the half-open leaf range — every
        other sub-tree's rows and upward emission are read from the
        cache, which must then hold a complete prior build of the same
        plan and DP parameters.  Without either argument the behavior is
        the classic full build (and bit-identical to it in every mode:
        cached entries are pure functions of sub-tree data).
        """
        values = np.asarray(data, dtype=np.float64)
        n = int(values.shape[0])
        plan = self._plan(n)
        self.cluster.log.meta["layer_plan"] = plan.describe()
        layers = plan.layers()
        if cache is None:
            cache = DPRowCache()
        row_store = cache.rows
        if dirty_range is None:
            dirty_layers = [layer.subtrees for layer in layers]
        else:
            dirty_layers = dirty_subtrees(plan, dirty_range[0], dirty_range[1])

        bottom = layers[0]
        leaf_count = bottom.subtrees[0].leaf_count
        splits: list[InputSplit] = []
        for i, spec in enumerate(dirty_layers[0]):
            start = (spec.root - (1 << (spec.root.bit_length() - 1))) * leaf_count
            splits.append(
                InputSplit(
                    split_id=i,
                    offset=start,
                    values=values[start : start + leaf_count],
                    meta={"spec": spec},
                )
            )

        for layer in layers:
            if not plan.is_distributed(layer.index):
                return self._driver_bottom_up(layer, cache)
            if layer.is_top:
                parent_leaf_count = 1
            else:
                parent_leaf_count = layers[layer.index + 1].subtrees[0].leaf_count
            job = _BottomUpLayerJob(self.dp, layer, row_store, parent_leaf_count)
            result = self.cluster.run_job(job, splits)
            for _parent, (child_root, row, average) in result.output:
                cache.emits[(layer.index, child_root)] = (row, average)
            if layer.is_top:
                top_row, overall_average = cache.emits[(layer.index, layer.subtrees[0].root)]
                return _BottomUpResult(
                    top_row=top_row, row_store=row_store, overall_average=overall_average
                )
            next_layer = layers[layer.index + 1]
            if not plan.is_distributed(next_layer.index):
                # The driver-resident band reads the cached emissions.
                continue
            # Regroup emitted rows under the next layer's dirty sub-trees
            # (clean children come from the cache's prior emissions).
            splits = []
            for i, spec in enumerate(dirty_layers[next_layer.index]):
                ordered = [cache.emits[(layer.index, root)] for root in spec.child_roots()]
                splits.append(
                    InputSplit(
                        split_id=i,
                        offset=0,
                        values=np.empty(0),
                        meta={
                            "spec": spec,
                            "child_rows": [row for row, _ in ordered],
                            "child_values": [average for _, average in ordered],
                        },
                    )
                )
        raise AssertionError("a layer plan always terminates in a top band")

    def _driver_bottom_up(self, layer: Layer, cache: DPRowCache) -> _BottomUpResult:
        """Run the driver-resident top band: same DP call, no MapReduce round."""
        spec = layer.subtrees[0]
        ordered = [cache.emits[(layer.index - 1, root)] for root in spec.child_roots()]
        child_rows = [row for row, _ in ordered]
        child_values = np.asarray([average for _, average in ordered], dtype=np.float64)
        with self.cluster.driver():
            rows = self.dp.subtree_rows(child_rows, child_values)
        cache.rows[(layer.index, spec.root)] = rows
        top_row = rows[1] if len(rows) > 1 else rows[0]
        assert top_row is not None
        return _BottomUpResult(
            top_row=top_row,
            row_store=cache.rows,
            overall_average=float(np.mean(child_values)),
        )

    def top_down(self, data_length: int, row_store: dict, root_incoming: int) -> dict[int, float]:
        """Select the synopsis coefficients layer by layer, top to bottom."""
        plan = self._plan(data_length)
        layers = plan.layers()
        assignments: dict[int, float] = {}
        incomings: dict[int, int] = {1: root_incoming}
        for layer in reversed(layers):
            if not plan.is_distributed(layer.index):
                # Driver-resident top band: traceback in the driver.
                spec = layer.subtrees[0]
                with self.cluster.driver():
                    local_assignments, leaf_incomings = self.dp.traceback(
                        row_store[(layer.index, spec.root)], incomings[spec.root]
                    )
                for local_node, value in local_assignments.items():
                    assignments[local_to_global(spec.root, local_node)] = float(value)
                incomings = {}
                for child_root, child_incoming in zip(spec.child_roots(), leaf_incomings):
                    incomings[int(child_root)] = int(child_incoming)
                continue
            splits = []
            for i, spec in enumerate(layer.subtrees):
                splits.append(
                    InputSplit(
                        split_id=i,
                        offset=0,
                        values=np.empty(0),
                        meta={"spec": spec, "incoming": incomings[spec.root]},
                    )
                )
            job = _TopDownLayerJob(self.dp, layer, row_store)
            result = self.cluster.run_job(job, splits)
            incomings = {}
            for kind, payload in result.output:
                if kind == "coef":
                    node, value = payload
                    assignments[int(node)] = float(value)
                else:
                    child_root, child_incoming = payload
                    incomings[int(child_root)] = int(child_incoming)
        return assignments


def resolve_layer_plan(
    layer_plan: LayerPlan | str | None,
    n: int,
    epsilon: float,
    delta: float,
    cluster: SimulatedCluster,
    rho: float = 0.0,
) -> LayerPlan | None:
    """Resolve a ``--layer-plan``-style argument into a concrete plan.

    ``None`` stays ``None`` (the driver falls back to the classic
    ``subtree_leaves`` decomposition); ``"auto"`` invokes the adaptive
    planner against the cluster's cost model; any other string goes
    through :func:`~repro.core.partitioning.parse_layer_plan`.
    """
    if layer_plan is None or isinstance(layer_plan, LayerPlan):
        return layer_plan
    if layer_plan.strip().lower() == "auto":
        from repro.core.layer_planner import plan_layers_auto

        return plan_layers_auto(n, epsilon, delta, cluster.config, rho=rho)
    return parse_layer_plan(layer_plan, n)


def dm_haar_space(
    data: ArrayLike,
    epsilon: float,
    delta: float,
    cluster: SimulatedCluster | None = None,
    subtree_leaves: int = 1024,
    construct: bool = True,
    restricted: bool = False,
    rho: float = 0.0,
    kernel: str | KernelSpec = "auto",
    layer_plan: LayerPlan | str | None = None,
) -> DualSolution:
    """DMHaarSpace: the distributed MinHaarSpace (Section 4).

    Semantically identical to :func:`repro.algos.minhaarspace.min_haar_space`
    — the framework shuffles exact M-rows, so counts, errors, and the
    selected synopsis all match the centralized run.  ``construct=False``
    skips the top-down pass (enough for the probes of the binary search);
    ``restricted=True`` swaps in the restricted-synopsis DP
    (:class:`MinHaarSpaceRestrictedDP`).

    ``rho > 0`` runs the whole layered DP at the coarsened
    :func:`~repro.algos.minhaarspace.approx_params` grid — every shipped
    M-row shrinks accordingly, and the Eq. 6 checker
    (:func:`repro.observe.bounds.check_dmhaarspace_trace`) budgets with
    the same coarsened parameters.  ``kernel`` picks a
    :data:`~repro.algos.minhaarspace.DP_KERNELS` entry for the map-side
    sub-tree DPs.

    ``layer_plan`` overrides the fixed-``subtree_leaves`` banding: a
    :class:`~repro.core.partitioning.LayerPlan`, a spec string
    (``"h=K"`` / ``"H1,H2,..."``, optionally ``@driver``), or ``"auto"``
    to let :func:`~repro.core.layer_planner.plan_layers_auto` pick the
    minimum-predicted-makespan schedule for this cluster.  Any plan
    yields a bit-identical synopsis at ``rho = 0`` — it only changes how
    the same exact DP is scheduled.
    """
    values = np.asarray(data, dtype=np.float64)
    if values.ndim != 1 or not is_power_of_two(values.shape[0]):
        raise InvalidInputError("data length must be a power of two")
    n = int(values.shape[0])
    cluster = cluster or SimulatedCluster()
    from repro.algos.minhaarspace import approx_params

    nominal_delta = delta
    epsilon_dp, delta = approx_params(epsilon, delta, n, rho)
    dp: RowDP = (
        MinHaarSpaceRestrictedDP(epsilon_dp, delta, kernel=kernel)
        if restricted
        else MinHaarSpaceDP(epsilon_dp, delta, kernel=kernel)
    )

    if n == 1:
        with cluster.driver():
            from repro.algos.minhaarspace import min_haar_space, min_haar_space_restricted

            solver = min_haar_space_restricted if restricted else min_haar_space
            return solver(values, epsilon, delta, rho=rho, kernel=kernel)

    plan = resolve_layer_plan(layer_plan, n, epsilon, nominal_delta, cluster, rho=rho)
    driver = LayeredDPDriver(dp, cluster, subtree_leaves, plan=plan)
    result = driver.bottom_up(values)
    with cluster.driver():
        size, error, chosen = dp.finalize(result.top_row, result.overall_average)

    coefficients: dict[int, float] = {}
    if construct:
        if chosen != 0:
            coefficients[0] = chosen * delta
        coefficients.update(driver.top_down(n, result.row_store, chosen))

    synopsis = WaveletSynopsis(
        n=n,
        coefficients=coefficients,
        meta={
            "algorithm": "DMHaarSpaceRestricted" if restricted else "DMHaarSpace",
            "epsilon": epsilon,
            "delta": delta,
            "rho": rho,
            "max_abs_error": error,
            "constructed": construct,
            "layer_plan": driver._plan(n).describe(),
        },
    )
    return DualSolution(size=size, max_error=error, synopsis=synopsis, epsilon=epsilon)
