"""DGreedyAbs / DGreedyRel: the distributed greedy algorithms (Section 5).

The error tree is split into one *root sub-tree* (nodes ``c_0..c_{R-1}``,
processed at the driver) and ``R`` *base sub-trees* (Figure 4).  Because
removals in different base sub-trees interact only through the root
sub-tree, the algorithm:

1. runs GreedyAbs on the root sub-tree over *virtual leaves* (one per base
   sub-tree) and speculates ``min{R, B} + 1`` nested candidate retained
   sets ``C_root`` (``genRootSets``, Algorithm 4);
2. **job 1** — every level-1 worker (one per base sub-tree) replays
   GreedyAbs once per *distinct incoming error* its sub-tree sees across
   the candidates (at most ``log R + 2`` runs, Section 5.3), emitting
   *error-bucketed histograms* (``discardNode``/ErrHistGreedyAbs,
   Algorithm 3) instead of node lists — an int per bucket instead of the
   nodes themselves;
3. level-2 workers merge the histograms per candidate and read off the
   best achievable error at rank ``B - |C_root|`` (``combineResults``,
   Algorithm 5); the driver picks the winning candidate;
4. **job 2** — each worker replays GreedyAbs once for the winning
   candidate only, now emitting the actual nodes whose removal error
   reaches the winning error, and the driver assembles the synopsis
   (Algorithm 6).

One refinement over the paper's Algorithm 5: a candidate's achievable
error is floored by ``max_j |e_in,j|`` — the incoming error a base
sub-tree cannot repair even when *all* its nodes are retained.  Each
worker therefore also emits its run's initial error, and
``combineResults`` takes the max of the rank error and that floor (the
rank alone can under-report when one sub-tree's nodes are all retained).

Setting ``metric="max_rel"`` swaps the GreedyRel engine in at both levels
(Section 5.4); the harness and tests exercise both.
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any

import numpy as np
from numpy.typing import ArrayLike

from repro.algos.greedy_abs import GreedyAbsTree, GreedyRun
from repro.algos.greedy_rel import GreedyRelTree
from repro.exceptions import InvalidInputError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.hdfs import FileDataset, InputSplit, aligned_splits
from repro.mapreduce.job import MapReduceJob
from repro.core.partitioning import local_to_global, root_base_partition
from repro.wavelet.metrics import DEFAULT_SANITY_BOUND
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import haar_transform, is_power_of_two

__all__ = [
    "d_greedy_abs",
    "d_greedy_rel",
    "base_subtree_greedy",
    "root_subtree_greedy",
    "DEFAULT_BUCKET_WIDTH",
]

#: Default error-bucket width ``e_b`` of Algorithm 3.  Small enough that
#: bucketing never visibly degrades quality; the ablation bench sweeps it.
DEFAULT_BUCKET_WIDTH = 1e-6


class _GreedyEngine:
    """Strategy object: which greedy engine runs at the two worker levels."""

    metric = "max_abs"

    def root_run(self, root_coefficients: ArrayLike, virtual_leaves: ArrayLike) -> GreedyRun:
        raise NotImplementedError

    def base_run(
        self, local_coefficients: ArrayLike, leaf_values: ArrayLike, incoming_error: float
    ) -> GreedyRun:
        raise NotImplementedError


class _AbsEngine(_GreedyEngine):
    metric = "max_abs"

    def root_run(self, root_coefficients: ArrayLike, virtual_leaves: ArrayLike) -> GreedyRun:
        return GreedyAbsTree(root_coefficients, include_average=True).run_to_exhaustion()

    def base_run(
        self, local_coefficients: ArrayLike, leaf_values: ArrayLike, incoming_error: float
    ) -> GreedyRun:
        size = len(local_coefficients)  # type: ignore[arg-type]
        return GreedyAbsTree(
            local_coefficients,
            initial_errors=[incoming_error] * size,
            include_average=False,
        ).run_to_exhaustion()


class _RelEngine(_GreedyEngine):
    metric = "max_rel"

    def __init__(self, sanity_bound: float = DEFAULT_SANITY_BOUND) -> None:
        if sanity_bound <= 0:
            raise InvalidInputError("the sanity bound S must be strictly positive")
        self.sanity_bound = sanity_bound

    def root_run(self, root_coefficients: ArrayLike, virtual_leaves: ArrayLike) -> GreedyRun:
        # Virtual-leaf denominators approximate each base sub-tree's data
        # by its average (exact when the sub-tree is near-constant).
        return GreedyRelTree(
            root_coefficients,
            virtual_leaves,
            sanity_bound=self.sanity_bound,
            include_average=True,
        ).run_to_exhaustion()

    def base_run(
        self, local_coefficients: ArrayLike, leaf_values: ArrayLike, incoming_error: float
    ) -> GreedyRun:
        size = len(local_coefficients)  # type: ignore[arg-type]
        return GreedyRelTree(
            local_coefficients,
            leaf_values,
            sanity_bound=self.sanity_bound,
            initial_errors=[incoming_error] * size,
            include_average=False,
        ).run_to_exhaustion()


@dataclass
class _Candidate:
    """One speculative ``C_root``: the last ``retained_count`` removals."""

    index: int  # == |C_root|
    retained: dict[int, float]  # global node -> coefficient value
    incoming: np.ndarray  # incoming signed error per base sub-tree


def _candidate_incoming_errors(
    root_run: GreedyRun, root_size: int, budget: int
) -> list[_Candidate]:
    """genRootSets (Algorithm 4) plus each candidate's incoming errors.

    Candidates are the nested suffixes of the root removal order.  The
    incoming error of virtual leaf ``j`` under a candidate equals the
    accumulated signed error of that leaf after the corresponding prefix
    of removals — replayed here exactly as the engine applied them.
    """
    removals = root_run.removals
    total = len(removals)
    max_retained = min(total, budget)

    # errors[t] = per-virtual-leaf signed error after t removals.
    errors = np.zeros(root_size, dtype=np.float64)
    states = [errors.copy()]
    for removal in removals:
        node, value = removal.node, removal.value
        if node == 0:
            errors -= value
        else:
            level = node.bit_length() - 1
            span = root_size >> level
            lo = (node - (1 << level)) * span
            mid, hi = lo + span // 2, lo + span
            errors[lo:mid] -= value
            errors[mid:hi] += value
        states.append(errors.copy())

    candidates = []
    for retained_count in range(max_retained + 1):
        cut = total - retained_count
        retained = {r.node: r.value for r in removals[cut:]}
        candidates.append(
            _Candidate(
                index=retained_count,
                retained=retained,
                incoming=states[cut],
            )
        )
    return candidates


def _bucketized_histogram(
    run: GreedyRun, bucket_width: float
) -> tuple[list[tuple[float, int, float]], float]:
    """Algorithm 3 over a whole run, extended with per-bucket cut errors.

    Nodes are appended to the running key-value while their bucketized
    removal error does not exceed the current maximum; a new key-value
    starts when a higher bucket appears.  Each bucket also records the
    *cut error*: the sub-tree's actual error in the state where this
    bucket and everything after it is retained (the actual error just
    before the bucket's first node was discarded).  Because max-error
    metrics are not monotone under removals, the cut error can be far
    below the bucket's running max, and carrying it is what lets
    ``combineResults`` consider retaining *fewer* than ``B - |C_root|``
    nodes — mirroring the centralized keep-removing-past-``B`` rule.

    Returns ``(buckets, final_error)`` where each bucket is
    ``(bucket_error, node_count, cut_error)`` in chronological (ascending
    bucket) order and ``final_error`` is the actual error with every node
    of the sub-tree discarded.
    """
    histogram: list[tuple[float, int, float]] = []
    max_error = -math.inf
    count = 0
    cut_error = run.initial_error
    previous_actual = run.initial_error
    for removal in run.removals:
        bucket = math.floor(removal.error_after / bucket_width) * bucket_width
        if bucket <= max_error:
            count += 1
        else:
            if count:
                histogram.append((max_error, count, cut_error))
            max_error = bucket
            count = 1
            cut_error = previous_actual
        previous_actual = removal.error_after
    if count:
        histogram.append((max_error, count, cut_error))
    final_error = run.removals[-1].error_after if run.removals else run.initial_error
    return histogram, final_error


class _HistogramJob(MapReduceJob):
    """Job 1: speculative ErrHistGreedyAbs runs on every base sub-tree."""

    name = "dgreedy-histograms"
    stage_label = "dgreedy.histograms"

    def __init__(
        self,
        engine: _GreedyEngine,
        candidates: list[_Candidate],
        budget: int,
        bucket_width: float,
        num_reducers: int,
    ) -> None:
        self.engine = engine
        self.candidates = candidates
        self.budget = budget
        self.bucket_width = bucket_width
        self.num_reducers = num_reducers

    def map(self, split: InputSplit) -> Iterator[tuple[Any, Any]]:
        subtree_index = split.split_id
        local = haar_transform(split.values)
        local_coefficients = local.copy()
        local_coefficients[0] = 0.0  # the average slot belongs to the root sub-tree

        # Group candidates by the (few) distinct incoming errors they
        # induce on this sub-tree: log R + 2 runs instead of |C| runs.
        by_incoming: dict[float, list[int]] = {}
        for candidate in self.candidates:
            by_incoming.setdefault(
                float(candidate.incoming[subtree_index]), []
            ).append(candidate.index)

        for incoming_error, candidate_ids in by_incoming.items():
            run = self.engine.base_run(local_coefficients, split.values, incoming_error)
            histogram, final_error = _bucketized_histogram(run, self.bucket_width)
            for candidate_id in candidate_ids:
                for bucket_error, count, cut_error in histogram:
                    yield ("hist", candidate_id, subtree_index, bucket_error), (count, cut_error)
                yield ("final", candidate_id, subtree_index), final_error

    def partition(self, key: Any, num_reducers: int) -> int:
        # All key-values of one candidate go to the same level-2 worker.
        return key[1] % num_reducers

    def reduce_partition(self, records: list[tuple[Any, Any]]) -> Iterator[tuple[Any, Any]]:
        """combineResults (Algorithm 5), generalized to all cut thresholds.

        For every candidate the sweep walks the merged bucket thresholds
        from high to low: at threshold ``T`` each sub-tree retains its
        nodes whose running-max bucket is ``>= T`` and sits at the
        corresponding cut error.  Every feasible ``T`` (total retained
        <= ``B - |C_root|``) is evaluated and the best kept — the paper's
        single rank lookup is the lowest feasible threshold.
        """
        per_candidate: dict[int, dict[int, dict]] = {}
        for key, payload in records:
            candidate_id, subtree = key[1], key[2]
            entry = per_candidate.setdefault(candidate_id, {}).setdefault(
                subtree, {"buckets": [], "final": 0.0}
            )
            if key[0] == "hist":
                bucket_error = key[3]
                entry["buckets"].append((bucket_error, payload[0], payload[1]))
            else:
                entry["final"] = payload
        for candidate_id, subtrees in per_candidate.items():
            base_budget = self.budget - candidate_id
            yield candidate_id, _best_cut_over_thresholds(subtrees, base_budget)


def _best_cut_over_thresholds(
    subtrees: dict[int, dict], base_budget: int
) -> tuple[float, float]:
    """Sweep thresholds high->low; return ``(best error, its threshold)``.

    The sweep state starts at "retain nothing" (every sub-tree at its
    final, all-removed error) and lowers the threshold bucket by bucket;
    crossing a sub-tree's bucket retains that bucket's nodes and moves the
    sub-tree to the bucket's cut error.
    """
    if base_budget < 0:
        return math.inf, math.inf
    current_error: dict[int, float] = {
        subtree: entry["final"] for subtree, entry in subtrees.items()
    }
    events = sorted(
        (
            (bucket_error, subtree, count, cut_error)
            for subtree, entry in subtrees.items()
            for bucket_error, count, cut_error in entry["buckets"]
        ),
        key=lambda event: -event[0],
    )
    best_error = max(current_error.values(), default=0.0)
    best_threshold = math.inf
    retained = 0
    position = 0
    while position < len(events):
        threshold = events[position][0]
        # Apply every bucket at this threshold together.
        while position < len(events) and events[position][0] == threshold:
            _, subtree, count, cut_error = events[position]
            retained += count
            current_error[subtree] = cut_error
            position += 1
        if retained > base_budget:
            break
        error = max(current_error.values())
        if error < best_error:
            best_error = error
            best_threshold = threshold
    return best_error, best_threshold


class _ConstructJob(MapReduceJob):
    """Job 2: replay the winning candidate and emit the retained nodes.

    The winning threshold from ``combineResults`` identifies the retained
    set exactly: the nodes whose bucketized running-max removal error
    reaches the threshold.  The replay is deterministic, so the counts
    match job 1's histogram and no further driver-side ranking is needed.
    """

    name = "dgreedy-construct"
    stage_label = "dgreedy.construct"
    num_reducers = 1

    def __init__(
        self,
        engine: _GreedyEngine,
        winner: _Candidate,
        threshold: float,
        bucket_width: float,
        n: int,
    ) -> None:
        self.engine = engine
        self.winner = winner
        self.threshold = threshold
        self.bucket_width = bucket_width
        self.n = n

    def map(self, split: InputSplit) -> Iterator[tuple[Any, Any]]:
        if math.isinf(self.threshold):
            return  # the winning cut retains no base nodes at all
        subtree_index = split.split_id
        local = haar_transform(split.values)
        local_coefficients = local.copy()
        local_coefficients[0] = 0.0
        subtree_root = self.n // len(split) + subtree_index
        incoming_error = float(self.winner.incoming[subtree_index])
        run = self.engine.base_run(local_coefficients, split.values, incoming_error)
        running_max = -math.inf
        for removal in run.removals:
            bucket = math.floor(removal.error_after / self.bucket_width) * self.bucket_width
            running_max = max(running_max, bucket)
            if running_max >= self.threshold:
                global_node = local_to_global(subtree_root, removal.node)
                yield global_node, removal.value

    def reduce_partition(self, records: list[tuple[Any, Any]]) -> Iterator[tuple[Any, Any]]:
        yield from records


class _AverageJob(MapReduceJob):
    """Pre-job: sub-tree averages (the root sub-tree's virtual leaves).

    Module-level so it pickles for :class:`ProcessPoolRuntime`.
    """

    name = "dgreedy-averages"
    stage_label = "dgreedy.averages"
    num_reducers = 0

    def map(self, split: InputSplit) -> Iterator[tuple[Any, Any]]:
        yield split.split_id, float(np.mean(split.values))


def _distributed_greedy(
    engine: _GreedyEngine,
    data: ArrayLike | FileDataset,
    budget: int,
    cluster: SimulatedCluster | None,
    base_leaves: int,
    bucket_width: float,
    level2_workers: int,
) -> WaveletSynopsis:
    # The driver only needs ``n`` and sub-tree aligned splits, so a
    # file-backed dataset slots in without materializing the input: every
    # split reads its own mmap slice inside the map task.
    if isinstance(data, FileDataset):
        n = len(data)
    else:
        values = np.asarray(data, dtype=np.float64)
        if values.ndim != 1 or not is_power_of_two(values.shape[0]):
            raise InvalidInputError("data length must be a power of two")
        n = int(values.shape[0])
    if budget < 0:
        raise InvalidInputError("budget must be non-negative")
    if bucket_width <= 0:
        raise InvalidInputError("bucket width must be strictly positive")
    cluster = cluster or SimulatedCluster()
    if base_leaves >= n:
        base_leaves = n // 2
    if base_leaves < 2:
        raise InvalidInputError("data too small for a root/base partition")

    root_size, _ = root_base_partition(n, base_leaves)
    if isinstance(data, FileDataset):
        splits = data.aligned_splits(base_leaves)
    else:
        splits = aligned_splits(values, base_leaves)

    # Pre-job: sub-tree averages -> root sub-tree coefficients.
    averages_result = cluster.run_job(_AverageJob(), splits)
    averages = np.empty(root_size, dtype=np.float64)
    for split_id, average in averages_result.output:
        averages[split_id] = average

    # Driver: GreedyAbs on the root sub-tree + genRootSets (Algorithm 4).
    with cluster.driver():
        root_coefficients = haar_transform(averages)
        root_run = engine.root_run(root_coefficients, averages)
        candidates = _candidate_incoming_errors(root_run, root_size, budget)

    # Job 1: speculative histogram runs + combineResults.
    histogram_job = _HistogramJob(
        engine,
        candidates,
        budget,
        bucket_width,
        num_reducers=min(level2_workers, len(candidates)),
    )
    histogram_result = cluster.run_job(histogram_job, splits)
    with cluster.driver():
        best_candidate_id, (best_error, best_threshold) = min(
            histogram_result.output,
            key=lambda item: (item[1][0], item[0]),
        )
        winner = candidates[best_candidate_id]

    # Job 2: construct the synopsis for the winning candidate.
    construct_job = _ConstructJob(
        engine, winner, threshold=best_threshold, bucket_width=bucket_width, n=n
    )
    construct_result = cluster.run_job(construct_job, splits)
    with cluster.driver():
        coefficients = dict(winner.retained)
        for global_node, value in construct_result.output:
            coefficients[global_node] = value

    name = "DGreedyAbs" if engine.metric == "max_abs" else "DGreedyRel"
    return WaveletSynopsis(
        n=n,
        coefficients=coefficients,
        meta={
            "algorithm": name,
            "budget": budget,
            "metric": engine.metric,
            "claimed_error": best_error,
            "root_retained": len(winner.retained),
            "candidates": len(candidates),
            "bucket_width": bucket_width,
            "cluster": cluster.log.as_dict(),
        },
    )


def base_subtree_greedy(
    values: ArrayLike, budget: int
) -> tuple[dict[int, float], float, float]:
    """Partial-rebuild entry point: greedy-threshold one base sub-tree alone.

    Runs GreedyAbs over the sub-tree's *detail* coefficients (the average
    slot belongs to the root sub-tree — same split as Figure 4) with zero
    incoming error, and cuts at ``budget``.  Returns ``(retained local
    nodes, local max-abs detail error, sub-tree average)`` — the three pieces
    the serving layer's compositional greedy tier caches per sub-tree,
    recomputing only the sub-trees an append dirtied
    (:func:`repro.core.partitioning.dirty_base_range`).  Pure function of
    ``(values, budget)``, so an incremental rebuild that reuses cached
    results is bit-identical to a from-scratch one (docs/SERVING.md).
    """
    data = np.asarray(values, dtype=np.float64)
    if data.ndim != 1 or not is_power_of_two(data.shape[0]):
        raise InvalidInputError("base sub-tree length must be a power of two")
    if budget < 0:
        raise InvalidInputError("budget must be non-negative")
    local = haar_transform(data)
    average = float(local[0])
    local_coefficients = local.copy()
    local_coefficients[0] = 0.0
    run = GreedyAbsTree(local_coefficients, include_average=False).run_to_exhaustion()
    step, error = run.best_cut(budget)
    retained = {r.node: r.value for r in run.removals[step:]}
    return retained, float(error), average


def root_subtree_greedy(averages: ArrayLike, budget: int) -> tuple[dict[int, float], float]:
    """Partial-rebuild entry point: greedy-threshold the root sub-tree.

    ``averages`` are the base sub-trees' averages — the virtual leaves of
    Section 5.2.  Root-tree node ``j`` *is* global error-tree node ``j``
    for ``j < R``, so the retained mapping needs no index translation.
    Returns ``(retained nodes, max-abs error over the virtual leaves)``.
    """
    virtual = np.asarray(averages, dtype=np.float64)
    if virtual.ndim != 1 or not is_power_of_two(virtual.shape[0]):
        raise InvalidInputError("the virtual-leaf count must be a power of two")
    if budget < 0:
        raise InvalidInputError("budget must be non-negative")
    root_coefficients = haar_transform(virtual)
    run = GreedyAbsTree(root_coefficients, include_average=True).run_to_exhaustion()
    step, error = run.best_cut(budget)
    retained = {r.node: r.value for r in run.removals[step:]}
    return retained, float(error)


def d_greedy_abs(
    data: ArrayLike | FileDataset,
    budget: int,
    cluster: SimulatedCluster | None = None,
    base_leaves: int = 1024,
    bucket_width: float = DEFAULT_BUCKET_WIDTH,
    level2_workers: int = 4,
) -> WaveletSynopsis:
    """DGreedyAbs (Algorithm 6): distributed max-abs greedy thresholding.

    ``base_leaves`` is the paper's sub-tree size knob (Figure 5a),
    ``bucket_width`` the ``e_b`` of Algorithm 3, and ``level2_workers``
    the reducer count (the paper fixes four).
    """
    return _distributed_greedy(
        _AbsEngine(), data, budget, cluster, base_leaves, bucket_width, level2_workers
    )


def d_greedy_rel(
    data: ArrayLike | FileDataset,
    budget: int,
    sanity_bound: float = DEFAULT_SANITY_BOUND,
    cluster: SimulatedCluster | None = None,
    base_leaves: int = 1024,
    bucket_width: float = DEFAULT_BUCKET_WIDTH,
    level2_workers: int = 4,
) -> WaveletSynopsis:
    """DGreedyRel (Section 5.4): distributed max-rel greedy thresholding."""
    return _distributed_greedy(
        _RelEngine(sanity_bound),
        data,
        budget,
        cluster,
        base_leaves,
        bucket_width,
        level2_workers,
    )
