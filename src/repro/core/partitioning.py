"""Locality-preserving error-tree partitioning (Section 4, Figures 3-4).

Two disciplines:

* :func:`dp_layers` — the hierarchical decomposition used by the DP
  framework: the detail-node tree (rooted at ``c_1``) is cut into layers
  of sub-trees of fixed height ``h``; each layer is one distributed stage
  and the sub-tree counts follow Eq. 4.
* :func:`root_base_partition` — the two-level split used by DGreedyAbs:
  one *root sub-tree* (nodes ``c_0 .. c_{R-1}``) kept at the driver, plus
  ``R`` *base sub-trees* rooted at nodes ``R .. 2R-1``, each owning
  ``N / R`` contiguous data points (``N = R + R * S`` with
  ``S = N/R - 1`` nodes per base sub-tree).

Both preserve *sub-tree locality*: a worker's data is exactly the leaf
set of its sub-tree, so the DP rows / greedy runs it produces are exact.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import InvalidInputError
from repro.wavelet.transform import is_power_of_two

__all__ = [
    "SubtreeSpec",
    "Layer",
    "dp_layers",
    "root_base_partition",
    "local_to_global",
    "global_subtree_coefficients",
]


@dataclass(frozen=True)
class SubtreeSpec:
    """One sub-tree of a layer.

    ``root`` is the global error-tree node index; ``leaf_count`` the number
    of *items* below it in this layer — data points for the bottom layer,
    lower sub-tree roots otherwise.
    """

    root: int
    leaf_count: int

    def child_roots(self) -> range:
        """Global node indices of this sub-tree's layer-children."""
        return range(self.root * self.leaf_count, (self.root + 1) * self.leaf_count)


@dataclass(frozen=True)
class Layer:
    """One stage of Algorithm 1: all sub-trees at a given depth band."""

    index: int
    subtrees: tuple[SubtreeSpec, ...]
    is_bottom: bool
    is_top: bool


def dp_layers(n: int, height: int) -> list[Layer]:
    """Partition an ``N``-point error tree into layers of height ``height``.

    Returns layers bottom-up (index 0 processes raw data).  The top layer
    always contains the single sub-tree rooted at ``c_1`` (``c_0`` is
    handled by the driver's finalize step).  Layer sizes follow Eq. 4.
    """
    if not is_power_of_two(n):
        raise InvalidInputError(f"N={n} is not a power of two")
    if height < 1:
        raise InvalidInputError("sub-tree height must be at least 1")
    log_n = n.bit_length() - 1
    if log_n == 0:
        raise InvalidInputError("a 1-point dataset has no detail tree to partition")

    # Depth bands bottom-up: the bottom band always has height ``height``
    # (or everything, if the tree is shallow); the top band absorbs the
    # remainder so it contains node c_1.
    boundaries = list(range(log_n, 0, -height))  # e.g. log_n, log_n-h, ...
    if boundaries[-1] != 0:
        boundaries.append(0)
    layers: list[Layer] = []
    total = len(boundaries) - 1
    for i in range(total):
        lower, upper = boundaries[i], boundaries[i + 1]
        band_height = lower - upper
        roots_level = upper
        subtrees = tuple(
            SubtreeSpec(root=(1 << roots_level) + j, leaf_count=1 << band_height)
            for j in range(1 << roots_level)
        )
        layers.append(
            Layer(
                index=i,
                subtrees=subtrees,
                is_bottom=(i == 0),
                is_top=(i == total - 1),
            )
        )
    return layers


def root_base_partition(n: int, base_leaf_count: int) -> tuple[int, list[SubtreeSpec]]:
    """The Figure-4 split: returns ``(R, base_subtrees)``.

    ``R`` is the root sub-tree size (it holds nodes ``c_0 .. c_{R-1}``);
    the ``R`` base sub-trees are rooted at ``c_R .. c_{2R-1}`` and own
    ``base_leaf_count`` data points each.
    """
    if not is_power_of_two(n):
        raise InvalidInputError(f"N={n} is not a power of two")
    if not is_power_of_two(base_leaf_count):
        raise InvalidInputError("base sub-tree leaf count must be a power of two")
    if base_leaf_count >= n:
        raise InvalidInputError(
            f"base sub-tree leaf count {base_leaf_count} must be smaller than N={n}"
        )
    root_size = n // base_leaf_count
    bases = [
        SubtreeSpec(root=root_size + j, leaf_count=base_leaf_count)
        for j in range(root_size)
    ]
    return root_size, bases


def local_to_global(subtree_root: int, local_node: int) -> int:
    """Map a local complete-tree node index to the global error-tree index.

    Within the sub-tree rooted at global node ``g``, local node 1 is ``g``
    itself, local children follow the usual ``2j``/``2j+1`` rule, so the
    global index is ``g`` with the local node's positional bits appended.
    """
    if local_node < 1:
        raise InvalidInputError("local node indices start at 1 (the sub-tree root)")
    level = local_node.bit_length() - 1
    return (subtree_root << level) | (local_node - (1 << level))


def global_subtree_coefficients(
    coefficients: Sequence[float], subtree_root: int, leaf_count: int
) -> list[float]:
    """Extract the local coefficient array of one sub-tree.

    Returns a length-``leaf_count`` list in local indexing (slot 0 unused)
    from a *global* coefficient array — used by tests and by centralized
    cross-checks; the distributed algorithms compute local coefficients
    from their own data instead.
    """
    local = [0.0] * leaf_count
    for local_node in range(1, leaf_count):
        local[local_node] = float(coefficients[local_to_global(subtree_root, local_node)])
    return local
