"""Locality-preserving error-tree partitioning (Section 4, Figures 3-4).

Two disciplines:

* :func:`dp_layers` / :class:`LayerPlan` — the hierarchical decomposition
  used by the DP framework: the detail-node tree (rooted at ``c_1``) is
  cut into layers of sub-trees; each layer is one distributed stage and
  the sub-tree counts follow Eq. 4.  The classic decomposition uses a
  fixed height ``h`` per layer; a :class:`LayerPlan` generalizes it to a
  per-layer height schedule ``[h_1, h_2, ...]`` (bottom-up) and may mark
  the top band as *driver-resident* — small enough to run in the driver's
  finalize step instead of paying a whole MapReduce round.
* :func:`root_base_partition` — the two-level split used by DGreedyAbs:
  one *root sub-tree* (nodes ``c_0 .. c_{R-1}``) kept at the driver, plus
  ``R`` *base sub-trees* rooted at nodes ``R .. 2R-1``, each owning
  ``N / R`` contiguous data points (``N = R + R * S`` with
  ``S = N/R - 1`` nodes per base sub-tree).

Both preserve *sub-tree locality*: a worker's data is exactly the leaf
set of its sub-tree, so the DP rows / greedy runs it produces are exact.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import InvalidInputError
from repro.wavelet.transform import is_power_of_two

__all__ = [
    "SubtreeSpec",
    "Layer",
    "LayerPlan",
    "dp_layers",
    "layers_from_heights",
    "uniform_heights",
    "parse_layer_plan",
    "root_base_partition",
    "local_to_global",
    "global_subtree_coefficients",
    "dirty_subtrees",
    "dirty_base_range",
]


@dataclass(frozen=True)
class SubtreeSpec:
    """One sub-tree of a layer.

    ``root`` is the global error-tree node index; ``leaf_count`` the number
    of *items* below it in this layer — data points for the bottom layer,
    lower sub-tree roots otherwise.
    """

    root: int
    leaf_count: int

    def child_roots(self) -> range:
        """Global node indices of this sub-tree's layer-children."""
        return range(self.root * self.leaf_count, (self.root + 1) * self.leaf_count)


@dataclass(frozen=True)
class Layer:
    """One stage of Algorithm 1: all sub-trees at a given depth band."""

    index: int
    subtrees: tuple[SubtreeSpec, ...]
    is_bottom: bool
    is_top: bool


def uniform_heights(n: int, height: int) -> tuple[int, ...]:
    """The classic fixed-``h`` height schedule for an ``N``-point tree.

    Bottom-up bands of ``height`` levels each; the top band absorbs the
    remainder so it contains node ``c_1`` (exactly the banding
    :func:`dp_layers` has always produced).
    """
    if not is_power_of_two(n):
        raise InvalidInputError(f"N={n} is not a power of two")
    if height < 1:
        raise InvalidInputError("sub-tree height must be at least 1")
    log_n = n.bit_length() - 1
    if log_n == 0:
        raise InvalidInputError("a 1-point dataset has no detail tree to partition")
    boundaries = list(range(log_n, 0, -height))
    if boundaries[-1] != 0:
        boundaries.append(0)
    return tuple(lower - upper for lower, upper in zip(boundaries, boundaries[1:]))


def layers_from_heights(n: int, heights: Sequence[int]) -> list[Layer]:
    """Partition an ``N``-point error tree into bands of the given heights.

    ``heights`` is bottom-up (``heights[0]`` processes raw data) and must
    sum to ``log2 N`` so the bands exactly tile the detail tree.  Returns
    layers bottom-up; the top layer always contains the single sub-tree
    rooted at ``c_1`` (``c_0`` is handled by the driver's finalize step).
    Sub-tree counts follow Eq. 4: a band whose roots sit at level ``u``
    has ``2^u`` sub-trees.
    """
    if not is_power_of_two(n):
        raise InvalidInputError(f"N={n} is not a power of two")
    log_n = n.bit_length() - 1
    if log_n == 0:
        raise InvalidInputError("a 1-point dataset has no detail tree to partition")
    if not heights:
        raise InvalidInputError("a layer plan needs at least one band")
    if any(h < 1 for h in heights):
        raise InvalidInputError(f"band heights must be positive, got {list(heights)}")
    if sum(heights) != log_n:
        raise InvalidInputError(
            f"band heights {list(heights)} sum to {sum(heights)}, "
            f"but an N={n} tree has {log_n} levels to tile"
        )
    layers: list[Layer] = []
    total = len(heights)
    lower = log_n
    for i, band_height in enumerate(heights):
        upper = lower - band_height
        roots_level = upper
        subtrees = tuple(
            SubtreeSpec(root=(1 << roots_level) + j, leaf_count=1 << band_height)
            for j in range(1 << roots_level)
        )
        layers.append(
            Layer(
                index=i,
                subtrees=subtrees,
                is_bottom=(i == 0),
                is_top=(i == total - 1),
            )
        )
        lower = upper
    return layers


def dp_layers(n: int, height: int) -> list[Layer]:
    """Partition an ``N``-point error tree into layers of height ``height``.

    Returns layers bottom-up (index 0 processes raw data).  The top layer
    always contains the single sub-tree rooted at ``c_1`` (``c_0`` is
    handled by the driver's finalize step).  Layer sizes follow Eq. 4.
    """
    return layers_from_heights(n, uniform_heights(n, height))


@dataclass(frozen=True)
class LayerPlan:
    """A per-layer height schedule for the layered DP over an ``N``-tree.

    ``heights`` lists every band bottom-up and must tile ``log2 N``
    levels.  ``driver_top`` marks the last band as *driver-resident*: its
    single ``c_1`` sub-tree is small enough that the driver runs the DP
    (and later the traceback) itself during finalize, saving one whole
    MapReduce round per pass — the tree-contraction endgame of Bateni et
    al.'s MPC schedules, where the last ``O(1)``-size level collapses
    onto the coordinator.
    """

    n: int
    heights: tuple[int, ...]
    driver_top: bool = False

    def __post_init__(self) -> None:
        # Validates n/heights tiling as a side effect.
        layers_from_heights(self.n, self.heights)
        if self.driver_top and len(self.heights) < 2:
            raise InvalidInputError(
                "a driver-resident top band needs at least one distributed "
                "band below it"
            )

    def layers(self) -> list[Layer]:
        """All bands bottom-up, the driver-resident top one included."""
        return layers_from_heights(self.n, self.heights)

    @property
    def distributed_rounds(self) -> int:
        """MapReduce jobs one bottom-up (or top-down) pass launches."""
        return len(self.heights) - (1 if self.driver_top else 0)

    def is_distributed(self, layer_index: int) -> bool:
        """Whether band ``layer_index`` runs as a MapReduce job."""
        return layer_index < self.distributed_rounds

    def describe(self) -> str:
        """The plan in the CLI grammar (``parse_layer_plan`` round-trips it)."""
        spec = ",".join(str(h) for h in self.heights)
        return spec + ("@driver" if self.driver_top else "")

    @classmethod
    def uniform(cls, n: int, height: int) -> "LayerPlan":
        """The classic fixed-``h`` decomposition as a plan."""
        return cls(n=n, heights=uniform_heights(n, height))


def parse_layer_plan(spec: str, n: int) -> LayerPlan:
    """Parse a layer-plan spec string for an ``N``-point tree.

    Grammar (the CLI's ``--layer-plan``):

    * ``h=K`` — the classic fixed-height decomposition (top band absorbs
      the remainder);
    * ``H1,H2,...`` — explicit bottom-up band heights (must tile
      ``log2 N``); an ``@driver`` suffix marks the top band
      driver-resident, e.g. ``11,9@driver``.

    ``auto`` is *not* handled here: resolving it needs the cluster cost
    model (see :func:`repro.core.layer_planner.plan_layers_auto`).
    """
    text = spec.strip()
    if not text or text.lower() == "auto":
        raise InvalidInputError(
            "parse_layer_plan handles explicit specs ('h=K' or 'H1,H2,...'); "
            "'auto' must be resolved by the layer planner"
        )
    driver_top = False
    if text.endswith("@driver"):
        driver_top = True
        text = text[: -len("@driver")]
    try:
        if text.startswith("h="):
            if driver_top:
                raise InvalidInputError(
                    "'h=K' is the classic fully-distributed decomposition; "
                    "use explicit heights to mark a driver-resident top band"
                )
            return LayerPlan.uniform(n, int(text[2:]))
        heights = tuple(int(token) for token in text.split(","))
    except ValueError as exc:
        raise InvalidInputError(f"malformed layer plan spec {spec!r}: {exc}") from exc
    return LayerPlan(n=n, heights=heights, driver_top=driver_top)


def root_base_partition(n: int, base_leaf_count: int) -> tuple[int, list[SubtreeSpec]]:
    """The Figure-4 split: returns ``(R, base_subtrees)``.

    ``R`` is the root sub-tree size (it holds nodes ``c_0 .. c_{R-1}``);
    the ``R`` base sub-trees are rooted at ``c_R .. c_{2R-1}`` and own
    ``base_leaf_count`` data points each.
    """
    if not is_power_of_two(n):
        raise InvalidInputError(f"N={n} is not a power of two")
    if not is_power_of_two(base_leaf_count):
        raise InvalidInputError("base sub-tree leaf count must be a power of two")
    if base_leaf_count >= n:
        raise InvalidInputError(
            f"base sub-tree leaf count {base_leaf_count} must be smaller than N={n}"
        )
    root_size = n // base_leaf_count
    bases = [
        SubtreeSpec(root=root_size + j, leaf_count=base_leaf_count)
        for j in range(root_size)
    ]
    return root_size, bases


def dirty_subtrees(plan: LayerPlan, lo: int, hi: int) -> list[tuple[SubtreeSpec, ...]]:
    """Per-layer sub-trees whose DP state depends on data in ``[lo, hi)``.

    The serving layer calls this when an append touches the leaf range
    ``[lo, hi)``: only these sub-trees' rows must be recomputed; every
    other sub-tree's cached bottom-up output is still exact.  Returned
    bottom-up, aligned with :meth:`LayerPlan.layers`.  Because each
    band's sub-trees at roots level ``u`` own the contiguous dyadic leaf
    ranges of width ``N / 2^u``, the dirty set of every layer is a
    contiguous slice — and dirty ranges nest upward (a parent band's
    slice covers its children's), which is what makes the incremental
    re-merge a pure replay of the affected spine.
    """
    if not 0 <= lo < hi <= plan.n:
        raise InvalidInputError(
            f"dirty leaf range [{lo}, {hi}) out of bounds for N={plan.n}"
        )
    dirty: list[tuple[SubtreeSpec, ...]] = []
    for layer in plan.layers():
        roots_level = layer.subtrees[0].root.bit_length() - 1
        span = plan.n >> roots_level
        first = lo // span
        last = (hi - 1) // span
        dirty.append(layer.subtrees[first : last + 1])
    return dirty


def dirty_base_range(n: int, base_leaf_count: int, lo: int, hi: int) -> tuple[int, int]:
    """Base sub-tree indices of :func:`root_base_partition` touched by ``[lo, hi)``.

    Returns the half-open index range ``[first, last)`` into the
    partition's base list — the greedy tier's analogue of
    :func:`dirty_subtrees` (the root sub-tree is always dirty: every
    base average feeds it).
    """
    if not 0 <= lo < hi <= n:
        raise InvalidInputError(f"dirty leaf range [{lo}, {hi}) out of bounds for N={n}")
    if base_leaf_count < 1 or n % base_leaf_count:
        raise InvalidInputError(
            f"base leaf count {base_leaf_count} does not tile N={n}"
        )
    return lo // base_leaf_count, (hi - 1) // base_leaf_count + 1


def local_to_global(subtree_root: int, local_node: int) -> int:
    """Map a local complete-tree node index to the global error-tree index.

    Within the sub-tree rooted at global node ``g``, local node 1 is ``g``
    itself, local children follow the usual ``2j``/``2j+1`` rule, so the
    global index is ``g`` with the local node's positional bits appended.
    """
    if local_node < 1:
        raise InvalidInputError("local node indices start at 1 (the sub-tree root)")
    level = local_node.bit_length() - 1
    return (subtree_root << level) | (local_node - (1 << level))


def global_subtree_coefficients(
    coefficients: Sequence[float], subtree_root: int, leaf_count: int
) -> list[float]:
    """Extract the local coefficient array of one sub-tree.

    Returns a length-``leaf_count`` list in local indexing (slot 0 unused)
    from a *global* coefficient array — used by tests and by centralized
    cross-checks; the distributed algorithms compute local coefficients
    from their own data instead.
    """
    local = [0.0] * leaf_count
    for local_node in range(1, leaf_count):
        local[local_node] = float(coefficients[local_to_global(subtree_root, local_node)])
    return local
