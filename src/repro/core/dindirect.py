"""DIndirectHaar: the distributed Algorithm 2.

Drives the binary search of IndirectHaar with DMHaarSpace probes, plus the
two extra bound jobs the paper describes (Section 4):

* **lower bound** — the ``(B+1)``-largest coefficient magnitude: every
  mapper emits its local top ``B+1`` magnitudes and its sub-tree average
  (so the reducer can also rank the root sub-tree's coefficients);
* **upper bound** — the max-abs error of the conventional ``B``-term
  synopsis: the synopsis (built by the parallel CON algorithm) is
  broadcast, and each mapper bottom-up evaluates its own data slice by
  combining the synopsis's path coefficients above its sub-tree with the
  retained coefficients inside it.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator, Mapping
from typing import Any

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.algos.indirect_haar import indirect_haar_search, search_resolution
from repro.core.conventional_dist import con_synopsis
from repro.algos.minhaarspace import DualSolution
from repro.core.dp_framework import dm_haar_space, resolve_layer_plan
from repro.core.partitioning import LayerPlan
from repro.exceptions import InvalidInputError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.hdfs import InputSplit, aligned_splits
from repro.mapreduce.job import MapReduceJob
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import haar_transform, inverse_haar_transform, is_power_of_two

__all__ = ["incoming_value", "global_to_local", "d_indirect_haar"]


def incoming_value(
    coefficients: Mapping[int, float] | NDArray[np.float64],
    subtree_root: int,
    n: int,
) -> float:
    """Reconstructed value arriving at ``subtree_root`` from its ancestors.

    Sums the retained coefficients on the path strictly above the
    sub-tree: the sign of each ancestor is ``+1`` when the sub-tree hangs
    off its left child, ``-1`` off its right (``c_0`` is always ``+1``).
    """
    if not 1 <= subtree_root < n:
        raise InvalidInputError(f"sub-tree root {subtree_root} out of range")
    getter = coefficients.get if hasattr(coefficients, "get") else lambda j, d=0.0: coefficients[j]
    total = 0.0
    node = subtree_root
    while node > 1:
        parent = node // 2
        sign = 1.0 if node == 2 * parent else -1.0
        total += sign * float(getter(parent, 0.0))
        node = parent
    total += float(getter(0, 0.0))
    return total


def global_to_local(subtree_root: int, node: int) -> int | None:
    """Inverse of :func:`repro.core.partitioning.local_to_global`.

    Returns the local index of global ``node`` inside the sub-tree rooted
    at ``subtree_root``, or ``None`` when the node is not in that sub-tree.
    """
    if node < subtree_root:
        return None
    shift = node.bit_length() - subtree_root.bit_length()
    if node >> shift != subtree_root:
        return None
    return (1 << shift) | (node - (subtree_root << shift))


class _LowerBoundJob(MapReduceJob):
    """Distributed ``(B+1)``-largest coefficient magnitude."""

    name = "dindirect-lower-bound"
    stage_label = "dindirect.lower_bound"
    num_reducers = 1

    def __init__(self, n: int, budget: int, split_size: int) -> None:
        self.n = n
        self.budget = budget
        self.split_size = split_size

    def map(self, split: InputSplit) -> Iterator[tuple[Any, Any]]:
        local = haar_transform(split.values)
        magnitudes = np.abs(local[1:])
        top = np.sort(magnitudes)[::-1][: self.budget + 1]
        for value in top:
            yield "mag", float(value)
        yield "avg", (split.split_id, float(local[0]))

    def reduce_partition(self, records: list[tuple[Any, Any]]) -> Iterator[tuple[Any, Any]]:
        magnitudes: list[float] = []
        averages: dict[int, float] = {}
        for key, payload in records:
            if key == "mag":
                magnitudes.append(payload)
            else:
                split_id, average = payload
                averages[split_id] = average
        root_coeffs = haar_transform([averages[i] for i in range(len(averages))])
        magnitudes.extend(abs(float(v)) for v in root_coeffs)
        top = heapq.nlargest(self.budget + 1, magnitudes)
        yield "bound", (top[-1] if len(top) > self.budget else 0.0)


class _EvaluateSynopsisJob(MapReduceJob):
    """Distributed max-abs evaluation of a broadcast synopsis."""

    name = "dindirect-upper-bound"
    stage_label = "dindirect.upper_bound"
    num_reducers = 1

    def __init__(self, n: int, retained: dict[int, float], split_size: int) -> None:
        self.n = n
        self.retained = retained
        self.split_size = split_size

    def map(self, split: InputSplit) -> Iterator[tuple[Any, Any]]:
        size = len(split)
        subtree_root = self.n // size + split.split_id
        local = np.zeros(size, dtype=np.float64)
        local[0] = incoming_value(self.retained, subtree_root, self.n)
        for node, value in self.retained.items():
            local_node = global_to_local(subtree_root, node)
            if local_node is not None and local_node < size:
                local[local_node] = value
        approximation = inverse_haar_transform(local)
        yield "err", float(np.max(np.abs(approximation - split.values)))

    def reduce(self, key: Any, values: list[Any]) -> Iterator[tuple[Any, Any]]:
        yield key, max(values)


def d_indirect_haar(
    data: ArrayLike,
    budget: int,
    delta: float,
    cluster: SimulatedCluster | None = None,
    subtree_leaves: int = 1024,
    max_iterations: int = 48,
    restricted: bool = False,
    rho: float = 0.0,
    kernel: str = "auto",
    layer_plan: LayerPlan | str | None = None,
) -> WaveletSynopsis:
    """DIndirectHaar: Problem 1 at cluster scale (Algorithm 2 + Section 4).

    Same search as :func:`repro.algos.indirect_haar.indirect_haar` with
    every probe answered by DMHaarSpace.  The synopsis matches the
    centralized IndirectHaar coefficient-for-coefficient because both the
    bounds and the DP are computed exactly.

    ``rho > 0`` runs every DMHaarSpace probe (and the final constructing
    run) at the coarsened approximate tier, shrinking the shipped M-rows
    — and with them the Eq. 6 communication per layer — while keeping
    ``size <= budget`` and the :func:`~repro.algos.indirect_haar.indirect_haar`
    error guarantee.  ``kernel`` picks the map-side combine kernel.

    ``layer_plan`` selects the DP band schedule for every probe: a
    :class:`~repro.core.partitioning.LayerPlan`, the plan grammar
    (``"h=K"``, ``"H1,H2,..."``, optional ``"@driver"``), or ``"auto"``
    to let :func:`~repro.core.layer_planner.plan_layers_auto` pick the
    predicted-makespan minimizer.  The plan is resolved *once*, at the
    representative probe epsilon ``error_high``, and reused across the
    whole binary search — probes at different epsilons must execute the
    same jobs for their traces (and the search's round count) to be
    comparable.
    """
    values = np.asarray(data, dtype=np.float64)
    if values.ndim != 1 or not is_power_of_two(values.shape[0]):
        raise InvalidInputError("data length must be a power of two")
    if budget < 0:
        raise InvalidInputError("budget must be non-negative")
    n = int(values.shape[0])
    cluster = cluster or SimulatedCluster()
    split_size = min(subtree_leaves, n)

    # Bound job 1: the conventional synopsis (parallel CON) ...
    conventional = con_synopsis(values, budget, cluster, split_size=split_size)
    # ... evaluated distributively for the upper bound.
    if n > split_size:
        evaluation = cluster.run_job(
            _EvaluateSynopsisJob(n, conventional.coefficients, split_size),
            aligned_splits(values, split_size),
        )
        error_high = max(err for _, err in evaluation.output)
        lower = cluster.run_job(
            _LowerBoundJob(n, budget, split_size), aligned_splits(values, split_size)
        )
        error_low = dict(lower.output)["bound"]
    else:
        with cluster.driver():
            error_high = conventional.max_abs_error(values)
            from repro.algos.conventional import largest_coefficient

            error_low = largest_coefficient(haar_transform(values), budget + 1)

    # The evaluation job reconstructs through float arithmetic; treat
    # round-off-level errors as an exact conventional synopsis.
    exactness = 1e-9 * (1.0 + float(np.max(np.abs(values))))
    if error_high <= exactness:
        conventional.meta.update(
            {"algorithm": "DIndirectHaar", "dp_runs": 0, "rho": rho}
        )
        return conventional

    # Resolve the band schedule once, at the representative epsilon
    # error_high (the widest rows any probe will ship), so every probe
    # and the constructing run execute the identical job sequence.
    plan = (
        resolve_layer_plan(layer_plan, n, error_high, delta, cluster, rho=rho)
        if n > 1
        else None
    )

    # Probes skip the top-down pass; only the winning bound is constructed.
    # Each probe's solution carries its epsilon (DualSolution.epsilon), so
    # re-running the winner needs no external solution-to-epsilon map.
    def solver(epsilon: float) -> DualSolution:
        return dm_haar_space(
            values,
            epsilon,
            delta,
            cluster,
            subtree_leaves=subtree_leaves,
            construct=False,
            restricted=restricted,
            rho=rho,
            kernel=kernel,
            layer_plan=plan,
        )

    best, runs = indirect_haar_search(
        solver,
        error_low,
        error_high,
        budget,
        search_resolution(error_high, delta, n, rho),
        max_iterations,
    )
    final = dm_haar_space(
        values,
        best.epsilon,
        delta,
        cluster,
        subtree_leaves=subtree_leaves,
        construct=True,
        restricted=restricted,
        rho=rho,
        kernel=kernel,
        layer_plan=plan,
    )
    synopsis = final.synopsis
    synopsis.meta.update(
        {
            "algorithm": "DIndirectHaar",
            "budget": budget,
            "delta": delta,
            "rho": rho,
            "max_abs_error": final.max_error,
            "dp_runs": runs,
            "cluster": cluster.log.as_dict(),
        }
    )
    return synopsis
