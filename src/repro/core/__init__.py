"""The paper's contributions: distributed wavelet thresholding.

* :mod:`repro.core.partitioning` — locality-preserving error-tree splits;
* :mod:`repro.core.dp_framework` — the DP parallelization framework
  (Algorithm 1) and DMHaarSpace;
* :mod:`repro.core.dindirect` — DIndirectHaar (Algorithm 2, distributed);
* :mod:`repro.core.dgreedy` — DGreedyAbs / DGreedyRel (Algorithms 3-6);
* :mod:`repro.core.conventional_dist` — CON, Send-V, Send-Coef, H-WTopk;
* :mod:`repro.core.thresholding` — the :func:`build_synopsis` facade.
"""

from repro.core.conventional_dist import (
    con_synopsis,
    h_wtopk_synopsis,
    send_coef_synopsis,
    send_v_synopsis,
)
from repro.core.dgreedy import d_greedy_abs, d_greedy_rel
from repro.core.dindirect import d_indirect_haar, global_to_local, incoming_value
from repro.core.dp_framework import (
    LayeredDPDriver,
    MinHaarSpaceDP,
    MinHaarSpaceRestrictedDP,
    RowDP,
    dm_haar_space,
    resolve_layer_plan,
)
from repro.core.layer_planner import (
    WorkModel,
    plan_layers_auto,
    predict_plan_seconds,
)
from repro.core.partitioning import (
    Layer,
    LayerPlan,
    SubtreeSpec,
    dp_layers,
    local_to_global,
    parse_layer_plan,
    root_base_partition,
)
from repro.core.thresholding import ALGORITHMS, build_synopsis

__all__ = [
    "ALGORITHMS",
    "Layer",
    "LayerPlan",
    "LayeredDPDriver",
    "MinHaarSpaceDP",
    "MinHaarSpaceRestrictedDP",
    "RowDP",
    "SubtreeSpec",
    "WorkModel",
    "build_synopsis",
    "con_synopsis",
    "d_greedy_abs",
    "d_greedy_rel",
    "d_indirect_haar",
    "dm_haar_space",
    "dp_layers",
    "global_to_local",
    "h_wtopk_synopsis",
    "incoming_value",
    "local_to_global",
    "parse_layer_plan",
    "plan_layers_auto",
    "predict_plan_seconds",
    "resolve_layer_plan",
    "root_base_partition",
    "send_coef_synopsis",
    "send_v_synopsis",
]
