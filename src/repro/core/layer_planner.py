"""Adaptive layer planning for the distributed DP (ROADMAP item 3).

The layered DP runs one MapReduce stage per band of the error tree, so a
*fixed* band height ``h`` fixes the round count and the per-round
communication blind to the cluster.  This module chooses a per-layer
height schedule (:class:`~repro.core.partitioning.LayerPlan`) by
minimizing *predicted* makespan under the same cost model the simulated
cluster prices with (:class:`~repro.mapreduce.cluster.ClusterConfig`):
slots, task/job startup overheads, and shuffle bandwidth — plus the
Eq. 6 per-layer byte budgets, which are a closed form of the plan
(``|Layer_i|`` records of at most ``MRow(W_max)`` bytes).

Two structural levers follow Bateni et al. (*Massively Parallel Dynamic
Programming on Trees*): **taller bands** merge rounds (each band is one
synchronous MPC round, and job/task startup is paid per round), and the
**driver-resident top band** collapses the last ``O(1)``-size levels
onto the coordinator instead of paying a whole round for one tiny task.
Afrati et al.'s cost model frames the counterweight: band height is
bounded by per-task memory (``max_height``), and too-tall bottom bands
quantize badly onto the slot pool (the ``ceil(tasks / slots)`` wave
term).  The planner searches the full composition space by dynamic
programming over remaining tree levels — ``O(log N * max_height)``
states, exact under the model.

The plan is a *performance* choice only: the layered DP computes exact
M-rows whatever the banding, so any plan yields bit-identical synopses
at ``rho = 0`` (property-tested).  The search is deterministic — the
model uses fixed calibration constants (:class:`WorkModel`), never live
timings — so every runtime and every probe of a binary search resolves
the same plan, keeping traces canonical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.algos.minhaarspace import MRow, approx_params
from repro.core.partitioning import LayerPlan
from repro.exceptions import InvalidInputError
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.serde import record_size
from repro.wavelet.transform import is_power_of_two

__all__ = [
    "WorkModel",
    "plan_layers_auto",
    "predict_plan_seconds",
    "row_entries",
]

#: Serde bytes of one bottom-up layer record beyond its M-row payload —
#: the same template :mod:`repro.observe.bounds` budgets with.
_LAYER_RECORD_OVERHEAD = record_size(0, (0, 0.0))


@dataclass(frozen=True)
class WorkModel:
    """Fixed per-operation cost constants of the map-side DP.

    Calibrated once against the windowed kernel on the reference
    container (order-of-magnitude accuracy is enough: the planner only
    ranks plans, and the levers it trades — startup overheads, wave
    quantization, shuffle volume — are taken from the live
    :class:`~repro.mapreduce.cluster.ClusterConfig`).  Deliberately
    *not* measured at plan time: live calibration would make the chosen
    plan — and with it the canonical trace — nondeterministic.
    """

    #: Building one leaf row (vectorized ``leaf_rows``, amortized).
    seconds_per_leaf: float = 8e-6
    #: Fixed overhead of one ``combine_rows`` call.
    combine_call_seconds: float = 9e-5
    #: Marginal cost per grid entry of a combined row.
    combine_entry_seconds: float = 1.5e-6
    #: Visiting one node during the top-down traceback.
    traceback_node_seconds: float = 2e-6


def row_entries(epsilon: float, delta: float, n: int, rho: float = 0.0) -> int:
    """Worst-case M-row width of an ``(epsilon, delta, rho)`` run.

    ``floor(2 * epsilon_dp / delta_dp) + 2`` on the grid
    :func:`~repro.algos.minhaarspace.approx_params` resolves — the same
    ``W_max`` the Eq. 6 byte budgets use.
    """
    epsilon_dp, delta_dp = approx_params(epsilon, delta, n, rho)
    return int(math.floor(2.0 * epsilon_dp / delta_dp)) + 2


def _band_seconds(
    subtrees: int,
    items: int,
    entries: int,
    is_bottom: bool,
    config: ClusterConfig,
    work: WorkModel,
    passes: int,
) -> float:
    """Predicted cost of one distributed band: bottom-up job + traceback."""
    per_task = (items - 1) * (
        work.combine_call_seconds + entries * work.combine_entry_seconds
    )
    if is_bottom:
        per_task += items * work.seconds_per_leaf
    waves = math.ceil(subtrees / config.map_slots)
    bottom_up = (
        config.job_startup_seconds
        + waves * (config.task_startup_seconds + per_task)
        + subtrees
        * (_LAYER_RECORD_OVERHEAD + MRow.sized(entries))
        / config.shuffle_bytes_per_second
    )
    traceback = config.job_startup_seconds + waves * (
        config.task_startup_seconds + items * work.traceback_node_seconds
    )
    return bottom_up + (passes - 1) * traceback


def _driver_band_seconds(
    items: int, entries: int, work: WorkModel, passes: int
) -> float:
    """Predicted cost of a driver-resident top band (no job, no shuffle)."""
    combine = (items - 1) * (
        work.combine_call_seconds + entries * work.combine_entry_seconds
    )
    return combine + (passes - 1) * items * work.traceback_node_seconds


def predict_plan_seconds(
    plan: LayerPlan,
    epsilon: float,
    delta: float,
    config: ClusterConfig,
    rho: float = 0.0,
    work: WorkModel | None = None,
    passes: int = 2,
) -> float:
    """Predicted end-to-end seconds of ``plan`` under the cluster model.

    The objective :func:`plan_layers_auto` minimizes, exposed so tests
    and benchmarks can verify the planner's optimality over the model
    (``passes=2`` prices a constructing run: one bottom-up plus one
    traceback pass per band).
    """
    work = work or WorkModel()
    entries = row_entries(epsilon, delta, plan.n, rho)
    total = 0.0
    for layer in plan.layers():
        items = layer.subtrees[0].leaf_count
        if plan.is_distributed(layer.index):
            total += _band_seconds(
                len(layer.subtrees),
                items,
                entries,
                layer.is_bottom,
                config,
                work,
                passes,
            )
        else:
            total += _driver_band_seconds(items, entries, work, passes)
    return total


def plan_layers_auto(
    n: int,
    epsilon: float,
    delta: float,
    config: ClusterConfig | None = None,
    rho: float = 0.0,
    work: WorkModel | None = None,
    max_height: int = 16,
    driver_items_cap: int = 4096,
    passes: int = 2,
) -> LayerPlan:
    """Choose the minimum-predicted-makespan layer plan for an ``N``-tree.

    Dynamic program over remaining tree levels: every composition of
    band heights up to ``max_height`` (the per-task memory guard: a band
    task holds ``2^h`` rows of ``W_max`` entries) is considered, plus a
    driver-resident top band of up to ``driver_items_cap`` items.  Ties
    break deterministically toward fewer rounds (taller bands, driver
    top preferred), so the same inputs always yield the same plan.

    The returned plan is used for *every* pass of a run — probes and the
    constructing run alike — so a binary-search driver resolves it once;
    ``passes=2`` (the default) prices the constructing shape.
    """
    if n < 2:
        raise InvalidInputError("layer planning needs at least a 2-point tree")
    config = config or ClusterConfig()
    work = work or WorkModel()
    if max_height < 1:
        raise InvalidInputError("max_height must be at least 1")
    if not is_power_of_two(n):
        raise InvalidInputError(f"N={n} is not a power of two")
    log_n = n.bit_length() - 1
    entries = row_entries(epsilon, delta, n, rho)

    # best[r] = (cost, heights-above-this-point bottom-up, driver_top) for
    # tiling the top ``r`` levels, given at least one band sits below
    # whenever r < log_n.
    best: dict[int, tuple[float, tuple[int, ...], bool]] = {0: (0.0, (), False)}
    for r in range(1, log_n + 1):
        choice: tuple[float, tuple[int, ...], bool] | None = None
        # Driver-resident top band: collapses all remaining levels onto
        # the coordinator.  Needs a distributed band below (r < log_n).
        if r < log_n and (1 << r) <= driver_items_cap:
            cost = _driver_band_seconds(1 << r, entries, work, passes)
            choice = (cost, (r,), True)
        for h in range(min(r, max_height), 0, -1):
            tail_cost, tail_heights, tail_driver = best[r - h]
            is_bottom = r == log_n
            cost = tail_cost + _band_seconds(
                1 << (r - h), 1 << h, entries, is_bottom, config, work, passes
            )
            if choice is None or cost < choice[0]:
                choice = (cost, (h,) + tail_heights, tail_driver)
        assert choice is not None  # h = 1 is always feasible
        best[r] = choice
    _, heights, driver_top = best[log_n]
    return LayerPlan(n=n, heights=heights, driver_top=driver_top)
