"""Parallel construction of the conventional (L2) synopsis — Appendix A.

Four algorithms, all producing the *same* top-``B``-by-significance
synopsis and differing only in partitioning, computation, and
communication:

* **CON** (A.1): the paper's own algorithm; sub-tree aligned splits, each
  mapper computes its local transform and ships all local coefficients
  plus its sub-tree average; one reducer keeps the top-``B`` and builds
  the root sub-tree from the averages.  Communication ``O(N)``.
* **Send-V** (A.2): mappers forward raw data; the reducer computes the
  whole transform sequentially.  The degenerate baseline.
* **Send-Coef** (A.3, from Jestes et al. [21]): HDFS-block splits with no
  power-of-two alignment.  A mapper emits complete values for the
  coefficients fully contained in its block, and *per-datapoint partial
  contributions* for the ``O(log N - log S)`` straddling path
  coefficients — the extra communication the paper's CON avoids.
* **H-WTopk** (A.4, from [21]): a TPUT-style three-round top-``k`` that
  prunes with partial-sum thresholds; communication-efficient only when
  ``B`` is small relative to the mapper input (Figure 11), and
  memory-hungry when it is not (Figure 10).

Selection everywhere is by normalized significance
``|c| / sqrt(2**level)`` with ties broken on the lower index, so all four
return coefficient-identical synopses (verified in tests).
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable, Iterable, Iterator
from typing import Any

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.exceptions import InvalidInputError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.hdfs import InputSplit, aligned_splits, block_splits
from repro.mapreduce.job import MapReduceJob
from repro.core.partitioning import local_to_global
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import (
    coefficient_level,
    haar_transform,
    is_power_of_two,
)

__all__ = ["con_synopsis", "send_v_synopsis", "send_coef_synopsis", "h_wtopk_synopsis"]


def _significance(index: int, value: float) -> float:
    return abs(value) / math.sqrt(2.0 ** coefficient_level(index))


def _select_top_b(values: dict[int, float], budget: int) -> dict[int, float]:
    """Top-``budget`` coefficients by significance, lowest-index ties first."""
    ranked = heapq.nsmallest(
        budget,
        values.items(),
        key=lambda item: (-_significance(item[0], item[1]), item[0]),
    )
    return {index: value for index, value in ranked if value != 0.0}


def _prepare(
    data: ArrayLike, budget: int, split_size: int
) -> tuple[NDArray[np.float64], int]:
    values = np.asarray(data, dtype=np.float64)
    if values.ndim != 1 or not is_power_of_two(values.shape[0]):
        raise InvalidInputError("data length must be a power of two")
    if budget < 0:
        raise InvalidInputError("budget must be non-negative")
    if split_size > values.shape[0]:
        split_size = int(values.shape[0])
    return values, split_size


# ---------------------------------------------------------------------------
# CON (Appendix A.1)
# ---------------------------------------------------------------------------


class _ConJob(MapReduceJob):
    name = "con"
    stage_label = "conventional.con"
    num_reducers = 1

    def __init__(self, n: int, budget: int, split_size: int) -> None:
        self.n = n
        self.budget = budget
        self.split_size = split_size

    def map(self, split: InputSplit) -> Iterator[tuple[Any, Any]]:
        local = haar_transform(split.values)
        subtree_root = (self.n // self.split_size) + split.split_id
        for local_node in range(1, len(local)):
            yield "coef", (local_to_global(subtree_root, local_node), float(local[local_node]))
        yield "avg", (split.split_id, float(local[0]))

    def reduce_partition(self, records: list[tuple[Any, Any]]) -> Iterator[tuple[Any, Any]]:
        coefficients: dict[int, float] = {}
        averages: dict[int, float] = {}
        for key, payload in records:
            if key == "coef":
                index, value = payload
                coefficients[index] = value
            else:
                split_id, average = payload
                averages[split_id] = average
        root_coeffs = haar_transform([averages[i] for i in range(len(averages))])
        for index, value in enumerate(root_coeffs):
            coefficients[index] = float(value)
        yield "synopsis", _select_top_b(coefficients, self.budget)


def con_synopsis(
    data: ArrayLike, budget: int, cluster: SimulatedCluster | None = None, split_size: int = 1024
) -> WaveletSynopsis:
    """CON: conventional synopsis with locality-preserving partitioning."""
    values, split_size = _prepare(data, budget, split_size)
    cluster = cluster or SimulatedCluster()
    job = _ConJob(int(values.shape[0]), budget, split_size)
    result = cluster.run_job(job, aligned_splits(values, split_size))
    retained = dict(result.output)["synopsis"]
    return WaveletSynopsis(
        n=int(values.shape[0]),
        coefficients=retained,
        meta={"algorithm": "CON", "budget": budget},
    )


# ---------------------------------------------------------------------------
# Send-V (Appendix A.2)
# ---------------------------------------------------------------------------


class _SendVJob(MapReduceJob):
    name = "send-v"
    stage_label = "conventional.send_v"
    num_reducers = 1

    def __init__(self, n: int, budget: int) -> None:
        self.n = n
        self.budget = budget

    def map(self, split: InputSplit) -> Iterator[tuple[Any, Any]]:
        for i, value in enumerate(split.values):
            yield split.offset + i, float(value)

    def reduce_partition(self, records: list[tuple[Any, Any]]) -> Iterator[tuple[Any, Any]]:
        data = np.empty(self.n, dtype=np.float64)
        for index, value in records:
            data[index] = value
        coefficients = haar_transform(data)
        values = {i: float(c) for i, c in enumerate(coefficients)}
        yield "synopsis", _select_top_b(values, self.budget)


def send_v_synopsis(
    data: ArrayLike, budget: int, cluster: SimulatedCluster | None = None, split_size: int = 1024
) -> WaveletSynopsis:
    """Send-V: ship raw values; the reducer transforms sequentially."""
    values, split_size = _prepare(data, budget, split_size)
    cluster = cluster or SimulatedCluster()
    job = _SendVJob(int(values.shape[0]), budget)
    result = cluster.run_job(job, block_splits(values, split_size))
    retained = dict(result.output)["synopsis"]
    return WaveletSynopsis(
        n=int(values.shape[0]),
        coefficients=retained,
        meta={"algorithm": "Send-V", "budget": budget},
    )


# ---------------------------------------------------------------------------
# Send-Coef (Appendix A.3)
# ---------------------------------------------------------------------------


def _block_contributions(split: InputSplit, n: int) -> Iterator[tuple[int, float]]:
    """Yield Send-Coef emissions for one HDFS block.

    Complete coefficients (support inside the block) are emitted once;
    straddling path coefficients are emitted as one partial contribution
    *per datapoint* (Algorithm 7), which is exactly the
    ``O(S (log N - log S))`` communication the paper charges against
    Send-Coef.  The contribution of ``d_i`` to ``c_j`` is
    ``delta_ij * d_i / support(j)`` (and ``d_i / N`` to ``c_0``).
    """
    a = split.offset
    b = a + len(split)
    block = np.asarray(split.values, dtype=np.float64)
    prefix = np.concatenate([[0.0], np.cumsum(block)])

    def range_sum(lo: int, hi: int) -> float:
        # Sum of data[lo:hi] clipped to the block.
        lo = max(lo, a)
        hi = min(hi, b)
        if hi <= lo:
            return 0.0
        return float(prefix[hi - a] - prefix[lo - a])

    log_n = n.bit_length() - 1
    for level in range(log_n):
        support = n >> level
        first_node = (1 << level) + a // support
        last_node = (1 << level) + (b - 1) // support
        for node in range(first_node, last_node + 1):
            node_lo = (node - (1 << level)) * support
            node_hi = node_lo + support
            mid = node_lo + support // 2
            if node_lo >= a and node_hi <= b:
                value = (range_sum(node_lo, mid) - range_sum(mid, node_hi)) / support
                yield node, value
            else:
                # Straddling node: per-datapoint partial contributions.
                for i in range(max(node_lo, a), min(node_hi, b)):
                    sign = 1.0 if i < mid else -1.0
                    yield node, sign * block[i - a] / support
    # c_0 always straddles (unless the block is the whole dataset).
    if a == 0 and b == n:
        yield 0, float(prefix[-1]) / n
    else:
        for i in range(a, b):
            yield 0, block[i - a] / n


class _SendCoefJob(MapReduceJob):
    name = "send-coef"
    stage_label = "conventional.send_coef"
    num_reducers = 1

    def __init__(self, n: int, budget: int) -> None:
        self.n = n
        self.budget = budget

    def map(self, split: InputSplit) -> Iterator[tuple[Any, Any]]:
        yield from _block_contributions(split, self.n)

    def reduce_partition(self, records: list[tuple[Any, Any]]) -> Iterator[tuple[Any, Any]]:
        totals: dict[int, float] = {}
        for index, value in records:
            totals[index] = totals.get(index, 0.0) + value
        # Clean float dust so implicit zeros match the other algorithms.
        cleaned = {i: (0.0 if abs(v) < 1e-9 else v) for i, v in totals.items()}
        yield "synopsis", _select_top_b(cleaned, self.budget)


def send_coef_synopsis(
    data: ArrayLike, budget: int, cluster: SimulatedCluster | None = None, block_size: int = 1500
) -> WaveletSynopsis:
    """Send-Coef: per-datapoint path contributions over unaligned blocks."""
    values = np.asarray(data, dtype=np.float64)
    if values.ndim != 1 or not is_power_of_two(values.shape[0]):
        raise InvalidInputError("data length must be a power of two")
    if budget < 0:
        raise InvalidInputError("budget must be non-negative")
    cluster = cluster or SimulatedCluster()
    job = _SendCoefJob(int(values.shape[0]), budget)
    result = cluster.run_job(job, block_splits(values, block_size))
    retained = dict(result.output)["synopsis"]
    return WaveletSynopsis(
        n=int(values.shape[0]),
        coefficients=retained,
        meta={"algorithm": "Send-Coef", "budget": budget},
    )


# ---------------------------------------------------------------------------
# H-WTopk (Appendix A.4)
# ---------------------------------------------------------------------------


def _local_partial_values(split: InputSplit, n: int) -> dict[int, float]:
    """A mapper's partial *normalized* coefficient values ``c_j(x)``."""
    totals: dict[int, float] = {}
    for node, value in _block_contributions(split, n):
        totals[node] = totals.get(node, 0.0) + value
    return {
        node: value / math.sqrt(2.0 ** coefficient_level(node))
        for node, value in totals.items()
    }


class _HWTopkRound(MapReduceJob):
    """One communication round of H-WTopk.

    ``mode`` selects what the mappers send: the top/bottom ``k`` local
    values (round 1), everything above the ``T1/m`` threshold (round 2),
    or the values of the surviving candidate set (round 3).
    """

    #: All three rounds share one role (the per-instance ``name`` carries
    #: the round mode).
    stage_label = "conventional.h_wtopk"
    num_reducers = 1

    def __init__(
        self,
        n: int,
        k: int,
        mode: str,
        threshold: float = 0.0,
        candidates: set[int] | None = None,
    ) -> None:
        self.n = n
        self.k = k
        self.mode = mode
        self.threshold = threshold
        self.candidates = candidates or set()
        self.name = f"h-wtopk-round-{mode}"

    def map(self, split: InputSplit) -> Iterator[tuple[Any, Any]]:
        local = _local_partial_values(split, self.n)
        mapper_id = split.split_id
        if self.mode == "extremes":
            ordered = sorted(local.items(), key=lambda item: item[1])
            lowest = ordered[: self.k]
            highest = ordered[-self.k :]
            kth_high = highest[0][1] if highest else 0.0
            kth_low = lowest[-1][1] if lowest else 0.0
            yield "bounds", (mapper_id, kth_high, kth_low)
            for node, value in {**dict(lowest), **dict(highest)}.items():
                yield "value", (mapper_id, node, value)
        elif self.mode == "threshold":
            for node, value in local.items():
                if abs(value) > self.threshold:
                    yield "value", (mapper_id, node, value)
        else:  # mode == "candidates"
            # Sorted: iterating the set directly would emit records in
            # hash order, making the round's map output run-dependent.
            for node in sorted(self.candidates):
                yield "value", (mapper_id, node, local.get(node, 0.0))

    def reduce(self, key: Any, values: list[Any]) -> Iterator[tuple[Any, Any]]:
        yield key, list(values)


def _tau_bounds(
    seen: dict[int, dict[int, float]],
    mapper_count: int,
    high_default: Callable[[int], float],
    low_default: Callable[[int], float],
) -> dict[int, tuple[float, float]]:
    """Per-coefficient total-value bounds (tau+, tau-) from partial sums."""
    bounds: dict[int, tuple[float, float]] = {}
    for node, per_mapper in seen.items():
        tau_plus = 0.0
        tau_minus = 0.0
        for mapper_id in range(mapper_count):
            if mapper_id in per_mapper:
                tau_plus += per_mapper[mapper_id]
                tau_minus += per_mapper[mapper_id]
            else:
                tau_plus += high_default(mapper_id)
                tau_minus += low_default(mapper_id)
        bounds[node] = (tau_plus, tau_minus)
    return bounds


def _tau_magnitude(tau_plus: float, tau_minus: float) -> float:
    if (tau_plus >= 0) != (tau_minus >= 0):
        return 0.0
    return min(abs(tau_plus), abs(tau_minus))


def _kth_largest(values: Iterable[float], k: int) -> float:
    ordered = sorted(values, reverse=True)
    if not ordered:
        return 0.0
    return ordered[min(k, len(ordered)) - 1]


def h_wtopk_synopsis(
    data: ArrayLike, budget: int, cluster: SimulatedCluster | None = None, block_size: int = 1500
) -> WaveletSynopsis:
    """H-WTopk: three-round TPUT-style top-``B`` (Appendix A.4)."""
    values = np.asarray(data, dtype=np.float64)
    if values.ndim != 1 or not is_power_of_two(values.shape[0]):
        raise InvalidInputError("data length must be a power of two")
    if budget <= 0:
        raise InvalidInputError("H-WTopk requires a positive budget")
    cluster = cluster or SimulatedCluster()
    n = int(values.shape[0])
    splits = block_splits(values, block_size)
    mapper_count = len(splits)

    # Round 1: local extremes -> threshold T1.
    round1 = cluster.run_job(_HWTopkRound(n, budget, "extremes"), splits)
    kth_high: dict[int, float] = {}
    kth_low: dict[int, float] = {}
    seen: dict[int, dict[int, float]] = {}
    peak_records = 0
    for key, payloads in round1.output:
        peak_records += len(payloads)
        for payload in payloads:
            if key == "bounds":
                mapper_id, high, low = payload
                kth_high[mapper_id] = high
                kth_low[mapper_id] = low
            else:
                mapper_id, node, value = payload
                seen.setdefault(node, {})[mapper_id] = value

    bounds = _tau_bounds(seen, mapper_count, kth_high.__getitem__, kth_low.__getitem__)
    t1 = _kth_largest(
        (_tau_magnitude(tp, tm) for tp, tm in bounds.values()), budget
    )

    # Round 2: everything above T1/m -> refined threshold T2 and pruning.
    round2 = cluster.run_job(
        _HWTopkRound(n, budget, "threshold", threshold=t1 / max(mapper_count, 1)), splits
    )
    for key, payloads in round2.output:
        peak_records += len(payloads)
        for mapper_id, node, value in payloads:
            seen.setdefault(node, {})[mapper_id] = value

    default = t1 / max(mapper_count, 1)
    bounds = _tau_bounds(seen, mapper_count, lambda m: default, lambda m: -default)
    t2 = _kth_largest(
        (_tau_magnitude(tp, tm) for tp, tm in bounds.values()), budget
    )
    candidates = {
        node
        for node, (tp, tm) in bounds.items()
        if max(abs(tp), abs(tm)) >= t2
    }

    # Round 3: exact values of the candidates.
    round3 = cluster.run_job(
        _HWTopkRound(n, budget, "candidates", candidates=candidates), splits
    )
    totals: dict[int, float] = {}
    for _, payloads in round3.output:
        peak_records += len(payloads)
        for _, node, value in payloads:
            totals[node] = totals.get(node, 0.0) + value

    top = heapq.nsmallest(
        budget, totals.items(), key=lambda item: (-abs(item[1]), item[0])
    )
    # De-normalize back to error-tree coefficient values.
    retained = {
        node: (0.0 if abs(norm) < 1e-9 else norm * math.sqrt(2.0 ** coefficient_level(node)))
        for node, norm in top
    }
    retained = {node: value for node, value in retained.items() if value != 0.0}
    return WaveletSynopsis(
        n=n,
        coefficients=retained,
        meta={
            "algorithm": "H-WTopk",
            "budget": budget,
            "candidate_count": len(candidates),
            "peak_records": peak_records,
        },
    )
