#!/usr/bin/env python3
"""Cluster-scaling behaviour of the distributed algorithms (Figure 5 story).

Shows the two structural effects the paper's scalability section hinges
on, using the simulated Hadoop cluster:

* with spare map slots, runtime is nearly flat in N (everything runs in
  parallel); once the slots saturate, runtime grows linearly;
* halving the cluster roughly doubles DGreedyAbs's runtime.

Run:  python examples/cluster_scaling.py
"""

import numpy as np

from repro.bench import print_table
from repro.core import d_greedy_abs
from repro.data import uniform_dataset
from repro.mapreduce import ClusterConfig, SimulatedCluster


def sweep_data_size():
    rows = []
    for log_n in range(12, 16):
        n = 1 << log_n
        data = uniform_dataset(n, (0, 1000), seed=1)
        cluster = SimulatedCluster(ClusterConfig(map_slots=40))
        d_greedy_abs(data, n // 8, cluster, base_leaves=1024, bucket_width=1.0)
        rows.append(
            {
                "N": n,
                "map tasks": n // 1024,
                "simulated seconds": cluster.simulated_seconds,
            }
        )
    print_table("Runtime vs data size (40 map slots)", rows)
    print("(flat while tasks <= slots, then linear — Figure 5c's shape)")


def sweep_cluster_size():
    from repro.mapreduce import price_log

    n = 1 << 15
    data = uniform_dataset(n, (0, 1000), seed=2)
    # Measure the workload once, then re-price the same job log under
    # different capacities — the noise-free way to sweep cluster sizes.
    reference = SimulatedCluster(ClusterConfig(map_slots=40))
    d_greedy_abs(data, n // 8, reference, base_leaves=1024, bucket_width=1.0)
    rows = [
        {
            "map slots": slots,
            "simulated seconds": price_log(
                reference.log, ClusterConfig(map_slots=slots)
            ),
        }
        for slots in (40, 20, 10)
    ]
    print_table(f"Runtime vs cluster capacity (N={n})", rows)
    print("(shrinking the slot pool slows the map phase proportionally)")


if __name__ == "__main__":
    np.random.seed(0)
    sweep_data_size()
    sweep_cluster_size()
