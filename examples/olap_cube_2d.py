#!/usr/bin/env python3
"""Summarizing a 2-D data cube (hour x region) with 2-D wavelets.

The wavelet-AQP literature the paper builds on (Vitter & Wang) targets
multidimensional aggregates.  This example compresses an hour-by-region
traffic matrix with the 2-D standard decomposition and answers rectangle
aggregates — "total traffic in regions 10-20 during hours 40-60" — from
the synopsis in O(log^2 N).

Run:  python examples/olap_cube_2d.py
"""

import numpy as np

from repro.wavelet import conventional_synopsis_2d, greedy_abs_2d

HOURS, REGIONS = 64, 32


def make_cube(seed=0):
    rng = np.random.default_rng(seed)
    hours = np.arange(HOURS)
    daily = 400 + 300 * np.sin(2 * np.pi * hours / 24)         # diurnal cycle
    popularity = rng.gamma(2.0, 1.0, size=REGIONS)              # region weights
    cube = np.outer(daily, popularity)
    cube += rng.normal(0, 30, size=cube.shape)                  # noise
    cube[20:24, 5] += 4000                                      # a local incident
    return np.maximum(cube, 0.0)


def main():
    cube = make_cube()
    budget = cube.size // 8
    print(f"cube: {HOURS} hours x {REGIONS} regions, budget B = {budget}")

    conventional = conventional_synopsis_2d(cube, budget)
    greedy = greedy_abs_2d(cube, budget)
    print(f"  conventional (L2-optimal): max_abs={conventional.max_abs_error(cube):9.2f}  L2={conventional.l2_error(cube):7.2f}")
    print(f"  greedy (max-error)       : max_abs={greedy.max_abs_error(cube):9.2f}  L2={greedy.l2_error(cube):7.2f}")

    print("\n=== Rectangle aggregates from the max-error synopsis ===")
    rng = np.random.default_rng(1)
    for _ in range(4):
        h1, h2 = sorted(rng.integers(0, HOURS, size=2))
        r1, r2 = sorted(rng.integers(0, REGIONS, size=2))
        exact = cube[h1 : h2 + 1, r1 : r2 + 1].sum()
        approx = greedy.rectangle_sum((h1, h2), (r1, r2))
        print(
            f"  sum(hours {h1:2d}-{h2:2d}, regions {r1:2d}-{r2:2d}): "
            f"exact={exact:12.1f}  approx={approx:12.1f}"
        )

    print("\n=== The incident cell survives max-error thresholding ===")
    print(f"  exact cell (22, 5)        = {cube[22, 5]:9.2f}")
    print(f"  greedy synopsis           = {greedy.cell_query(22, 5):9.2f}")
    print(f"  conventional synopsis     = {conventional.cell_query(22, 5):9.2f}")


if __name__ == "__main__":
    main()
