#!/usr/bin/env python3
"""Error-bounded compression of wind-direction sensor streams (WD scenario).

Sensor archives often need the *dual* guarantee: "store as little as
possible, but never be more than ε degrees off".  That is Problem 2 of
the paper, solved by MinHaarSpace and, at scale, by its distributed
version DMHaarSpace (the Section 4 framework applied to the DP).

This example sweeps the error bound ε over a WD-like stream and reports
the synopsis size (compression ratio) the DP achieves, then verifies that
the distributed run matches the centralized one bit for bit.

Run:  python examples/sensor_compression.py
"""

import numpy as np

from repro.algos import min_haar_space
from repro.core import dm_haar_space
from repro.data import wd_dataset
from repro.mapreduce import SimulatedCluster

N = 1 << 13
DELTA = 1.0  # quantization step in azimuth degrees


def main():
    print(f"Generating {N} wind-direction readings ...")
    data = wd_dataset(N, seed=11)
    print(
        f"  mean={data.mean():.1f} deg  std={data.std():.1f} deg  "
        f"max={data.max():.1f} deg"
    )

    print("\n=== Problem 2: minimum synopsis size for an error bound ===")
    print(f"{'epsilon (deg)':>13} {'coefficients':>13} {'ratio':>8} {'actual err':>11}")
    for epsilon in (2.0, 5.0, 10.0, 20.0, 40.0):
        solution = min_haar_space(data, epsilon, DELTA)
        ratio = N / max(solution.size, 1)
        print(
            f"{epsilon:13.1f} {solution.size:13d} {ratio:7.0f}x "
            f"{solution.max_error:11.2f}"
        )

    print("\n=== Distributed run (DMHaarSpace) matches centralized exactly ===")
    epsilon = 10.0
    cluster = SimulatedCluster()
    distributed = dm_haar_space(data, epsilon, DELTA, cluster, subtree_leaves=1024)
    centralized = min_haar_space(data, epsilon, DELTA)
    print(f"  centralized : size={centralized.size}  err={centralized.max_error:.2f}")
    print(
        f"  distributed : size={distributed.size}  err={distributed.max_error:.2f}  "
        f"jobs={cluster.log.job_count}  "
        f"shuffled={cluster.log.shuffle_bytes / 1e3:.1f} KB  "
        f"simulated={cluster.simulated_seconds:.3f}s"
    )
    assert distributed.synopsis.same_coefficients(centralized.synopsis, tolerance=1e-12)
    print("  -> identical synopses (the Section 4 framework is exact)")

    print("\n=== Reconstruction check on a window ===")
    approx = distributed.synopsis.reconstruct()
    lo, hi = 2000, 2010
    print(f"  exact  [{lo}:{hi}]: {np.round(data[lo:hi], 1).tolist()}")
    print(f"  approx [{lo}:{hi}]: {np.round(approx[lo:hi], 1).tolist()}")


if __name__ == "__main__":
    main()
