#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Walks through Table 1 / Figure 1 of the paper (the Haar decomposition of
[5, 5, 0, 26, 1, 3, 14, 2]), then builds max-error synopses of a larger
array with the main algorithms and compares their guarantees.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import build_synopsis
from repro.wavelet import (
    decomposition_steps,
    haar_transform,
    reconstruct_range_sum,
    reconstruct_value,
)

PAPER_DATA = [5, 5, 0, 26, 1, 3, 14, 2]


def table1_walkthrough():
    print("=== Table 1: the Haar wavelet decomposition ===")
    print(f"data        : {PAPER_DATA}")
    for resolution, (averages, details) in enumerate(reversed(decomposition_steps(PAPER_DATA))):
        print(f"resolution {resolution}: averages={averages.tolist()} details={details.tolist()}")
    transform = haar_transform(PAPER_DATA)
    print(f"W_A         : {transform.tolist()}")

    print("\n=== Error-tree reconstruction (Section 2.2) ===")
    d5 = reconstruct_value(transform, 5, 8)
    print(f"d_5 = 7 - 2 - 3 - (-1) = {d5}")
    range_sum = reconstruct_range_sum(transform, 3, 6, 8)
    print(f"d(3:6) = {range_sum}  (exact: {sum(PAPER_DATA[3:7])})")

    print("\n=== A 3-term synopsis (Section 2.3) ===")
    from repro.wavelet import WaveletSynopsis

    synopsis = WaveletSynopsis(8, {0: 7.0, 5: -13.0, 3: -3.0})
    print(f"retained    : {synopsis.coefficients}")
    print(f"d_5_hat     : {synopsis.point_query(5)}  (actual d_5 = 3)")
    print(f"max_abs     : {synopsis.max_abs_error(PAPER_DATA)}")


def algorithm_comparison():
    print("\n=== Thresholding algorithms on 4096 uniform points, B = N/8 ===")
    rng = np.random.default_rng(0)
    data = rng.uniform(0, 1000, size=4096)
    budget = len(data) // 8

    for algorithm in ("conventional", "greedy-abs", "dgreedy-abs", "indirect-haar"):
        synopsis = build_synopsis(
            data, budget, algorithm=algorithm, subtree_leaves=512, delta=4.0
        )
        print(
            f"{algorithm:>14}: size={synopsis.size:4d}  "
            f"max_abs={synopsis.max_abs_error(data):8.2f}  "
            f"L2={synopsis.l2_error(data):7.2f}"
        )
    print(
        "\nThe max-error algorithms trade a little L2 for a much tighter"
        " worst-case guarantee — the paper's core motivation."
    )


def approximate_queries():
    print("\n=== Approximate query processing over the synopsis ===")
    rng = np.random.default_rng(1)
    data = rng.uniform(0, 1000, size=4096)
    synopsis = build_synopsis(data, 512, algorithm="dgreedy-abs", subtree_leaves=512)
    for lo, hi in [(0, 99), (1000, 1999), (3000, 4095)]:
        exact = data[lo : hi + 1].mean()
        approx = synopsis.range_avg(lo, hi)
        print(f"avg[{lo:4d}:{hi:4d}]  exact={exact:8.2f}  approx={approx:8.2f}")


if __name__ == "__main__":
    table1_walkthrough()
    algorithm_comparison()
    approximate_queries()
