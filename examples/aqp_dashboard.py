#!/usr/bin/env python3
"""A multi-series AQP "dashboard" backed by a SynopsisStore.

Summarizes several sensor/traffic series into one store, persists it, and
answers the kind of aggregate queries a dashboard fires — each with a
deterministic error bound derived from the max-abs guarantee.

Run:  python examples/aqp_dashboard.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import SynopsisStore
from repro.bench import print_table
from repro.data import nyct_dataset, wd_dataset


def main():
    store = SynopsisStore()
    store.add("taxi_trip_seconds", nyct_dataset(1 << 13, seed=1), budget=1024)
    store.add("wind_direction_deg", wd_dataset(1 << 13, seed=2), budget=1024)
    rng = np.random.default_rng(3)
    store.add(
        "requests_per_minute",
        np.maximum(rng.normal(500, 80, size=5000) + 200 * np.sin(np.arange(5000) / 250), 0),
        budget=512,
    )

    print_table("Store contents", store.report())

    print("\n=== Dashboard queries (approx ± deterministic bound) ===")
    for series, lo, hi in [
        ("taxi_trip_seconds", 0, 1023),
        ("wind_direction_deg", 4096, 6143),
        ("requests_per_minute", 1000, 1999),
    ]:
        avg = store.range_avg(series, lo, hi)
        lower, upper = store.range_sum_bounds(series, lo, hi)
        width = hi - lo + 1
        print(
            f"  avg({series}[{lo}:{hi}]) ≈ {avg:10.2f}   "
            f"(exact avg ∈ [{lower / width:.2f}, {upper / width:.2f}])"
        )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "synopses.json"
        store.save(path)
        size_kb = path.stat().st_size / 1024
        reloaded = SynopsisStore.load(path)
        print(f"\nPersisted {len(store)} synopses in {size_kb:.1f} KB and reloaded:")
        print(f"  point(taxi_trip_seconds, 42) = {reloaded.point('taxi_trip_seconds', 42):.2f}")


if __name__ == "__main__":
    main()
