#!/usr/bin/env python3
"""Approximate query processing over taxi trip times (the NYCT scenario).

The paper's introduction motivates max-error synopses with exploratory
analytics: a dashboard asking "how long do trips take in this hour band?"
can tolerate approximate answers but needs *per-answer* guarantees — the
L2-optimal synopsis can be wildly wrong on individual regions.

This example builds a DGreedyAbs synopsis of an NYCT-like trip-time array
on a simulated 40-slot cluster, then runs point and range queries against
it, comparing against both the exact data and the conventional synopsis.

Run:  python examples/taxi_trip_aqp.py
"""

import numpy as np

from repro.core import con_synopsis, d_greedy_abs
from repro.data import nyct_dataset
from repro.mapreduce import ClusterConfig, SimulatedCluster

N = 1 << 15  # stands in for the paper's 64M-record partition
BUDGET = N // 8


def main():
    print(f"Generating {N} NYCT-like trip-time records ...")
    data = nyct_dataset(N, real_fraction=1.0, seed=3)

    cluster = SimulatedCluster(ClusterConfig(map_slots=40, reduce_slots=16))
    print("Building DGreedyAbs synopsis (B = N/8) on the simulated cluster ...")
    max_err_synopsis = d_greedy_abs(data, BUDGET, cluster, base_leaves=2048)
    print(
        f"  jobs={cluster.log.job_count}  "
        f"simulated time={cluster.simulated_seconds:.3f}s  "
        f"shuffled={cluster.log.shuffle_bytes / 1e6:.2f} MB"
    )

    conventional = con_synopsis(data, BUDGET, SimulatedCluster(), split_size=2048)

    print("\n=== Worst-case guarantees (Figure 8b's comparison) ===")
    e_greedy = max_err_synopsis.max_abs_error(data)
    e_conv = conventional.max_abs_error(data)
    print(f"  DGreedyAbs   max_abs = {e_greedy:9.2f} s")
    print(f"  conventional max_abs = {e_conv:9.2f} s   ({e_conv / e_greedy:.1f}x worse)")

    print("\n=== Dashboard queries: average trip time per band ===")
    print(f"{'band':>16} {'exact':>9} {'DGreedyAbs':>11} {'conventional':>13}")
    rng = np.random.default_rng(0)
    for _ in range(6):
        lo = int(rng.integers(0, N - 2048))
        hi = lo + int(rng.integers(256, 2048))
        exact = data[lo : hi + 1].mean()
        approx = max_err_synopsis.range_avg(lo, hi)
        conv = conventional.range_avg(lo, hi)
        print(f"[{lo:6d},{hi:6d}] {exact:9.2f} {approx:11.2f} {conv:13.2f}")

    print("\n=== Single-trip lookups (max-error guarantee applies per value) ===")
    for leaf in rng.integers(0, N, size=5):
        exact = data[leaf]
        approx = max_err_synopsis.point_query(int(leaf))
        print(
            f"  trip {int(leaf):6d}: exact={exact:8.2f}  approx={approx:8.2f}  "
            f"|err|={abs(exact - approx):7.2f}  (guarantee: <= {e_greedy:.2f})"
        )


if __name__ == "__main__":
    main()
