"""Property tests for the approximate DP tier (coarsening knob ``rho``).

Three guarantee families, checked over hypothesis-drawn inputs:

* **Dual (MinHaarSpace)** — for every ``rho`` in the supported grid, the
  approximate build keeps ``max_error <= (1 + rho) * epsilon`` and never
  retains more coefficients than the exact DP (the snapping argument:
  every exact solution snaps onto the coarse grid with bounded drift).
* **Primal (IndirectHaar / DIndirectHaar)** — coarsened probes never buy
  speed by overspending: ``size <= budget`` always, and the achieved
  error stays within ``(1 + rho) * (E_exact + search resolution)``.
* **rho = 0 is the exact tier** — bit-identical coefficients, size, and
  error across every runtime (local / threads / process) and both
  shuffle disciplines, because ``approx_params`` falls back to the exact
  grid whenever the coarse step is no coarser than the clamped one.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algos.conventional import conventional_synopsis
from repro.algos.indirect_haar import indirect_haar, search_resolution
from repro.algos.minhaarspace import approx_params, effective_delta, min_haar_space
from repro.core.dindirect import d_indirect_haar
from repro.mapreduce import SimulatedCluster, make_runtime

#: The knob grid the acceptance criteria name; 0.0 is the exact tier.
RHO_GRID = [0.0, 0.05, 0.1, 0.25]

SMALL = settings(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

data_arrays = st.integers(min_value=5, max_value=6).flatmap(
    lambda log_n: st.lists(
        st.integers(min_value=0, max_value=100).map(float),
        min_size=1 << log_n,
        max_size=1 << log_n,
    ).map(np.array)
)


class TestApproxParams:
    def test_rho_zero_is_the_exact_grid(self):
        for epsilon, delta, n in [(10.0, 0.5, 256), (3.0, 0.01, 1024)]:
            epsilon_dp, delta_dp = approx_params(epsilon, delta, n, 0.0)
            assert epsilon_dp == epsilon
            assert delta_dp == effective_delta(epsilon, delta, n)

    def test_coarse_regime_widens_the_step(self):
        # Fine nominal grid: the coarse step wins and epsilon inflates.
        epsilon_dp, delta_dp = approx_params(3.0, 0.01, 1024, 0.1)
        assert epsilon_dp == pytest.approx(3.3)
        assert delta_dp > effective_delta(3.0, 0.01, 1024)

    def test_exact_fallback_when_nominal_grid_is_coarser(self):
        # A coarse nominal delta already dominates the rho step: the
        # tier must fall back to the exact parameters bit-for-bit.
        exact = approx_params(4.0, 3.0, 64, 0.0)
        assert approx_params(4.0, 3.0, 64, 0.001) == exact

    def test_negative_rho_rejected(self):
        with pytest.raises(ValueError):
            approx_params(4.0, 1.0, 64, -0.1)


class TestDualGuarantees:
    @given(
        data=data_arrays,
        epsilon=st.floats(min_value=4.0, max_value=40.0),
        rho=st.sampled_from(RHO_GRID),
    )
    @SMALL
    def test_error_and_size_within_proven_bounds(self, data, epsilon, rho):
        delta = 0.1  # fine grid so coarsening has room to act
        exact = min_haar_space(data, epsilon, delta)
        approx = min_haar_space(data, epsilon, delta, rho=rho)
        assert approx.max_error <= (1.0 + rho) * epsilon + 1e-9
        assert approx.size <= exact.size
        assert approx.synopsis.meta["rho"] == rho

    @given(data=data_arrays, epsilon=st.floats(min_value=4.0, max_value=40.0))
    @SMALL
    def test_rho_zero_bit_identical_to_exact(self, data, epsilon):
        exact = min_haar_space(data, epsilon, 0.1)
        zero = min_haar_space(data, epsilon, 0.1, rho=0.0)
        assert zero.size == exact.size
        assert zero.max_error == exact.max_error
        assert zero.synopsis.coefficients == exact.synopsis.coefficients


class TestPrimalGuarantees:
    @given(
        data=data_arrays,
        budget_divisor=st.sampled_from([4, 8]),
        rho=st.sampled_from(RHO_GRID),
    )
    @SMALL
    def test_budget_never_exceeded_and_error_bounded(self, data, budget_divisor, rho):
        budget = max(1, len(data) // budget_divisor)
        delta = 0.25
        exact = indirect_haar(data, budget, delta)
        approx = indirect_haar(data, budget, delta, rho=rho)
        assert approx.size <= budget
        error_high = conventional_synopsis(data, budget).max_abs_error(data)
        resolution = search_resolution(error_high, delta, len(data), rho)
        exact_error = exact.max_abs_error(data)
        bound = (1.0 + rho) * (exact_error + resolution)
        assert approx.max_abs_error(data) <= bound + 1e-9
        assert approx.meta["rho"] == rho


class TestRhoZeroAcrossRuntimes:
    """rho=0 must be the exact distributed build on every substrate."""

    @pytest.mark.parametrize("shuffle", ["memory", "external"])
    @pytest.mark.parametrize("runtime_name", ["local", "threads", "process"])
    def test_bit_identical_coefficients(self, runtime_name, shuffle):
        data = np.cumsum(np.random.default_rng(11).normal(0.0, 5.0, 64)) + 100.0
        budget = 8
        reference = d_indirect_haar(data, budget, delta=0.5, subtree_leaves=16)
        cluster = SimulatedCluster(runtime=make_runtime(runtime_name, shuffle=shuffle))
        built = d_indirect_haar(
            data, budget, delta=0.5, cluster=cluster, subtree_leaves=16, rho=0.0
        )
        assert built.size == reference.size
        assert built.coefficients == reference.coefficients
        assert built.meta["max_abs_error"] == reference.meta["max_abs_error"]

    @pytest.mark.parametrize("rho", [0.1, 0.25])
    def test_coarsened_distributed_build_keeps_guarantees(self, rho):
        data = np.cumsum(np.random.default_rng(3).normal(0.0, 1.0, 256))
        budget = 16
        exact = d_indirect_haar(data, budget, delta=0.01, subtree_leaves=64)
        approx = d_indirect_haar(
            data, budget, delta=0.01, subtree_leaves=64, rho=rho
        )
        assert approx.size <= budget
        error_high = conventional_synopsis(data, budget).max_abs_error(data)
        resolution = search_resolution(error_high, 0.01, 256, rho)
        bound = (1.0 + rho) * (float(exact.meta["max_abs_error"]) + resolution)
        assert float(approx.meta["max_abs_error"]) <= bound + 1e-9
        # Coarsening exists to cut probe work: never more DP runs than exact.
        assert approx.meta["dp_runs"] <= exact.meta["dp_runs"] + 1
