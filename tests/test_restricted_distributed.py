"""Tests for the restricted variants end to end (facade, DIndirectHaar)."""

import numpy as np
import pytest

from repro import build_synopsis
from repro.algos.indirect_haar import indirect_haar
from repro.core.dindirect import d_indirect_haar
from repro.mapreduce import SimulatedCluster
from repro.wavelet.transform import haar_transform


def uniform_data(n, seed=0):
    return np.random.default_rng(seed).uniform(0, 500, size=n)


class TestRestrictedIndirectHaar:
    def test_distributed_matches_centralized(self):
        data = uniform_data(256, seed=1)
        for budget in (16, 64):
            dist = d_indirect_haar(
                data, budget, delta=2.0, subtree_leaves=64, restricted=True
            )
            cent = indirect_haar(data, budget, delta=2.0, restricted=True)
            assert dist.max_abs_error(data) == pytest.approx(
                cent.max_abs_error(data), abs=1e-9
            )
            assert dist.size <= budget

    def test_unrestricted_never_worse(self):
        data = uniform_data(256, seed=2)
        budget = 32
        unrestricted = indirect_haar(data, budget, delta=2.0).max_abs_error(data)
        restricted = indirect_haar(data, budget, delta=2.0, restricted=True).max_abs_error(data)
        assert unrestricted <= restricted + 1e-9

    def test_restricted_values_are_snapped_coefficients(self):
        data = uniform_data(128, seed=3)
        synopsis = indirect_haar(data, 16, delta=2.0, restricted=True)
        coefficients = haar_transform(data)
        delta_used = synopsis.meta["delta"]
        for node, value in synopsis.coefficients.items():
            # Value is the node's Haar coefficient snapped to some grid at
            # least as fine as the requested delta.
            assert abs(value - coefficients[node]) <= delta_used / 2 + 1e-9


class TestFacadeRestricted:
    @pytest.mark.parametrize(
        "algorithm", ["indirect-haar-restricted", "dindirect-haar-restricted"]
    )
    def test_runs_and_respects_budget(self, algorithm):
        data = uniform_data(256, seed=4)
        synopsis = build_synopsis(
            data, 32, algorithm=algorithm, delta=4.0, subtree_leaves=64
        )
        assert synopsis.size <= 32

    def test_both_variants_agree(self):
        data = uniform_data(128, seed=5)
        cent = build_synopsis(data, 16, algorithm="indirect-haar-restricted", delta=2.0)
        dist = build_synopsis(
            data, 16, algorithm="dindirect-haar-restricted", delta=2.0, subtree_leaves=32
        )
        assert dist.max_abs_error(data) == pytest.approx(
            cent.max_abs_error(data), abs=1e-9
        )

    def test_cluster_accounting_for_restricted(self):
        cluster = SimulatedCluster()
        data = uniform_data(128, seed=6)
        build_synopsis(
            data,
            16,
            algorithm="dindirect-haar-restricted",
            cluster=cluster,
            delta=4.0,
            subtree_leaves=32,
        )
        assert cluster.log.job_count >= 3
        assert cluster.simulated_seconds > 0
