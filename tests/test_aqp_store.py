"""Tests for the SynopsisStore AQP layer."""

import numpy as np
import pytest

from repro.aqp import SynopsisStore
from repro.exceptions import InvalidInputError, ReproError


@pytest.fixture
def store():
    s = SynopsisStore()
    rng = np.random.default_rng(0)
    s.add("trips", rng.uniform(0, 1000, size=500), budget=64, algorithm="greedy-abs")
    s.add("wind", rng.uniform(0, 360, size=300), budget=32, algorithm="conventional")
    return s


class TestRegistration:
    def test_names_and_membership(self, store):
        assert store.names() == ["trips", "wind"]
        assert "trips" in store and "missing" not in store
        assert len(store) == 2

    def test_add_records_guarantee(self, store):
        assert store.guarantee("trips") < float("inf")

    def test_readding_replaces(self, store):
        before = store.guarantee("trips")
        store.add("trips", np.zeros(500), budget=4, algorithm="greedy-abs")
        assert store.guarantee("trips") == 0.0
        assert store.guarantee("trips") != before

    def test_rejects_empty_series(self, store):
        with pytest.raises(InvalidInputError):
            store.add("bad", [], budget=4)

    def test_unknown_series(self, store):
        with pytest.raises(ReproError):
            store.point("missing", 0)


class TestQueries:
    def test_point_within_guarantee(self, store):
        rng = np.random.default_rng(0)
        data = rng.uniform(0, 1000, size=500)
        fresh = SynopsisStore()
        fresh.add("x", data, budget=64, algorithm="greedy-abs")
        guarantee = fresh.guarantee("x")
        for i in (0, 250, 499):
            assert abs(fresh.point("x", i) - data[i]) <= guarantee + 1e-9

    def test_range_queries(self, store):
        total = store.range_sum("trips", 0, 99)
        average = store.range_avg("trips", 0, 99)
        assert average == pytest.approx(total / 100)

    def test_range_bounds_contain_exact_sum(self):
        rng = np.random.default_rng(1)
        data = rng.uniform(0, 1000, size=256)
        fresh = SynopsisStore()
        fresh.add("x", data, budget=32, algorithm="greedy-abs")
        lo, hi = 10, 99
        lower, upper = fresh.range_sum_bounds("x", lo, hi)
        exact = data[lo : hi + 1].sum()
        assert lower - 1e-6 <= exact <= upper + 1e-6

    def test_out_of_bounds_rejected(self, store):
        with pytest.raises(InvalidInputError):
            store.point("trips", 500)  # original length, padding excluded
        with pytest.raises(InvalidInputError):
            store.range_sum("wind", 100, 399)
        with pytest.raises(InvalidInputError):
            store.range_sum("wind", 50, 40)


class TestReportAndPersistence:
    def test_report_rows(self, store):
        rows = store.report()
        assert [row["series"] for row in rows] == ["trips", "wind"]
        assert all(row["ratio"] > 1 for row in rows)
        assert rows[0]["length"] == 500

    def test_save_load_roundtrip(self, store, tmp_path):
        path = tmp_path / "store.json"
        store.save(path)
        loaded = SynopsisStore.load(path)
        assert loaded.names() == store.names()
        assert loaded.point("trips", 7) == pytest.approx(store.point("trips", 7))
        assert loaded.guarantee("wind") == pytest.approx(store.guarantee("wind"))
        # Original lengths preserved: bounds checks still apply.
        with pytest.raises(InvalidInputError):
            loaded.point("wind", 300)
