"""Tests for the SynopsisStore AQP layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aqp import SynopsisStore
from repro.exceptions import InvalidInputError, ReproError
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.synopsis2d import greedy_abs_2d


@pytest.fixture
def store():
    s = SynopsisStore()
    rng = np.random.default_rng(0)
    s.add("trips", rng.uniform(0, 1000, size=500), budget=64, algorithm="greedy-abs")
    s.add("wind", rng.uniform(0, 360, size=300), budget=32, algorithm="conventional")
    return s


class TestRegistration:
    def test_names_and_membership(self, store):
        assert store.names() == ["trips", "wind"]
        assert "trips" in store and "missing" not in store
        assert len(store) == 2

    def test_add_records_guarantee(self, store):
        assert store.guarantee("trips") < float("inf")

    def test_readding_replaces(self, store):
        before = store.guarantee("trips")
        store.add("trips", np.zeros(500), budget=4, algorithm="greedy-abs")
        assert store.guarantee("trips") == 0.0
        assert store.guarantee("trips") != before

    def test_rejects_empty_series(self, store):
        with pytest.raises(InvalidInputError):
            store.add("bad", [], budget=4)

    def test_unknown_series(self, store):
        with pytest.raises(ReproError):
            store.point("missing", 0)


class TestQueries:
    def test_point_within_guarantee(self, store):
        rng = np.random.default_rng(0)
        data = rng.uniform(0, 1000, size=500)
        fresh = SynopsisStore()
        fresh.add("x", data, budget=64, algorithm="greedy-abs")
        guarantee = fresh.guarantee("x")
        for i in (0, 250, 499):
            assert abs(fresh.point("x", i) - data[i]) <= guarantee + 1e-9

    def test_range_queries(self, store):
        total = store.range_sum("trips", 0, 99)
        average = store.range_avg("trips", 0, 99)
        assert average == pytest.approx(total / 100)

    def test_range_bounds_contain_exact_sum(self):
        rng = np.random.default_rng(1)
        data = rng.uniform(0, 1000, size=256)
        fresh = SynopsisStore()
        fresh.add("x", data, budget=32, algorithm="greedy-abs")
        lo, hi = 10, 99
        lower, upper = fresh.range_sum_bounds("x", lo, hi)
        exact = data[lo : hi + 1].sum()
        assert lower - 1e-6 <= exact <= upper + 1e-6

    def test_out_of_bounds_rejected(self, store):
        with pytest.raises(InvalidInputError):
            store.point("trips", 500)  # original length, padding excluded
        with pytest.raises(InvalidInputError):
            store.range_sum("wind", 100, 399)
        with pytest.raises(InvalidInputError):
            store.range_sum("wind", 50, 40)

    def test_clip_edge_cases(self, store):
        # Inverted range (even in-bounds endpoints).
        with pytest.raises(InvalidInputError, match="empty range"):
            store.range_avg("trips", 10, 9)
        # Negative lo.
        with pytest.raises(InvalidInputError, match="out of bounds"):
            store.range_sum("trips", -1, 5)
        # hi exactly at the original length (first padded index).
        with pytest.raises(InvalidInputError, match="out of bounds"):
            store.range_sum("wind", 0, 300)
        # Single-element range at both extremes is fine.
        assert store.range_sum("wind", 0, 0) == pytest.approx(
            store.point("wind", 0)
        )
        assert store.range_sum("wind", 299, 299) == pytest.approx(
            store.point("wind", 299)
        )

    @settings(deadline=None, max_examples=25)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=1000).map(float),
            min_size=2,
            max_size=120,
        ),
        st.data(),
    )
    def test_range_sum_bounds_tightness_property(self, data, draw):
        """Bounds always contain the exact sum and are exactly
        ``width * guarantee`` wide around the approximate answer."""
        fresh = SynopsisStore()
        fresh.add("x", data, budget=8, algorithm="greedy-abs")
        n = len(data)
        lo = draw.draw(st.integers(min_value=0, max_value=n - 1))
        hi = draw.draw(st.integers(min_value=lo, max_value=n - 1))
        lower, upper = fresh.range_sum_bounds("x", lo, hi)
        exact = float(np.sum(np.asarray(data)[lo : hi + 1]))
        assert lower - 1e-6 <= exact <= upper + 1e-6
        width = (hi - lo + 1) * fresh.guarantee("x")
        approx = fresh.range_sum("x", lo, hi)
        assert upper - approx == pytest.approx(width, abs=1e-9)
        assert approx - lower == pytest.approx(width, abs=1e-9)


class TestReportAndPersistence:
    def test_report_rows(self, store):
        rows = store.report()
        assert [row["series"] for row in rows] == ["trips", "wind"]
        assert all(row["ratio"] > 1 for row in rows)
        assert rows[0]["length"] == 500

    def test_save_load_roundtrip(self, store, tmp_path):
        path = tmp_path / "store.json"
        store.save(path)
        loaded = SynopsisStore.load(path)
        assert loaded.names() == store.names()
        assert loaded.point("trips", 7) == pytest.approx(store.point("trips", 7))
        assert loaded.guarantee("wind") == pytest.approx(store.guarantee("wind"))
        # Original lengths preserved: bounds checks still apply.
        with pytest.raises(InvalidInputError):
            loaded.point("wind", 300)

    def test_report_for_single_series_and_miss(self, store):
        (row,) = store.report("wind")
        assert row["series"] == "wind"
        # Regression: a miss must raise the available-names ReproError,
        # never a raw KeyError escaping from the synopsis dict.
        with pytest.raises(ReproError, match=r"trips") as excinfo:
            store.report("missing")
        assert not isinstance(excinfo.value, KeyError)
        with pytest.raises(ReproError, match=r"available.*wind") as excinfo:
            store.guarantee("missing")
        assert not isinstance(excinfo.value, KeyError)

    def test_save_load_roundtrip_with_2d_and_none_length(self, store, tmp_path):
        rng = np.random.default_rng(4)
        grid = rng.uniform(0, 10, size=(8, 16))
        store.register("cube", greedy_abs_2d(grid, budget=24))
        # original_length=None falls back to the synopsis' own extent.
        bare = WaveletSynopsis(n=64, coefficients={0: 3.0, 5: -1.0}, meta={})
        store.register("bare", bare, original_length=None)
        assert store._lengths["cube"] == 8 * 16
        assert store._lengths["bare"] == 64

        path = tmp_path / "store.json"
        store.save(path)
        loaded = SynopsisStore.load(path)
        assert loaded.names() == ["bare", "cube", "trips", "wind"]
        cube = loaded.get("cube")
        assert cube.shape == (8, 16)
        assert cube.coefficients == store.get("cube").coefficients
        assert cube.cell_query(3, 7) == pytest.approx(
            store.get("cube").cell_query(3, 7)
        )
        assert loaded.point("bare", 0) == pytest.approx(store.point("bare", 0))
        # 1-D helpers refuse the 2-D series instead of misreading it.
        with pytest.raises(InvalidInputError, match="2-D"):
            loaded.point("cube", 0)
        # 2-D series still appear in reports.
        row = next(r for r in loaded.report() if r["series"] == "cube")
        assert row["coefficients"] == cube.size
