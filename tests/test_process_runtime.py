"""Tests for the process-pool runtime: equivalence with the local runtime."""

import numpy as np
import pytest

from repro.core import con_synopsis, d_greedy_abs, dm_haar_space
from repro.exceptions import JobFailedError
from repro.mapreduce import (
    FailureInjector,
    LocalRuntime,
    MapReduceJob,
    ProcessPoolRuntime,
    ProcessSafeFailureInjector,
    SimulatedCluster,
    block_splits,
    make_runtime,
)


class SquareSum(MapReduceJob):
    name = "square-sum"
    num_reducers = 2

    def map(self, split):
        for value in split.values:
            yield int(value) % 4, float(value) ** 2

    def reduce(self, key, values):
        yield key, sum(values)


class DriverStateJob(MapReduceJob):
    """A job that mutates driver-side state from its map tasks."""

    name = "driver-state"
    num_reducers = 0
    process_safe = False

    def __init__(self, sink: list):
        self.sink = sink

    def map(self, split):
        self.sink.append(split.split_id)
        yield split.split_id, len(split)


class TestEquivalence:
    def test_toy_job_outputs_match_local_runtime(self):
        data = np.arange(512, dtype=float)
        splits = block_splits(data, 32)
        local = LocalRuntime().run(SquareSum(), splits)
        pooled = ProcessPoolRuntime(max_workers=2).run(SquareSum(), splits)
        assert local.output == pooled.output
        assert local.shuffle_bytes == pooled.shuffle_bytes
        assert local.map_output_records == pooled.map_output_records
        assert local.counters.as_dict() == pooled.counters.as_dict()

    def test_map_outputs_keep_split_order(self):
        class_level_job = EchoSplit()
        data = np.arange(256, dtype=float)
        result = ProcessPoolRuntime(max_workers=4).run(class_level_job, block_splits(data, 16))
        assert [key for key, _ in result.output] == list(range(16))

    def test_dgreedy_identical_under_processes(self):
        data = np.random.default_rng(1).uniform(0, 1000, size=512)
        sequential = d_greedy_abs(
            data, 64, SimulatedCluster(runtime=LocalRuntime()), base_leaves=64
        )
        pooled = d_greedy_abs(
            data, 64, SimulatedCluster(runtime=ProcessPoolRuntime(2)), base_leaves=64
        )
        assert sequential.same_coefficients(pooled, tolerance=0.0)

    def test_dmhaarspace_identical_under_processes(self):
        # The layered DP jobs declare process_safe=False (driver-side row
        # store); the runtime must fall back in-process and still match.
        data = np.random.default_rng(2).integers(0, 200, size=256).astype(float)
        sequential = dm_haar_space(
            data, 20.0, 1.0, SimulatedCluster(runtime=LocalRuntime()), 32
        )
        pooled = dm_haar_space(
            data, 20.0, 1.0, SimulatedCluster(runtime=ProcessPoolRuntime(2)), 32
        )
        assert sequential.size == pooled.size
        assert sequential.synopsis.same_coefficients(pooled.synopsis, tolerance=0.0)

    def test_con_identical_under_processes(self):
        data = np.random.default_rng(3).uniform(0, 100, size=512)
        sequential = con_synopsis(data, 64, SimulatedCluster(runtime=LocalRuntime()), 64)
        pooled = con_synopsis(
            data, 64, SimulatedCluster(runtime=ProcessPoolRuntime(2)), 64
        )
        assert sequential.same_coefficients(pooled, tolerance=0.0)

    def test_process_unsafe_job_runs_in_driver(self):
        sink: list = []
        data = np.arange(64, dtype=float)
        result = ProcessPoolRuntime(max_workers=2).run(
            DriverStateJob(sink), block_splits(data, 8)
        )
        # Mutations happened in this process, in split order.
        assert sink == list(range(8))
        assert [key for key, _ in result.output] == list(range(8))


class EchoSplit(MapReduceJob):
    name = "echo-split"
    num_reducers = 0

    def map(self, split):
        yield split.split_id, None


class TestFailureHandling:
    def test_injected_failures_still_converge(self):
        data = np.arange(64, dtype=float)
        runtime = ProcessPoolRuntime(
            max_workers=2,
            failure_injector=ProcessSafeFailureInjector(0.3, seed=1, max_attempts=20),
        )
        result = runtime.run(SquareSum(), block_splits(data, 8))
        reference = LocalRuntime().run(SquareSum(), block_splits(data, 8))
        assert result.output == reference.output

    def test_failure_pattern_independent_of_worker_count(self):
        data = np.arange(64, dtype=float)

        def seconds_with(workers: int):
            runtime = ProcessPoolRuntime(
                max_workers=workers,
                failure_injector=ProcessSafeFailureInjector(0.4, seed=5, max_attempts=30),
            )
            return runtime.run(SquareSum(), block_splits(data, 8)).output

        assert seconds_with(2) == seconds_with(4)

    def test_fallback_path_uses_same_per_task_injectors(self):
        # With process_safe=False, attempts run in the driver but must be
        # derived per task label exactly as the workers would derive them.
        sink: list = []
        data = np.arange(32, dtype=float)
        runtime = ProcessPoolRuntime(
            max_workers=2,
            failure_injector=ProcessSafeFailureInjector(0.99, seed=2, max_attempts=2),
        )
        with pytest.raises(JobFailedError):
            runtime.run(DriverStateJob(sink), block_splits(data, 4))

    def test_exhausted_attempts_raise(self):
        data = np.arange(16, dtype=float)
        runtime = ProcessPoolRuntime(
            max_workers=2,
            failure_injector=ProcessSafeFailureInjector(0.99, seed=2, max_attempts=2),
        )
        with pytest.raises(JobFailedError):
            runtime.run(SquareSum(), block_splits(data, 4))

    def test_rejects_shared_rng_injector(self):
        with pytest.raises(TypeError):
            ProcessPoolRuntime(failure_injector=FailureInjector(0.1))

    def test_shared_draws_are_disabled_on_process_safe_injector(self):
        with pytest.raises(TypeError):
            ProcessSafeFailureInjector(0.1).attempt_fails()

    def test_for_task_is_deterministic_per_label(self):
        injector = ProcessSafeFailureInjector(0.5, seed=11, max_attempts=3)

        def draws(label: str) -> list[bool]:
            derived = injector.for_task(label)
            return [derived.attempt_fails() for _ in range(32)]

        assert draws("job/map-0") == draws("job/map-0")
        assert draws("job/map-0") != draws("job/map-1")  # labels independent

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ProcessPoolRuntime(max_workers=0)


class TestRuntimeSelection:
    def test_default_process_count_is_clamped(self):
        import os

        from repro.mapreduce.process import default_process_count

        expected = max(2, min(16, os.cpu_count() or 2))
        assert default_process_count() == expected
        assert 2 <= ProcessPoolRuntime().max_workers <= 16

    def test_make_runtime_registry(self):
        from repro.mapreduce import RUNTIMES, ThreadPoolRuntime

        assert isinstance(make_runtime("local"), LocalRuntime)
        assert isinstance(make_runtime("threads"), ThreadPoolRuntime)
        assert isinstance(make_runtime("process"), ProcessPoolRuntime)
        assert set(RUNTIMES) == {"local", "threads", "process"}

    def test_make_runtime_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown runtime"):
            make_runtime("hadoop")

    def test_cluster_accepts_runtime_name(self):
        cluster = SimulatedCluster(runtime="process")
        assert isinstance(cluster.runtime, ProcessPoolRuntime)
        data = np.arange(64, dtype=float)
        result = cluster.run_job(SquareSum(), block_splits(data, 8))
        assert result.simulated_seconds > 0
