"""Naive reference implementations used to validate the optimized code.

Everything here recomputes from definitions — O(N^2) or worse — and is
only run on tiny inputs.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

# The scalar node-at-a-time greedy engines live in repro.algos.reference
# (they double as the perf-benchmark baseline); re-exported here so tests
# have a single place to import oracles from.
from repro.algos.reference import (  # noqa: F401
    ScalarGreedyAbsTree,
    ScalarGreedyRelTree,
    scalar_greedy_abs_order,
    scalar_greedy_rel_order,
)
from repro.wavelet.error_tree import leaf_sign, node_leaf_range
from repro.wavelet.metrics import DEFAULT_SANITY_BOUND
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import haar_transform


def naive_greedy_abs_order(coefficients, initial_errors=None, include_average=True):
    """Greedy discard order recomputing MA_k from Eq. 7 at every step."""
    coeffs = np.asarray(coefficients, dtype=np.float64)
    m = len(coeffs)
    errors = np.zeros(m) if initial_errors is None else np.asarray(initial_errors, float).copy()
    alive = set(range(m)) if include_average else set(range(1, m))
    removals = []
    while alive:
        best = None
        for k in sorted(alive):
            c = coeffs[k]
            lo, hi = node_leaf_range(k, m)
            ma = max(abs(errors[j] - leaf_sign(k, j, m) * c) for j in range(lo, hi))
            if best is None or (ma, k) < best[:2]:
                best = (ma, k)
        _, k = best
        c = coeffs[k]
        lo, hi = node_leaf_range(k, m)
        for j in range(lo, hi):
            errors[j] -= leaf_sign(k, j, m) * c
        alive.discard(k)
        removals.append((k, float(np.max(np.abs(errors)))))
    return removals


def naive_greedy_rel_order(
    coefficients, leaf_values, sanity_bound=DEFAULT_SANITY_BOUND, initial_errors=None
):
    """Greedy discard order recomputing MR_k from Eq. 10 at every step."""
    coeffs = np.asarray(coefficients, dtype=np.float64)
    m = len(coeffs)
    denominators = np.maximum(np.abs(np.asarray(leaf_values, float)), sanity_bound)
    errors = np.zeros(m) if initial_errors is None else np.asarray(initial_errors, float).copy()
    alive = set(range(m))
    removals = []
    while alive:
        best = None
        for k in sorted(alive):
            c = coeffs[k]
            lo, hi = node_leaf_range(k, m)
            mr = max(
                abs(errors[j] - leaf_sign(k, j, m) * c) / denominators[j]
                for j in range(lo, hi)
            )
            if best is None or (mr, k) < best[:2]:
                best = (mr, k)
        _, k = best
        c = coeffs[k]
        lo, hi = node_leaf_range(k, m)
        for j in range(lo, hi):
            errors[j] -= leaf_sign(k, j, m) * c
        alive.discard(k)
        removals.append((k, float(np.max(np.abs(errors) / denominators))))
    return removals


def brute_force_restricted_optimum(data, budget):
    """Exact best max-abs error over all <=budget subsets of coefficients.

    Restricted synopses (original coefficient values) only; exponential —
    use with N <= 16 and small budgets.
    """
    values = np.asarray(data, dtype=np.float64)
    coeffs = haar_transform(values)
    n = len(values)
    candidates = [i for i in range(n)]
    best_error = float(np.max(np.abs(values)))  # empty synopsis baseline
    best_set: tuple = ()
    for size in range(1, min(budget, n) + 1):
        for subset in combinations(candidates, size):
            synopsis = WaveletSynopsis(n, {i: float(coeffs[i]) for i in subset})
            error = synopsis.max_abs_error(values)
            if error < best_error:
                best_error = error
                best_set = subset
    return best_error, best_set


def brute_force_min_restricted_size(data, epsilon):
    """Smallest restricted synopsis achieving max_abs <= epsilon."""
    values = np.asarray(data, dtype=np.float64)
    coeffs = haar_transform(values)
    n = len(values)
    if float(np.max(np.abs(values))) <= epsilon:
        return 0
    for size in range(1, n + 1):
        for subset in combinations(range(n), size):
            synopsis = WaveletSynopsis(n, {i: float(coeffs[i]) for i in subset})
            if synopsis.max_abs_error(values) <= epsilon:
                return size
    return n
