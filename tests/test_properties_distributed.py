"""Property-based tests for the distributed algorithms (small scales)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algos.conventional import conventional_synopsis
from repro.algos.greedy_abs import greedy_abs
from repro.algos.minhaarspace import min_haar_space
from repro.core.conventional_dist import con_synopsis, send_coef_synopsis
from repro.core.dgreedy import d_greedy_abs
from repro.core.dp_framework import dm_haar_space
from repro.mapreduce import SimulatedCluster

SMALL = settings(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

data_arrays = st.integers(min_value=4, max_value=6).flatmap(
    lambda log_n: st.lists(
        st.integers(min_value=0, max_value=500).map(float),
        min_size=1 << log_n,
        max_size=1 << log_n,
    ).map(np.array)
)


class TestDistributedEquivalenceProperties:
    @given(data=data_arrays, epsilon=st.floats(min_value=2.0, max_value=100.0))
    @SMALL
    def test_dmhaarspace_always_matches_centralized(self, data, epsilon):
        dist = dm_haar_space(data, epsilon, 1.0, SimulatedCluster(), subtree_leaves=8)
        cent = min_haar_space(data, epsilon, 1.0)
        assert dist.size == cent.size
        assert dist.max_error == pytest.approx(cent.max_error, abs=1e-12)
        assert dist.synopsis.same_coefficients(cent.synopsis, tolerance=1e-12)

    @given(data=data_arrays, budget_divisor=st.sampled_from([4, 8]))
    @SMALL
    def test_con_always_matches_centralized(self, data, budget_divisor):
        budget = max(1, len(data) // budget_divisor)
        dist = con_synopsis(data, budget, SimulatedCluster(), split_size=8)
        cent = conventional_synopsis(data, budget)
        assert set(dist.coefficients) == set(cent.coefficients)

    @given(data=data_arrays)
    @SMALL
    def test_send_coef_always_matches_centralized(self, data):
        budget = max(1, len(data) // 4)
        dist = send_coef_synopsis(data, budget, SimulatedCluster(), block_size=7)
        cent = conventional_synopsis(data, budget)
        assert set(dist.coefficients) == set(cent.coefficients)
        for index, value in cent.coefficients.items():
            assert dist.coefficients[index] == pytest.approx(value, abs=1e-6)

    @given(data=data_arrays)
    @SMALL
    def test_dgreedy_never_much_worse_than_centralized(self, data):
        budget = max(1, len(data) // 8)
        dist = d_greedy_abs(data, budget, base_leaves=8)
        cent = greedy_abs(data, budget)
        assert dist.size <= budget
        dist_error = dist.max_abs_error(data)
        cent_error = cent.max_abs_error(data)
        # Derived invariant: construction replays the exact runs job 1
        # histogrammed, so the built synopsis achieves combineResults'
        # prediction to the bit (verified exact over 4000 strategy-space
        # draws; any gap here is a real bug, not noise).
        assert dist_error == dist.meta["claimed_error"]
        # Vs centralized, no constant is *derivable*: the paper's "almost
        # the same quality" is empirical.  The deviation mechanism is
        # tie-breaking across bucket boundaries — integer-valued data
        # makes Haar removal errors dyadic rationals that collide
        # *exactly*, tied nodes share one histogram bucket (Algorithm 3),
        # buckets are retain-all-or-none, and when the rank-B cut lands
        # inside a tie bucket the whole bucket is dropped, leaving budget
        # slots unused (e.g. N=32, B=4: two removals tied at 206.0 force
        # dist.size=3, ratio 1.2400 — the sup over 4000 draws from this
        # strategy; the 1.1004 example PR 5 widened the old 1.1 slack for
        # was the same mechanism, milder).  1.25 sits just above that
        # measured sup, and the CI hypothesis profile is derandomized
        # (tests/conftest.py), so the examples this runs on are fixed.
        assert dist_error <= cent_error * 1.25 + 1e-6

    @given(data=data_arrays, budget_divisor=st.sampled_from([4, 8]))
    @SMALL
    def test_dgreedy_budget_and_determinism(self, data, budget_divisor):
        budget = max(1, len(data) // budget_divisor)
        first = d_greedy_abs(data, budget, base_leaves=8)
        second = d_greedy_abs(data, budget, base_leaves=8)
        assert first.size <= budget
        assert first.same_coefficients(second, tolerance=0.0)
