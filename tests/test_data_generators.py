"""Tests for dataset generators and shaping utilities."""

import numpy as np
import pytest

from repro.data import (
    describe,
    make_distribution,
    next_power_of_two,
    nyct_dataset,
    nyct_partitions,
    pad_to_power_of_two,
    truncate_to_power_of_two,
    uniform_dataset,
    wd_dataset,
    wd_partitions,
    zipf_dataset,
)
from repro.exceptions import InvalidInputError


class TestSynthetic:
    def test_uniform_range_and_size(self):
        data = uniform_dataset(4096, (0.0, 1000.0), seed=1)
        assert data.shape == (4096,)
        assert data.min() >= 0.0 and data.max() <= 1000.0
        assert data.mean() == pytest.approx(500.0, rel=0.05)

    def test_uniform_deterministic(self):
        a = uniform_dataset(64, seed=3)
        b = uniform_dataset(64, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_uniform_seed_changes_data(self):
        a = uniform_dataset(64, seed=3)
        b = uniform_dataset(64, seed=4)
        assert not np.array_equal(a, b)

    def test_zipf_skew_increases_with_exponent(self):
        mild = zipf_dataset(8192, 0.7, (0.0, 1000.0), seed=5)
        strong = zipf_dataset(8192, 1.5, (0.0, 1000.0), seed=5)
        # Stronger skew concentrates on small values -> smaller mean.
        assert strong.mean() < mild.mean() < 500.0

    def test_zipf_within_range(self):
        data = zipf_dataset(1024, 1.5, (0.0, 100.0), seed=6)
        assert data.min() >= 0.0 and data.max() <= 100.0

    def test_zipf_supports_sub_one_exponent(self):
        data = zipf_dataset(256, 0.7, seed=7)
        assert data.shape == (256,)

    def test_zipf_rejects_bad_exponent(self):
        with pytest.raises(InvalidInputError):
            zipf_dataset(16, 0.0)

    def test_make_distribution_dispatch(self):
        for name in ("uniform", "zipf-0.7", "zipf-1.5"):
            data = make_distribution(name, 128, (0.0, 10.0), seed=1)
            assert data.shape == (128,)
        with pytest.raises(InvalidInputError):
            make_distribution("gaussian", 128)
        with pytest.raises(InvalidInputError):
            make_distribution("zipf-abc", 128)

    def test_rejects_empty_or_bad_range(self):
        with pytest.raises(InvalidInputError):
            uniform_dataset(0)
        with pytest.raises(InvalidInputError):
            uniform_dataset(8, (5.0, 5.0))


class TestNYCT:
    def test_basic_shape_and_cap(self):
        data = nyct_dataset(4096, seed=1)
        assert data.shape == (4096,)
        assert data.min() >= 0.0
        assert data.max() <= 10_800.0

    def test_matches_table3_moments(self):
        # The full-real partition should resemble the NYCT2M row:
        # avg 672, stdv 483 (within generous tolerance for a surrogate).
        data = nyct_dataset(1 << 16, seed=2)
        assert data.mean() == pytest.approx(672, rel=0.1)
        assert data.std() == pytest.approx(483, rel=0.25)

    def test_zero_tail_halves_mean(self):
        full = nyct_dataset(8192, real_fraction=1.0, seed=3)
        half = nyct_dataset(8192, real_fraction=0.5, seed=3)
        assert half.mean() == pytest.approx(full.mean() / 2, rel=0.15)
        assert np.all(half[5000:] == 0.0)

    def test_corrupt_records_blow_up_max(self):
        data = nyct_dataset(4096, real_fraction=0.5, corrupt_count=4, seed=4)
        assert data.max() == pytest.approx(4_294_966.0)
        assert (data > 1e6).sum() == 4

    def test_partition_family_shapes(self):
        partitions = nyct_partitions(unit=512, doublings=6, seed=5)
        sizes = [len(v) for v in partitions.values()]
        assert sizes == [512 * 2**k for k in range(6)]
        stats = {k: describe(v) for k, v in partitions.items()}
        # Mean decays with size (Table 3 pattern) on the uncorrupted rows.
        means = [stats[k]["avg"] for k in list(partitions)[:4]]
        assert means[1] > means[2] > means[3]
        # The corrupt rows blow up the standard deviation (Table 3's 32M+).
        assert stats["NYCT32M"]["stdv"] > 10 * stats["NYCT16M"]["stdv"]
        # The largest partitions contain the corrupt outliers.
        assert stats["NYCT64M"]["max"] > 1e6
        assert stats["NYCT8M"]["max"] <= 10_800.0

    def test_validation(self):
        with pytest.raises(InvalidInputError):
            nyct_dataset(0)
        with pytest.raises(InvalidInputError):
            nyct_dataset(8, real_fraction=0.0)
        with pytest.raises(InvalidInputError):
            nyct_dataset(8, corrupt_count=9)
        with pytest.raises(InvalidInputError):
            nyct_partitions(unit=4)


class TestWD:
    def test_shape_and_range(self):
        data = wd_dataset(8192, seed=1)
        assert data.shape == (8192,)
        assert data.min() >= 0.0 and data.max() <= 655.0

    def test_matches_table3_moments(self):
        data = wd_dataset(1 << 16, seed=2)
        assert data.mean() == pytest.approx(127, rel=0.25)
        assert data.std() == pytest.approx(119, rel=0.35)

    def test_is_smoother_than_nyct(self):
        # The property Figure 9 depends on: WD's consecutive differences
        # are far smaller (relative to scale) than NYCT's.
        wd = wd_dataset(4096, seed=3)
        taxi = nyct_dataset(4096, seed=3)
        wd_roughness = np.abs(np.diff(wd)).mean() / max(wd.std(), 1.0)
        taxi_roughness = np.abs(np.diff(taxi)).mean() / max(taxi.std(), 1.0)
        assert wd_roughness < taxi_roughness / 3

    def test_partition_family(self):
        partitions = wd_partitions(unit=256, doublings=4, seed=4)
        assert [len(v) for v in partitions.values()] == [256, 512, 1024, 2048]

    def test_deterministic(self):
        np.testing.assert_array_equal(wd_dataset(128, seed=9), wd_dataset(128, seed=9))

    def test_validation(self):
        with pytest.raises(InvalidInputError):
            wd_dataset(0)


class TestLoader:
    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(1000) == 1024
        with pytest.raises(InvalidInputError):
            next_power_of_two(0)

    def test_pad(self):
        padded = pad_to_power_of_two([1.0, 2.0, 3.0])
        assert padded.tolist() == [1.0, 2.0, 3.0, 0.0]

    def test_pad_custom_value(self):
        padded = pad_to_power_of_two([1.0, 2.0, 3.0], pad_value=-1.0)
        assert padded.tolist() == [1.0, 2.0, 3.0, -1.0]

    def test_pad_noop_returns_copy(self):
        original = np.array([1.0, 2.0])
        padded = pad_to_power_of_two(original)
        assert padded.tolist() == [1.0, 2.0]
        padded[0] = 99.0
        assert original[0] == 1.0

    def test_truncate(self):
        assert truncate_to_power_of_two([1.0, 2.0, 3.0]).tolist() == [1.0, 2.0]
        assert truncate_to_power_of_two(np.arange(9)).shape == (8,)

    def test_describe(self):
        stats = describe([0.0, 10.0])
        assert stats == {"records": 2, "avg": 5.0, "stdv": 5.0, "max": 10.0}

    def test_rejects_empty(self):
        with pytest.raises(InvalidInputError):
            pad_to_power_of_two([])
        with pytest.raises(InvalidInputError):
            truncate_to_power_of_two([])
