"""Unit tests for the Haar transform (error-tree convention)."""

import numpy as np
import pytest

from repro.exceptions import InvalidInputError, NotPowerOfTwoError
from repro.wavelet.transform import (
    coefficient_level,
    coefficient_levels,
    decomposition_steps,
    haar_basis_vector,
    haar_transform,
    inverse_haar_transform,
    is_power_of_two,
    normalized_significance,
)

PAPER_DATA = [5, 5, 0, 26, 1, 3, 14, 2]
PAPER_TRANSFORM = [7, 2, -4, -3, 0, -13, -1, 6]


class TestHaarTransform:
    def test_paper_example(self):
        assert haar_transform(PAPER_DATA).tolist() == PAPER_TRANSFORM

    def test_single_element(self):
        assert haar_transform([42.0]).tolist() == [42.0]

    def test_two_elements(self):
        assert haar_transform([10.0, 4.0]).tolist() == [7.0, 3.0]

    def test_constant_vector_has_zero_details(self):
        result = haar_transform([3.0] * 16)
        assert result[0] == 3.0
        assert np.all(result[1:] == 0.0)

    def test_first_coefficient_is_mean(self):
        rng = np.random.default_rng(7)
        data = rng.normal(size=64)
        assert haar_transform(data)[0] == pytest.approx(data.mean())

    def test_linearity(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=32)
        b = rng.normal(size=32)
        combined = haar_transform(2.0 * a + 3.0 * b)
        separate = 2.0 * haar_transform(a) + 3.0 * haar_transform(b)
        np.testing.assert_allclose(combined, separate, atol=1e-12)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(NotPowerOfTwoError):
            haar_transform([1.0, 2.0, 3.0])

    def test_rejects_empty(self):
        with pytest.raises(InvalidInputError):
            haar_transform([])

    def test_rejects_two_dimensional(self):
        with pytest.raises(InvalidInputError):
            haar_transform(np.ones((4, 4)))


class TestInverseTransform:
    def test_roundtrip_paper_example(self):
        recovered = inverse_haar_transform(haar_transform(PAPER_DATA))
        np.testing.assert_allclose(recovered, PAPER_DATA)

    def test_roundtrip_random(self):
        rng = np.random.default_rng(1)
        for exponent in (0, 1, 3, 6, 10):
            data = rng.normal(scale=100.0, size=2**exponent)
            np.testing.assert_allclose(
                inverse_haar_transform(haar_transform(data)), data, atol=1e-9
            )

    def test_rejects_non_power_of_two(self):
        with pytest.raises(NotPowerOfTwoError):
            inverse_haar_transform([1.0, 2.0, 3.0])

    def test_inverse_of_unit_coefficients_matches_basis(self):
        n = 16
        for index in range(n):
            coeffs = np.zeros(n)
            coeffs[index] = 1.0
            np.testing.assert_allclose(
                inverse_haar_transform(coeffs), haar_basis_vector(index, n)
            )


class TestDecompositionSteps:
    def test_paper_table1(self):
        steps = decomposition_steps(PAPER_DATA)
        assert steps[0][0].tolist() == [5, 13, 2, 8]
        assert steps[0][1].tolist() == [0, -13, -1, 6]
        assert steps[1][0].tolist() == [9, 5]
        assert steps[1][1].tolist() == [-4, -3]
        assert steps[2][0].tolist() == [7]
        assert steps[2][1].tolist() == [2]

    def test_number_of_steps(self):
        assert len(decomposition_steps(np.zeros(32))) == 5


class TestLevels:
    def test_known_levels(self):
        assert coefficient_level(0) == 0
        assert coefficient_level(1) == 0
        assert coefficient_level(2) == 1
        assert coefficient_level(3) == 1
        assert coefficient_level(4) == 2
        assert coefficient_level(7) == 2
        assert coefficient_level(8) == 3

    def test_vectorized_matches_scalar(self):
        n = 64
        expected = [coefficient_level(i) for i in range(n)]
        assert coefficient_levels(n).tolist() == expected

    def test_rejects_negative(self):
        with pytest.raises(InvalidInputError):
            coefficient_level(-1)


class TestSignificance:
    def test_paper_example_values(self):
        significance = normalized_significance(PAPER_TRANSFORM)
        assert significance[0] == pytest.approx(7.0)
        assert significance[1] == pytest.approx(2.0)
        assert significance[2] == pytest.approx(4.0 / np.sqrt(2.0))
        assert significance[5] == pytest.approx(13.0 / 2.0)

    def test_is_nonnegative(self):
        rng = np.random.default_rng(3)
        significance = normalized_significance(rng.normal(size=128))
        assert np.all(significance >= 0.0)


class TestBasisVectors:
    def test_average_vector(self):
        assert haar_basis_vector(0, 8).tolist() == [1.0] * 8

    def test_top_detail_vector(self):
        assert haar_basis_vector(1, 4).tolist() == [1.0, 1.0, -1.0, -1.0]

    def test_finest_detail_support(self):
        vector = haar_basis_vector(5, 8)
        assert vector.tolist() == [0, 0, 1, -1, 0, 0, 0, 0]

    def test_reconstruction_identity(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=16)
        coeffs = haar_transform(data)
        rebuilt = sum(coeffs[i] * haar_basis_vector(i, 16) for i in range(16))
        np.testing.assert_allclose(rebuilt, data, atol=1e-9)

    def test_out_of_range_index(self):
        with pytest.raises(InvalidInputError):
            haar_basis_vector(8, 8)


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 1024])
    def test_powers(self, n):
        assert is_power_of_two(n)

    @pytest.mark.parametrize("n", [0, -4, 3, 6, 12, 1000])
    def test_non_powers(self, n):
        assert not is_power_of_two(n)
