"""Unit and integration tests for the MapReduce substrate."""

import numpy as np
import pytest

from repro.exceptions import InvalidInputError, JobFailedError, MemoryBudgetExceeded
from repro.mapreduce import (
    ClusterConfig,
    Counters,
    FailureInjector,
    InputSplit,
    LocalRuntime,
    MapReduceJob,
    MemoryModel,
    SimulatedCluster,
    aligned_splits,
    block_splits,
    estimate_size,
    makespan,
    record_size,
    stable_partition,
)


class WordRangeCount(MapReduceJob):
    """Toy job: count data points falling in integer buckets of width 10."""

    name = "word-range-count"
    num_reducers = 2

    def map(self, split):
        for value in split.values:
            yield int(value) // 10, 1

    def reduce(self, key, values):
        yield key, sum(values)


class TestSplits:
    def test_aligned_splits_cover_data(self):
        data = np.arange(64, dtype=float)
        splits = aligned_splits(data, 16)
        assert len(splits) == 4
        assert [s.offset for s in splits] == [0, 16, 32, 48]
        recombined = np.concatenate([s.values for s in splits])
        np.testing.assert_array_equal(recombined, data)

    def test_aligned_splits_validate_sizes(self):
        data = np.arange(64, dtype=float)
        with pytest.raises(InvalidInputError):
            aligned_splits(data, 12)
        with pytest.raises(InvalidInputError):
            aligned_splits(data, 128)
        with pytest.raises(InvalidInputError):
            aligned_splits(np.arange(60), 4)

    def test_block_splits_allow_ragged_tail(self):
        data = np.arange(10, dtype=float)
        splits = block_splits(data, 4)
        assert [len(s) for s in splits] == [4, 4, 2]
        assert splits[2].offset == 8

    def test_block_splits_reject_bad_size(self):
        with pytest.raises(InvalidInputError):
            block_splits(np.arange(4), 0)


class TestSerde:
    def test_scalar_sizes(self):
        assert estimate_size(3) == 4
        assert estimate_size(3.0) == 8
        assert estimate_size(True) == 1
        assert estimate_size(None) == 1
        assert estimate_size("abcd") == 4

    def test_container_sizes(self):
        assert estimate_size((1, 2.0)) == 4 + 4 + 8
        assert estimate_size([1, 1, 1]) == 4 + 12
        assert estimate_size({1: 2.0}) == 4 + 4 + 8

    def test_numpy_array(self):
        array = np.zeros(10, dtype=np.float64)
        assert estimate_size(array) == 80 + 4

    def test_numpy_scalars(self):
        assert estimate_size(np.int64(1)) == 4
        assert estimate_size(np.float64(1.0)) == 8

    def test_record_size(self):
        assert record_size(1, (2, 3)) == 4 + (4 + 8)

    def test_histogram_value_smaller_than_list(self):
        # The premise of ErrHistGreedyAbs: an int is cheaper than the list.
        node_list = list(range(100))
        assert estimate_size(len(node_list)) < estimate_size(node_list)


class TestCounters:
    def test_increment_and_get(self):
        counters = Counters()
        counters.increment("records", 5)
        counters.increment("records")
        assert counters["records"] == 6
        assert counters.get("missing") == 0

    def test_merge(self):
        a = Counters({"x": 1})
        b = Counters({"x": 2, "y": 3})
        a.merge(b)
        assert a.as_dict() == {"x": 3, "y": 3}

    def test_mapping_interface(self):
        counters = Counters({"x": 1})
        assert "x" in counters
        assert len(counters) == 1
        assert dict(counters) == {"x": 1}


class TestRuntime:
    def test_wordcount_end_to_end(self):
        data = np.array([1, 5, 11, 15, 25, 3], dtype=float)
        splits = block_splits(data, 3)
        result = LocalRuntime().run(WordRangeCount(), splits)
        assert dict(result.output) == {0: 3, 1: 2, 2: 1}

    def test_counters_account_records(self):
        data = np.arange(8, dtype=float)
        result = LocalRuntime().run(WordRangeCount(), block_splits(data, 4))
        assert result.counters["map.input_records"] == 8
        assert result.counters["map.output_records"] == 8
        assert result.map_output_records == 8

    def test_shuffle_bytes_accounted(self):
        data = np.arange(8, dtype=float)
        result = LocalRuntime().run(WordRangeCount(), block_splits(data, 4))
        # 8 records of (int key, int value) = 8 * 8 bytes.
        assert result.shuffle_bytes == 8 * 8

    def test_task_times_recorded(self):
        data = np.arange(8, dtype=float)
        result = LocalRuntime().run(WordRangeCount(), block_splits(data, 2))
        assert len(result.map_task_seconds) == 4
        assert len(result.reduce_task_seconds) == 2
        assert all(t >= 0 for t in result.map_task_seconds)

    def test_map_only_job(self):
        class MapOnly(MapReduceJob):
            num_reducers = 0

            def map(self, split):
                yield split.split_id, float(split.values.sum())

        data = np.arange(8, dtype=float)
        result = LocalRuntime().run(MapOnly(), block_splits(data, 4))
        assert dict(result.output) == {0: 6.0, 1: 22.0}
        assert result.reduce_task_seconds == []

    def test_sorted_reduce_partition(self):
        class SortedEcho(MapReduceJob):
            num_reducers = 1
            sort_descending = True

            def map(self, split):
                for value in split.values:
                    yield float(value), None

            def reduce_partition(self, records):
                yield "order", [key for key, _ in records]

        data = np.array([3.0, 1.0, 2.0])
        result = LocalRuntime().run(SortedEcho(), block_splits(data, 2))
        assert result.output == [("order", [3.0, 2.0, 1.0])]

    def test_combiner_runs_map_side(self):
        class CombinedCount(WordRangeCount):
            use_combiner = True

            def combine(self, key, values):
                yield key, sum(values)

        data = np.array([1.0, 2.0, 3.0, 4.0])  # all in bucket 0
        splits = block_splits(data, 4)
        plain = LocalRuntime().run(WordRangeCount(), splits)
        combined = LocalRuntime().run(CombinedCount(), splits)
        assert dict(plain.output) == dict(combined.output)
        assert combined.map_output_records < plain.map_output_records
        assert combined.shuffle_bytes < plain.shuffle_bytes

    def test_partitioning_routes_all_keys(self):
        data = np.arange(40, dtype=float)
        result = LocalRuntime().run(WordRangeCount(), block_splits(data, 10))
        assert sum(count for _, count in result.output) == 40

    def test_stable_partition_is_deterministic_and_in_range(self):
        keys = [1, "a", (2, 3.5), ("croot", 7)]
        for key in keys:
            bucket = stable_partition(key, 4)
            assert 0 <= bucket < 4
            assert bucket == stable_partition(key, 4)


class TestFailureInjection:
    def test_retries_mask_failures(self):
        data = np.arange(16, dtype=float)
        runtime = LocalRuntime(FailureInjector(probability=0.3, seed=1, max_attempts=10))
        result = runtime.run(WordRangeCount(), block_splits(data, 4))
        assert sum(count for _, count in result.output) == 16

    def test_exhausted_attempts_raise(self):
        data = np.arange(4, dtype=float)
        runtime = LocalRuntime(FailureInjector(probability=0.99, seed=2, max_attempts=2))
        with pytest.raises(JobFailedError):
            runtime.run(WordRangeCount(), block_splits(data, 2))

    def test_injector_validates_probability(self):
        with pytest.raises(ValueError):
            FailureInjector(probability=1.5)


class TestMakespan:
    def test_empty(self):
        assert makespan([], 4) == 0.0

    def test_single_slot_sums(self):
        assert makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_fully_parallel(self):
        assert makespan([1.0, 2.0, 3.0], 3) == 3.0

    def test_fifo_placement(self):
        # Two slots, FIFO: [3, 1] then 2 goes to the slot free at t=1 -> 3.
        assert makespan([3.0, 1.0, 2.0], 2) == 3.0

    def test_halving_slots_roughly_doubles(self):
        times = [1.0] * 40
        assert makespan(times, 40) == 1.0
        assert makespan(times, 20) == 2.0
        assert makespan(times, 10) == 4.0

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            makespan([1.0], 0)


class TestSimulatedCluster:
    def test_job_pricing_formula(self):
        cluster = SimulatedCluster(
            ClusterConfig(
                map_slots=2,
                reduce_slots=1,
                task_startup_seconds=0.5,
                job_startup_seconds=1.0,
                shuffle_bytes_per_second=100.0,
            )
        )
        from repro.mapreduce.runtime import JobResult

        result = JobResult(
            job_name="synthetic",
            output=[],
            counters=Counters(),
            map_task_seconds=[1.0, 1.0, 1.0, 1.0],
            reduce_task_seconds=[2.0],
            shuffle_bytes=200,
            map_output_records=0,
        )
        # maps: 4 tasks of 1.5s on 2 slots = 3.0; shuffle 2.0; reduce 2.5.
        assert cluster.job_simulated_seconds(result) == pytest.approx(1.0 + 3.0 + 2.0 + 2.5)

    def test_run_job_appends_to_log(self):
        cluster = SimulatedCluster()
        data = np.arange(8, dtype=float)
        cluster.run_job(WordRangeCount(), block_splits(data, 4))
        assert cluster.log.job_count == 1
        assert cluster.simulated_seconds > 0

    def test_driver_timer(self):
        cluster = SimulatedCluster()
        with cluster.driver():
            sum(range(1000))
        assert cluster.log.driver_seconds > 0

    def test_reset_clears_log(self):
        cluster = SimulatedCluster()
        data = np.arange(8, dtype=float)
        cluster.run_job(WordRangeCount(), block_splits(data, 4))
        cluster.reset()
        assert cluster.log.job_count == 0
        assert cluster.simulated_seconds == 0

    def test_fewer_slots_cost_more(self):
        data = np.arange(2048, dtype=float)
        splits = block_splits(data, 64)
        fast = SimulatedCluster(ClusterConfig(map_slots=32))
        slow = SimulatedCluster(ClusterConfig(map_slots=4))
        fast.run_job(WordRangeCount(), splits)
        slow.run_job(WordRangeCount(), splits)
        assert slow.simulated_seconds > fast.simulated_seconds

    def test_config_scaled_copy(self):
        config = ClusterConfig()
        halved = config.scaled(map_slots=config.map_slots // 2)
        assert halved.map_slots == 20
        assert halved.reduce_slots == config.reduce_slots
        assert config.map_slots == 40  # original untouched


class TestMemoryModel:
    def test_charge_within_budget(self):
        MemoryModel(1000).charge(999, "greedy")  # no raise

    def test_charge_over_budget(self):
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            MemoryModel(1000).charge(1001, "greedy")
        assert excinfo.value.algorithm == "greedy"
        assert excinfo.value.required_bytes == 1001

    def test_fits(self):
        model = MemoryModel(100)
        assert model.fits(100)
        assert not model.fits(101)

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            MemoryModel(0)


class TestPriceLog:
    def test_repricing_matches_direct_pricing(self):
        from repro.mapreduce import price_log

        data = np.arange(2048, dtype=float)
        cluster = SimulatedCluster(ClusterConfig(map_slots=8))
        cluster.run_job(WordRangeCount(), block_splits(data, 64))
        direct = cluster.simulated_seconds
        repriced = price_log(cluster.log, ClusterConfig(map_slots=8))
        assert repriced == pytest.approx(direct)

    def test_fewer_slots_price_higher_on_same_log(self):
        from repro.mapreduce import price_log

        data = np.arange(2048, dtype=float)
        cluster = SimulatedCluster()
        cluster.run_job(WordRangeCount(), block_splits(data, 64))
        wide = price_log(cluster.log, ClusterConfig(map_slots=32))
        narrow = price_log(cluster.log, ClusterConfig(map_slots=2))
        assert narrow > wide

    def test_driver_seconds_are_included(self):
        from repro.mapreduce import price_log

        cluster = SimulatedCluster()
        cluster.log.driver_seconds = 1.5
        assert price_log(cluster.log, ClusterConfig()) == pytest.approx(1.5)
