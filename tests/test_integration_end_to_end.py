"""Cross-module integration tests: whole pipelines, orderings, resilience."""

import numpy as np
import pytest

from repro import build_synopsis
from repro.algos import greedy_abs, indirect_haar
from repro.core import con_synopsis, d_greedy_abs, d_indirect_haar
from repro.data import nyct_dataset, wd_dataset
from repro.mapreduce import FailureInjector, LocalRuntime, SimulatedCluster


class TestQualityOrdering:
    """The error hierarchy the paper's evaluation rests on."""

    @pytest.mark.parametrize("maker", [nyct_dataset, wd_dataset])
    def test_max_error_hierarchy(self, maker):
        data = maker(512, seed=3)
        budget = 64
        delta = float(data.max()) / 200
        optimal = indirect_haar(data, budget, delta=delta).max_abs_error(data)
        greedy = greedy_abs(data, budget).max_abs_error(data)
        conventional = con_synopsis(data, budget, split_size=128).max_abs_error(data)
        # Unrestricted DP <= greedy heuristic (up to one quantum) <= L2 baseline.
        assert optimal <= greedy * 1.05 + delta
        assert greedy <= conventional + 1e-9

    def test_distributed_matches_its_centralized_twin(self):
        data = nyct_dataset(512, seed=4)
        budget = 64
        dist_dp = d_indirect_haar(data, budget, delta=5.0, subtree_leaves=64)
        cent_dp = indirect_haar(data, budget, delta=5.0)
        assert dist_dp.max_abs_error(data) == pytest.approx(
            cent_dp.max_abs_error(data), abs=1e-9
        )
        dist_greedy = d_greedy_abs(data, budget, base_leaves=64)
        cent_greedy = greedy_abs(data, budget)
        assert dist_greedy.max_abs_error(data) <= cent_greedy.max_abs_error(data) * 1.02


class TestFailureResilience:
    """Task failures + Hadoop-style retries must not change any result."""

    def test_dgreedy_is_failure_transparent(self):
        data = np.random.default_rng(5).uniform(0, 1000, size=256)
        flaky = SimulatedCluster(
            runtime=LocalRuntime(FailureInjector(probability=0.2, seed=1, max_attempts=20))
        )
        stable = SimulatedCluster()
        flaky_result = d_greedy_abs(data, 32, flaky, base_leaves=32)
        stable_result = d_greedy_abs(data, 32, stable, base_leaves=32)
        assert flaky_result.same_coefficients(stable_result, tolerance=0.0)

    def test_dindirect_is_failure_transparent(self):
        data = np.random.default_rng(6).uniform(0, 500, size=256)
        flaky = SimulatedCluster(
            runtime=LocalRuntime(FailureInjector(probability=0.15, seed=2, max_attempts=20))
        )
        flaky_result = d_indirect_haar(data, 32, delta=4.0, cluster=flaky, subtree_leaves=64)
        stable_result = d_indirect_haar(data, 32, delta=4.0, subtree_leaves=64)
        assert flaky_result.same_coefficients(stable_result, tolerance=0.0)

    def test_failed_attempts_inflate_simulated_time(self):
        data = np.random.default_rng(7).uniform(0, 1000, size=512)
        flaky = SimulatedCluster(
            runtime=LocalRuntime(FailureInjector(probability=0.4, seed=3, max_attempts=50))
        )
        stable = SimulatedCluster()
        con_synopsis(data, 64, flaky, split_size=64)
        con_synopsis(data, 64, stable, split_size=64)
        # Retried attempts burn extra task time under the same slot pool.
        assert flaky.log.jobs[0].counters["map.input_records"] == 512


class TestDeterminism:
    def test_identical_runs_produce_identical_synopses(self):
        data = np.random.default_rng(8).uniform(0, 1000, size=512)
        first = d_greedy_abs(data, 64, base_leaves=64)
        second = d_greedy_abs(data, 64, base_leaves=64)
        assert first.same_coefficients(second, tolerance=0.0)

    def test_facade_runs_are_reproducible(self):
        data = np.random.default_rng(9).uniform(0, 1000, size=300)  # padded to 512
        first = build_synopsis(data, 32, algorithm="dindirect-haar", delta=8.0, subtree_leaves=64)
        second = build_synopsis(data, 32, algorithm="dindirect-haar", delta=8.0, subtree_leaves=64)
        assert first.same_coefficients(second, tolerance=0.0)


class TestQueryAccuracyEndToEnd:
    def test_range_queries_bounded_by_max_error(self):
        data = nyct_dataset(1024, seed=10)
        synopsis = d_greedy_abs(data, 128, base_leaves=128)
        guarantee = synopsis.max_abs_error(data)
        for lo, hi in [(0, 63), (100, 611), (1000, 1023)]:
            width = hi - lo + 1
            exact = data[lo : hi + 1].sum()
            approx = synopsis.range_sum(lo, hi)
            # Each value is within the guarantee, so the sum is within
            # width * guarantee.
            assert abs(approx - exact) <= width * guarantee + 1e-6

    def test_padding_does_not_corrupt_prefix_queries(self):
        data = np.random.default_rng(11).uniform(100, 200, size=700)
        synopsis = build_synopsis(data, 128, algorithm="greedy-abs")
        for leaf in (0, 350, 699):
            assert synopsis.point_query(leaf) == pytest.approx(data[leaf], abs=120)
