"""Tests for the error-tree partitioning schemes (Section 4 / Figure 4)."""

import pytest

from repro.core.partitioning import (
    dp_layers,
    global_subtree_coefficients,
    local_to_global,
    root_base_partition,
)
from repro.exceptions import InvalidInputError
from repro.wavelet.error_tree import node_leaf_range, subtree_nodes
from repro.wavelet.transform import haar_transform


class TestDPLayers:
    def test_layer_count_matches_ceiling(self):
        # ceil(log N / h) layers (Section 4).
        for log_n, h in [(10, 3), (12, 4), (8, 8), (9, 2), (4, 10)]:
            layers = dp_layers(1 << log_n, h)
            assert len(layers) == -(-log_n // h)

    def test_bottom_layer_covers_all_data(self):
        layers = dp_layers(1 << 10, 3)
        bottom = layers[0]
        covered = []
        for spec in bottom.subtrees:
            lo, hi = node_leaf_range(spec.root, 1 << 10)
            covered.append((lo, hi))
        covered.sort()
        assert covered[0][0] == 0 and covered[-1][1] == 1 << 10
        for (_, hi), (lo, _) in zip(covered, covered[1:]):
            assert hi == lo

    def test_all_detail_nodes_covered_exactly_once(self):
        n, h = 1 << 9, 3
        seen = set()
        for layer in dp_layers(n, h):
            for spec in layer.subtrees:
                # Nodes of this sub-tree: spec.root's slice of `height` levels.
                height = spec.leaf_count.bit_length() - 1
                nodes = [
                    node
                    for node in subtree_nodes(spec.root, n)
                    if node.bit_length() - spec.root.bit_length() < height
                ]
                for node in nodes:
                    assert node not in seen
                    seen.add(node)
        assert seen == set(range(1, n))

    def test_top_layer_is_single_subtree_at_root(self):
        layers = dp_layers(1 << 10, 3)
        top = layers[-1]
        assert top.is_top
        assert len(top.subtrees) == 1
        assert top.subtrees[0].root == 1

    def test_child_roots_chain_between_layers(self):
        layers = dp_layers(1 << 10, 3)
        for lower, upper in zip(layers, layers[1:]):
            lower_roots = [spec.root for spec in lower.subtrees]
            chained = [
                root for spec in upper.subtrees for root in spec.child_roots()
            ]
            assert sorted(chained) == sorted(lower_roots)

    def test_single_layer_when_tree_is_shallow(self):
        layers = dp_layers(16, 10)
        assert len(layers) == 1
        assert layers[0].is_bottom and layers[0].is_top

    def test_layer_sizes_follow_eq4_shape(self):
        # Each layer is 2^h times smaller than the one below.
        layers = dp_layers(1 << 12, 4)
        sizes = [len(layer.subtrees) for layer in layers]
        assert sizes == [256, 16, 1]

    def test_validation(self):
        with pytest.raises(InvalidInputError):
            dp_layers(100, 3)
        with pytest.raises(InvalidInputError):
            dp_layers(16, 0)
        with pytest.raises(InvalidInputError):
            dp_layers(1, 3)


class TestRootBasePartition:
    def test_paper_size_identity(self):
        # N = R + R * S with S = N/R - 1 (Section 5.3).
        n, base_leaves = 1 << 10, 1 << 6
        root_size, bases = root_base_partition(n, base_leaves)
        s = bases[0].leaf_count - 1
        assert n == root_size + root_size * s
        assert len(bases) == root_size

    def test_base_roots_are_contiguous_level(self):
        root_size, bases = root_base_partition(256, 32)
        assert [spec.root for spec in bases] == list(range(root_size, 2 * root_size))

    def test_bases_cover_all_data(self):
        n = 512
        _, bases = root_base_partition(n, 64)
        ranges = sorted(node_leaf_range(spec.root, n) for spec in bases)
        assert ranges[0][0] == 0 and ranges[-1][1] == n

    def test_validation(self):
        with pytest.raises(InvalidInputError):
            root_base_partition(100, 4)
        with pytest.raises(InvalidInputError):
            root_base_partition(64, 3)
        with pytest.raises(InvalidInputError):
            root_base_partition(64, 64)


class TestLocalGlobalMapping:
    def test_root_maps_to_itself(self):
        assert local_to_global(5, 1) == 5

    def test_children_follow_positional_bits(self):
        assert local_to_global(5, 2) == 10
        assert local_to_global(5, 3) == 11
        assert local_to_global(5, 4) == 20
        assert local_to_global(5, 7) == 23

    def test_rejects_zero_local_index(self):
        with pytest.raises(InvalidInputError):
            local_to_global(5, 0)

    def test_roundtrip_with_global_to_local(self):
        from repro.core.dindirect import global_to_local

        for root in (1, 3, 5, 12):
            for local in range(1, 16):
                globl = local_to_global(root, local)
                assert global_to_local(root, globl) == local

    def test_extracted_coefficients_match_slice_transform(self):
        # The local transform of a sub-tree's data slice equals the global
        # coefficients of its sub-tree nodes — the fact every distributed
        # mapper relies on.
        import numpy as np

        rng = np.random.default_rng(17)
        data = rng.uniform(0, 100, size=64)
        coeffs = haar_transform(data)
        n = 64
        for root in (2, 5, 9):
            lo, hi = node_leaf_range(root, n)
            local_transform = haar_transform(data[lo:hi])
            extracted = global_subtree_coefficients(coeffs, root, hi - lo)
            for local_node in range(1, hi - lo):
                assert local_transform[local_node] == pytest.approx(extracted[local_node])
