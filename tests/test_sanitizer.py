"""Tests for the runtime determinism sanitizer.

Covers three layers: :func:`stable_digest` canonicality (equal values
hash equal across dict/set order and numpy layout; unequal values hash
apart), report collection and comparison, and the end-to-end claim —
the local and thread-pool runtimes produce bit-identical sanitizer
reports for the same distributed DP build.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import (
    Sanitizer,
    compare_reports,
    stable_digest,
)
from repro.core.dp_framework import dm_haar_space
from repro.mapreduce import LocalRuntime, SimulatedCluster
from repro.mapreduce.parallel import ThreadPoolRuntime


@pytest.fixture(autouse=True)
def _no_active_sanitizer():
    # Every test starts and ends with no process-wide sanitizer active.
    sanitizer.deactivate()
    yield
    sanitizer.deactivate()


class TestStableDigest:
    def test_dict_order_cannot_matter(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})

    def test_set_order_cannot_matter(self):
        assert stable_digest({3, 1, 2}) == stable_digest({2, 3, 1})

    def test_numpy_layout_cannot_matter(self):
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        transposed_twice = arr.T.copy().T  # F-contiguous, same values
        assert not transposed_twice.flags["C_CONTIGUOUS"]
        assert stable_digest(arr) == stable_digest(transposed_twice)

    def test_dtype_is_part_of_the_digest(self):
        assert stable_digest(np.zeros(4, dtype=np.float64)) != stable_digest(
            np.zeros(4, dtype=np.float32)
        )

    def test_type_tags_keep_lookalikes_apart(self):
        assert stable_digest([1, 2]) != stable_digest((1, 2))
        assert stable_digest(1) != stable_digest(1.0)
        assert stable_digest("1") != stable_digest(1)
        assert stable_digest(True) != stable_digest(1)

    def test_nested_structures_round_trip(self):
        value = {"rows": [np.arange(3), (1, 2.5, None)], "n": 8}
        assert stable_digest(value) == stable_digest(
            {"n": 8, "rows": [np.arange(3), (1, 2.5, None)]}
        )

    def test_float_payload_differs(self):
        assert stable_digest(0.1) != stable_digest(0.2)

    def test_depth_cap_raises(self):
        nested: list = []
        tail = nested
        for _ in range(40):
            inner: list = []
            tail.append(inner)
            tail = inner
        with pytest.raises(ValueError, match="too deeply nested"):
            stable_digest(nested)


class TestSanitizerReports:
    def test_report_shape_and_comparison(self):
        left = Sanitizer(label="local")
        right = Sanitizer(label="threads")
        for active in (left, right):
            active.observe_job_output("job-a", [(0, 1.0)])
            active.observe_partitions("job-a", [[(0, 1.0)], [(1, 2.0)]])
            active.observe_kernel_rows(np.arange(4, dtype=np.float64))
        # Labels differ by design; everything hashed must match.
        assert compare_reports(left.report(), right.report()) == []

    def test_comparison_pinpoints_divergence(self):
        left = Sanitizer()
        right = Sanitizer()
        left.observe_job_output("job-a", [(0, 1.0)])
        right.observe_job_output("job-a", [(0, 1.0 + 1e-12)])
        problems = compare_reports(left.report(), right.report())
        assert len(problems) == 1
        assert "job-a" in problems[0]

    def test_kernel_digests_are_order_canonical(self):
        left = Sanitizer()
        right = Sanitizer()
        rows_a = np.arange(3, dtype=np.float64)
        rows_b = np.arange(5, dtype=np.float64)
        left.observe_kernel_rows(rows_a)
        left.observe_kernel_rows(rows_b)
        right.observe_kernel_rows(rows_b)  # reversed collection order
        right.observe_kernel_rows(rows_a)
        assert compare_reports(left.report(), right.report()) == []

    def test_concurrent_observation_is_safe(self):
        active = Sanitizer()

        def observe(worker: int) -> None:
            for i in range(50):
                active.observe_kernel_rows(np.full(4, worker * 100 + i))

        workers = [threading.Thread(target=observe, args=(w,)) for w in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert len(active.report()["kernel_rows"]) == 200

    def test_activate_is_exclusive(self):
        sanitizer.activate(Sanitizer())
        with pytest.raises(RuntimeError, match="already active"):
            sanitizer.activate(Sanitizer())
        assert sanitizer.deactivate() is not None
        assert sanitizer.current() is None

    def test_write_and_reload(self, tmp_path):
        active = Sanitizer(label="local")
        active.observe_job_output("job-a", [(0, 1.0)])
        path = tmp_path / "report.json"
        active.write(path)
        loaded = json.loads(path.read_text())
        assert compare_reports(active.report(), loaded) == []


class TestEndToEnd:
    def _sanitized_build(self, runtime) -> dict:
        rng = np.random.default_rng(23)
        data = rng.integers(0, 50, size=128).astype(np.float64)
        active = sanitizer.activate(Sanitizer())
        try:
            dm_haar_space(
                data, 6.0, 1.0, SimulatedCluster(runtime=runtime), subtree_leaves=16
            )
        finally:
            sanitizer.deactivate()
        return active.report()

    def test_local_and_thread_runtimes_are_bit_identical(self):
        local = self._sanitized_build(LocalRuntime())
        threads = self._sanitized_build(ThreadPoolRuntime(max_workers=4))
        assert local["jobs"], "the build must have observed MapReduce jobs"
        assert local["kernel_rows"], "the build must have observed kernel rows"
        assert compare_reports(local, threads) == []
