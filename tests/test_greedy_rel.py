"""Tests for GreedyRel: engine invariants and agreement with the naive oracle."""

import numpy as np
import pytest

from repro.algos.greedy_rel import GreedyRelTree, greedy_rel, greedy_rel_order
from repro.exceptions import InvalidInputError
from repro.wavelet.transform import haar_transform

from tests._reference import naive_greedy_rel_order

PAPER_DATA = np.array([5, 5, 0, 26, 1, 3, 14, 2], dtype=float)


class TestEngineAgainstOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_naive_order_and_errors(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(1, 100, size=16).astype(float)
        coeffs = haar_transform(data)
        fast = [(r.node, r.error_after) for r in greedy_rel_order(coeffs, data).removals]
        slow = naive_greedy_rel_order(coeffs, data)
        assert [n for n, _ in fast] == [n for n, _ in slow]
        np.testing.assert_allclose([e for _, e in fast], [e for _, e in slow], atol=1e-12)

    def test_sanity_bound_changes_preferences(self):
        # With a tiny sanity bound the small values' denominators dominate
        # and c_3 (affecting the large pair) goes first; a large bound
        # equalizes denominators and the tiny detail c_2 goes first.
        data = np.array([0.2, 0.4, 100.0, 104.0], dtype=float)
        coeffs = haar_transform(data)
        small_bound = [r.node for r in greedy_rel_order(coeffs, data, sanity_bound=0.01).removals]
        large_bound = [r.node for r in greedy_rel_order(coeffs, data, sanity_bound=100.0).removals]
        assert small_bound[0] == 3
        assert large_bound[0] == 2
        assert small_bound != large_bound


class TestEngineMechanics:
    def test_removal_count(self):
        run = greedy_rel_order(haar_transform(PAPER_DATA), PAPER_DATA)
        assert len(run.removals) == 8

    def test_final_error_is_full_relative_magnitude(self):
        run = greedy_rel_order(haar_transform(PAPER_DATA), PAPER_DATA, sanity_bound=1.0)
        denominators = np.maximum(np.abs(PAPER_DATA), 1.0)
        expected = float(np.max(np.abs(PAPER_DATA) / denominators))
        assert run.removals[-1].error_after == pytest.approx(expected)

    def test_incoming_error_initialization(self):
        run = greedy_rel_order(
            np.zeros(4),
            np.array([10.0, 10.0, 10.0, 10.0]),
            initial_errors=[5.0] * 4,
            include_average=False,
        )
        assert run.initial_error == pytest.approx(0.5)

    def test_rejects_mismatched_leaves(self):
        with pytest.raises(InvalidInputError):
            GreedyRelTree([1.0, 2.0], [1.0])

    def test_rejects_bad_sanity_bound(self):
        with pytest.raises(InvalidInputError):
            GreedyRelTree([1.0, 2.0], [1.0, 2.0], sanity_bound=0.0)


class TestGreedyRelSynopsis:
    def test_budget_respected_and_meta_consistent(self):
        rng = np.random.default_rng(7)
        data = rng.integers(1, 1000, size=32).astype(float)
        for budget in (2, 8, 16):
            synopsis = greedy_rel(data, budget)
            assert synopsis.size <= budget
            assert synopsis.max_rel_error(data) == pytest.approx(
                synopsis.meta["max_rel_error"], abs=1e-12
            )

    def test_error_decreases_with_budget(self):
        rng = np.random.default_rng(8)
        data = rng.integers(1, 1000, size=64).astype(float)
        errors = [greedy_rel(data, b).max_rel_error(data) for b in (2, 8, 32)]
        assert errors[0] >= errors[1] >= errors[2]

    def test_optimizes_relative_not_absolute(self):
        # A spike at a small value matters for rel-error even though its
        # absolute magnitude is negligible next to the large values.
        data = np.array([1.0, 4.0, 1000.0, 1000.0, 1000.0, 1000.0, 1000.0, 1000.0])
        from repro.algos.greedy_abs import greedy_abs

        rel = greedy_rel(data, 3, sanity_bound=1.0)
        ab = greedy_abs(data, 3)
        assert rel.max_rel_error(data) <= ab.max_rel_error(data) + 1e-12

    def test_rejects_negative_budget(self):
        with pytest.raises(InvalidInputError):
            greedy_rel(PAPER_DATA, -1)

    def test_full_budget_lossless(self):
        synopsis = greedy_rel(PAPER_DATA, 8)
        assert synopsis.max_rel_error(PAPER_DATA) == 0.0
