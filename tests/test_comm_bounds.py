"""Communication-cost tests: measured traces vs the paper's analytical bounds.

Two families of assertions, both against traces captured by
:meth:`RunLog.trace`:

* **Eq. 6** — every bottom-up layer job of a DMHaarSpace run ships at most
  ``|subtrees| * (overhead + worst-case M-row)`` bytes, and at least the
  one-record-per-subtree floor (so the bound is *tracking* the emission,
  not merely dwarfing it).
* **Histogram compression** — DGreedyAbs's job 1 never emits more than
  ``(min(R,B)+1) * R * ((s-1) * hist_rec + final_rec)`` bytes.

Both families run on synthetic uniform data and on the NYCT-shaped
dataset, at the tolerances the bound derivation gives — no slack factors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dgreedy import d_greedy_abs
from repro.core.dp_framework import dm_haar_space
from repro.data.nyct import nyct_dataset
from repro.mapreduce import LocalRuntime, ShuffleConfig, SimulatedCluster, estimate_size
from repro.observe import (
    check_dgreedy_trace,
    check_dmhaarspace_trace,
    dgreedy_histogram_bound,
    dmhaarspace_layer_bounds,
    max_row_entries,
)


def synthetic(n: int) -> np.ndarray:
    rng = np.random.default_rng(97)
    return rng.integers(0, 200, size=n).astype(np.float64)


def scaled_epsilon(data: np.ndarray) -> float:
    """An epsilon around 5% of the value range, so both datasets exercise
    multi-entry rows without the DP degenerating."""
    spread = float(data.max() - data.min())
    return max(spread * 0.05, 1.0)


class TestEq6LayerBounds:
    @pytest.mark.parametrize("h", [2, 4, 6])
    @pytest.mark.parametrize("n", [1 << 10, 1 << 14])
    def test_synthetic_layers_track_eq6(self, h: int, n: int) -> None:
        self._check_layers(synthetic(n), h)

    @pytest.mark.parametrize(
        "h,n",
        [(2, 1 << 10), (4, 1 << 10), (6, 1 << 10), (4, 1 << 14)],
    )
    def test_nyct_layers_track_eq6(self, h: int, n: int) -> None:
        self._check_layers(nyct_dataset(n), h)

    def _check_layers(self, data: np.ndarray, h: int) -> None:
        n = len(data)
        epsilon = scaled_epsilon(data)
        delta = epsilon / 4.0
        cluster = SimulatedCluster()
        dm_haar_space(
            data, epsilon, delta, cluster, subtree_leaves=1 << h, construct=False
        )
        trace = cluster.log.trace()
        checks = check_dmhaarspace_trace(trace, n, 1 << h, epsilon, delta)
        assert checks, "expected at least one bottom-up layer job"
        floors = {
            bound.job_name: bound.bytes_floor
            for bound in dmhaarspace_layer_bounds(n, 1 << h, epsilon, delta)
        }
        for check in checks:
            # The Eq. 6 budget, exactly as derived — no slack factor.
            assert check.measured_bytes <= check.bound_bytes, (
                f"{check.job_name}: measured {check.measured_bytes} bytes "
                f"exceeds the Eq. 6 budget {check.bound_bytes}"
            )
            # ...and the emission truly is one record per sub-tree, so the
            # budget is tracking the measurement, not dwarfing it.
            assert check.measured_bytes >= floors[check.job_name]

    def test_bound_scales_as_eq6(self) -> None:
        # Doubling N doubles the bottom layer's budget; the per-record
        # term is independent of N up to the effective-delta clamp.
        n, h = 1 << 10, 4
        small = dmhaarspace_layer_bounds(n, 1 << h, 16.0, 1.0)
        large = dmhaarspace_layer_bounds(2 * n, 1 << h, 16.0, 1.0)
        ratio = large[0].bytes_bound / small[0].bytes_bound
        width_ratio = max_row_entries(16.0, 1.0, 2 * n) / max_row_entries(
            16.0, 1.0, n
        )
        assert ratio == pytest.approx(2.0 * width_ratio, rel=0.15)


class TestEq6ApproximateRegime:
    """The coarsened tier's Eq. 6 budgets — same derivation, rho grid."""

    @pytest.mark.parametrize("rho", [0.05, 0.1, 0.25])
    def test_coarsened_trace_within_coarsened_budget(self, rho: float) -> None:
        # Fine nominal grid (delta << epsilon) so coarsening bites; the
        # coarsened run must fit the rho-adjusted budget with no slack.
        rng = np.random.default_rng(29)
        data = np.cumsum(rng.normal(0.0, 1.0, 1 << 10)) + 50.0
        epsilon, delta, h = 3.0, 0.01, 6
        cluster = SimulatedCluster()
        dm_haar_space(
            data, epsilon, delta, cluster, subtree_leaves=1 << h, construct=False,
            rho=rho,
        )
        trace = cluster.log.trace()
        checks = check_dmhaarspace_trace(trace, len(data), 1 << h, epsilon, delta, rho)
        assert checks, "expected bottom-up layer jobs in the coarsened trace"
        floors = {
            bound.job_name: bound.bytes_floor
            for bound in dmhaarspace_layer_bounds(len(data), 1 << h, epsilon, delta, rho)
        }
        for check in checks:
            assert check.measured_bytes <= check.bound_bytes, (
                f"{check.job_name}: coarsened run shipped {check.measured_bytes} "
                f"bytes, above the rho={rho} Eq. 6 budget {check.bound_bytes}"
            )
            assert check.measured_bytes >= floors[check.job_name]

    def test_coarsened_budget_is_smaller_than_exact(self) -> None:
        # In the fine-grid regime the whole point of coarsening is a
        # smaller shipped row: the rho bound must undercut the exact one.
        epsilon, delta, n = 3.0, 0.01, 1 << 10
        exact_width = max_row_entries(epsilon, delta, n)
        for rho in (0.05, 0.1, 0.25):
            assert max_row_entries(epsilon, delta, n, rho) < exact_width

    def test_rho_zero_budget_matches_the_exact_bound(self) -> None:
        for epsilon, delta, n in [(16.0, 1.0, 1 << 10), (3.0, 0.01, 1 << 14)]:
            assert max_row_entries(epsilon, delta, n, 0.0) == max_row_entries(
                epsilon, delta, n
            )

    def test_coarse_budget_is_epsilon_independent(self) -> None:
        # delta' = 2*rho*epsilon/levels grows with epsilon, so once the
        # coarse step dominates, W depends only on rho and the depth —
        # one budget covers every binary-search probe (up to one entry of
        # float rounding in the epsilon/delta' ratio).
        n, delta, rho = 1 << 10, 0.001, 0.1
        widths = [max_row_entries(epsilon, delta, n, rho) for epsilon in (5.0, 50.0, 500.0)]
        assert max(widths) - min(widths) <= 1

class TestDGreedyHistogramBound:
    @pytest.mark.parametrize("base_leaves", [4, 16, 64])
    def test_synthetic_small(self, base_leaves: int) -> None:
        self._check(synthetic(1 << 10), base_leaves, budget=32)

    def test_synthetic_large(self) -> None:
        self._check(synthetic(1 << 14), base_leaves=64, budget=64)

    def test_nyct_small(self) -> None:
        self._check(nyct_dataset(1 << 10), base_leaves=16, budget=32)

    def test_nyct_large(self) -> None:
        self._check(nyct_dataset(1 << 14), base_leaves=64, budget=64)

    def _check(self, data: np.ndarray, base_leaves: int, budget: int) -> None:
        n = len(data)
        cluster = SimulatedCluster()
        d_greedy_abs(data, budget, cluster, base_leaves=base_leaves)
        checks = check_dgreedy_trace(cluster.log.trace(), n, base_leaves, budget)
        assert checks, "expected the dgreedy-histograms job in the trace"
        for check in checks:
            assert check.measured_bytes <= check.bound_bytes, (
                f"histogram emission {check.measured_bytes} bytes exceeds "
                f"the compression bound {check.bound_bytes}"
            )
            assert check.measured_bytes > 0

    def test_bound_formula_matches_partition(self) -> None:
        # R = N / s sub-trees; min(R, B) + 1 candidates; s - 1 removable
        # nodes each. With B >= R every candidate exists.
        n, s, b = 256, 16, 256
        r = n // s
        bound = dgreedy_histogram_bound(n, s, b)
        per_subtree_records = s - 1  # hist buckets
        assert bound == (r + 1) * r * (per_subtree_records * 40 + 25)


class TestExternalShuffleBounds:
    """The bounds hold on *measured* traces regardless of shuffle mode.

    Byte accounting happens on map-task outputs before the shuffle
    touches them, so the external path must neither inflate nor shrink
    the measured bytes — same budgets, no slack factors.
    """

    def test_dgreedy_bound_holds_under_external_shuffle(self) -> None:
        data = synthetic(1 << 10)
        shuffle = ShuffleConfig(mode="external", buffer_bytes=2048)
        cluster = SimulatedCluster(runtime=LocalRuntime(shuffle=shuffle))
        d_greedy_abs(data, 32, cluster, base_leaves=16)
        checks = check_dgreedy_trace(cluster.log.trace(), 1 << 10, 16, 32)
        assert checks
        for check in checks:
            assert 0 < check.measured_bytes <= check.bound_bytes
        # The tiny buffer really forced the out-of-core path.
        assert any(job.shuffle_stats.get("spills", 0) for job in cluster.log.jobs)

    def test_measured_bytes_identical_across_shuffle_modes(self) -> None:
        data = synthetic(1 << 10)

        def measured(shuffle: ShuffleConfig | None) -> list[int]:
            cluster = SimulatedCluster(runtime=LocalRuntime(shuffle=shuffle))
            d_greedy_abs(data, 32, cluster, base_leaves=16)
            return [job.shuffle_bytes for job in cluster.log.jobs]

        external = ShuffleConfig(mode="external", buffer_bytes=2048)
        assert measured(None) == measured(external)


class TestEstimateSizeObjectArrays:
    """Object-dtype ndarrays are charged per element, not per pointer."""

    def test_object_array_recurses_into_elements(self) -> None:
        strings = np.array(["a" * 100, "b" * 50], dtype=object)
        # nbytes would say 16 (two 8-byte pointers); the real modeled
        # payload is the two strings plus the container overhead.
        assert strings.nbytes == 16
        assert estimate_size(strings) == 4 + 100 + 50

    def test_object_array_matches_equivalent_list(self) -> None:
        items = [1, 2.5, "hello", (1, 2)]
        as_array = np.empty(len(items), dtype=object)
        as_array[:] = items
        assert estimate_size(as_array) == estimate_size(items)

    def test_nested_object_array(self) -> None:
        inner = np.arange(10, dtype=np.float64)  # 80 B + 4 overhead
        outer = np.empty(2, dtype=object)
        outer[:] = [inner, inner]
        assert estimate_size(outer) == 4 + 2 * (80 + 4)

    def test_numeric_arrays_still_charged_at_nbytes(self) -> None:
        array = np.arange(16, dtype=np.float64)
        assert estimate_size(array) == 128 + 4
