"""Tests for IndirectHaar (Algorithm 2) and the conventional baseline."""

import numpy as np
import pytest

from repro.algos.conventional import (
    conventional_synopsis,
    largest_coefficient,
    top_b_indices,
)
from repro.algos.greedy_abs import greedy_abs
from repro.algos.indirect_haar import indirect_haar
from repro.exceptions import InvalidInputError
from repro.wavelet.transform import haar_transform

from tests._reference import brute_force_restricted_optimum

PAPER_DATA = np.array([5, 5, 0, 26, 1, 3, 14, 2], dtype=float)


class TestConventional:
    def test_budget_respected(self):
        for budget in (0, 1, 4, 8):
            assert conventional_synopsis(PAPER_DATA, budget).size <= budget

    def test_retains_most_significant(self):
        # Significances for the paper data: c_0=7 and c_5=6.5 lead.
        synopsis = conventional_synopsis(PAPER_DATA, 2)
        assert set(synopsis.coefficients) == {0, 5}

    def test_l2_optimality_against_bruteforce(self):
        from itertools import combinations

        from repro.wavelet.synopsis import WaveletSynopsis

        rng = np.random.default_rng(21)
        data = rng.integers(0, 100, size=8).astype(float)
        coeffs = haar_transform(data)
        budget = 3
        conventional = conventional_synopsis(data, budget)
        best = min(
            WaveletSynopsis(8, {i: float(coeffs[i]) for i in subset}).l2_error(data)
            for subset in combinations(range(8), budget)
        )
        assert conventional.l2_error(data) == pytest.approx(best, abs=1e-9)

    def test_top_b_indices_deterministic_ties(self):
        coeffs = np.array([1.0, 1.0, 0.0, 0.0])
        assert top_b_indices(coeffs, 1) == [0]

    def test_top_b_rejects_negative(self):
        with pytest.raises(InvalidInputError):
            top_b_indices([1.0], -1)

    def test_zero_coefficients_not_stored(self):
        synopsis = conventional_synopsis(PAPER_DATA, 8)
        assert 4 not in synopsis.coefficients  # c_4 == 0

    def test_largest_coefficient(self):
        coeffs = haar_transform(PAPER_DATA)  # |values| = 7,2,4,3,0,13,1,6
        assert largest_coefficient(coeffs, 1) == 13.0
        assert largest_coefficient(coeffs, 2) == 7.0
        assert largest_coefficient(coeffs, 8) == 0.0
        assert largest_coefficient(coeffs, 100) == 0.0
        with pytest.raises(InvalidInputError):
            largest_coefficient(coeffs, 0)


class TestIndirectHaar:
    def test_budget_respected_and_meta_consistent(self):
        rng = np.random.default_rng(31)
        for _ in range(4):
            data = rng.integers(0, 500, size=32).astype(float)
            synopsis = indirect_haar(data, 6, delta=1.0)
            assert synopsis.size <= 6
            assert synopsis.max_abs_error(data) == pytest.approx(
                synopsis.meta["max_abs_error"], abs=1e-9
            )
            assert synopsis.meta["dp_runs"] >= 1

    def test_beats_conventional(self):
        rng = np.random.default_rng(32)
        for _ in range(5):
            data = rng.integers(0, 1000, size=32).astype(float)
            budget = 8
            ih_error = indirect_haar(data, budget, delta=1.0).max_abs_error(data)
            conv_error = conventional_synopsis(data, budget).max_abs_error(data)
            assert ih_error <= conv_error + 1e-9

    def test_beats_or_matches_greedy(self):
        rng = np.random.default_rng(33)
        for _ in range(5):
            data = rng.integers(0, 1000, size=32).astype(float)
            budget = 8
            ih_error = indirect_haar(data, budget, delta=1.0).max_abs_error(data)
            greedy_error = greedy_abs(data, budget).max_abs_error(data)
            # Fine quantization: optimal unrestricted <= greedy + one quantum.
            assert ih_error <= greedy_error + 1.0 + 1e-9

    def test_near_optimal_against_restricted_bruteforce(self):
        rng = np.random.default_rng(34)
        for _ in range(3):
            data = rng.integers(0, 60, size=8).astype(float)
            budget = 3
            ih_error = indirect_haar(data, budget, delta=0.25).max_abs_error(data)
            optimal_restricted, _ = brute_force_restricted_optimum(data, budget)
            assert ih_error <= optimal_restricted + 0.25 + 1e-9

    def test_generous_budget_returns_exact(self):
        synopsis = indirect_haar(PAPER_DATA, 8, delta=0.5)
        assert synopsis.max_abs_error(PAPER_DATA) == 0.0
        assert synopsis.meta["dp_runs"] == 0  # conventional bracket was exact

    def test_coarser_delta_degrades_gracefully(self):
        rng = np.random.default_rng(35)
        data = rng.integers(0, 1000, size=64).astype(float)
        fine = indirect_haar(data, 8, delta=1.0).max_abs_error(data)
        coarse = indirect_haar(data, 8, delta=50.0).max_abs_error(data)
        assert fine <= coarse + 1e-9

    def test_custom_solver_is_used(self):
        calls = []
        from repro.algos.minhaarspace import min_haar_space

        def spy_solver(epsilon):
            calls.append(epsilon)
            return min_haar_space(PAPER_DATA, epsilon, 0.5)

        indirect_haar(PAPER_DATA, 3, delta=0.5, solver=spy_solver)
        assert len(calls) >= 1
