"""Differential tests: windowed DP combine kernels vs the scalar reference.

The vectorized kernels must match the retained scalar reference
entry-for-entry — counts, errors, choices, and domain bounds — including
the tie-break (smallest ``vl`` / ``z = 0`` wins), infeasible interior
holes, and odd-parity domains.  Randomized rows are generated from seeded
RNGs so failures reproduce.
"""

import math

import numpy as np
import pytest

import repro.algos.minhaarspace as mhs
from repro.algos.minhaarspace import (
    DP_KERNELS,
    INFEASIBLE_COUNT,
    KernelSpec,
    MRow,
    combine_rows,
    combine_rows_restricted,
    combine_rows_restricted_scalar,
    combine_rows_scalar,
    leaf_row,
    leaf_rows,
    min_haar_space,
    min_haar_space_restricted,
    resolve_kernel,
)
from repro.exceptions import InfeasibleErrorBound


def random_row(rng, width: int, holes: bool = False) -> MRow:
    start = int(rng.integers(-width, width + 1))
    counts = rng.integers(0, 8, width).astype(np.int32)
    errors = rng.uniform(0.0, width, width)
    if holes and width > 2:
        mask = rng.random(width) < 0.25
        mask[0] = mask[-1] = False  # keep the fringe feasible
        counts[mask] = INFEASIBLE_COUNT
        errors[mask] = np.inf
    return MRow(
        start=start, counts=counts, errors=errors, choices=np.zeros(width, np.int64)
    )


def assert_rows_identical(got: MRow, expected: MRow):
    assert got.start == expected.start
    assert np.array_equal(got.counts, expected.counts)
    assert np.array_equal(got.errors, expected.errors)
    assert np.array_equal(got.choices, expected.choices)


def both_or_neither(vectorized, scalar):
    """Run two row constructors; both must succeed or both must raise."""
    try:
        expected = scalar()
    except InfeasibleErrorBound:
        with pytest.raises(InfeasibleErrorBound):
            vectorized()
        return None
    return vectorized(), expected


class TestCombineDifferential:
    def test_randomized_rows_match_scalar(self, monkeypatch):
        # Force the windowed kernel even on tiny rows so the whole width
        # range is differential-tested against the scalar loop.
        monkeypatch.setattr(mhs, "SCALAR_FALLBACK_CELLS", 0)
        rng = np.random.default_rng(100)
        compared = 0
        for trial in range(400):
            left = random_row(rng, int(rng.integers(1, 120)), holes=trial % 3 == 0)
            right = random_row(rng, int(rng.integers(1, 120)), holes=trial % 3 == 1)
            epsilon = float(rng.uniform(0.5, 60.0))
            outcome = both_or_neither(
                lambda: combine_rows(left, right, epsilon, 1.0),
                lambda: combine_rows_scalar(left, right, epsilon, 1.0),
            )
            if outcome is not None:
                assert_rows_identical(*outcome)
                compared += 1
        assert compared > 200  # most trials must exercise the kernels

    def test_odd_parity_domains(self, monkeypatch):
        # Child domains with odd start/end parities shrink the combined
        # domain by one grid point; every parity combination must agree.
        monkeypatch.setattr(mhs, "SCALAR_FALLBACK_CELLS", 0)
        rng = np.random.default_rng(7)
        for left_start in (-3, -2, 2, 3):
            for right_start in (-5, -4, 4, 5):
                for left_width, right_width in ((5, 8), (6, 7), (9, 4), (1, 6)):
                    left = random_row(rng, left_width)
                    right = random_row(rng, right_width)
                    left.start = left_start
                    right.start = right_start
                    outcome = both_or_neither(
                        lambda: combine_rows(left, right, 10.0, 1.0),
                        lambda: combine_rows_scalar(left, right, 10.0, 1.0),
                    )
                    if outcome is not None:
                        assert_rows_identical(*outcome)

    def test_infeasible_fringes_are_trimmed_identically(self, monkeypatch):
        monkeypatch.setattr(mhs, "SCALAR_FALLBACK_CELLS", 0)
        rng = np.random.default_rng(13)
        for _ in range(60):
            left = random_row(rng, 24)
            right = random_row(rng, 24)
            # Infeasible bands at both fringes of one child.
            edge = int(rng.integers(1, 8))
            left.errors[:edge] = np.inf
            left.counts[:edge] = INFEASIBLE_COUNT
            left.errors[-edge:] = np.inf
            left.counts[-edge:] = INFEASIBLE_COUNT
            outcome = both_or_neither(
                lambda: combine_rows(left, right, 12.0, 1.0),
                lambda: combine_rows_scalar(left, right, 12.0, 1.0),
            )
            if outcome is not None:
                got, expected = outcome
                assert_rows_identical(got, expected)
                assert np.isfinite(got.errors[0])
                assert np.isfinite(got.errors[-1])

    def test_tiny_rows_use_scalar_fallback_with_same_result(self):
        rng = np.random.default_rng(23)
        for _ in range(50):
            left = random_row(rng, int(rng.integers(1, 6)))
            right = random_row(rng, int(rng.integers(1, 6)))
            outcome = both_or_neither(
                lambda: combine_rows(left, right, 4.0, 1.0),
                lambda: combine_rows_scalar(left, right, 4.0, 1.0),
            )
            if outcome is not None:
                assert_rows_identical(*outcome)

    def test_tie_break_picks_smallest_vl(self, monkeypatch):
        monkeypatch.setattr(mhs, "SCALAR_FALLBACK_CELLS", 0)
        # All-equal counts and errors: every candidate scores the same, so
        # the scalar loop's first-minimum (smallest vl) must also win in
        # the batched argmin.
        width = 33
        left = MRow(0, np.zeros(width, np.int32), np.full(width, 2.0), np.zeros(width, np.int64))
        right = MRow(0, np.zeros(width, np.int32), np.full(width, 2.0), np.zeros(width, np.int64))
        got = combine_rows(left, right, 16.0, 1.0)
        expected = combine_rows_scalar(left, right, 16.0, 1.0)
        assert_rows_identical(got, expected)


class TestRestrictedDifferential:
    def test_randomized_restricted_match_scalar(self):
        rng = np.random.default_rng(200)
        compared = 0
        for trial in range(300):
            left = random_row(rng, int(rng.integers(1, 80)), holes=trial % 3 == 0)
            right = random_row(rng, int(rng.integers(1, 80)), holes=trial % 3 == 1)
            z_offset = int(rng.integers(-10, 11))
            epsilon = float(rng.uniform(0.5, 40.0))
            outcome = both_or_neither(
                lambda: combine_rows_restricted(left, right, z_offset, epsilon, 1.0),
                lambda: combine_rows_restricted_scalar(left, right, z_offset, epsilon, 1.0),
            )
            if outcome is not None:
                assert_rows_identical(*outcome)
                compared += 1
        assert compared > 150

    def test_non_contiguous_restricted_domains(self):
        # A large z offset makes the two candidates' feasible v-bands
        # disjoint: the union domain has an infeasible interior hole that
        # both implementations must represent identically.
        rng = np.random.default_rng(5)
        for z_offset in (12, -12, 20):
            left = random_row(rng, 8)
            right = random_row(rng, 8)
            left.start = 0
            right.start = 0
            outcome = both_or_neither(
                lambda: combine_rows_restricted(left, right, z_offset, 30.0, 1.0),
                lambda: combine_rows_restricted_scalar(left, right, z_offset, 30.0, 1.0),
            )
            if outcome is not None:
                got, expected = outcome
                assert_rows_identical(got, expected)
                if np.any(~np.isfinite(got.errors)):
                    holes = got.counts[~np.isfinite(got.errors)]
                    assert np.all(holes == INFEASIBLE_COUNT)
                    assert np.all(got.choices[~np.isfinite(got.errors)] == -1)


class TestLeafBatching:
    def test_leaf_rows_match_leaf_row(self):
        rng = np.random.default_rng(31)
        values = rng.uniform(-100.0, 100.0, 257)
        batched = leaf_rows(values, 7.5, 0.5)
        for value, row in zip(values, batched):
            assert_rows_identical(row, leaf_row(float(value), 7.5, 0.5))

    def test_leaf_rows_infeasible_value_raises(self):
        with pytest.raises(InfeasibleErrorBound):
            leaf_rows([0.0, 100.5], 0.2, 1.0)


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("n,epsilon", [(256, 25.0), (1024, 40.0)])
    def test_min_haar_space_same_synopsis_scalar_vs_windowed(
        self, monkeypatch, n, epsilon
    ):
        data = np.random.default_rng(n).integers(0, 1000, n).astype(float)
        vectorized = min_haar_space(data, epsilon, 1.0)
        monkeypatch.setattr(mhs, "SCALAR_FALLBACK_CELLS", 10**12)
        scalar = min_haar_space(data, epsilon, 1.0)
        assert vectorized.size == scalar.size
        assert vectorized.max_error == scalar.max_error
        assert vectorized.synopsis.coefficients == scalar.synopsis.coefficients

    def test_min_haar_space_restricted_same_synopsis(self, monkeypatch):
        data = np.random.default_rng(9).integers(0, 500, 256).astype(float)
        vectorized = min_haar_space_restricted(data, 60.0, 1.0)
        monkeypatch.setattr(mhs, "SCALAR_FALLBACK_CELLS", 10**12)
        scalar = min_haar_space_restricted(data, 60.0, 1.0)
        assert vectorized.size == scalar.size
        assert vectorized.max_error == scalar.max_error
        assert vectorized.synopsis.coefficients == scalar.synopsis.coefficients

    def test_solution_carries_epsilon(self):
        data = np.random.default_rng(4).integers(0, 100, 64).astype(float)
        solution = min_haar_space(data, 15.0, 1.0)
        assert solution.epsilon == 15.0
        restricted = min_haar_space_restricted(data, 25.0, 1.0)
        assert restricted.epsilon == 25.0


class TestKernelRegistry:
    """Every registry entry trades only time, never output."""

    def test_resolve_kernel_by_name_and_spec(self):
        spec = resolve_kernel("parallel")
        assert spec.parallel and spec.name == "parallel"
        assert resolve_kernel(spec) is spec  # specs pass through untouched
        assert resolve_kernel("scalar").force == "scalar"
        assert resolve_kernel("windowed").force == "windowed"
        assert resolve_kernel("auto").force is None

    def test_unknown_kernel_name_lists_the_registry(self):
        with pytest.raises(ValueError) as err:
            resolve_kernel("simd")
        for name in DP_KERNELS:
            assert name in str(err.value)

    @pytest.mark.parametrize("kernel", sorted(DP_KERNELS))
    def test_every_kernel_bit_identical_unrestricted(self, kernel):
        data = np.random.default_rng(41).integers(0, 500, 256).astype(float)
        reference = min_haar_space(data, 30.0, 0.25)
        got = min_haar_space(data, 30.0, 0.25, kernel=kernel)
        assert got.size == reference.size
        assert got.max_error == reference.max_error
        assert got.synopsis.coefficients == reference.synopsis.coefficients

    @pytest.mark.parametrize("kernel", sorted(DP_KERNELS))
    def test_every_kernel_bit_identical_restricted(self, kernel):
        data = np.random.default_rng(43).integers(0, 500, 128).astype(float)
        reference = min_haar_space_restricted(data, 60.0, 0.5)
        got = min_haar_space_restricted(data, 60.0, 0.5, kernel=kernel)
        assert got.size == reference.size
        assert got.max_error == reference.max_error
        assert got.synopsis.coefficients == reference.synopsis.coefficients

    def test_parallel_walk_matches_serial_even_below_the_gate(self, monkeypatch):
        # Force the executor path on rows the size gate would normally
        # keep serial: the level walk must still collect in index order.
        monkeypatch.setattr(mhs, "PARALLEL_MIN_ENTRIES", 0)
        data = np.random.default_rng(47).integers(0, 200, 128).astype(float)
        parallel = min_haar_space(data, 20.0, 0.5, kernel="parallel")
        serial = min_haar_space(data, 20.0, 0.5, kernel="auto")
        assert parallel.max_error == serial.max_error
        assert parallel.synopsis.coefficients == serial.synopsis.coefficients

    def test_parallel_spec_respects_explicit_worker_count(self):
        spec = KernelSpec(name="parallel", parallel=True, workers=3)
        assert spec.resolved_workers() == 3
        data = np.random.default_rng(53).integers(0, 200, 64).astype(float)
        got = min_haar_space(data, 20.0, 0.5, kernel=spec)
        reference = min_haar_space(data, 20.0, 0.5)
        assert got.synopsis.coefficients == reference.synopsis.coefficients
