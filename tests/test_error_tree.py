"""Unit tests for error-tree navigation and reconstruction (Section 2.2)."""

import numpy as np
import pytest

from repro.exceptions import InvalidInputError
from repro.wavelet.error_tree import (
    ErrorTree,
    data_path,
    leaf_sign,
    node_children,
    node_leaf_range,
    node_level,
    node_parent,
    reconstruct_range_sum,
    reconstruct_value,
    subtree_nodes,
)
from repro.wavelet.transform import haar_transform

PAPER_DATA = [5, 5, 0, 26, 1, 3, 14, 2]
PAPER_TRANSFORM = haar_transform(PAPER_DATA)


class TestNavigation:
    def test_leaf_ranges(self):
        assert node_leaf_range(0, 8) == (0, 8)
        assert node_leaf_range(1, 8) == (0, 8)
        assert node_leaf_range(2, 8) == (0, 4)
        assert node_leaf_range(3, 8) == (4, 8)
        assert node_leaf_range(4, 8) == (0, 2)
        assert node_leaf_range(7, 8) == (6, 8)

    def test_children(self):
        assert node_children(0, 8) == (1, 1)
        assert node_children(1, 8) == (2, 3)
        assert node_children(3, 8) == (6, 7)
        assert node_children(4, 8) is None
        assert node_children(7, 8) is None
        assert node_children(0, 1) is None

    def test_parent(self):
        assert node_parent(1) == 0
        assert node_parent(2) == 1
        assert node_parent(7) == 3
        with pytest.raises(InvalidInputError):
            node_parent(0)

    def test_parent_child_consistency(self):
        n = 64
        for node in range(1, n):
            children = node_children(node, n)
            if children is not None:
                assert node_parent(children[0]) == node
                assert node_parent(children[1]) == node

    def test_levels(self):
        assert node_level(0) == 0
        assert node_level(1) == 0
        assert node_level(4) == 2

    def test_leaf_range_out_of_bounds(self):
        with pytest.raises(InvalidInputError):
            node_leaf_range(8, 8)


class TestPaths:
    def test_path_of_d5(self):
        # Figure 1: d_5 is reconstructed from c_0, c_1, c_3, c_6.
        assert data_path(5, 8) == [0, 1, 3, 6]

    def test_path_of_d0(self):
        assert data_path(0, 8) == [0, 1, 2, 4]

    def test_path_length(self):
        for n in (1, 2, 8, 64):
            for leaf in (0, n - 1):
                assert len(data_path(leaf, n)) == n.bit_length()

    def test_paths_are_nested_ranges(self):
        n = 32
        for leaf in range(n):
            for node in data_path(leaf, n):
                lo, hi = node_leaf_range(node, n)
                assert lo <= leaf < hi

    def test_out_of_range_leaf(self):
        with pytest.raises(InvalidInputError):
            data_path(8, 8)


class TestSigns:
    def test_root_is_always_positive(self):
        for leaf in range(8):
            assert leaf_sign(0, leaf, 8) == 1

    def test_left_right_split(self):
        # c_1 covers all leaves: first half +, second half -.
        assert [leaf_sign(1, leaf, 8) for leaf in range(8)] == [1, 1, 1, 1, -1, -1, -1, -1]
        # c_6 covers leaves 4,5 only.
        assert [leaf_sign(6, leaf, 8) for leaf in range(8)] == [0, 0, 0, 0, 1, -1, 0, 0]


class TestReconstruction:
    def test_paper_value_d5(self):
        # d_5 = 7 - 2 - 3 - (-1) = 3
        assert reconstruct_value(PAPER_TRANSFORM, 5, 8) == pytest.approx(3.0)

    def test_all_values_recovered(self):
        for leaf, expected in enumerate(PAPER_DATA):
            assert reconstruct_value(PAPER_TRANSFORM, leaf, 8) == pytest.approx(expected)

    def test_sparse_reconstruction(self):
        # Retaining {c_0, c_5, c_3} gives d_5_hat = 7 - 3 = 4 (Section 2.3).
        retained = {0: 7.0, 5: -13.0, 3: -3.0}
        assert reconstruct_value(retained, 5, 8) == pytest.approx(4.0)

    def test_paper_range_sum(self):
        # d(3:6) = 26 + 1 + 3 + 14 = 44 (Section 2.2 example).
        assert reconstruct_range_sum(PAPER_TRANSFORM, 3, 6, 8) == pytest.approx(44.0)

    def test_range_sums_match_bruteforce(self):
        rng = np.random.default_rng(11)
        data = rng.integers(0, 100, size=16).astype(float)
        coeffs = haar_transform(data)
        for lo in range(16):
            for hi in range(lo, 16):
                expected = data[lo : hi + 1].sum()
                assert reconstruct_range_sum(coeffs, lo, hi, 16) == pytest.approx(expected)

    def test_range_sum_rejects_empty_range(self):
        with pytest.raises(InvalidInputError):
            reconstruct_range_sum(PAPER_TRANSFORM, 5, 3, 8)

    def test_single_point_range(self):
        assert reconstruct_range_sum(PAPER_TRANSFORM, 5, 5, 8) == pytest.approx(3.0)


class TestSubtreeNodes:
    def test_whole_tree(self):
        assert sorted(subtree_nodes(0, 8)) == list(range(8))

    def test_internal_subtree(self):
        assert sorted(subtree_nodes(3, 8)) == [3, 6, 7]

    def test_bottom_node(self):
        assert list(subtree_nodes(7, 8)) == [7]

    def test_subtree_leaf_ranges_are_contained(self):
        n = 32
        for root in range(1, n):
            root_lo, root_hi = node_leaf_range(root, n)
            for node in subtree_nodes(root, n):
                lo, hi = node_leaf_range(node, n)
                assert root_lo <= lo and hi <= root_hi


class TestErrorTreeClass:
    def test_wraps_transform(self):
        tree = ErrorTree(PAPER_DATA)
        assert tree.coefficients.tolist() == PAPER_TRANSFORM.tolist()
        assert tree.n == 8
        assert tree.log_n == 3

    def test_reconstruct_and_range(self):
        tree = ErrorTree(PAPER_DATA)
        assert tree.reconstruct_value(5) == pytest.approx(3.0)
        assert tree.range_sum(3, 6) == pytest.approx(44.0)

    def test_retained_override(self):
        tree = ErrorTree(PAPER_DATA)
        assert tree.reconstruct_value(5, retained={0: 7.0, 3: -3.0}) == pytest.approx(4.0)

    def test_rejects_bad_input(self):
        with pytest.raises(InvalidInputError):
            ErrorTree([1.0, 2.0, 3.0])
