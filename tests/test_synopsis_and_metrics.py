"""Unit tests for WaveletSynopsis and the error metrics (Eqs. 1-3)."""

import numpy as np
import pytest

from repro.exceptions import InvalidInputError
from repro.wavelet.metrics import l2_error, max_abs_error, max_rel_error, signed_errors
from repro.wavelet.synopsis import WaveletSynopsis
from repro.wavelet.transform import haar_transform

PAPER_DATA = np.array([5, 5, 0, 26, 1, 3, 14, 2], dtype=float)


def full_synopsis(data) -> WaveletSynopsis:
    coeffs = haar_transform(data)
    return WaveletSynopsis(len(data), {i: c for i, c in enumerate(coeffs) if c != 0.0})


class TestMetrics:
    def test_zero_error_on_identical(self):
        assert l2_error(PAPER_DATA, PAPER_DATA) == 0.0
        assert max_abs_error(PAPER_DATA, PAPER_DATA) == 0.0
        assert max_rel_error(PAPER_DATA, PAPER_DATA) == 0.0

    def test_max_abs_simple(self):
        approx = PAPER_DATA + np.array([0, 0, 0, -5, 0, 2, 0, 0], dtype=float)
        assert max_abs_error(PAPER_DATA, approx) == 5.0

    def test_l2_matches_formula(self):
        approx = PAPER_DATA.copy()
        approx[0] += 4.0
        assert l2_error(PAPER_DATA, approx) == pytest.approx(np.sqrt(16.0 / 8.0))

    def test_max_rel_uses_sanity_bound(self):
        data = np.array([0.0, 100.0])
        approx = np.array([1.0, 100.0])
        # With S = 1, the zero-valued point contributes |1 - 0| / 1 = 1.
        assert max_rel_error(data, approx, sanity_bound=1.0) == 1.0
        # A large sanity bound suppresses it.
        assert max_rel_error(data, approx, sanity_bound=10.0) == pytest.approx(0.1)

    def test_max_rel_rejects_nonpositive_bound(self):
        with pytest.raises(InvalidInputError):
            max_rel_error(PAPER_DATA, PAPER_DATA, sanity_bound=0.0)

    def test_shape_mismatch(self):
        with pytest.raises(InvalidInputError):
            max_abs_error(PAPER_DATA, PAPER_DATA[:4])

    def test_signed_errors_sign_convention(self):
        # err = d_hat - d.
        errors = signed_errors(np.array([1.0, 2.0]), np.array([0.5, 3.0]))
        assert errors.tolist() == [-0.5, 1.0]


class TestWaveletSynopsis:
    def test_full_synopsis_is_lossless(self):
        synopsis = full_synopsis(PAPER_DATA)
        np.testing.assert_allclose(synopsis.reconstruct(), PAPER_DATA)
        assert synopsis.max_abs_error(PAPER_DATA) == 0.0

    def test_paper_sparse_example(self):
        synopsis = WaveletSynopsis(8, {0: 7.0, 5: -13.0, 3: -3.0})
        assert synopsis.size == 3
        assert synopsis.point_query(5) == pytest.approx(4.0)

    def test_zero_coefficients_are_dropped(self):
        synopsis = WaveletSynopsis(8, {0: 7.0, 3: 0.0})
        assert synopsis.size == 1
        assert 3 not in synopsis.coefficients

    def test_dense_roundtrip(self):
        synopsis = WaveletSynopsis(8, {0: 7.0, 2: -4.0})
        dense = synopsis.dense()
        assert dense[0] == 7.0 and dense[2] == -4.0 and dense.sum() == 3.0

    def test_point_query_matches_full_reconstruction(self):
        rng = np.random.default_rng(5)
        data = rng.normal(scale=10, size=32)
        coeffs = haar_transform(data)
        keep = {int(i): float(coeffs[i]) for i in rng.choice(32, size=8, replace=False)}
        synopsis = WaveletSynopsis(32, keep)
        full = synopsis.reconstruct()
        for leaf in range(32):
            assert synopsis.point_query(leaf) == pytest.approx(full[leaf])

    def test_range_queries_match_reconstruction(self):
        synopsis = WaveletSynopsis(8, {0: 7.0, 1: 2.0, 5: -13.0})
        full = synopsis.reconstruct()
        assert synopsis.range_sum(2, 6) == pytest.approx(full[2:7].sum())
        assert synopsis.range_avg(2, 6) == pytest.approx(full[2:7].mean())

    def test_range_avg_rejects_empty(self):
        synopsis = WaveletSynopsis(8, {0: 7.0})
        with pytest.raises(InvalidInputError):
            synopsis.range_avg(4, 3)

    def test_serialization_roundtrip(self):
        synopsis = WaveletSynopsis(8, {0: 7.0, 5: -13.0}, meta={"algorithm": "test"})
        restored = WaveletSynopsis.from_dict(synopsis.to_dict())
        assert restored.same_coefficients(synopsis)
        assert restored.meta == synopsis.meta

    def test_same_coefficients_tolerance(self):
        a = WaveletSynopsis(8, {0: 7.0})
        b = WaveletSynopsis(8, {0: 7.0 + 1e-9})
        assert not a.same_coefficients(b)
        assert a.same_coefficients(b, tolerance=1e-6)

    def test_rejects_out_of_range_index(self):
        with pytest.raises(InvalidInputError):
            WaveletSynopsis(8, {9: 1.0})

    def test_rejects_non_power_of_two(self):
        with pytest.raises(InvalidInputError):
            WaveletSynopsis(6, {0: 1.0})

    def test_error_metrics_delegation(self):
        synopsis = WaveletSynopsis(8, {0: 7.0, 5: -13.0, 3: -3.0})
        approx = synopsis.reconstruct()
        assert synopsis.max_abs_error(PAPER_DATA) == max_abs_error(PAPER_DATA, approx)
        assert synopsis.l2_error(PAPER_DATA) == l2_error(PAPER_DATA, approx)
        assert synopsis.max_rel_error(PAPER_DATA) == max_rel_error(PAPER_DATA, approx)
