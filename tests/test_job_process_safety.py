"""Meta-test: every concrete job satisfies the process-safety contract.

A job is either

* ``process_safe`` (the default) — it must be picklable, since
  :class:`~repro.mapreduce.process.ProcessPoolRuntime` ships it to worker
  processes.  Both the *class* (module-level, importable — the failure
  mode of the historical ``_AverageJob``-inside-a-function bug) and a
  representative *instance* must survive a pickle round trip; or
* ``process_safe = False`` — it shares driver-side state and runs through
  the in-process fallback.  Those jobs must be the known, documented set,
  and the fallback path itself is exercised here end to end.

New concrete job classes fail this test until they are added to the
instance registry below — by design, so the pickling contract is decided
at review time rather than discovered in a worker traceback.
"""

from __future__ import annotations

import importlib
import pickle
import pkgutil

import numpy as np
import pytest

import repro
from repro.core.conventional_dist import (
    _ConJob,
    _HWTopkRound,
    _SendCoefJob,
    _SendVJob,
)
from repro.core.dgreedy import (
    _AbsEngine,
    _AverageJob,
    _Candidate,
    _ConstructJob,
    _HistogramJob,
)
from repro.core.dindirect import _EvaluateSynopsisJob, _LowerBoundJob
from repro.core.dp_framework import _BottomUpLayerJob, _TopDownLayerJob, dm_haar_space
from repro.mapreduce import (
    LocalRuntime,
    MapReduceJob,
    ProcessPoolRuntime,
    SimulatedCluster,
    is_process_safe,
)


def _import_all_repro_modules() -> None:
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # executable entry points parse sys.argv on import
        importlib.import_module(info.name)


def _concrete_job_classes() -> set[type[MapReduceJob]]:
    _import_all_repro_modules()
    found: set[type[MapReduceJob]] = set()
    frontier = [MapReduceJob]
    while frontier:
        cls = frontier.pop()
        for sub in cls.__subclasses__():
            frontier.append(sub)
            if "map" in sub.__dict__:
                found.add(sub)
    return found


def _candidate() -> _Candidate:
    return _Candidate(index=1, retained={0: 7.0}, incoming=np.zeros(2))


#: One representative, fully-constructed instance per process-safe job class.
PROCESS_SAFE_INSTANCES: dict[type[MapReduceJob], MapReduceJob] = {
    _ConJob: _ConJob(8, 4, 4),
    _SendVJob: _SendVJob(8, 4),
    _SendCoefJob: _SendCoefJob(8, 4),
    _HWTopkRound: _HWTopkRound(8, 4, "candidates", candidates={1, 2}),
    _LowerBoundJob: _LowerBoundJob(8, 4, 4),
    _EvaluateSynopsisJob: _EvaluateSynopsisJob(8, {1: 3.0}, 4),
    _HistogramJob: _HistogramJob(_AbsEngine(), [_candidate()], 4, 1e-6, 2),
    _ConstructJob: _ConstructJob(_AbsEngine(), _candidate(), 0.0, 1e-6, 8),
    _AverageJob: _AverageJob(),
}

#: Jobs that share driver-side state and therefore run in-process only.
KNOWN_DRIVER_STATE_JOBS = {_BottomUpLayerJob, _TopDownLayerJob}


def test_every_concrete_job_is_classified():
    concrete = {
        cls
        for cls in _concrete_job_classes()
        if cls.__module__.startswith("repro.")
    }
    unclassified = concrete - set(PROCESS_SAFE_INSTANCES) - KNOWN_DRIVER_STATE_JOBS
    assert not unclassified, (
        "new concrete job classes must be registered in "
        "tests/test_job_process_safety.py (process-safe + picklable, or in the "
        f"known driver-state set): {sorted(c.__qualname__ for c in unclassified)}"
    )


def test_every_concrete_job_declares_a_stage_label():
    # The tracing subsystem groups jobs by their algorithm role; a job
    # without a stage label is invisible to the bound checkers and the
    # per-stage communication roll-ups, so declaring one is mandatory.
    concrete = {
        cls for cls in _concrete_job_classes() if cls.__module__.startswith("repro.")
    }
    unlabeled = sorted(
        cls.__qualname__
        for cls in concrete
        if not getattr(cls, "stage_label", "")
    )
    assert not unlabeled, (
        "every concrete MapReduceJob must declare a non-empty stage_label "
        f"ClassVar (see repro.mapreduce.job): {unlabeled}"
    )


@pytest.mark.parametrize(
    "cls", sorted(PROCESS_SAFE_INSTANCES, key=lambda c: c.__qualname__)
)
def test_process_safe_job_class_pickles(cls):
    # Pickling the class itself verifies it is defined at module level —
    # the exact failure mode of a job class created inside a function.
    assert pickle.loads(pickle.dumps(cls)) is cls


@pytest.mark.parametrize(
    "cls", sorted(PROCESS_SAFE_INSTANCES, key=lambda c: c.__qualname__)
)
def test_process_safe_job_instance_round_trips(cls):
    job = PROCESS_SAFE_INSTANCES[cls]
    assert is_process_safe(job), f"{cls.__qualname__} is registered as process-safe"
    clone = pickle.loads(pickle.dumps(job))
    assert type(clone) is cls
    assert clone.name == job.name
    assert clone.num_reducers == job.num_reducers


@pytest.mark.parametrize(
    "cls", sorted(KNOWN_DRIVER_STATE_JOBS, key=lambda c: c.__qualname__)
)
def test_driver_state_jobs_opt_out(cls):
    assert cls.process_safe is False
    assert "process_safe" in cls.__dict__, "opt-out must be explicit on the class"


def test_static_pickle_verdicts_agree_with_runtime_registry():
    # The whole-program analyzer re-derives process-safety transitively
    # (call-graph walk from each job's task methods) instead of trusting
    # the declared flag.  Its verdicts must agree with this file's
    # runtime registry class by class: every job that actually pickle
    # round-trips is statically proven safe, and every documented
    # driver-state job is statically refuted — a disagreement in either
    # direction means the static model or the registry has drifted.
    from pathlib import Path

    from repro.analysis.pickling import job_pickle_verdicts
    from repro.analysis.project import load_or_build_index

    repo_src = Path(__file__).resolve().parent.parent / "src"
    verdicts = job_pickle_verdicts(load_or_build_index([repo_src], None))
    by_name = {
        qualname.rsplit(".", 1)[-1]: verdict for qualname, verdict in verdicts.items()
    }

    runtime_names = {
        cls.__name__ for cls in PROCESS_SAFE_INSTANCES
    } | {cls.__name__ for cls in KNOWN_DRIVER_STATE_JOBS}
    assert set(by_name) == runtime_names, (
        "the static analyzer and the runtime registry must classify the "
        f"same set of concrete jobs; static-only={set(by_name) - runtime_names} "
        f"runtime-only={runtime_names - set(by_name)}"
    )

    for cls in PROCESS_SAFE_INSTANCES:
        verdict = by_name[cls.__name__]
        assert verdict.process_safe, (
            f"{cls.__qualname__} pickle round-trips at runtime but the static "
            f"walk claims otherwise: {verdict.evidence}"
        )
        assert verdict.declared is True
    for cls in KNOWN_DRIVER_STATE_JOBS:
        verdict = by_name[cls.__name__]
        assert not verdict.process_safe, (
            f"{cls.__qualname__} is documented driver-state but the static "
            "walk found no evidence why — document or fix"
        )
        assert verdict.declared is False


def test_driver_state_jobs_run_via_in_process_fallback():
    # The layered DP jobs (process_safe=False) must produce identical
    # results under the process runtime (which falls back in-process for
    # them) and the plain local runtime.
    rng = np.random.default_rng(11)
    data = rng.integers(0, 20, size=64).astype(np.float64)
    local = dm_haar_space(
        data, 4.0, 1.0, SimulatedCluster(runtime=LocalRuntime()), subtree_leaves=8
    )
    pooled = dm_haar_space(
        data,
        4.0,
        1.0,
        SimulatedCluster(runtime=ProcessPoolRuntime(max_workers=2)),
        subtree_leaves=8,
    )
    assert pooled.size == local.size
    assert pooled.max_error == local.max_error
    assert pooled.synopsis.coefficients == local.synopsis.coefficients
