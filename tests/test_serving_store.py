"""Concurrency and caching behavior of the sharded serving store.

The torn-synopsis test is the load-bearing one: reader threads hammer
batched queries while a writer appends; every snapshot a reader observes
must be internally consistent (its recomputed digest matches the digest
it was published with — a torn coefficient dict would diverge) and
versions must be monotone per reader.  The LRU tests pin the cache
counters and prove eviction never changes answers, only work.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.analysis.sanitizer import compare_reports
from repro.exceptions import InvalidInputError, ReproError
from repro.serving import Query, ReconstructionCache, ShardedSynopsisStore
from repro.serving.store import _digest


class TestConcurrentReaders:
    def test_readers_never_see_a_torn_synopsis(self):
        rng = np.random.default_rng(17)
        store = ShardedSynopsisStore(
            shards=4, cache_entries=32, segment_leaves=64
        )
        initial = rng.normal(50, 10, 512)
        store.create("hot", initial, tier="greedy", budget=64, base_leaves=64)
        blocks = [rng.normal(55, 8, 8) for _ in range(30)]  # stays in buffer

        stop = threading.Event()
        errors: list[BaseException] = []
        observed: dict[int, list[tuple[int, str]]] = {}

        def reader(slot: int) -> None:
            seen: list[tuple[int, str]] = []
            try:
                while not stop.is_set():
                    snapshot = store.snapshot("hot")
                    # Digest recomputed from the data the reader actually
                    # holds; a torn publish would mismatch the recorded one.
                    recomputed = _digest(
                        snapshot.synopsis, snapshot.length, snapshot.guarantee
                    )
                    assert recomputed == snapshot.digest
                    results = store.batch(
                        [
                            Query("point", "hot", index=3),
                            Query("range_sum", "hot", lo=0, hi=100),
                            Query("point", "hot", index=200),
                        ]
                    )
                    versions = {r.version for r in results}
                    assert len(versions) == 1  # one snapshot per batch
                    seen.append((snapshot.version, snapshot.digest))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
            observed[slot] = seen

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(3)]
        for thread in threads:
            thread.start()
        for block in blocks:
            store.append("hot", block)
        stop.set()
        for thread in threads:
            thread.join()

        assert not errors, errors
        history = {
            (entry["version"]): entry["digest"] for entry in store.history()
        }
        for seen in observed.values():
            assert seen, "reader made no observations"
            versions = [version for version, _ in seen]
            assert versions == sorted(versions)  # monotone per reader
            for version, digest in seen:
                assert history[version] == digest
        assert store.snapshot("hot").version == 1 + len(blocks)

    def test_appends_to_different_series_do_not_interfere(self):
        rng = np.random.default_rng(3)
        store = ShardedSynopsisStore(shards=4)
        store.create("a", rng.normal(0, 1, 100), budget=16, base_leaves=8)
        store.create("b", rng.normal(5, 1, 100), budget=16, base_leaves=8)
        errors: list[BaseException] = []

        def writer(name: str) -> None:
            try:
                for _ in range(10):
                    store.append(name, rng.normal(0, 1, 2))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(n,)) for n in "ab"]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        assert store.snapshot("a").version == 11
        assert store.snapshot("b").version == 11


class TestReconstructionCache:
    def test_hit_miss_counters(self):
        store = ShardedSynopsisStore(cache_entries=8, segment_leaves=8)
        store.create("s", np.arange(64.0), budget=64, base_leaves=8)
        store.point("s", 0)  # miss: builds segment 0
        store.point("s", 3)  # hit: same segment
        store.point("s", 9)  # miss: segment 1
        counters = store.counters()
        assert counters["cache_misses"] == 2
        assert counters["cache_hits"] == 1
        assert counters["point_queries"] == 3

    def test_append_invalidates_and_version_keys_miss(self):
        store = ShardedSynopsisStore(cache_entries=8, segment_leaves=8)
        store.create("s", np.arange(30.0), budget=32, base_leaves=4)
        store.point("s", 2)
        assert store.counters()["cache_entries"] == 1
        store.append("s", [99.0])
        assert store.counters()["cache_entries"] == 0  # eager purge
        store.point("s", 2)  # rebuilt under the new version key
        assert store.counters()["cache_misses"] == 2

    def test_eviction_under_small_budget_still_answers_correctly(self):
        store = ShardedSynopsisStore(cache_entries=2, segment_leaves=4)
        data = np.arange(64.0)
        store.create("s", data, budget=64, base_leaves=4)
        synopsis = store.snapshot("s").synopsis
        for index in [0, 10, 20, 30, 40, 50, 60, 5, 15]:
            assert store.point("s", index) == pytest.approx(
                synopsis.point_query(index), abs=1e-9
            )
        counters = store.counters()
        assert counters["cache_evictions"] >= 1
        assert counters["cache_entries"] <= 2

    def test_cache_rejects_bad_config(self):
        with pytest.raises(InvalidInputError):
            ReconstructionCache(max_entries=0)
        with pytest.raises(InvalidInputError):
            ReconstructionCache(segment_leaves=3)


class TestStoreApi:
    def test_unknown_series_lists_available_names(self):
        store = ShardedSynopsisStore()
        store.create("known", np.arange(16.0), budget=8, base_leaves=4)
        with pytest.raises(ReproError, match=r"known"):
            store.snapshot("missing")
        with pytest.raises(ReproError, match=r"missing"):
            store.append("missing", [1.0])

    def test_batch_validates_queries(self):
        store = ShardedSynopsisStore()
        store.create("s", np.arange(16.0), budget=8, base_leaves=4)
        with pytest.raises(InvalidInputError):
            store.batch([Query("point", "s")])  # no index
        with pytest.raises(InvalidInputError):
            store.batch([Query("range_sum", "s", lo=3)])  # no hi
        with pytest.raises(InvalidInputError):
            store.batch([Query("median", "s", index=1)])
        with pytest.raises(InvalidInputError):
            store.batch([Query("point", "s", index=16)])  # out of range
        with pytest.raises(InvalidInputError):
            store.batch([Query("range_sum", "s", lo=5, hi=4)])

    def test_report_and_membership(self):
        store = ShardedSynopsisStore()
        store.create("s", np.arange(30.0), budget=16, base_leaves=4)
        store.append("s", [1.0, 2.0])  # fits the 32-leaf buffer
        assert "s" in store and "t" not in store
        assert len(store) == 1
        (row,) = store.report()
        assert row["series"] == "s"
        assert row["version"] == 2
        assert row["length"] == 32
        assert row["rebuild_mode"] == "incremental"

    def test_sharding_is_deterministic_and_spreads(self):
        store = ShardedSynopsisStore(shards=4)
        names = [f"series-{i}" for i in range(32)]
        shards = [store._shard_of(name) for name in names]
        assert shards == [store._shard_of(name) for name in names]
        assert len(set(shards)) > 1

    def test_save_load_round_trip(self, tmp_path):
        rng = np.random.default_rng(9)
        store = ShardedSynopsisStore(shards=2, cache_entries=16, segment_leaves=16)
        store.create("g", rng.normal(10, 2, 100), tier="greedy", budget=32,
                     base_leaves=8)
        store.create("d", rng.normal(5, 1, 40), tier="dp", epsilon=1.5,
                     subtree_leaves=8)
        store.append("g", rng.normal(10, 2, 10))
        path = tmp_path / "store.json"
        store.save(path)
        loaded = ShardedSynopsisStore.load(path)
        assert loaded.names() == ["d", "g"]
        for name in loaded.names():
            assert loaded.snapshot(name).digest == store.snapshot(name).digest
            assert loaded.snapshot(name).version == store.snapshot(name).version
        assert loaded.point("g", 7) == pytest.approx(store.point("g", 7))
        # A post-load append works (cold caches force one full rebuild)
        # and matches the original store's incremental result exactly.
        block = rng.normal(10, 2, 5)
        reloaded_version = loaded.append("g", block)
        original_version = store.append("g", block)
        assert reloaded_version.stats.mode == "full"
        assert original_version.stats.mode == "incremental"
        assert reloaded_version.digest == original_version.digest

    def test_digest_reports_compare_clean_across_modes(self):
        rng = np.random.default_rng(21)
        initial = rng.normal(0, 4, 90)
        blocks = [rng.normal(0, 4, 7) for _ in range(3)]
        incremental = ShardedSynopsisStore()
        scratch = ShardedSynopsisStore()
        incremental.create("s", initial, budget=24, base_leaves=8)
        scratch.create("s", initial, budget=24, base_leaves=8)
        for block in blocks:
            incremental.append("s", block)
            scratch.append("s", block, full_rebuild=True)
        mismatches = compare_reports(
            incremental.digest_report(label="incremental"),
            scratch.digest_report(label="scratch"),
        )
        assert mismatches == []
