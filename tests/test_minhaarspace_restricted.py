"""Tests for the restricted-synopsis MinHaarSpace variant."""

import numpy as np
import pytest

from repro.algos.minhaarspace import (
    combine_rows_restricted,
    leaf_row,
    min_haar_space,
    min_haar_space_restricted,
)
from repro.exceptions import InfeasibleErrorBound

from tests._reference import brute_force_min_restricted_size

PAPER_DATA = np.array([5, 5, 0, 26, 1, 3, 14, 2], dtype=float)


def random_data(n, seed, high=60):
    return np.random.default_rng(seed).integers(0, high, size=n).astype(float)


class TestCombineRestricted:
    def test_zero_choice_only_when_coefficient_snaps_to_zero(self):
        left = leaf_row(10.0, 2.0, 1.0)
        right = leaf_row(10.0, 2.0, 1.0)
        row = combine_rows_restricted(left, right, 0, 2.0, 1.0)
        count, error = row.entry(10)
        assert count == 0 and error == 0.0

    def test_keep_choice_bridges_distant_children(self):
        left = leaf_row(0.0, 1.0, 1.0)
        right = leaf_row(10.0, 1.0, 1.0)
        # True coefficient is (0 - 10)/2 = -5.
        row = combine_rows_restricted(left, right, -5, 1.0, 1.0)
        count, error = row.entry(5)
        assert count == 1 and error == 0.0

    def test_wrong_coefficient_cannot_bridge(self):
        left = leaf_row(0.0, 1.0, 1.0)
        right = leaf_row(10.0, 1.0, 1.0)
        with pytest.raises(InfeasibleErrorBound):
            combine_rows_restricted(left, right, -1, 1.0, 1.0)

    def test_union_domain_keeps_infeasible_holes_explicit(self):
        # z=0 band and z=c band can be disjoint; entries between them must
        # be marked infeasible, not interpolated.
        left = leaf_row(0.0, 1.0, 1.0)
        right = leaf_row(20.0, 1.0, 1.0)
        row = combine_rows_restricted(left, right, -10, 1.0, 1.0)
        count, error = row.entry(10)  # the z=c band
        assert count == 1 and np.isfinite(error)


class TestRestrictedSolver:
    def test_error_bound_respected(self):
        for epsilon in (2.0, 5.0, 13.0):
            solution = min_haar_space_restricted(PAPER_DATA, epsilon, 0.25)
            assert solution.synopsis.max_abs_error(PAPER_DATA) <= epsilon + 1e-9
            assert solution.synopsis.size == solution.size

    @pytest.mark.parametrize("seed", range(4))
    def test_never_beats_unrestricted(self, seed):
        data = random_data(16, seed)
        for epsilon in (5.0, 10.0, 25.0):
            restricted = min_haar_space_restricted(data, epsilon, 0.25)
            unrestricted = min_haar_space(data, epsilon, 0.25)
            assert restricted.size >= unrestricted.size

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bruteforce_within_quantization(self, seed):
        data = random_data(8, seed)
        for epsilon in (5.0, 10.0, 20.0):
            solution = min_haar_space_restricted(data, epsilon, 0.25)
            exact = brute_force_min_restricted_size(data, epsilon)
            assert exact <= solution.size <= exact + 1

    def test_retained_values_are_snapped_coefficients(self):
        from repro.wavelet.transform import haar_transform

        data = random_data(16, seed=9)
        delta = 0.5
        solution = min_haar_space_restricted(data, 8.0, delta)
        coefficients = haar_transform(data)
        for node, value in solution.synopsis.coefficients.items():
            snapped = round(float(coefficients[node]) / delta) * delta
            assert value == pytest.approx(snapped, abs=1e-9)

    def test_size_monotone_in_epsilon(self):
        data = random_data(32, seed=10, high=200)
        sizes = [
            min_haar_space_restricted(data, eps, 1.0).size for eps in (5, 15, 40, 100)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_huge_epsilon_needs_nothing(self):
        solution = min_haar_space_restricted(PAPER_DATA, 100.0, 1.0)
        assert solution.size == 0

    def test_single_point(self):
        solution = min_haar_space_restricted([42.0], 1.0, 1.0)
        assert solution.size == 1
