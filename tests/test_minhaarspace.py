"""Tests for the MinHaarSpace dual DP and its row algebra."""

import numpy as np
import pytest

from repro.algos.minhaarspace import (
    combine_rows,
    compute_subtree_rows,
    finalize_root,
    leaf_row,
    min_haar_space,
    traceback_subtree,
)
from repro.exceptions import InfeasibleErrorBound, InvalidInputError

from tests._reference import brute_force_min_restricted_size

PAPER_DATA = np.array([5, 5, 0, 26, 1, 3, 14, 2], dtype=float)


class TestLeafRow:
    def test_domain_covers_epsilon_band(self):
        row = leaf_row(10.0, epsilon=3.0, delta=1.0)
        assert row.start == 7 and row.end == 13
        assert row.counts.tolist() == [0] * 7
        np.testing.assert_allclose(row.errors, [3, 2, 1, 0, 1, 2, 3])

    def test_non_integer_grid(self):
        row = leaf_row(10.0, epsilon=1.0, delta=0.4)
        values = (np.arange(row.start, row.end + 1)) * 0.4
        assert np.all(np.abs(values - 10.0) <= 1.0 + 1e-9)

    def test_too_coarse_quantization_is_infeasible(self):
        with pytest.raises(InfeasibleErrorBound):
            leaf_row(10.5, epsilon=0.2, delta=1.0)

    def test_validation(self):
        with pytest.raises(InvalidInputError):
            leaf_row(1.0, epsilon=-1.0, delta=1.0)
        with pytest.raises(InvalidInputError):
            leaf_row(1.0, epsilon=1.0, delta=0.0)

    def test_entry_lookup(self):
        row = leaf_row(10.0, epsilon=2.0, delta=1.0)
        assert row.entry(10) == (0, 0.0)
        with pytest.raises(InvalidInputError):
            row.entry(100)

    def test_serialized_size_scales_with_domain(self):
        narrow = leaf_row(10.0, epsilon=1.0, delta=1.0)
        wide = leaf_row(10.0, epsilon=8.0, delta=1.0)
        assert wide.serialized_size() > narrow.serialized_size()


class TestCombine:
    def test_equal_children_need_no_coefficient(self):
        left = leaf_row(10.0, 2.0, 1.0)
        right = leaf_row(10.0, 2.0, 1.0)
        row = combine_rows(left, right, 2.0, 1.0)
        count, error = row.entry(10)
        assert count == 0 and error == 0.0

    def test_differing_children_cost_one(self):
        left = leaf_row(0.0, 1.0, 1.0)
        right = leaf_row(10.0, 1.0, 1.0)
        row = combine_rows(left, right, 1.0, 1.0)
        count, error = row.entry(5)
        assert count == 1 and error == 0.0

    def test_domain_is_midpoint_band(self):
        left = leaf_row(0.0, 2.0, 1.0)
        right = leaf_row(10.0, 2.0, 1.0)
        row = combine_rows(left, right, 2.0, 1.0)
        assert row.start == 3 and row.end == 7  # mean 5 ± 2

    def test_choice_traceback_consistency(self):
        left = leaf_row(4.0, 3.0, 1.0)
        right = leaf_row(8.0, 3.0, 1.0)
        row = combine_rows(left, right, 3.0, 1.0)
        for offset, v in enumerate(range(row.start, row.end + 1)):
            vl = int(row.choices[offset])
            vr = 2 * v - vl
            assert left.start <= vl <= left.end
            assert right.start <= vr <= right.end


class TestMinHaarSpace:
    def test_error_bound_respected(self):
        for epsilon in (1.0, 3.0, 7.0, 15.0):
            solution = min_haar_space(PAPER_DATA, epsilon, delta=0.5)
            assert solution.max_error <= epsilon + 1e-9
            assert solution.synopsis.max_abs_error(PAPER_DATA) == pytest.approx(
                solution.max_error, abs=1e-9
            )

    def test_size_matches_synopsis(self):
        solution = min_haar_space(PAPER_DATA, 5.0, delta=0.5)
        assert solution.synopsis.size == solution.size

    def test_size_monotone_in_epsilon(self):
        rng = np.random.default_rng(11)
        data = rng.integers(0, 200, size=32).astype(float)
        sizes = [min_haar_space(data, e, 1.0).size for e in (5, 10, 20, 40, 100)]
        assert sizes == sorted(sizes, reverse=True)

    def test_huge_epsilon_needs_nothing(self):
        solution = min_haar_space(PAPER_DATA, 100.0, delta=1.0)
        assert solution.size == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_beats_or_matches_restricted_bruteforce(self, seed):
        # Unrestricted synopses are at least as compact as the best
        # restricted subset for the same error bound.
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 40, size=8).astype(float)
        for epsilon in (4.0, 8.0, 16.0):
            dp_size = min_haar_space(data, epsilon, delta=0.25).size
            restricted = brute_force_min_restricted_size(data, epsilon)
            assert dp_size <= restricted

    def test_dual_consistency(self):
        # Re-solving at the achieved error cannot need more coefficients.
        solution = min_haar_space(PAPER_DATA, 6.0, delta=0.5)
        again = min_haar_space(PAPER_DATA, solution.max_error, delta=0.5)
        assert again.size <= solution.size

    def test_single_point_dataset(self):
        solution = min_haar_space([42.0], epsilon=1.0, delta=1.0)
        assert solution.size == 1
        assert solution.synopsis.point_query(0) == pytest.approx(42.0)
        free = min_haar_space([0.5], epsilon=1.0, delta=1.0)
        assert free.size == 0

    def test_two_point_dataset(self):
        solution = min_haar_space([10.0, 4.0], epsilon=1.0, delta=1.0)
        approx = solution.synopsis.reconstruct()
        assert np.max(np.abs(approx - [10.0, 4.0])) <= 1.0 + 1e-9

    def test_finer_delta_never_worse(self):
        rng = np.random.default_rng(13)
        data = rng.integers(0, 100, size=16).astype(float)
        coarse = min_haar_space(data, 10.0, delta=5.0)
        fine = min_haar_space(data, 10.0, delta=0.5)
        assert fine.size <= coarse.size

    def test_rejects_bad_length(self):
        with pytest.raises(InvalidInputError):
            min_haar_space([1.0, 2.0, 3.0], 1.0, 1.0)


class TestSubtreeRowsAndTraceback:
    def test_rows_compose_like_full_run(self):
        # Rows computed over the whole tree at once equal rows computed by
        # splitting into two sub-trees and combining their root rows —
        # the associativity that makes the Section 4 framework correct.
        epsilon, delta = 6.0, 1.0
        leaves = [leaf_row(v, epsilon, delta) for v in PAPER_DATA]
        whole = compute_subtree_rows(leaves, epsilon, delta)

        left = compute_subtree_rows(leaves[:4], epsilon, delta)
        right = compute_subtree_rows(leaves[4:], epsilon, delta)
        top = combine_rows(left[1], right[1], epsilon, delta)

        assert top.start == whole[1].start
        np.testing.assert_array_equal(top.counts, whole[1].counts)
        np.testing.assert_allclose(top.errors, whole[1].errors)

    def test_traceback_produces_claimed_cost(self):
        epsilon, delta = 5.0, 0.5
        leaves = [leaf_row(v, epsilon, delta) for v in PAPER_DATA]
        rows = compute_subtree_rows(leaves, epsilon, delta)
        count, error, chosen = finalize_root(rows[1], epsilon, delta)
        assignments, leaf_incomings = traceback_subtree(rows, chosen, delta)
        stored = len(assignments) + (1 if chosen != 0 else 0)
        assert stored == count
        # Every leaf's incoming value reconstructs within epsilon.
        reconstructed = np.array(leaf_incomings, dtype=float) * delta
        assert np.max(np.abs(reconstructed - PAPER_DATA)) <= epsilon + 1e-9

    def test_single_leaf_subtree(self):
        row = leaf_row(3.0, 1.0, 1.0)
        rows = compute_subtree_rows([row], 1.0, 1.0)
        assignments, incomings = traceback_subtree(rows, 3, 1.0)
        assert assignments == {} and incomings == [3]
