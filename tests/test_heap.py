"""Unit tests for the addressable min-heap."""

import random

import pytest

from repro.algos.heap import AddressableMinHeap


class TestBasicOperations:
    def test_push_pop_orders_by_priority(self):
        heap = AddressableMinHeap()
        heap.push(10, 3.0)
        heap.push(20, 1.0)
        heap.push(30, 2.0)
        assert heap.pop() == (20, 1.0)
        assert heap.pop() == (30, 2.0)
        assert heap.pop() == (10, 3.0)

    def test_ties_break_on_item_id(self):
        heap = AddressableMinHeap()
        heap.push(5, 1.0)
        heap.push(3, 1.0)
        heap.push(4, 1.0)
        assert [heap.pop()[0] for _ in range(3)] == [3, 4, 5]

    def test_peek_does_not_remove(self):
        heap = AddressableMinHeap()
        heap.push(1, 2.0)
        assert heap.peek() == (1, 2.0)
        assert len(heap) == 1

    def test_contains_and_len(self):
        heap = AddressableMinHeap()
        assert len(heap) == 0
        heap.push(7, 1.0)
        assert 7 in heap and 8 not in heap
        assert len(heap) == 1

    def test_empty_pop_and_peek_raise(self):
        heap = AddressableMinHeap()
        with pytest.raises(IndexError):
            heap.pop()
        with pytest.raises(IndexError):
            heap.peek()

    def test_duplicate_push_rejected(self):
        heap = AddressableMinHeap()
        heap.push(1, 1.0)
        with pytest.raises(ValueError):
            heap.push(1, 2.0)

    def test_priority_lookup(self):
        heap = AddressableMinHeap()
        heap.push(1, 4.5)
        assert heap.priority(1) == 4.5
        with pytest.raises(KeyError):
            heap.priority(2)


class TestUpdates:
    def test_decrease_key_moves_to_front(self):
        heap = AddressableMinHeap()
        heap.push(1, 10.0)
        heap.push(2, 5.0)
        heap.update(1, 1.0)
        assert heap.pop() == (1, 1.0)

    def test_increase_key_moves_back(self):
        heap = AddressableMinHeap()
        heap.push(1, 1.0)
        heap.push(2, 5.0)
        heap.update(1, 10.0)
        assert heap.pop() == (2, 5.0)

    def test_update_missing_raises(self):
        heap = AddressableMinHeap()
        with pytest.raises(KeyError):
            heap.update(1, 1.0)

    def test_push_or_update(self):
        heap = AddressableMinHeap()
        heap.push_or_update(1, 5.0)
        heap.push_or_update(1, 2.0)
        assert heap.pop() == (1, 2.0)

    def test_remove_middle_item(self):
        heap = AddressableMinHeap()
        for i, p in enumerate([5.0, 3.0, 8.0, 1.0]):
            heap.push(i, p)
        heap.remove(1)
        assert 1 not in heap
        assert [heap.pop()[0] for _ in range(3)] == [3, 0, 2]

    def test_remove_missing_raises(self):
        heap = AddressableMinHeap()
        with pytest.raises(KeyError):
            heap.remove(42)


class TestUpdateMany:
    def test_empty_batch_is_noop(self):
        heap = AddressableMinHeap()
        heap.push(1, 1.0)
        heap.update_many([])
        assert heap.peek() == (1, 1.0)

    def test_small_batch_matches_sequential_updates(self):
        heap = AddressableMinHeap()
        for i in range(64):
            heap.push(i, float(i))
        heap.update_many([(5, 100.0), (60, -0.5)])
        assert heap.pop() == (60, -0.5)
        assert heap.priority(5) == 100.0

    def test_large_batch_takes_heapify_path(self):
        rng = random.Random(7)
        heap = AddressableMinHeap()
        reference = {}
        for i in range(100):
            p = rng.uniform(0, 100)
            heap.push(i, p)
            reference[i] = p
        batch = [(i, rng.uniform(0, 100)) for i in range(100)]
        heap.update_many(batch)
        reference.update(dict(batch))
        drained = [heap.pop() for _ in range(100)]
        expected = sorted(reference.items(), key=lambda kv: (kv[1], kv[0]))
        assert drained == [(i, p) for i, p in expected]

    def test_duplicate_ids_last_wins(self):
        heap = AddressableMinHeap()
        for i in range(4):
            heap.push(i, 10.0)
        heap.update_many([(2, 5.0), (2, 1.0), (0, 3.0), (1, 2.0), (3, 4.0)])
        assert heap.pop() == (2, 1.0)
        assert heap.pop() == (1, 2.0)

    def test_missing_item_raises(self):
        heap = AddressableMinHeap()
        heap.push(1, 1.0)
        with pytest.raises(KeyError):
            heap.update_many([(1, 2.0), (99, 3.0)])

    def test_batched_and_sequential_agree_randomized(self):
        rng = random.Random(13)
        a = AddressableMinHeap()
        b = AddressableMinHeap()
        for i in range(200):
            p = rng.uniform(0, 100)
            a.push(i, p)
            b.push(i, p)
        for _ in range(20):
            k = rng.randrange(1, 150)
            ids = rng.sample(range(200), k)
            batch = [(i, rng.uniform(0, 100)) for i in ids if i in a]
            a.update_many(batch)
            for item, priority in batch:
                b.update(item, priority)
            for _ in range(rng.randrange(0, 5)):
                if len(a):
                    assert a.pop() == b.pop()
        while len(a):
            assert a.pop() == b.pop()
        assert len(b) == 0


class TestRandomizedAgainstReference:
    def test_matches_sorting_reference(self):
        rng = random.Random(42)
        heap = AddressableMinHeap()
        reference: dict[int, float] = {}
        next_id = 0
        for _ in range(2000):
            op = rng.random()
            if op < 0.5 or not reference:
                priority = rng.uniform(0, 100)
                heap.push(next_id, priority)
                reference[next_id] = priority
                next_id += 1
            elif op < 0.75:
                item = rng.choice(list(reference))
                priority = rng.uniform(0, 100)
                heap.update(item, priority)
                reference[item] = priority
            else:
                item, priority = heap.pop()
                expected = min(reference.items(), key=lambda kv: (kv[1], kv[0]))
                assert (item, priority) == (expected[0], expected[1])
                del reference[item]
        while reference:
            item, priority = heap.pop()
            expected = min(reference.items(), key=lambda kv: (kv[1], kv[0]))
            assert (item, priority) == (expected[0], expected[1])
            del reference[item]
        assert len(heap) == 0
