"""Tests for DGreedyAbs / DGreedyRel (Section 5) — including the paper's
headline quality claim: no degradation versus the centralized greedy."""

import math

import numpy as np
import pytest

from repro.algos.greedy_abs import greedy_abs, greedy_abs_order
from repro.algos.greedy_rel import greedy_rel
from repro.core.dgreedy import (
    _bucketized_histogram,
    _candidate_incoming_errors,
    d_greedy_abs,
    d_greedy_rel,
)
from repro.exceptions import InvalidInputError
from repro.mapreduce import SimulatedCluster
from repro.wavelet.transform import haar_transform


def uniform_data(n, seed=0, high=1000.0):
    return np.random.default_rng(seed).uniform(0, high, size=n)


class TestQualityClaim:
    """Figure 8b/9b: DGreedyAbs achieves the same max-abs as GreedyAbs."""

    @pytest.mark.parametrize("seed", range(5))
    def test_no_quality_degradation_uniform(self, seed):
        data = uniform_data(512, seed)
        budget = 64
        dist = d_greedy_abs(data, budget, base_leaves=64).max_abs_error(data)
        cent = greedy_abs(data, budget).max_abs_error(data)
        assert dist <= cent * 1.01 + 1e-9

    def test_no_quality_degradation_heavy_tailed(self):
        rng = np.random.default_rng(42)
        data = np.exp(rng.normal(5, 1.2, size=512))
        budget = 64
        dist = d_greedy_abs(data, budget, base_leaves=64).max_abs_error(data)
        cent = greedy_abs(data, budget).max_abs_error(data)
        assert dist <= cent * 1.01 + 1e-9

    @pytest.mark.parametrize("base_leaves", [16, 32, 128])
    def test_quality_stable_across_subtree_sizes(self, base_leaves):
        data = uniform_data(512, seed=3)
        budget = 64
        errors = d_greedy_abs(data, budget, base_leaves=base_leaves).max_abs_error(data)
        cent = greedy_abs(data, budget).max_abs_error(data)
        assert errors <= cent * 1.02 + 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_rel_no_quality_degradation(self, seed):
        rng = np.random.default_rng(seed)
        data = np.exp(rng.normal(3, 1.5, size=256))
        budget = 32
        dist = d_greedy_rel(data, budget, base_leaves=32).max_rel_error(data)
        cent = greedy_rel(data, budget).max_rel_error(data)
        assert dist <= cent * 1.01 + 1e-12

    def test_rel_degenerate_empty_synopsis(self):
        # With values >= 1 and S = 1, the empty synopsis already achieves
        # max-rel 1.0; the distributed algorithm must find it too (this is
        # the non-monotonicity case the cut-error refinement handles).
        data = uniform_data(256, seed=9) + 1.0
        dist = d_greedy_rel(data, 32, base_leaves=32)
        cent = greedy_rel(data, 32)
        assert cent.max_rel_error(data) == pytest.approx(1.0)
        assert dist.max_rel_error(data) <= 1.0 + 1e-12


class TestMechanics:
    def test_budget_respected(self):
        data = uniform_data(256, seed=1)
        for budget in (1, 8, 32, 128):
            synopsis = d_greedy_abs(data, budget, base_leaves=32)
            assert synopsis.size <= budget

    def test_claimed_error_matches_actual(self):
        data = uniform_data(512, seed=2)
        synopsis = d_greedy_abs(data, 64, base_leaves=64)
        assert synopsis.max_abs_error(data) == pytest.approx(
            synopsis.meta["claimed_error"], abs=1e-4
        )

    def test_candidate_count_is_min_r_b_plus_one(self):
        data = uniform_data(256, seed=3)
        # R = 256/32 = 8, B = 32 -> min(8,32)+1 = 9 candidates.
        synopsis = d_greedy_abs(data, 32, base_leaves=32)
        assert synopsis.meta["candidates"] == 9
        # B = 4 < R -> 5 candidates.
        synopsis = d_greedy_abs(data, 4, base_leaves=32)
        assert synopsis.meta["candidates"] == 5

    def test_job_structure(self):
        cluster = SimulatedCluster()
        data = uniform_data(256, seed=4)
        d_greedy_abs(data, 32, cluster, base_leaves=32)
        names = [job.job_name for job in cluster.log.jobs]
        assert names == ["dgreedy-averages", "dgreedy-histograms", "dgreedy-construct"]
        assert cluster.log.driver_seconds > 0

    def test_zero_budget(self):
        data = uniform_data(128, seed=5)
        synopsis = d_greedy_abs(data, 0, base_leaves=16)
        assert synopsis.size == 0

    def test_budget_larger_than_tree(self):
        data = uniform_data(64, seed=6)
        synopsis = d_greedy_abs(data, 64, base_leaves=8)
        assert synopsis.max_abs_error(data) == pytest.approx(0.0, abs=1e-9)

    def test_rejects_bad_input(self):
        with pytest.raises(InvalidInputError):
            d_greedy_abs([1.0, 2.0, 3.0], 1)
        with pytest.raises(InvalidInputError):
            d_greedy_abs(uniform_data(64), -1)
        with pytest.raises(InvalidInputError):
            d_greedy_abs(uniform_data(64), 4, bucket_width=0.0)

    def test_rel_sanity_bound_validated(self):
        with pytest.raises(InvalidInputError):
            d_greedy_rel(uniform_data(64), 8, sanity_bound=0.0)

    def test_base_leaves_clamped_to_data(self):
        data = uniform_data(64, seed=7)
        synopsis = d_greedy_abs(data, 8, base_leaves=1024)  # clamps to 32
        assert synopsis.size <= 8


class TestCandidateGeneration:
    def test_candidates_are_nested_suffixes(self):
        coeffs = haar_transform(uniform_data(8, seed=8))
        run = greedy_abs_order(coeffs)
        candidates = _candidate_incoming_errors(run, 8, budget=8)
        assert len(candidates) == 9
        # Candidate i retains the last i removals; suffixes are nested.
        for a, b in zip(candidates, candidates[1:]):
            assert set(a.retained) <= set(b.retained)
        assert candidates[0].retained == {}
        assert set(candidates[8].retained) == set(range(8))

    def test_incoming_errors_match_reconstruction(self):
        # Candidate i's incoming error at virtual leaf j must equal the
        # reconstruction error of leaf j using only the retained roots.
        data = uniform_data(8, seed=9)
        coeffs = haar_transform(data)
        run = greedy_abs_order(coeffs)
        candidates = _candidate_incoming_errors(run, 8, budget=8)
        from repro.wavelet.error_tree import reconstruct_value

        for candidate in candidates:
            for leaf in range(8):
                approx = reconstruct_value(candidate.retained, leaf, 8)
                exact = reconstruct_value(coeffs, leaf, 8)
                assert candidate.incoming[leaf] == pytest.approx(approx - exact)

    def test_budget_limits_candidates(self):
        coeffs = haar_transform(uniform_data(16, seed=10))
        run = greedy_abs_order(coeffs)
        candidates = _candidate_incoming_errors(run, 16, budget=3)
        assert len(candidates) == 4


class TestBucketizedHistogram:
    def _run(self, data, incoming=0.0):
        coeffs = haar_transform(data)
        coeffs[0] = 0.0
        return greedy_abs_order(
            coeffs, initial_errors=[incoming] * len(data), include_average=False
        )

    def test_counts_cover_every_removal(self):
        run = self._run(uniform_data(16, seed=11))
        histogram, _ = _bucketized_histogram(run, bucket_width=1.0)
        assert sum(count for _, count, _ in histogram) == len(run.removals)

    def test_buckets_are_strictly_increasing(self):
        run = self._run(uniform_data(16, seed=12))
        histogram, _ = _bucketized_histogram(run, bucket_width=1.0)
        errors = [error for error, _, _ in histogram]
        assert errors == sorted(errors)
        assert len(set(errors)) == len(errors)

    def test_wider_buckets_compact_more(self):
        run = self._run(uniform_data(64, seed=13))
        fine, _ = _bucketized_histogram(run, bucket_width=1e-9)
        coarse, _ = _bucketized_histogram(run, bucket_width=100.0)
        assert len(coarse) < len(fine)

    def test_final_error_is_last_actual(self):
        run = self._run(uniform_data(16, seed=14), incoming=5.0)
        _, final = _bucketized_histogram(run, bucket_width=1.0)
        assert final == run.removals[-1].error_after

    def test_cut_errors_bounded_by_bucket(self):
        # A bucket's cut error is an *actual* state error and can sit far
        # below the bucket's running max, but never above it... except for
        # the very first bucket whose cut is the initial incoming state.
        run = self._run(uniform_data(32, seed=15), incoming=3.0)
        histogram, _ = _bucketized_histogram(run, bucket_width=0.5)
        for bucket_error, _, cut_error in histogram[1:]:
            assert cut_error <= bucket_error + 0.5 + 1e-9


class TestCommunicationCompression:
    def test_histograms_cheaper_than_node_lists(self):
        # The point of ErrHistGreedyAbs: job-1 shuffle volume stays far
        # below one record per (node, candidate) pair.
        # Moderate buckets (the paper's 132.44-vs-132.45 example) plus the
        # running-max compaction collapse most removals into few records.
        data = uniform_data(512, seed=16)
        cluster = SimulatedCluster()
        synopsis = d_greedy_abs(data, 64, cluster, base_leaves=64, bucket_width=50.0)
        histogram_job = cluster.log.jobs[1]
        candidates = synopsis.meta["candidates"]
        naive_records = 511 * candidates  # every node for every candidate
        assert histogram_job.map_output_records < naive_records / 4
        # ... without visibly hurting quality at this bucket width.
        from repro.algos.greedy_abs import greedy_abs

        cent = greedy_abs(data, 64).max_abs_error(data)
        assert synopsis.max_abs_error(data) <= cent * 1.10

    def test_wider_buckets_reduce_shuffle(self):
        data = uniform_data(512, seed=17)
        fine_cluster = SimulatedCluster()
        d_greedy_abs(data, 64, fine_cluster, base_leaves=64, bucket_width=1e-9)
        coarse_cluster = SimulatedCluster()
        d_greedy_abs(data, 64, coarse_cluster, base_leaves=64, bucket_width=50.0)
        fine_bytes = fine_cluster.log.jobs[1].shuffle_bytes
        coarse_bytes = coarse_cluster.log.jobs[1].shuffle_bytes
        assert coarse_bytes < fine_bytes
