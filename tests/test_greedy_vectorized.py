"""Differential tests: vectorized greedy engines vs the scalar oracle.

The vectorized engines (:mod:`repro.algos.greedy_abs`,
:mod:`repro.algos.greedy_rel`) must reproduce the scalar reference
engines *exactly* — the same removal sequence, removal for removal,
with bit-identical ``(node, value, error_after)`` tuples and the same
deterministic tie-break on node id.  Anything less silently changes
which coefficients every distributed algorithm retains.

Also hosts the perf-regression guard for ``_remove_average``: the old
implementation walked all ``m`` nodes with one ``if j in heap`` +
``heap.update`` each, which made the (at most once per run) average
removal orders of magnitude slower than a detail removal at 2^14.
"""

import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algos.greedy_abs import GreedyAbsTree, greedy_abs_order
from repro.algos.greedy_rel import GreedyRelTree, greedy_rel_order

from tests._reference import (
    ScalarGreedyAbsTree,
    ScalarGreedyRelTree,
    scalar_greedy_abs_order,
    scalar_greedy_rel_order,
)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


def _pow2_lists(elements, max_log=6):
    return st.integers(min_value=0, max_value=max_log).flatmap(
        lambda log_n: st.lists(elements, min_size=1 << log_n, max_size=1 << log_n)
    )


def assert_runs_identical(vec_run, ref_run):
    """Exact (bit-level) equality of two GreedyRun removal sequences."""
    assert vec_run.initial_error == ref_run.initial_error
    assert len(vec_run.removals) == len(ref_run.removals)
    for step, (got, want) in enumerate(zip(vec_run.removals, ref_run.removals)):
        assert got.node == want.node, f"step {step}: node {got.node} != {want.node}"
        assert got.value == want.value, f"step {step} (node {got.node})"
        assert got.error_after == want.error_after, f"step {step} (node {got.node})"


class TestAbsDifferential:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        coeffs=_pow2_lists(finite),
        use_errors=st.booleans(),
        include_average=st.booleans(),
        data=st.data(),
    )
    def test_matches_scalar_reference(self, coeffs, use_errors, include_average, data):
        errors = None
        if use_errors:
            errors = data.draw(
                st.lists(finite, min_size=len(coeffs), max_size=len(coeffs))
            )
        vec = greedy_abs_order(coeffs, errors, include_average)
        ref = scalar_greedy_abs_order(coeffs, errors, include_average)
        assert_runs_identical(vec, ref)

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(coeffs=_pow2_lists(finite, max_log=5))
    def test_stepwise_state_matches(self, coeffs):
        vec = GreedyAbsTree(coeffs)
        ref = ScalarGreedyAbsTree(coeffs)
        assert vec.current_error() == ref.current_error()
        while len(ref):
            assert vec.remove_next() == ref.remove_next()
            assert vec.current_error() == ref.current_error()
        assert len(vec) == 0

    def test_ties_break_on_node_id(self):
        # All-equal coefficients force heavy priority ties at every step.
        vec = greedy_abs_order([1.0] * 32)
        ref = scalar_greedy_abs_order([1.0] * 32)
        assert_runs_identical(vec, ref)

    def test_large_random_tree_exact(self):
        rng = np.random.default_rng(11)
        coeffs = rng.normal(0, 100, 1 << 10)
        errors = rng.normal(0, 5, 1 << 10)
        assert_runs_identical(
            greedy_abs_order(coeffs, errors), scalar_greedy_abs_order(coeffs, errors)
        )


class TestRelDifferential:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        coeffs=_pow2_lists(finite),
        sanity_bound=st.sampled_from([1e-6, 0.5, 1.0, 100.0]),
        use_errors=st.booleans(),
        include_average=st.booleans(),
        data=st.data(),
    )
    def test_matches_scalar_reference(
        self, coeffs, sanity_bound, use_errors, include_average, data
    ):
        m = len(coeffs)
        leaves = data.draw(st.lists(finite, min_size=m, max_size=m))
        errors = None
        if use_errors:
            errors = data.draw(st.lists(finite, min_size=m, max_size=m))
        vec = greedy_rel_order(coeffs, leaves, sanity_bound, errors, include_average)
        ref = scalar_greedy_rel_order(coeffs, leaves, sanity_bound, errors, include_average)
        assert_runs_identical(vec, ref)

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(coeffs=_pow2_lists(finite, max_log=5), data=st.data())
    def test_stepwise_state_matches(self, coeffs, data):
        m = len(coeffs)
        leaves = data.draw(st.lists(finite, min_size=m, max_size=m))
        vec = GreedyRelTree(coeffs, leaves)
        ref = ScalarGreedyRelTree(coeffs, leaves)
        assert vec.current_error() == ref.current_error()
        while len(ref):
            assert vec.remove_next() == ref.remove_next()
            assert vec.current_error() == ref.current_error()
        assert len(vec) == 0

    def test_zero_leaves_hit_sanity_bound(self):
        # All denominators fall back to S; exercises the tiny-bound path.
        rng = np.random.default_rng(5)
        coeffs = rng.normal(0, 1, 64)
        zeros = np.zeros(64)
        for s in (1e-6, 1.0):
            assert_runs_identical(
                greedy_rel_order(coeffs, zeros, s), scalar_greedy_rel_order(coeffs, zeros, s)
            )

    def test_large_random_tree_exact(self):
        rng = np.random.default_rng(17)
        coeffs = rng.normal(0, 100, 1 << 10)
        leaves = rng.normal(0, 50, 1 << 10)
        errors = rng.normal(0, 5, 1 << 10)
        assert_runs_identical(
            greedy_rel_order(coeffs, leaves, 0.25, errors),
            scalar_greedy_rel_order(coeffs, leaves, 0.25, errors),
        )


class TestAverageRemovalPerformance:
    def test_average_removal_bounded_relative_to_details(self):
        """One average removal must cost no more than 256 detail removals.

        The average removal recomputes every alive node's MA, but as one
        vectorized pass — measured ~1-2% of the bound below.  The old
        per-node ``if j in heap: heap.update(...)`` loop costs several
        times the bound, so a reintroduced O(m·log m) scalar loop fails
        this test with a wide margin on either side.
        """
        m = 1 << 14
        rng = np.random.default_rng(3)
        coeffs = rng.normal(0, 10, m)

        tree = GreedyAbsTree(coeffs)
        c0 = coeffs[0]
        tree._valive[0] = False
        tree._alive_count -= 1
        start = time.perf_counter()
        tree._remove_average(c0)
        average_time = time.perf_counter() - start

        detail_tree = GreedyAbsTree(coeffs, include_average=False)
        start = time.perf_counter()
        for _ in range(256):
            detail_tree.remove_next()
        detail_time = time.perf_counter() - start

        assert average_time < detail_time, (
            f"average removal took {average_time * 1e3:.2f} ms, over the bound of "
            f"256 detail removals ({detail_time * 1e3:.2f} ms)"
        )

    def test_average_removal_result_still_exact(self):
        rng = np.random.default_rng(4)
        coeffs = rng.normal(0, 10, 1 << 8)
        vec = GreedyAbsTree(coeffs)
        ref = ScalarGreedyAbsTree(coeffs)
        while len(ref):
            assert vec.remove_next() == ref.remove_next()


@pytest.mark.parametrize("include_average", [True, False])
def test_single_node_trees(include_average):
    assert_runs_identical(
        greedy_abs_order([3.5], include_average=include_average),
        scalar_greedy_abs_order([3.5], include_average=include_average),
    )
    assert_runs_identical(
        greedy_rel_order([3.5], [2.0], include_average=include_average),
        scalar_greedy_rel_order([3.5], [2.0], include_average=include_average),
    )
