"""Edge-case tests across modules: tiny inputs, boundary budgets, holes."""

import math

import numpy as np
import pytest

from repro.algos.greedy_abs import GreedyRun, Removal, greedy_abs
from repro.algos.minhaarspace import MRow, min_haar_space
from repro.core.dgreedy import _best_cut_over_thresholds, d_greedy_abs
from repro.core.dindirect import _EvaluateSynopsisJob, _LowerBoundJob
from repro.core.partitioning import dp_layers
from repro.exceptions import InvalidInputError
from repro.mapreduce import LocalRuntime, aligned_splits
from repro.wavelet.transform import haar_transform


class TestGreedyRunEdges:
    def test_best_cut_with_zero_budget(self):
        run = GreedyRun(
            removals=[Removal(1, 2.0, 5.0), Removal(0, 1.0, 3.0)], initial_error=0.0
        )
        step, error = run.best_cut(0)
        # Must cut at the end: nothing can be retained.
        assert step == 2 and error == 3.0

    def test_best_cut_with_empty_run(self):
        run = GreedyRun(removals=[], initial_error=1.5)
        assert run.best_cut(4) == (0, 1.5)

    def test_best_cut_budget_exceeding_removals(self):
        run = GreedyRun(removals=[Removal(1, 2.0, 5.0)], initial_error=0.0)
        step, error = run.best_cut(10)
        assert step == 0 and error == 0.0


class TestThresholdSweepEdges:
    def test_negative_base_budget_is_infeasible(self):
        error, threshold = _best_cut_over_thresholds({}, -1)
        assert math.isinf(error) and math.isinf(threshold)

    def test_zero_budget_keeps_nothing(self):
        subtrees = {
            0: {"buckets": [(5.0, 3, 1.0)], "final": 7.0},
            1: {"buckets": [(2.0, 2, 0.5)], "final": 4.0},
        }
        error, threshold = _best_cut_over_thresholds(subtrees, 0)
        assert error == 7.0  # max of final errors
        assert math.isinf(threshold)

    def test_sweep_prefers_non_monotone_improvement(self):
        # Retaining the high-error bucket moves subtree 0 to cut error 1.0,
        # improving on the "retain nothing" state.
        subtrees = {
            0: {"buckets": [(9.0, 1, 1.0)], "final": 9.0},
            1: {"buckets": [], "final": 2.0},
        }
        error, threshold = _best_cut_over_thresholds(subtrees, 1)
        assert error == 2.0 and threshold == 9.0

    def test_budget_cuts_off_partial_threshold(self):
        subtrees = {
            0: {"buckets": [(9.0, 5, 1.0)], "final": 9.0},
        }
        # Budget below the bucket count: cannot cross the threshold.
        error, threshold = _best_cut_over_thresholds(subtrees, 3)
        assert error == 9.0 and math.isinf(threshold)


class TestTinyInputs:
    def test_greedy_on_two_points(self):
        synopsis = greedy_abs([10.0, 4.0], 1)
        assert synopsis.size <= 1
        assert synopsis.max_abs_error([10.0, 4.0]) <= 7.0

    def test_dgreedy_on_four_points(self):
        data = np.array([1.0, 5.0, 9.0, 13.0])
        synopsis = d_greedy_abs(data, 2, base_leaves=2)
        assert synopsis.size <= 2

    def test_min_haar_space_two_points(self):
        solution = min_haar_space([0.0, 100.0], 1.0, 0.5)
        assert solution.size == 2

    def test_dp_layers_minimal_tree(self):
        layers = dp_layers(2, 1)
        assert len(layers) == 1
        assert layers[0].subtrees[0].root == 1


class TestMRowEdges:
    def test_entry_out_of_domain(self):
        row = MRow(
            start=5,
            counts=np.zeros(3, dtype=np.int32),
            errors=np.zeros(3),
            choices=np.zeros(3, dtype=np.int64),
        )
        assert row.entry(5) == (0, 0.0)
        assert row.entry(7) == (0, 0.0)
        with pytest.raises(InvalidInputError):
            row.entry(8)
        with pytest.raises(InvalidInputError):
            row.entry(4)

    def test_end_property(self):
        row = MRow(
            start=-2,
            counts=np.zeros(4, dtype=np.int32),
            errors=np.zeros(4),
            choices=np.zeros(4, dtype=np.int64),
        )
        assert row.end == 1
        assert len(row) == 4


class TestDIndirectBoundJobs:
    def test_lower_bound_job_finds_global_rank(self):
        data = np.array([5, 5, 0, 26, 1, 3, 14, 2], dtype=float)
        job = _LowerBoundJob(n=8, budget=2, split_size=4)
        result = LocalRuntime().run(job, aligned_splits(data, 4))
        bound = dict(result.output)["bound"]
        # |coefficients| = [7,2,4,3,0,13,1,6]; 3rd largest is 6.
        assert bound == pytest.approx(6.0)

    def test_evaluate_job_matches_direct_evaluation(self):
        data = np.random.default_rng(4).uniform(0, 100, size=64)
        coefficients = haar_transform(data)
        retained = {i: float(coefficients[i]) for i in (0, 1, 2, 5, 9)}
        job = _EvaluateSynopsisJob(64, retained, split_size=16)
        result = LocalRuntime().run(job, aligned_splits(data, 16))
        measured = max(err for _, err in result.output)
        from repro.wavelet.synopsis import WaveletSynopsis

        expected = WaveletSynopsis(64, retained).max_abs_error(data)
        assert measured == pytest.approx(expected, abs=1e-9)

    def test_evaluate_job_with_empty_synopsis(self):
        data = np.random.default_rng(5).uniform(0, 100, size=32)
        job = _EvaluateSynopsisJob(32, {}, split_size=8)
        result = LocalRuntime().run(job, aligned_splits(data, 8))
        measured = max(err for _, err in result.output)
        assert measured == pytest.approx(float(np.max(np.abs(data))))


class TestHWTopkEdges:
    def test_single_mapper_degenerates_gracefully(self):
        from repro.algos.conventional import conventional_synopsis
        from repro.core.conventional_dist import h_wtopk_synopsis

        data = np.random.default_rng(6).uniform(0, 100, size=64)
        synopsis = h_wtopk_synopsis(data, 8, block_size=64)  # one block
        expected = conventional_synopsis(data, 8)
        assert set(synopsis.coefficients) == set(expected.coefficients)

    def test_budget_larger_than_distinct_coefficients(self):
        from repro.core.conventional_dist import h_wtopk_synopsis

        data = np.full(16, 3.0)  # only c_0 is non-zero
        synopsis = h_wtopk_synopsis(data, 8, block_size=4)
        assert synopsis.coefficients == {0: pytest.approx(3.0)}
