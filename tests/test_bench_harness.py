"""Tests for the benchmark harness and reporting utilities."""

import numpy as np
import pytest

from repro.bench import (
    BenchSettings,
    format_table,
    format_value,
    measure_centralized,
    measure_distributed,
    print_table,
)
from repro.mapreduce import ClusterConfig, MemoryModel, SimulatedCluster


class TestReporting:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(float("nan")) == "-"
        assert format_value(0.0) == "0"
        assert format_value(12345.6) == "12,346"
        assert format_value(3.14159) == "3.14"
        assert format_value(0.0001234) == "0.0001234"
        assert format_value("text") == "text"
        assert format_value(7) == "7"

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        table = format_table(rows)
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert len({len(line) for line in lines[:2]}) == 1  # header == separator

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_explicit_columns(self):
        rows = [{"a": 1, "b": 2}]
        table = format_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_print_table(self, capsys):
        print_table("demo", [{"x": 1}])
        captured = capsys.readouterr().out
        assert "== demo ==" in captured and "x" in captured


class TestBenchSettings:
    def test_labels_follow_unit_scaling(self):
        settings = BenchSettings(unit=1 << 11)
        assert settings.label(1 << 11) == "2M"
        assert settings.label(1 << 12) == "4M"
        assert settings.label(1 << 16) == "64M"

    def test_cluster_overrides(self):
        settings = BenchSettings(cluster_config=ClusterConfig(map_slots=40))
        cluster = settings.cluster(map_slots=10)
        assert cluster.config.map_slots == 10
        assert settings.cluster_config.map_slots == 40

    def test_memory_model_scales_with_points(self):
        small = BenchSettings(centralized_memory_points=100).memory_model()
        large = BenchSettings(centralized_memory_points=1000).memory_model()
        assert large.budget_bytes == 10 * small.budget_bytes


class TestMeasurement:
    def test_distributed_measurement_resets_cluster(self):
        from repro.core import con_synopsis

        data = np.random.default_rng(0).uniform(0, 10, size=64)
        cluster = SimulatedCluster()
        # Pre-pollute the log; measure must reset it.
        cluster.log.driver_seconds = 99.0
        result = measure_distributed(
            "CON", 64, lambda c: con_synopsis(data, 8, c, split_size=16), cluster
        )
        assert result.seconds < 99.0
        assert result.jobs == 1
        assert result.extra["result"].size <= 8

    def test_centralized_measurement_times_and_returns(self):
        memory = MemoryModel(1000)
        result = measure_centralized(
            "toy", 8, lambda: sum(range(100)), memory, required_bytes=500
        )
        assert not result.oom
        assert result.seconds >= 0
        assert result.extra["result"] == 4950

    def test_centralized_measurement_oom(self):
        memory = MemoryModel(1000)
        result = measure_centralized(
            "toy", 8, lambda: 1 / 0, memory, required_bytes=2000
        )
        assert result.oom
        assert result.seconds is None

    def test_measurement_row_rendering(self):
        settings = BenchSettings(unit=1 << 11)
        from repro.bench import Measurement

        ok = Measurement(algorithm="x", n=1 << 12, seconds=1.5, error=2.0)
        assert ok.row(settings) == {
            "size": "4M",
            "algorithm": "x",
            "seconds": 1.5,
            "error": 2.0,
            "note": "",
        }
        oom = Measurement(algorithm="x", n=1 << 12, seconds=None, oom=True)
        assert oom.row(settings)["note"] == "OOM"
