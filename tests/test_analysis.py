"""Fixture self-tests for the invariant lint pack (``repro.analysis``).

Every rule family is exercised against inline source fixtures: one
snippet that must trigger the rule and one near-miss that must stay
clean.  Two fixtures replay real incidents from this repo's history:

* the ``_AverageJob``-defined-inside-a-function bug (an unpicklable job
  crashed the process-pool runtime) — PS001;
* the ``id()``-keyed probe map in the DIndirectHaar driver (an object
  identity used as a dict key, making replays allocation-dependent) —
  DT003.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import all_rules, analyze_paths, analyze_source
from repro.analysis.__main__ import main as analysis_main


def findings_for(source: str, path: str = "src/repro/algos/fixture.py") -> list[str]:
    """Rule ids reported for ``source`` placed at ``path``."""
    found = analyze_source(textwrap.dedent(source), path, all_rules())
    return [finding.rule for finding in found]


# ---------------------------------------------------------------------------
# Process safety (PS001 / PS002)
# ---------------------------------------------------------------------------


class TestProcessSafety:
    def test_ps001_average_job_closure_regression(self):
        # The original _AverageJob was defined inside _distributed_greedy;
        # pickling it for the process pool failed at runtime.
        source = """
            class MapReduceJob:
                pass

            def _distributed_greedy(data):
                class _AverageJob(MapReduceJob):
                    def map(self, split):
                        yield split.split_id, 0.0
                return _AverageJob()
        """
        assert "PS001" in findings_for(source)

    def test_ps001_module_level_job_is_clean(self):
        source = """
            class MapReduceJob:
                pass

            class _AverageJob(MapReduceJob):
                def map(self, split):
                    yield split.split_id, 0.0
        """
        assert "PS001" not in findings_for(source)

    def test_ps001_found_inside_try_blocks(self):
        source = """
            try:
                def factory():
                    class InnerJob(MapReduceJob):
                        pass
            except ImportError:
                pass
        """
        assert "PS001" in findings_for(source)

    def test_ps002_task_method_writing_self(self):
        source = """
            class CountingJob(MapReduceJob):
                def map(self, split):
                    self.seen = split.split_id
                    yield 0, 1
        """
        assert "PS002" in findings_for(source)

    def test_ps002_mutator_call_on_self_attribute(self):
        source = """
            class CollectingJob(MapReduceJob):
                def reduce(self, key, values):
                    self.results.append(key)
                    yield key, sum(values)
        """
        assert "PS002" in findings_for(source)

    def test_ps002_opt_out_via_process_safe_false(self):
        # Jobs that declare process_safe = False run in-process; mutating
        # driver-shared state is their documented contract.
        source = """
            class LayerJob(MapReduceJob):
                process_safe = False

                def map(self, split):
                    self.row_store[split.split_id] = 1
                    yield 0, 1
        """
        assert "PS002" not in findings_for(source)

    def test_ps002_init_may_assign_self(self):
        source = """
            class ConfiguredJob(MapReduceJob):
                def __init__(self, n):
                    self.n = n

                def map(self, split):
                    yield self.n, 1
        """
        assert "PS002" not in findings_for(source)


# ---------------------------------------------------------------------------
# Determinism (DT001 / DT002 / DT003)
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_dt001_set_attribute_iterated_while_yielding(self):
        # The H-WTopk round-3 bug: iterating self.candidates (a set) while
        # emitting records made the map output hash-order dependent.
        source = """
            class RoundJob(MapReduceJob):
                def __init__(self, candidates=None):
                    self.candidates = candidates or set()

                def map(self, split):
                    for node in self.candidates:
                        yield node, 0.0
        """
        assert "DT001" in findings_for(source)

    def test_dt001_sorted_iteration_is_clean(self):
        source = """
            class RoundJob(MapReduceJob):
                def __init__(self, candidates=None):
                    self.candidates = candidates or set()

                def map(self, split):
                    for node in sorted(self.candidates):
                        yield node, 0.0
        """
        assert "DT001" not in findings_for(source)

    def test_dt001_local_set_literal(self):
        source = """
            def emit():
                pending = {3, 1, 2}
                for node in pending:
                    yield node
        """
        assert "DT001" in findings_for(source)

    def test_dt002_unseeded_stdlib_random(self):
        source = """
            import random

            def jitter():
                return random.random()
        """
        assert "DT002" in findings_for(source)

    def test_dt002_legacy_numpy_random(self):
        source = """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
        """
        assert "DT002" in findings_for(source)

    def test_dt002_bare_default_rng(self):
        source = """
            import numpy as np

            def noise(n):
                return np.random.default_rng().normal(size=n)
        """
        assert "DT002" in findings_for(source)

    def test_dt002_seeded_default_rng_is_clean(self):
        source = """
            import numpy as np

            def noise(n, seed):
                return np.random.default_rng(seed).normal(size=n)
        """
        assert "DT002" not in findings_for(source)

    def test_dt003_id_keyed_map_regression(self):
        # The DIndirectHaar driver once cached probe solutions in a dict
        # keyed by id(solution): correct in one run, irreproducible across
        # runs (and across processes, where ids are never stable).
        source = """
            def cache_probe(probes):
                by_identity = {}
                for probe in probes:
                    by_identity[id(probe)] = probe.epsilon
                return by_identity
        """
        assert "DT003" in findings_for(source)

    def test_dt003_dict_literal_and_get(self):
        source = """
            def lookup(store, obj):
                seeded = {id(obj): 1}
                return store.get(id(obj))
        """
        assert findings_for(source).count("DT003") == 2

    def test_dt003_id_in_plain_expression_is_clean(self):
        source = """
            def log_identity(obj):
                return f"{id(obj):x}"
        """
        assert "DT003" not in findings_for(source)


# ---------------------------------------------------------------------------
# Kernel contracts (KC001 / KC002 / KC003 / KC004) — scoped to algos/ and bench/
# ---------------------------------------------------------------------------


class TestKernelContracts:
    def test_kc001_allocation_without_dtype(self):
        source = """
            import numpy as np

            def scratch(n):
                return np.zeros(n)
        """
        assert "KC001" in findings_for(source)

    def test_kc001_arange_with_positional_dtype_is_clean(self):
        source = """
            import numpy as np

            def ramp(n):
                return np.arange(0, n, 1, np.int64)
        """
        assert "KC001" not in findings_for(source)

    def test_kc001_empty_like_is_exempt(self):
        source = """
            import numpy as np

            def clone(a):
                out = np.empty_like(a)
                return out
        """
        assert "KC001" not in findings_for(source)

    def test_kc001_only_applies_to_kernel_scopes(self):
        source = """
            import numpy as np

            def scratch(n):
                return np.zeros(n)
        """
        assert "KC001" not in findings_for(source, path="src/repro/data/fixture.py")

    def test_kc002_float_literal_equality(self):
        source = """
            def is_zero(x: float) -> bool:
                return x == 0.0
        """
        assert "KC002" in findings_for(source)

    def test_kc002_integer_equality_is_clean(self):
        source = """
            def is_zero(x: int) -> bool:
                return x == 0
        """
        assert "KC002" not in findings_for(source)

    def test_kc003_augmented_assignment_to_argument(self):
        source = """
            def normalize(values, total: float):
                values /= total
                return values
        """
        assert "KC003" in findings_for(source)

    def test_kc003_subscript_store_into_argument(self):
        source = """
            def clamp(values):
                values[0] = 0.0
                return values
        """
        assert "KC003" in findings_for(source)

    def test_kc003_rebound_argument_is_clean(self):
        source = """
            import numpy as np

            def normalize(values, total: float):
                values = np.asarray(values, dtype=np.float64).copy()
                values /= total
                return values
        """
        assert "KC003" not in findings_for(source)

    def test_kc004_as_completed_collection(self):
        # Completion-order collection would break the parallel level
        # walk's bit-identity with the serial walk.
        source = """
            from concurrent.futures import as_completed

            def run_level(executor, tasks):
                futures = [executor.submit(t) for t in tasks]
                return [f.result() for f in as_completed(futures)]
        """
        assert "KC004" in findings_for(source)

    def test_kc004_imap_unordered(self):
        source = """
            def run_level(pool, tasks):
                return list(pool.imap_unordered(run_one, tasks))

            def run_one(task):
                return task
        """
        assert "KC004" in findings_for(source)

    def test_kc004_iterating_a_set(self):
        source = """
            def walk(nodes):
                for node in set(nodes):
                    yield node
        """
        assert "KC004" in findings_for(source)

    def test_kc004_set_literal_iteration(self):
        source = """
            def walk():
                for node in {3, 1, 2}:
                    yield node
        """
        assert "KC004" in findings_for(source)

    def test_kc004_executor_map_is_clean(self):
        # Executor.map yields in submission order — the sanctioned way.
        source = """
            def run_level(executor, tasks):
                return list(executor.map(run_one, tasks))

            def run_one(task):
                return task
        """
        assert "KC004" not in findings_for(source)

    def test_kc004_sorted_set_iteration_is_clean(self):
        source = """
            def walk(nodes):
                for node in sorted(set(nodes)):
                    yield node
        """
        assert "KC004" not in findings_for(source)

    def test_kc004_only_applies_to_kernel_scopes(self):
        source = """
            from concurrent.futures import as_completed

            def drain(futures):
                return [f.result() for f in as_completed(futures)]
        """
        assert "KC004" not in findings_for(source, path="src/repro/mapreduce/fixture.py")


# ---------------------------------------------------------------------------
# API hygiene (AH001 / AH002 / AH003)
# ---------------------------------------------------------------------------


class TestApiHygiene:
    def test_ah001_mutable_default(self):
        source = """
            def collect(item, bucket=[]):
                bucket.append(item)
                return bucket
        """
        assert "AH001" in findings_for(source)

    def test_ah001_none_default_is_clean(self):
        source = """
            def collect(item, bucket=None):
                bucket = bucket if bucket is not None else []
                bucket.append(item)
                return bucket
        """
        assert "AH001" not in findings_for(source)

    def test_ah002_bare_except(self):
        source = """
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
        """
        assert "AH002" in findings_for(source)

    def test_ah003_name_missing_from_all(self):
        source = """
            from repro.algos.heap import AddressableMinHeap

            __all__ = []
        """
        assert "AH003" in findings_for(source, path="src/repro/algos/__init__.py")

    def test_ah003_all_listing_unbound_name(self):
        source = """
            __all__ = ["does_not_exist"]
        """
        assert "AH003" in findings_for(source, path="src/repro/algos/__init__.py")

    def test_ah003_ignores_non_init_modules(self):
        source = """
            from repro.algos.heap import AddressableMinHeap

            __all__ = []
        """
        assert "AH003" not in findings_for(source, path="src/repro/algos/module.py")


# ---------------------------------------------------------------------------
# Typing gate (TG001)
# ---------------------------------------------------------------------------


class TestTypingGate:
    def test_tg001_unannotated_parameter_and_return(self):
        source = """
            def combine(left, right: int) -> int:
                return right
        """
        assert findings_for(source).count("TG001") == 1

    def test_tg001_missing_return_annotation(self):
        source = """
            def combine(left: int, right: int):
                return left + right
        """
        assert "TG001" in findings_for(source)

    def test_tg001_self_and_cls_are_exempt(self):
        source = """
            class Thing:
                def method(self) -> None:
                    pass

                @classmethod
                def build(cls) -> "Thing":
                    return cls()
        """
        assert "TG001" not in findings_for(source)

    def test_tg001_fully_annotated_is_clean(self):
        source = """
            def combine(left: int, *rest: int, scale: float = 1.0, **extra: int) -> int:
                return left
        """
        assert "TG001" not in findings_for(source)


# ---------------------------------------------------------------------------
# Suppression, CLI, and the repo-wide gate
# ---------------------------------------------------------------------------


class TestHarness:
    def test_suppression_comment_silences_one_rule(self):
        source = """
            def is_zero(x: float) -> bool:
                return x == 0.0  # lint: ignore[KC002]
        """
        assert "KC002" not in findings_for(source)

    def test_blanket_suppression_comment_suppresses_nothing(self):
        # A bracketless ignore comment used to silence every rule on the
        # line; it now suppresses nothing and is itself reported (LS001).
        source = """
            def is_zero(x: float) -> bool:
                return x == 0.0  # lint: ignore
        """
        found = findings_for(source)
        assert "KC002" in found
        assert "LS001" in found

    def test_unused_suppression_is_reported(self):
        source = """
            def well_typed(x: float) -> float:
                return x + 1.0  # lint: ignore[KC002]
        """
        assert findings_for(source) == ["LS002"]

    def test_unknown_rule_id_is_not_reported_unused(self):
        # Per-file passes only know their own running set; a suppression
        # of an interprocedural rule must not be flagged stale here.
        source = """
            def well_typed(x: float) -> float:
                return x + 1.0  # lint: ignore[RC003] -- driver-only path
        """
        assert findings_for(source) == []

    def test_rc_suppression_without_justification(self):
        source = """
            def well_typed(x: float) -> float:
                return x + 1.0  # lint: ignore[RC003]
        """
        assert "LS003" in findings_for(source)

    def test_suppression_of_other_rule_does_not_silence(self):
        source = """
            def is_zero(x: float) -> bool:
                return x == 0.0  # lint: ignore[KC001]
        """
        assert "KC002" in findings_for(source)

    def test_rule_ids_are_unique_and_sorted(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_findings_are_ordered_and_rendered(self):
        source = """
            def late(x):
                return x == 0.0

            def early(a, b):
                return a
        """
        found = analyze_source(
            textwrap.dedent(source), "src/repro/algos/fixture.py", all_rules()
        )
        lines = [f.line for f in found]
        assert lines == sorted(lines)
        rendered = found[0].render()
        assert rendered.startswith("src/repro/algos/fixture.py:")
        assert found[0].rule in rendered

    def test_analyze_paths_walks_directories(self, tmp_path):
        package = tmp_path / "algos"
        package.mkdir()
        (package / "bad.py").write_text("def f(x):\n    return x\n")
        findings = analyze_paths([str(tmp_path)], all_rules())
        assert any(f.rule == "TG001" for f in findings)

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(x: int) -> int:\n    return x\n")
        assert analysis_main([str(clean)]) == 0

        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(x):\n    return x\n")
        assert analysis_main([str(dirty)]) == 1
        out = capsys.readouterr()
        assert "TG001" in out.out

        assert analysis_main([str(tmp_path / "missing.py")]) == 2

        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert analysis_main([str(broken)]) == 2

    def test_cli_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "PS001",
            "DT001",
            "KC001",
            "AH001",
            "TG001",
            "RC001",
            "RC003",
            "PS003",
            "LS001",
        ):
            assert rule_id in out

    def test_cli_writes_sarif(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(x):\n    return x\n")
        sarif_path = tmp_path / "out.sarif"
        assert analysis_main([str(dirty), "--sarif-file", str(sarif_path)]) == 1
        capsys.readouterr()
        import json

        log = json.loads(sarif_path.read_text())
        assert log["version"] == "2.1.0"
        results = log["runs"][0]["results"]
        assert any(result["ruleId"] == "TG001" for result in results)

    def test_repo_source_tree_is_clean(self):
        repo_src = Path(__file__).resolve().parent.parent / "src"
        findings = analyze_paths([str(repo_src)], all_rules())
        assert findings == [], "\n".join(f.render() for f in findings)
